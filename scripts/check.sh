#!/usr/bin/env bash
# Full local gate: formatting, lints, and the whole test suite.
# CI (.github/workflows/ci.yml) runs exactly these steps; run this before
# pushing to get the same verdict without the round trip.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test"
cargo test --workspace --offline -q

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> fault-tolerance suite, per backend family"
cargo test --offline -q --test fault_tolerance -- sim
cargo test --offline -q --test fault_tolerance -- threads

echo "==> planner determinism suite (parallel == sequential, cache identity)"
cargo test --offline -q --test planner_parallel

echo "==> plan verifier suite (clean plans pass, mutated plans convicted)"
cargo test --offline -q --test plan_verifier

echo "==> determinism lint (hash iteration / wall clock / unwrap rules)"
cargo run --offline --release -p crossmesh-check --bin crossmesh-lint

echo "==> bounded model checker smoke (runtime dataflow interleavings)"
cargo run --offline --release -p crossmesh-check --bin crossmesh-modelcheck -- --smoke

echo "==> race detector smoke (seeded defects convict, clean suite silent)"
cargo run --offline --release -p crossmesh-check --bin crossmesh-race -- --smoke

echo "==> snapshot committed bench baselines (regression-gate reference)"
bench_baseline="$(mktemp -d)"
cp BENCH_*.json "$bench_baseline"/
# Restore on ANY exit: a failing smoke or gate step must not leave the
# committed baselines overwritten with smoke-run numbers.
restore_baselines() {
    if [ -d "$bench_baseline" ]; then
        cp "$bench_baseline"/BENCH_*.json . 2>/dev/null || true
        rm -rf "$bench_baseline"
    fi
}
trap restore_baselines EXIT

echo "==> planner bench smoke (1 vs 4 threads)"
cargo run --offline --release -p crossmesh-bench --bin repro_planner -- --smoke > /dev/null

echo "==> verifier overhead smoke"
cargo run --offline --release -p crossmesh-bench --bin repro_check -- --smoke > /dev/null

echo "==> obs overhead smoke (collectors off vs on vs flight recorder, determinism)"
cargo run --offline --release -p crossmesh-bench --bin repro_obs -- --smoke

echo "==> MoE a2a smoke (rails beat both baselines, zero convictions)"
cargo run --offline --release -p crossmesh-bench --bin repro_moe -- --smoke > /dev/null

echo "==> netsim engine smoke (incremental vs reference, aggregate sweep, zero convictions)"
cargo run --offline --release -p crossmesh-bench --bin repro_netsim -- --smoke > /dev/null

echo "==> race overhead smoke (seam disarmed vs armed, conviction sweep)"
cargo run --offline --release -p crossmesh-bench --bin repro_race -- --smoke

echo "==> serve smoke (daemon + trace-driven load, zero convictions, clean drain)"
serve_dir="$(mktemp -d)"
cargo run --offline --release -p crossmesh-cli -- serve \
    --workers 2 --allow-remote-shutdown --max-seconds 120 \
    --addr-out "$serve_dir/addr" > "$serve_dir/serve.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do [ -s "$serve_dir/addr" ] && break; sleep 0.1; done
[ -s "$serve_dir/addr" ] || { cat "$serve_dir/serve.log"; exit 1; }
cargo run --offline --release -p crossmesh-bench --bin repro_serve -- \
    --smoke --addr "$(cat "$serve_dir/addr")" --out BENCH_serve.json
cargo run --offline --release -p crossmesh-cli -- client \
    --addr "$(cat "$serve_dir/addr")" --shutdown
wait "$serve_pid"   # non-zero (unclean drain) fails the gate via set -e
rm -rf "$serve_dir"

echo "==> bench regression gate (self-test, then fresh vs committed baselines)"
cargo run --offline --release -p crossmesh-bench --bin repro_regress -- --smoke
cargo run --offline --release -p crossmesh-bench --bin repro_regress -- \
    --baseline-dir "$bench_baseline" --fresh-dir .

echo "==> restore committed bench baselines (smoke runs overwrote them)"
restore_baselines
trap - EXIT

echo "==> seeded-fault serve smoke (flight-recorder dump validates)"
fault_dir="$(mktemp -d)"
printf '%s' '{"seed":0,"events":[{"HostCrash":{"host":0,"at":0.0}}],"max_retries":3,"retry_backoff":0.001}' \
    > "$fault_dir/faults.json"
cargo run --offline --release -p crossmesh-cli -- serve \
    --workers 1 --allow-remote-shutdown --max-seconds 120 \
    --flightrec-dir "$fault_dir" \
    --addr-out "$fault_dir/addr" > "$fault_dir/serve.log" 2>&1 &
fault_pid=$!
for _ in $(seq 1 100); do [ -s "$fault_dir/addr" ] && break; sleep 0.1; done
[ -s "$fault_dir/addr" ] || { cat "$fault_dir/serve.log"; exit 1; }
cargo run --offline --release -p crossmesh-cli -- client \
    --addr "$(cat "$fault_dir/addr")" \
    --src-spec RS1R --dst-spec S0RR --src-mesh 2x4 --dst-mesh 2x4 \
    --shape 64x64x8 --faults "$fault_dir/faults.json" > /dev/null
cargo run --offline --release -p crossmesh-cli -- client \
    --addr "$(cat "$fault_dir/addr")" --shutdown
wait "$fault_pid"
dump="$(ls "$fault_dir"/flightrec-fault-repair-*.json | head -1)"
[ -n "$dump" ] || { echo "no flight-recorder dump produced"; exit 1; }
cargo run --offline --release -p crossmesh-cli -- validate-trace --trace "$dump"
rm -rf "$fault_dir"

echo "==> unified timeline export, one schema across backends"
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
reshard_case=(reshard --src-spec RR --dst-spec S01R --src-mesh 2x4 --dst-mesh 2x4
              --shape 256x256)
cargo run --offline --release -p crossmesh-cli -- "${reshard_case[@]}" \
    --backend sim --trace-out "$trace_dir/sim.json" > /dev/null
cargo run --offline --release -p crossmesh-cli -- "${reshard_case[@]}" \
    --backend threads --trace-out "$trace_dir/threads.json" > /dev/null
cargo run --offline --release -p crossmesh-cli -- validate-trace \
    --trace "$trace_dir/sim.json" --against "$trace_dir/threads.json"

echo "All checks passed."
