#!/usr/bin/env bash
# Full local gate: formatting, lints, and the whole test suite.
# CI (.github/workflows/ci.yml) runs exactly these steps; run this before
# pushing to get the same verdict without the round trip.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test"
cargo test --workspace --offline -q

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> fault-tolerance suite, per backend family"
cargo test --offline -q --test fault_tolerance -- sim
cargo test --offline -q --test fault_tolerance -- threads

echo "==> planner determinism suite (parallel == sequential, cache identity)"
cargo test --offline -q --test planner_parallel

echo "==> planner bench smoke (1 vs 4 threads)"
cargo run --offline --release -p crossmesh-bench --bin repro_planner -- --smoke > /dev/null

echo "All checks passed."
