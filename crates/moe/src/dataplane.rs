//! Byte-exact execution of an all-to-all: did every expert shard land?
//!
//! The simulator prices an all-to-all plan; this module *runs* one on
//! real buffers. Ground truth comes from `crossmesh-core`'s data plane:
//! every byte of the destination-major space holds its own offset
//! (truncated to one byte), senders materialize their shards from that
//! rule, and [`verify_destination`] proves each expert's assembled region
//! byte-identical to truth.
//!
//! Two executors share that check:
//!
//! * [`execute_reference`] delivers the unit tasks sequentially — the
//!   oracle;
//! * [`execute_threaded`] runs a sender pool of configurable width
//!   feeding one assembler thread per expert device over bounded
//!   channels, optionally under a seeded
//!   [`FaultSchedule`](crossmesh_faults::FaultSchedule) whose `FlowDrop`
//!   events force per-shard retries. Drop rolls are seeded per unit task
//!   (mirroring the threaded runtime's per-flow rolls), so the outcome is
//!   identical at every pool width.

use crate::a2a::A2aTask;
use crossmesh_core::dataplane::{
    verify_destination, DataPlaneError, DestinationBuffer, TileBuffer,
};
use crossmesh_faults::{FaultEvent, FaultSchedule};
use crossmesh_hb as hb;
use crossmesh_netsim::DeviceId;
use rand::prelude::*;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::mpsc;
use std::thread;

/// The verified outcome of an all-to-all execution.
#[derive(Debug, Clone, PartialEq)]
pub struct MoeReport {
    /// Bytes handed to expert devices (the logical payload).
    pub delivered_bytes: u64,
    /// Final per-device regions of the destination-major byte space,
    /// keyed by device id and proven byte-identical to ground truth.
    pub destination: BTreeMap<u32, TileBuffer>,
}

/// Errors surfaced by all-to-all execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MoeExecError {
    /// A placement defect: uncovered, corrupted, or conflicting bytes.
    Data(DataPlaneError),
    /// A shard's every transmission attempt was dropped by the fault
    /// schedule, retries included.
    Dropped {
        /// The unit task whose shard was lost.
        unit: usize,
        /// Attempts made (1 + retries).
        attempts: u32,
    },
}

impl fmt::Display for MoeExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MoeExecError::Data(e) => write!(f, "{e}"),
            MoeExecError::Dropped { unit, attempts } => {
                write!(f, "shard of unit {unit} lost after {attempts} attempts")
            }
        }
    }
}

impl Error for MoeExecError {}

impl From<DataPlaneError> for MoeExecError {
    fn from(e: DataPlaneError) -> Self {
        MoeExecError::Data(e)
    }
}

/// Delivers every unit task sequentially and verifies the destinations.
///
/// # Errors
///
/// Returns [`MoeExecError::Data`] on any placement defect.
pub fn execute_reference(a2a: &A2aTask) -> Result<MoeReport, MoeExecError> {
    let shape = a2a.task().shape();
    let mut bufs: BTreeMap<DeviceId, DestinationBuffer> = a2a
        .destination_tiles()
        .iter()
        .map(|(d, t)| (*d, DestinationBuffer::new(t.clone(), 1)))
        .collect();
    let mut delivered = 0u64;
    for unit in a2a.task().units() {
        let piece = TileBuffer::materialize(&unit.slice, shape, 1);
        let r = &unit.receivers[0];
        bufs.get_mut(&r.device)
            .expect("every receiver owns a destination tile")
            .write(&piece, r.device)?;
        delivered += unit.bytes;
    }
    let destination = verify_destination(shape, bufs)?;
    Ok(MoeReport {
        delivered_bytes: delivered,
        destination,
    })
}

/// [`execute_threaded_with_faults`] without fault injection.
///
/// # Errors
///
/// Returns [`MoeExecError::Data`] on any placement defect.
pub fn execute_threaded(a2a: &A2aTask, pool: usize) -> Result<MoeReport, MoeExecError> {
    execute_threaded_with_faults(a2a, pool, None)
}

/// The strongest `FlowDrop` probability of `faults`, if any.
fn drop_prob(faults: Option<&FaultSchedule>) -> f64 {
    faults
        .map(|f| {
            f.events
                .iter()
                .filter_map(|e| match e {
                    FaultEvent::FlowDrop { prob } => Some(*prob),
                    _ => None,
                })
                .fold(0.0, f64::max)
        })
        .unwrap_or(0.0)
}

/// Executes the all-to-all with `pool` sender threads (unit tasks are
/// dealt round-robin across the pool) and one assembler thread per expert
/// device, then verifies the destinations.
///
/// Under a fault schedule with `FlowDrop` events, each shard's
/// transmission attempts are rolled from a generator seeded by
/// `schedule.seed` and the unit index — never by pool width or thread
/// interleaving — so the delivered bytes are identical across pool
/// widths, faults or not.
///
/// # Errors
///
/// Returns [`MoeExecError::Dropped`] when a shard exhausts its retry
/// budget and [`MoeExecError::Data`] on any placement defect.
///
/// # Panics
///
/// Panics if a worker or assembler thread itself panics.
pub fn execute_threaded_with_faults(
    a2a: &A2aTask,
    pool: usize,
    faults: Option<&FaultSchedule>,
) -> Result<MoeReport, MoeExecError> {
    let pool = pool.max(1);
    let shape: Vec<u64> = a2a.task().shape().to_vec();
    let prob = drop_prob(faults);
    let max_retries = faults.map(|f| f.max_retries).unwrap_or(0);
    let seed = faults.map(|f| f.seed).unwrap_or(0);

    // One assembler per destination device, fed over a bounded channel so
    // fast senders exert backpressure instead of buffering everything.
    // Per-inbox happens-before edge and per-destination-buffer access
    // point: the race detector sees every shard delivery as release(edge)
    // at the sender's `send` and acquire(edge) + write(buffer) at the
    // assembler, so an unsynchronized buffer write would convict.
    let mut inboxes: BTreeMap<DeviceId, (mpsc::SyncSender<TileBuffer>, u64)> = BTreeMap::new();
    let mut assemblers = Vec::new();
    for (device, tile) in a2a.destination_tiles() {
        let (tx, rx) = mpsc::sync_channel::<TileBuffer>(64);
        let chan_edge = hb::fresh_id();
        let buf_point = hb::fresh_id();
        inboxes.insert(*device, (tx, chan_edge));
        let device = *device;
        let tile = tile.clone();
        assemblers.push(thread::spawn(
            move || -> Result<(DeviceId, DestinationBuffer), DataPlaneError> {
                let mut buf = DestinationBuffer::new(tile, 1);
                for piece in rx {
                    hb::acquire(chan_edge);
                    hb::write(buf_point);
                    buf.write(&piece, device)?;
                }
                Ok((device, buf))
            },
        ));
    }

    let units = a2a.task().units();
    let mut workers = Vec::new();
    for w in 0..pool {
        let my_units: Vec<_> = units.iter().skip(w).step_by(pool).cloned().collect();
        let inboxes = inboxes.clone();
        let shape = shape.clone();
        workers.push(thread::spawn(move || -> Result<u64, MoeExecError> {
            let mut delivered = 0u64;
            for unit in &my_units {
                if prob > 0.0 {
                    // Seeded per unit, exactly like the runtime rolls per
                    // flow task: deterministic across pool widths.
                    let mut rng = SmallRng::seed_from_u64(
                        seed ^ 0x9e37_79b9u64.wrapping_add(unit.index as u64),
                    );
                    let mut attempts = 1u32;
                    while rng.gen_f64() < prob {
                        if attempts > max_retries {
                            return Err(MoeExecError::Dropped {
                                unit: unit.index,
                                attempts,
                            });
                        }
                        attempts += 1;
                    }
                }
                let piece = TileBuffer::materialize(&unit.slice, &shape, 1);
                let r = &unit.receivers[0];
                let (tx, chan_edge) = inboxes
                    .get(&r.device)
                    .expect("every receiver owns a destination tile");
                hb::preempt();
                hb::release(*chan_edge);
                tx.send(piece).expect("assembler outlives its senders");
                delivered += unit.bytes;
            }
            Ok(delivered)
        }));
    }
    drop(inboxes);

    let mut delivered = 0u64;
    let mut first_err: Option<MoeExecError> = None;
    for worker in workers {
        match worker.join().expect("sender thread panicked") {
            Ok(bytes) => delivered += bytes,
            Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    let mut assembled = Vec::new();
    for assembler in assemblers {
        match assembler.join().expect("assembler thread panicked") {
            Ok(pair) => assembled.push(pair),
            Err(e) => first_err = first_err.or(Some(MoeExecError::Data(e))),
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    let destination = verify_destination(&shape, assembled)?;
    Ok(MoeReport {
        delivered_bytes: delivered,
        destination,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RoutingConfig;
    use crossmesh_mesh::DeviceMesh;
    use crossmesh_netsim::{ClusterSpec, LinkParams};

    fn skewed_a2a() -> A2aTask {
        let c = ClusterSpec::homogeneous(4, 2, LinkParams::new(100.0, 1.0));
        let tokens = DeviceMesh::from_cluster(&c, 0, (2, 2), "tokens").unwrap();
        let experts = DeviceMesh::from_cluster(&c, 2, (2, 2), "experts").unwrap();
        let cfg = RoutingConfig {
            tokens_per_device: 16,
            token_bytes: 3,
            skew: 1.5,
            seed: 11,
            ..RoutingConfig::default()
        };
        A2aTask::dispatch(&tokens, &experts, &cfg.bytes_matrix(4, 4))
    }

    #[test]
    fn reference_delivers_every_shard() {
        let a2a = skewed_a2a();
        let report = execute_reference(&a2a).unwrap();
        assert_eq!(report.delivered_bytes, a2a.total_bytes());
        assert_eq!(report.destination.len(), a2a.destination_tiles().len());
    }

    #[test]
    fn threaded_matches_reference_at_every_pool_width() {
        let a2a = skewed_a2a();
        let reference = execute_reference(&a2a).unwrap();
        for pool in [1, 2, 4, 7] {
            let threaded = execute_threaded(&a2a, pool).unwrap();
            assert_eq!(threaded, reference, "pool width {pool} diverged");
        }
    }

    #[test]
    fn faults_retry_without_changing_the_bytes() {
        let a2a = skewed_a2a();
        let reference = execute_reference(&a2a).unwrap();
        let schedule = FaultSchedule::new(42)
            .with_event(FaultEvent::FlowDrop { prob: 0.2 })
            .with_retry_policy(6, 1e-3);
        for pool in [1, 4] {
            let faulty = execute_threaded_with_faults(&a2a, pool, Some(&schedule)).unwrap();
            assert_eq!(faulty, reference, "pool width {pool} diverged under faults");
        }
    }

    #[test]
    fn hopeless_drops_surface_as_dropped() {
        let a2a = skewed_a2a();
        let schedule = FaultSchedule::new(1)
            .with_event(FaultEvent::FlowDrop { prob: 1.0 })
            .with_retry_policy(2, 1e-3);
        let err = execute_threaded_with_faults(&a2a, 2, Some(&schedule)).unwrap_err();
        assert!(matches!(err, MoeExecError::Dropped { .. }), "{err}");
    }
}
