//! Mixture-of-Experts all-to-all on the crossmesh stack.
//!
//! An MoE layer moves every token to its routed experts (dispatch) and
//! back (combine). Unlike the resharding collectives elsewhere in this
//! workspace, the traffic matrix is *data-dependent*: a gating network
//! decides per token, so expert loads are skewed and change every step.
//! This crate models that traffic and lowers it onto the existing planner
//! machinery:
//!
//! * [`routing`] draws a seeded, deterministic tokens-to-experts routing
//!   matrix — Zipf-skewed expert popularity, top-k routing, and an
//!   expert-capacity clamp, mirroring how production MoE gates behave;
//! * [`a2a`] turns a routing matrix into an [`A2aTask`]: one unit task per
//!   (source device → expert device) pair laid out destination-major in a
//!   1-D byte space, carried by a regular
//!   [`ReshardingTask`](crossmesh_core::ReshardingTask) so every planner,
//!   the plan cache, the static verifier, and the simulator apply
//!   unchanged;
//! * [`dataplane`] executes an all-to-all on real buffers — a sequential
//!   reference and a pool-width-parameterized threaded backend — and
//!   proves the delivered expert shards byte-identical to ground truth.
//!
//! The `plan.a2a.*` rules in `crossmesh-check` consume
//! [`A2aTask::pairs`] to prove a plan delivers every expert shard exactly
//! once within per-rail capacity.

pub mod a2a;
pub mod dataplane;
pub mod routing;

pub use a2a::{A2aDirection, A2aTask};
pub use dataplane::{
    execute_reference, execute_threaded, execute_threaded_with_faults, MoeExecError, MoeReport,
};
pub use routing::{routing_matrix, RoutingConfig};
