//! All-to-all tasks: a routing matrix lowered to per-pair unit tasks.
//!
//! The trick that lets MoE traffic ride the whole existing stack is a
//! *destination-major byte space*: concatenate every expert device's
//! inbound shards into one virtual 1-D tensor (element width 1). Expert
//! `j` owns the contiguous region `[off_j, off_j + recv_j)`; within it,
//! source `s`'s shard sits at the prefix of sources before `s`. Each
//! (source → expert) pair with nonzero payload becomes one single-sender,
//! single-receiver [`UnitTask`] whose slice *is* the shard, so:
//!
//! * every planner schedules the pairs like any resharding task, and the
//!   simulator contends them over the fabric;
//! * the generic coverage rules already prove "every shard delivered",
//!   because the units exactly tile `[0, total)`;
//! * the data plane reuses `crossmesh-core`'s destination buffers — each
//!   expert's region is one contiguous tile.

use crossmesh_check::verify::A2aPairView;
use crossmesh_collectives::{multi_rail_spray, Strategy};
use crossmesh_core::{Plan, ReshardingTask};
use crossmesh_mesh::{DeviceMesh, Receiver, ShardingSpec, Tile, UnitTask};
use crossmesh_netsim::DeviceId;
use serde::{Deserialize, Serialize};

/// Which half of the MoE layer the all-to-all implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum A2aDirection {
    /// Tokens travel to their routed experts.
    Dispatch,
    /// Processed tokens travel back to their source devices.
    Combine,
}

impl std::fmt::Display for A2aDirection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            A2aDirection::Dispatch => write!(f, "dispatch"),
            A2aDirection::Combine => write!(f, "combine"),
        }
    }
}

/// An MoE all-to-all lowered onto the planner stack: the carrying
/// [`ReshardingTask`], the expected pair set for the `plan.a2a.*` rules,
/// and the destination regions for the data plane.
#[derive(Debug, Clone)]
pub struct A2aTask {
    direction: A2aDirection,
    task: ReshardingTask,
    pairs: Vec<A2aPairView>,
    destination_tiles: Vec<(DeviceId, Tile)>,
    total_bytes: u64,
}

impl A2aTask {
    /// The dispatch all-to-all: `bytes[s][e]` flows from device `s` of
    /// `tokens_mesh` to expert device `e` of `expert_mesh`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix shape disagrees with the meshes or every
    /// entry is zero.
    pub fn dispatch(
        tokens_mesh: &DeviceMesh,
        expert_mesh: &DeviceMesh,
        bytes: &[Vec<u64>],
    ) -> Self {
        Self::build(A2aDirection::Dispatch, tokens_mesh, expert_mesh, bytes)
    }

    /// The combine all-to-all: the transpose of `dispatch_bytes` flows
    /// from the experts back to the token devices.
    ///
    /// # Panics
    ///
    /// Panics if the matrix shape disagrees with the meshes or every
    /// entry is zero.
    pub fn combine(
        tokens_mesh: &DeviceMesh,
        expert_mesh: &DeviceMesh,
        dispatch_bytes: &[Vec<u64>],
    ) -> Self {
        let experts = expert_mesh.devices().len();
        let sources = tokens_mesh.devices().len();
        let transposed: Vec<Vec<u64>> = (0..experts)
            .map(|e| (0..sources).map(|s| dispatch_bytes[s][e]).collect())
            .collect();
        Self::build(A2aDirection::Combine, expert_mesh, tokens_mesh, &transposed)
    }

    // Rank-1 tiles over the virtual byte space are the design here.
    #[allow(clippy::single_range_in_vec_init)]
    fn build(
        direction: A2aDirection,
        src_mesh: &DeviceMesh,
        dst_mesh: &DeviceMesh,
        bytes: &[Vec<u64>],
    ) -> Self {
        let sources = src_mesh.devices().len();
        let dests = dst_mesh.devices().len();
        assert_eq!(bytes.len(), sources, "one matrix row per source device");
        for (s, row) in bytes.iter().enumerate() {
            assert_eq!(
                row.len(),
                dests,
                "row {s} must have one entry per destination"
            );
        }

        // Destination-major offsets: dst j owns [off[j], off[j + 1]).
        let mut off = vec![0u64; dests + 1];
        for j in 0..dests {
            let recv: u64 = (0..sources).map(|s| bytes[s][j]).sum();
            off[j + 1] = off[j] + recv;
        }
        let total = off[dests];
        assert!(total > 0, "an all-to-all needs at least one nonzero shard");

        let host_of = |mesh: &DeviceMesh, d: DeviceId| {
            mesh.host_of_device(d).expect("device is in its own mesh")
        };
        let mut units = Vec::new();
        let mut pairs = Vec::new();
        for j in 0..dests {
            let dst = dst_mesh.devices()[j];
            let dst_host = host_of(dst_mesh, dst);
            let mut cursor = off[j];
            for (s, row) in bytes.iter().enumerate() {
                let b = row[j];
                if b == 0 {
                    continue;
                }
                let src = src_mesh.devices()[s];
                let src_host = host_of(src_mesh, src);
                let slice = Tile::new([cursor..cursor + b]);
                units.push(UnitTask {
                    index: units.len(),
                    slice: slice.clone(),
                    bytes: b,
                    senders: vec![(src, src_host)],
                    receivers: vec![Receiver {
                        device: dst,
                        host: dst_host,
                        needed: slice,
                    }],
                });
                pairs.push(A2aPairView {
                    src_device: src,
                    src_host,
                    dst_device: dst,
                    dst_host,
                    bytes: b,
                });
                cursor += b;
            }
        }
        let destination_tiles = (0..dests)
            .filter(|&j| off[j + 1] > off[j])
            .map(|j| (dst_mesh.devices()[j], Tile::new([off[j]..off[j + 1]])))
            .collect();
        let task = ReshardingTask::from_units(
            src_mesh.clone(),
            ShardingSpec::replicated(1),
            dst_mesh.clone(),
            ShardingSpec::replicated(1),
            &[total],
            1,
            units,
        );
        A2aTask {
            direction,
            task,
            pairs,
            destination_tiles,
            total_bytes: total,
        }
    }

    /// Dispatch or combine.
    pub fn direction(&self) -> A2aDirection {
        self.direction
    }

    /// The carrying resharding task — hand this to any planner.
    pub fn task(&self) -> &ReshardingTask {
        &self.task
    }

    /// The expected pair set for `crossmesh-check`'s `plan.a2a.*` rules.
    pub fn pairs(&self) -> &[A2aPairView] {
        &self.pairs
    }

    /// Each receiving device's contiguous region of the virtual byte
    /// space (devices with no inbound shard are omitted).
    pub fn destination_tiles(&self) -> &[(DeviceId, Tile)] {
        &self.destination_tiles
    }

    /// Total wire payload in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Per-rail byte totals for `plan`'s [`Strategy::MultiRail`]
    /// assignments, re-deriving the same greedy chunk-to-rail spray the
    /// lowering uses. The result's length is the widest rail count any
    /// assignment sprays over; an empty vector means no unit task used
    /// multi-rail (co-hosted receivers ride NVLink and contribute no
    /// rail bytes). Observability callers turn this into `moe.rail.*`
    /// utilization metrics without lowering a task graph.
    pub fn rail_utilization(&self, plan: &Plan<'_>) -> Vec<f64> {
        let units = self.task.units();
        let mut totals: Vec<f64> = Vec::new();
        for a in plan.assignments() {
            if let Strategy::MultiRail { rails, chunks } = a.strategy {
                let spray = multi_rail_spray(&units[a.unit], a.sender_host, rails, chunks);
                if spray.rail_bytes.len() > totals.len() {
                    totals.resize(spray.rail_bytes.len(), 0.0);
                }
                for (t, b) in totals.iter_mut().zip(&spray.rail_bytes) {
                    *t += *b;
                }
            }
        }
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossmesh_netsim::{ClusterSpec, LinkParams};

    fn meshes() -> (ClusterSpec, DeviceMesh, DeviceMesh) {
        let c = ClusterSpec::homogeneous(4, 2, LinkParams::new(100.0, 1.0));
        let tokens = DeviceMesh::from_cluster(&c, 0, (2, 2), "tokens").unwrap();
        let experts = DeviceMesh::from_cluster(&c, 2, (2, 2), "experts").unwrap();
        (c, tokens, experts)
    }

    #[test]
    fn dispatch_units_tile_the_byte_space() {
        let (_c, tokens, experts) = meshes();
        let bytes = vec![
            vec![10, 0, 3, 1],
            vec![0, 0, 0, 7],
            vec![2, 5, 0, 0],
            vec![1, 1, 1, 1],
        ];
        let a2a = A2aTask::dispatch(&tokens, &experts, &bytes);
        assert_eq!(a2a.total_bytes(), 32);
        assert_eq!(a2a.pairs().len(), 10); // nonzero entries
        assert_eq!(a2a.task().units().len(), 10);
        // Units exactly tile [0, total) with no gaps or overlaps.
        let mut covered = [false; 32];
        for u in a2a.task().units() {
            let r = u.slice.range(0);
            for i in r.start..r.end {
                assert!(!covered[i as usize], "byte {i} covered twice");
                covered[i as usize] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "gap in the byte space");
        // Destination tiles are contiguous and ordered.
        let sizes: Vec<u64> = a2a
            .destination_tiles()
            .iter()
            .map(|(_, t)| t.volume())
            .collect();
        assert_eq!(sizes, vec![13, 6, 4, 9]);
    }

    #[test]
    fn combine_transposes_dispatch() {
        let (_c, tokens, experts) = meshes();
        let bytes = vec![
            vec![4, 0, 0, 0],
            vec![0, 3, 0, 0],
            vec![0, 0, 2, 0],
            vec![0, 0, 0, 1],
        ];
        let back = A2aTask::combine(&tokens, &experts, &bytes);
        assert_eq!(back.direction(), A2aDirection::Combine);
        assert_eq!(back.total_bytes(), 10);
        for p in back.pairs() {
            // Diagonal routing: expert i sends back to token device i.
            let s = experts
                .devices()
                .iter()
                .position(|&d| d == p.src_device)
                .unwrap();
            let d = tokens
                .devices()
                .iter()
                .position(|&d| d == p.dst_device)
                .unwrap();
            assert_eq!(s, d);
            assert_eq!(p.bytes, bytes[d][s]);
        }
    }

    #[test]
    fn rail_utilization_accounts_every_remote_byte() {
        use crossmesh_core::{NaivePlanner, Planner, PlannerConfig, Strategy, StrategyChoice};
        let (_c, tokens, experts) = meshes();
        let bytes = vec![
            vec![10, 0, 3, 1],
            vec![0, 0, 0, 7],
            vec![2, 5, 0, 0],
            vec![1, 1, 1, 1],
        ];
        let a2a = A2aTask::dispatch(&tokens, &experts, &bytes);

        // Token and expert meshes live on disjoint hosts, so every pair is
        // remote and every sprayed byte must land on some rail.
        let rails = 3u32;
        let config =
            PlannerConfig::default().with_strategy(StrategyChoice::Fixed(Strategy::MultiRail {
                rails,
                chunks: 4,
            }));
        let plan = NaivePlanner::new(config).plan(a2a.task());
        let util = a2a.rail_utilization(&plan);
        assert_eq!(util.len(), rails as usize);
        let total: f64 = util.iter().sum();
        assert!(
            (total - a2a.total_bytes() as f64).abs() < 1e-9,
            "rails carry {total} bytes, expected {}",
            a2a.total_bytes()
        );
        assert!(util.iter().all(|&b| b > 0.0), "a rail sat idle: {util:?}");

        // A non-multi-rail plan has no rail traffic to report.
        let broadcast = NaivePlanner::new(PlannerConfig::default()).plan(a2a.task());
        assert!(a2a.rail_utilization(&broadcast).is_empty());
    }

    #[test]
    #[should_panic(expected = "nonzero shard")]
    fn empty_matrix_is_rejected() {
        let (_c, tokens, experts) = meshes();
        let bytes = vec![vec![0u64; 4]; 4];
        let _ = A2aTask::dispatch(&tokens, &experts, &bytes);
    }
}
