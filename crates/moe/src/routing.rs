//! Seeded tokens-to-experts routing matrices.
//!
//! The gate of an MoE layer assigns each token to its `top_k` experts.
//! Real gates are famously unbalanced: a few experts absorb most of the
//! traffic, which is exactly the regime where all-to-all strategy choice
//! matters. This module draws that behavior deterministically from a seed
//! so benchmarks and tests are reproducible:
//!
//! 1. expert popularity follows a Zipf-like law with exponent
//!    [`skew`](RoutingConfig::skew), perturbed by seeded jitter;
//! 2. each source device splits its `tokens_per_device * top_k` routing
//!    decisions across experts by largest-remainder apportionment;
//! 3. an expert-capacity clamp (`capacity_factor` × the mean load) moves
//!    overflow tokens to the least-loaded experts with spare room,
//!    dropping them only when every expert is full — the standard
//!    capacity-factor semantics of GShard-style MoE layers.

use rand::prelude::*;
use serde::{Deserialize, Serialize};

/// Parameters of one MoE routing draw.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingConfig {
    /// Tokens resident on each source device per step.
    pub tokens_per_device: u64,
    /// Bytes one token occupies on the wire (hidden size × element width).
    pub token_bytes: u64,
    /// Experts each token is routed to.
    pub top_k: u32,
    /// Per-expert capacity as a multiple of the mean expert load; tokens
    /// past every expert's capacity are dropped, as in GShard.
    pub capacity_factor: f64,
    /// Zipf exponent of expert popularity: `0.0` is uniform, `1.0` is
    /// classic Zipf, `2.0` concentrates most traffic on a few experts.
    pub skew: f64,
    /// Seed for the popularity jitter; same seed, same matrix.
    pub seed: u64,
}

impl Default for RoutingConfig {
    fn default() -> Self {
        RoutingConfig {
            tokens_per_device: 512,
            token_bytes: 2048,
            top_k: 2,
            capacity_factor: 1.25,
            skew: 0.0,
            seed: 0,
        }
    }
}

impl RoutingConfig {
    /// Returns a copy with the skew exponent replaced.
    #[must_use]
    pub fn with_skew(mut self, skew: f64) -> Self {
        self.skew = skew;
        self
    }

    /// Returns a copy with the seed replaced.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The routing matrix in bytes: entry `[s][e]` is the wire payload
    /// from source device `s` to expert device `e`.
    pub fn bytes_matrix(&self, senders: usize, experts: usize) -> Vec<Vec<u64>> {
        routing_matrix(self, senders, experts)
            .into_iter()
            .map(|row| row.into_iter().map(|t| t * self.token_bytes).collect())
            .collect()
    }
}

/// Splits `total` integrally across `weights` by largest-remainder
/// apportionment (ties to the lower index).
fn largest_remainder(total: u64, weights: &[f64]) -> Vec<u64> {
    let sum: f64 = weights.iter().sum();
    if sum <= 0.0 || weights.is_empty() {
        return vec![0; weights.len()];
    }
    let quotas: Vec<f64> = weights.iter().map(|w| total as f64 * w / sum).collect();
    let mut out: Vec<u64> = quotas.iter().map(|q| q.floor() as u64).collect();
    let assigned: u64 = out.iter().sum();
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = quotas[a] - quotas[a].floor();
        let fb = quotas[b] - quotas[b].floor();
        fb.total_cmp(&fa).then(a.cmp(&b))
    });
    for i in 0..(total - assigned) as usize {
        out[order[i % order.len()]] += 1;
    }
    out
}

/// Draws the tokens-to-experts routing matrix: entry `[s][e]` is how many
/// token copies source device `s` sends to expert `e`. Deterministic in
/// `cfg.seed`; every row sums to `tokens_per_device * top_k` minus any
/// tokens dropped by the capacity clamp.
pub fn routing_matrix(cfg: &RoutingConfig, senders: usize, experts: usize) -> Vec<Vec<u64>> {
    if senders == 0 || experts == 0 {
        return vec![vec![]; senders];
    }
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    // Zipf-like popularity with ±25% seeded jitter so no two draws share
    // exactly the same hot set.
    let popularity: Vec<f64> = (0..experts)
        .map(|e| (0.75 + 0.5 * rng.gen_f64()) / ((e + 1) as f64).powf(cfg.skew))
        .collect();

    let per_sender = cfg.tokens_per_device * u64::from(cfg.top_k);
    let mut rows: Vec<Vec<u64>> = (0..senders)
        .map(|_| {
            // Per-sender jitter: each device's batch leans slightly
            // differently, as real token batches do.
            let local: Vec<f64> = popularity
                .iter()
                .map(|p| p * (0.9 + 0.2 * rng.gen_f64()))
                .collect();
            largest_remainder(per_sender, &local)
        })
        .collect();

    // Expert-capacity clamp: no expert may exceed `capacity_factor` times
    // the mean load. Overflow tokens migrate to the least-loaded expert
    // with spare room; with every expert full they are dropped.
    let total: u64 = per_sender * senders as u64;
    let cap = ((total as f64 / experts as f64) * cfg.capacity_factor).ceil() as u64;
    let mut load: Vec<u64> = (0..experts)
        .map(|e| rows.iter().map(|r| r[e]).sum())
        .collect();
    for e in 0..experts {
        while load[e] > cap {
            let donor = (0..senders)
                .max_by(|&a, &b| rows[a][e].cmp(&rows[b][e]).then(b.cmp(&a)))
                .expect("at least one sender");
            rows[donor][e] -= 1;
            load[e] -= 1;
            if let Some(t) = (0..experts)
                .filter(|&t| load[t] < cap)
                .min_by_key(|&t| (load[t], t))
            {
                rows[donor][t] += 1;
                load[t] += 1;
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_matrix() {
        let cfg = RoutingConfig::default().with_skew(1.0).with_seed(7);
        assert_eq!(routing_matrix(&cfg, 4, 8), routing_matrix(&cfg, 4, 8));
        assert_ne!(
            routing_matrix(&cfg, 4, 8),
            routing_matrix(&cfg.clone().with_seed(8), 4, 8)
        );
    }

    #[test]
    fn token_mass_is_conserved_under_the_clamp() {
        // capacity_factor >= 1 guarantees total capacity >= total tokens,
        // so the clamp migrates but never drops.
        let cfg = RoutingConfig {
            tokens_per_device: 64,
            top_k: 2,
            capacity_factor: 1.25,
            skew: 2.0,
            seed: 3,
            ..RoutingConfig::default()
        };
        let m = routing_matrix(&cfg, 4, 8);
        let total: u64 = m.iter().flatten().sum();
        assert_eq!(total, 4 * 64 * 2);
        let cap = ((total as f64 / 8.0) * 1.25).ceil() as u64;
        for e in 0..8 {
            let col: u64 = m.iter().map(|r| r[e]).sum();
            assert!(col <= cap, "expert {e} holds {col} > cap {cap}");
        }
    }

    #[test]
    fn skew_concentrates_load() {
        let senders = 4;
        let experts = 16;
        let uniform = routing_matrix(
            &RoutingConfig::default().with_seed(1).with_skew(0.0),
            senders,
            experts,
        );
        let skewed = routing_matrix(
            &RoutingConfig {
                capacity_factor: 8.0, // effectively unclamped
                ..RoutingConfig::default().with_seed(1).with_skew(2.0)
            },
            senders,
            experts,
        );
        let hottest = |m: &[Vec<u64>]| {
            (0..experts)
                .map(|e| m.iter().map(|r| r[e]).sum::<u64>())
                .max()
                .unwrap_or(0)
        };
        assert!(
            hottest(&skewed) > 2 * hottest(&uniform),
            "skew 2.0 should at least double the hottest expert: {} vs {}",
            hottest(&skewed),
            hottest(&uniform)
        );
    }

    #[test]
    fn bytes_matrix_scales_tokens() {
        let cfg = RoutingConfig {
            token_bytes: 100,
            ..RoutingConfig::default()
        };
        let tokens = routing_matrix(&cfg, 2, 4);
        let bytes = cfg.bytes_matrix(2, 4);
        for s in 0..2 {
            for e in 0..4 {
                assert_eq!(bytes[s][e], tokens[s][e] * 100);
            }
        }
    }
}
