//! Property-based tests of the discrete-event engine on random DAGs.

use crossmesh_netsim::{ClusterSpec, Engine, LinkParams, TaskGraph, TaskId, Work};
use proptest::prelude::*;

const INTRA_BW: f64 = 50.0;
const INTER_BW: f64 = 2.0;

fn cluster() -> ClusterSpec {
    ClusterSpec::homogeneous(
        3,
        2,
        LinkParams::new(INTRA_BW, INTER_BW).with_latencies(0.0, 0.0),
    )
    .with_device_flops(10.0)
}

/// One random task: its work and a dependency bitmask over earlier tasks.
#[derive(Debug, Clone)]
enum RandWork {
    Compute { device: u32, seconds: f64 },
    Flops { device: u32, flops: f64 },
    Flow { src: u32, dst: u32, bytes: f64 },
    Marker,
}

fn work_strategy() -> impl Strategy<Value = RandWork> {
    prop_oneof![
        (0u32..6, 0.0f64..3.0).prop_map(|(device, seconds)| RandWork::Compute { device, seconds }),
        (0u32..6, 0.0f64..20.0).prop_map(|(device, flops)| RandWork::Flops { device, flops }),
        (0u32..6, 0u32..5, 0.0f64..10.0).prop_map(|(src, d, bytes)| RandWork::Flow {
            src,
            // Avoid self-flows by skipping over src.
            dst: if d >= src { d + 1 } else { d },
            bytes,
        }),
        Just(RandWork::Marker),
    ]
}

fn graph_strategy() -> impl Strategy<Value = Vec<(RandWork, u64)>> {
    prop::collection::vec((work_strategy(), any::<u64>()), 1..40)
}

fn build(tasks: &[(RandWork, u64)]) -> TaskGraph {
    let mut g = TaskGraph::new();
    for (i, (work, mask)) in tasks.iter().enumerate() {
        let deps: Vec<TaskId> = (0..i)
            .filter(|j| mask & (1 << (j % 64)) != 0)
            .map(|j| TaskId(j as u32))
            .collect();
        let w = match *work {
            RandWork::Compute { device, seconds } => Work::compute(device.into(), seconds),
            RandWork::Flops { device, flops } => Work::compute_flops(device.into(), flops),
            RandWork::Flow { src, dst, bytes } => Work::flow(src.into(), dst.into(), bytes),
            RandWork::Marker => Work::Marker,
        };
        g.add(w, deps);
    }
    g
}

/// A safe serial upper bound: every task executed one after another at the
/// slowest applicable rate.
fn serial_bound(c: &ClusterSpec, tasks: &[(RandWork, u64)]) -> f64 {
    tasks
        .iter()
        .map(|(w, _)| match *w {
            RandWork::Compute { seconds, .. } => seconds,
            RandWork::Flops { flops, .. } => flops / 10.0,
            RandWork::Flow { src, dst, bytes } => {
                let bw = if c.same_host(src.into(), dst.into()) {
                    INTRA_BW
                } else {
                    INTER_BW
                };
                bytes / bw
            }
            RandWork::Marker => 0.0,
        })
        .sum::<f64>()
        + 1e-6
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every random DAG completes, deterministically, within its serial
    /// bound, and no task finishes before its dependencies.
    #[test]
    fn random_dags_complete_consistently(tasks in graph_strategy()) {
        let c = cluster();
        let g = build(&tasks);
        let t1 = Engine::new(&c).run(&g).unwrap();
        let t2 = Engine::new(&c).run(&g).unwrap();
        prop_assert_eq!(&t1, &t2, "engine must be deterministic");

        prop_assert!(t1.makespan() <= serial_bound(&c, &tasks));
        for (id, task) in g.iter() {
            let iv = t1.interval(id);
            prop_assert!(iv.finish >= iv.start - 1e-9);
            for d in &task.deps {
                prop_assert!(
                    t1.interval(*d).finish <= iv.start + 1e-9,
                    "task {} started before dep {} finished", id, d
                );
            }
        }
    }

    /// The makespan is at least the longest single task and at least each
    /// device's total compute load.
    #[test]
    fn makespan_respects_lower_bounds(tasks in graph_strategy()) {
        let c = cluster();
        let g = build(&tasks);
        let trace = Engine::new(&c).run(&g).unwrap();
        let mut device_load = [0.0f64; 6];
        for (w, _) in &tasks {
            let (dur, dev) = match *w {
                RandWork::Compute { device, seconds } => (seconds, Some(device)),
                RandWork::Flops { device, flops } => (flops / 10.0, Some(device)),
                RandWork::Flow { src, dst, bytes } => {
                    let bw = if c.same_host(src.into(), dst.into()) { INTRA_BW } else { INTER_BW };
                    (bytes / bw, None)
                }
                RandWork::Marker => (0.0, None),
            };
            prop_assert!(trace.makespan() + 1e-9 >= dur);
            if let Some(d) = dev {
                device_load[d as usize] += dur;
            }
        }
        for load in device_load {
            prop_assert!(trace.makespan() + 1e-6 >= load);
        }
    }

    /// NIC accounting equals the sum of inter-host flow bytes.
    #[test]
    fn usage_matches_flow_bytes(tasks in graph_strategy()) {
        let c = cluster();
        let g = build(&tasks);
        let trace = Engine::new(&c).run(&g).unwrap();
        let expected: f64 = tasks
            .iter()
            .map(|(w, _)| match *w {
                RandWork::Flow { src, dst, bytes } if !c.same_host(src.into(), dst.into()) => bytes,
                _ => 0.0,
            })
            .sum();
        prop_assert!((trace.usage().total_cross_host_bytes() - expected).abs() < 1e-6);
    }
}
