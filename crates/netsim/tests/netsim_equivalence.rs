//! The incremental engine against the frozen pre-refactor reference.
//!
//! [`ReferenceEngine`] is a verbatim copy of the engine before the
//! incremental fair-share/indexed-event rewrite (PR 8). These properties
//! pin the rewrite to it: on random clusters (all fabric models), random
//! DAGs, and random disruptions, both engines must produce the same
//! intervals to within `1e-9` relative — the only licensed divergence is
//! final-ulp rounding, because the old engine summed progressive-filling
//! deltas across *all* connected components in one global pass while the
//! new one solves each component in isolation.

use crossmesh_netsim::reference::ReferenceEngine;
use crossmesh_netsim::{
    ClusterSpec, Disruptions, Engine, FabricModel, HostId, LinkParams, NicScalePeriod, SimModel,
    TaskGraph, TaskId, Work,
};
use proptest::prelude::*;

const INTRA_BW: f64 = 40.0;
const INTER_BW: f64 = 2.0;

#[derive(Debug, Clone, Copy)]
struct RandCluster {
    hosts: u32,
    dph: u32,
    fabric: u8,
}

fn cluster_strategy() -> impl Strategy<Value = RandCluster> {
    (2u32..=5, 1u32..=3, 0u8..=4).prop_map(|(hosts, dph, fabric)| RandCluster {
        hosts,
        dph,
        fabric,
    })
}

fn build_cluster(rc: RandCluster) -> ClusterSpec {
    let base = ClusterSpec::homogeneous(
        rc.hosts,
        rc.dph,
        LinkParams::new(INTRA_BW, INTER_BW).with_latencies(0.0, 0.001),
    )
    .with_device_flops(10.0);
    match rc.fabric {
        0 => base,
        1 => base.with_fabric_capacity(INTER_BW * f64::from(rc.hosts) * 0.6),
        2 => base.with_fabric(FabricModel::FatTree {
            pod_hosts: 2,
            oversubscription: 2.0,
        }),
        3 => base.with_fabric(FabricModel::Torus2D {
            rows: 1,
            cols: rc.hosts,
            link_capacity: INTER_BW,
        }),
        _ => base.with_fabric(FabricModel::RailOptimized {
            rails: rc.dph,
            spine_capacity: INTER_BW,
        }),
    }
}

#[derive(Debug, Clone)]
enum RandWork {
    Compute { device: u32, seconds: f64 },
    Flow { src: u32, dst: u32, bytes: f64 },
    Marker,
}

fn work_strategy() -> impl Strategy<Value = RandWork> {
    prop_oneof![
        (0u32..64, 0.0f64..2.0).prop_map(|(device, seconds)| RandWork::Compute { device, seconds }),
        (0u32..64, 0u32..64, 0.0f64..12.0).prop_map(|(src, dst, bytes)| RandWork::Flow {
            src,
            dst,
            bytes
        }),
        Just(RandWork::Marker),
    ]
}

fn graph_strategy() -> impl Strategy<Value = Vec<(RandWork, u64)>> {
    prop::collection::vec((work_strategy(), any::<u64>()), 1..32)
}

/// Materializes random work on a concrete cluster, mapping device indices
/// into range and skipping self-flows.
fn build_graph(c: &ClusterSpec, tasks: &[(RandWork, u64)]) -> TaskGraph {
    let n = c.num_devices();
    let mut g = TaskGraph::new();
    for (i, (work, mask)) in tasks.iter().enumerate() {
        let deps: Vec<TaskId> = (0..i)
            .filter(|j| mask & (1 << (j % 64)) != 0)
            .map(|j| TaskId(j as u32))
            .collect();
        let w = match *work {
            RandWork::Compute { device, seconds } => Work::compute((device % n).into(), seconds),
            RandWork::Flow { src, dst, bytes } => {
                let src = src % n;
                let mut dst = dst % n;
                if dst == src {
                    dst = (dst + 1) % n;
                }
                Work::flow(src.into(), dst.into(), bytes)
            }
            RandWork::Marker => Work::Marker,
        };
        g.add(w, deps);
    }
    g
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

fn assert_traces_match(
    reference: &crossmesh_netsim::Trace,
    new: &crossmesh_netsim::Trace,
    n: u32,
) -> Result<(), TestCaseError> {
    prop_assert!(
        close(reference.makespan(), new.makespan()),
        "makespan: reference {} vs incremental {}",
        reference.makespan(),
        new.makespan()
    );
    for i in 0..n {
        let r = reference.interval(TaskId(i));
        let e = new.interval(TaskId(i));
        prop_assert!(
            close(r.start, e.start) && close(r.finish, e.finish),
            "task {i}: reference {r:?} vs incremental {e:?}"
        );
    }
    prop_assert_eq!(
        reference.usage(),
        new.usage(),
        "byte accounting must be exact"
    );
    prop_assert_eq!(reference.failed_tasks(), new.failed_tasks());
    Ok(())
}

fn disruptions_strategy() -> impl Strategy<Value = (bool, f64, f64, f64, bool, f64)> {
    (
        any::<bool>(),
        0.25f64..1.0,
        0.5f64..2.0,
        0.5f64..3.0,
        any::<bool>(),
        1.0f64..5.0,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The incremental exact engine reproduces the frozen reference on
    /// random clusters, fabrics, and DAGs.
    #[test]
    fn incremental_engine_matches_reference(rc in cluster_strategy(), tasks in graph_strategy()) {
        let c = build_cluster(rc);
        let g = build_graph(&c, &tasks);
        let reference = ReferenceEngine::new(&c).run(&g).unwrap();
        let incremental = Engine::new(&c).run(&g).unwrap();
        assert_traces_match(&reference, &incremental, g.len() as u32)?;
    }

    /// Same equivalence under injected faults: NIC degradation windows,
    /// host crashes, and flow drops with retries.
    #[test]
    fn engines_match_under_disruptions(
        rc in cluster_strategy(),
        tasks in graph_strategy(),
        (scale_nic, factor, from, span, crash, crash_at) in disruptions_strategy(),
    ) {
        let c = build_cluster(rc);
        let g = build_graph(&c, &tasks);
        let mut d = Disruptions::none();
        if scale_nic {
            d.nic_scale.push(NicScalePeriod {
                host: HostId(0),
                factor,
                from,
                until: from + span,
            });
        }
        if crash {
            d.host_down.push((HostId(rc.hosts - 1), crash_at));
        }
        d.flow_drops.insert(0, 1);
        d.retry_backoff = 0.25;
        let reference = ReferenceEngine::new(&c).run_with_disruptions(&g, &d).unwrap();
        let incremental = Engine::new(&c).run_with_disruptions(&g, &d).unwrap();
        assert_traces_match(&reference, &incremental, g.len() as u32)?;
    }

    /// The incremental engine is bit-deterministic in both models.
    #[test]
    fn incremental_engine_is_bit_deterministic(rc in cluster_strategy(), tasks in graph_strategy()) {
        let c = build_cluster(rc);
        let g = build_graph(&c, &tasks);
        for model in [SimModel::Exact, SimModel::Aggregate] {
            let e = Engine::with_model(&c, model);
            prop_assert_eq!(e.run(&g).unwrap(), e.run(&g).unwrap());
        }
    }

    /// On independent flows the aggregate model is conservative: uniform
    /// `cap/count` sharing never beats max–min fairness, so no flow
    /// finishes earlier and the makespan never shrinks.
    #[test]
    fn aggregate_is_conservative_on_independent_flows(
        rc in cluster_strategy(),
        flows in prop::collection::vec((0u32..64, 0u32..64, 0.1f64..12.0), 1..24),
    ) {
        let c = build_cluster(rc);
        let n = c.num_devices();
        let mut g = TaskGraph::new();
        for &(src, dst, bytes) in &flows {
            let src = src % n;
            let mut dst = dst % n;
            if dst == src {
                dst = (dst + 1) % n;
            }
            g.add(Work::flow(src.into(), dst.into(), bytes), []);
        }
        let exact = Engine::new(&c).run(&g).unwrap();
        let agg = Engine::with_model(&c, SimModel::Aggregate).run(&g).unwrap();
        for i in 0..g.len() as u32 {
            prop_assert!(
                agg.interval(TaskId(i)).finish >= exact.interval(TaskId(i)).finish - 1e-9,
                "flow {i}: aggregate {} beat exact {}",
                agg.interval(TaskId(i)).finish,
                exact.interval(TaskId(i)).finish
            );
        }
        prop_assert!(agg.makespan() >= exact.makespan() - 1e-9);
    }
}

/// Single-component contention (every flow through one NIC) must be
/// *bit-identical* to the reference: the component solve uses the same
/// arithmetic in the same order as the reference's global pass.
#[test]
fn single_bottleneck_is_bit_identical_to_reference() {
    let c = ClusterSpec::homogeneous(2, 4, LinkParams::new(33.0, 1.7).with_latencies(0.0, 0.0));
    let mut g = TaskGraph::new();
    for i in 0..4 {
        g.add(
            Work::flow(c.device(0, i), c.device(1, i), 1.0 + f64::from(i) * 0.7),
            [],
        );
    }
    let reference = ReferenceEngine::new(&c).run(&g).unwrap();
    let incremental = Engine::new(&c).run(&g).unwrap();
    for i in 0..g.len() as u32 {
        assert_eq!(
            reference.interval(TaskId(i)).finish.to_bits(),
            incremental.interval(TaskId(i)).finish.to_bits(),
            "task {i}"
        );
    }
}
