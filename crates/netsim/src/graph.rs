//! Task graphs: DAGs of compute tasks and network flows.

use crate::topology::DeviceId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a task inside a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The work a task performs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Work {
    /// Occupy `device` for a fixed duration (seconds). Devices execute
    /// compute tasks one at a time, FIFO in ready order.
    Compute {
        /// Device the task runs on.
        device: DeviceId,
        /// Duration in seconds.
        seconds: f64,
    },
    /// Occupy `device` for `flops / device_flops` seconds, where
    /// `device_flops` comes from the cluster spec.
    ComputeFlops {
        /// Device the task runs on.
        device: DeviceId,
        /// Amount of work in floating-point operations.
        flops: f64,
    },
    /// Transfer `bytes` from `src` to `dst`. Concurrent flows share link
    /// and NIC capacity with max–min fairness.
    Flow {
        /// Sending device.
        src: DeviceId,
        /// Receiving device.
        dst: DeviceId,
        /// Message size in bytes.
        bytes: f64,
    },
    /// Completes instantly when its dependencies complete. Useful as a
    /// barrier or join marker.
    Marker,
}

impl Work {
    /// A fixed-duration compute task.
    pub fn compute(device: DeviceId, seconds: f64) -> Self {
        Work::Compute { device, seconds }
    }

    /// A compute task sized in FLOPs.
    pub fn compute_flops(device: DeviceId, flops: f64) -> Self {
        Work::ComputeFlops { device, flops }
    }

    /// A network flow of `bytes` from `src` to `dst`.
    pub fn flow(src: DeviceId, dst: DeviceId, bytes: f64) -> Self {
        Work::Flow { src, dst, bytes }
    }

    /// The device this work occupies, if it is a compute task.
    pub fn compute_device(&self) -> Option<DeviceId> {
        match *self {
            Work::Compute { device, .. } | Work::ComputeFlops { device, .. } => Some(device),
            _ => None,
        }
    }
}

/// A node of the DAG: its work plus the tasks it depends on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// The work performed.
    pub work: Work,
    /// Tasks that must complete before this one starts.
    pub deps: Vec<TaskId>,
    /// Optional human-readable label, surfaced in traces.
    pub label: Option<String>,
}

/// A DAG of [`Task`]s, acyclic by construction: dependencies must refer to
/// already-added tasks.
///
/// # Example
///
/// ```
/// use crossmesh_netsim::{DeviceId, TaskGraph, Work};
///
/// let mut graph = TaskGraph::new();
/// let produce = graph.add(Work::compute(DeviceId(0), 1.0), []);
/// let send = graph.add(Work::flow(DeviceId(0), DeviceId(1), 1e6), [produce]);
/// graph.add(Work::compute(DeviceId(1), 2.0), [send]);
/// assert_eq!(graph.len(), 3);
/// assert_eq!(graph.total_flow_bytes(), 1e6);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TaskGraph {
    tasks: Vec<Task>,
}

impl TaskGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Creates an empty graph with room for `tasks` tasks — worth it when
    /// generating cluster-scale workloads (a 10k-host sweep adds ~100k
    /// tasks) so the arena never reallocates mid-build.
    pub fn with_capacity(tasks: usize) -> Self {
        TaskGraph {
            tasks: Vec::with_capacity(tasks),
        }
    }

    /// Adds a task with the given dependencies and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if any dependency refers to a task not yet added (this is what
    /// keeps the graph acyclic by construction), or if a duration/byte count
    /// is negative or non-finite.
    pub fn add(&mut self, work: Work, deps: impl IntoIterator<Item = TaskId>) -> TaskId {
        self.add_labeled(work, deps, None::<String>)
    }

    /// Adds a task with a label (see [`TaskGraph::add`]).
    ///
    /// # Panics
    ///
    /// Same conditions as [`TaskGraph::add`].
    pub fn add_labeled(
        &mut self,
        work: Work,
        deps: impl IntoIterator<Item = TaskId>,
        label: Option<impl Into<String>>,
    ) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        let deps: Vec<TaskId> = deps.into_iter().collect();
        for d in &deps {
            assert!(
                d.0 < id.0,
                "dependency {d} of task {id} must be added before it"
            );
        }
        match work {
            Work::Compute { seconds, .. } => assert!(
                seconds >= 0.0 && seconds.is_finite(),
                "compute duration must be non-negative and finite"
            ),
            Work::ComputeFlops { flops, .. } => assert!(
                flops >= 0.0 && flops.is_finite(),
                "compute flops must be non-negative and finite"
            ),
            Work::Flow { bytes, src, dst } => {
                assert!(
                    bytes >= 0.0 && bytes.is_finite(),
                    "flow bytes must be non-negative and finite"
                );
                assert_ne!(src, dst, "flow source and destination must differ");
            }
            Work::Marker => {}
        }
        self.tasks.push(Task {
            work,
            deps,
            label: label.map(Into::into),
        });
        id
    }

    /// Number of tasks in the graph.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The task with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0 as usize]
    }

    /// Iterates over `(id, task)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &Task)> {
        self.tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (TaskId(i as u32), t))
    }

    /// Total bytes of all flows in the graph.
    pub fn total_flow_bytes(&self) -> f64 {
        self.tasks
            .iter()
            .map(|t| match t.work {
                Work::Flow { bytes, .. } => bytes,
                _ => 0.0,
            })
            .sum()
    }

    /// Merges `other` into `self`, offsetting its task ids. Returns a
    /// function-like mapping of old ids to new ids (as a vector indexed by
    /// old id).
    pub fn extend_from(&mut self, other: &TaskGraph) -> Vec<TaskId> {
        let offset = self.tasks.len() as u32;
        let mut mapping = Vec::with_capacity(other.tasks.len());
        for t in &other.tasks {
            let mut t = t.clone();
            for d in &mut t.deps {
                *d = TaskId(d.0 + offset);
            }
            self.tasks.push(t);
            mapping.push(TaskId(mapping.len() as u32 + offset));
        }
        mapping
    }
}

impl<'a> IntoIterator for &'a TaskGraph {
    type Item = (TaskId, &'a Task);
    type IntoIter = Box<dyn Iterator<Item = (TaskId, &'a Task)> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_returns_sequential_ids() {
        let mut g = TaskGraph::new();
        let a = g.add(Work::compute(DeviceId(0), 1.0), []);
        let b = g.add(Work::compute(DeviceId(0), 1.0), [a]);
        assert_eq!(a, TaskId(0));
        assert_eq!(b, TaskId(1));
        assert_eq!(g.len(), 2);
        assert_eq!(g.task(b).deps, vec![a]);
    }

    #[test]
    #[should_panic(expected = "must be added before")]
    fn forward_dependency_panics() {
        let mut g = TaskGraph::new();
        g.add(Work::Marker, [TaskId(5)]);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn self_flow_panics() {
        let mut g = TaskGraph::new();
        g.add(Work::flow(DeviceId(0), DeviceId(0), 1.0), []);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let mut g = TaskGraph::new();
        g.add(Work::compute(DeviceId(0), -1.0), []);
    }

    #[test]
    fn total_flow_bytes_sums_flows_only() {
        let mut g = TaskGraph::new();
        g.add(Work::flow(DeviceId(0), DeviceId(1), 10.0), []);
        g.add(Work::compute(DeviceId(0), 3.0), []);
        g.add(Work::flow(DeviceId(1), DeviceId(2), 5.0), []);
        assert_eq!(g.total_flow_bytes(), 15.0);
    }

    #[test]
    fn extend_from_offsets_dependencies() {
        let mut a = TaskGraph::new();
        a.add(Work::Marker, []);

        let mut b = TaskGraph::new();
        let x = b.add(Work::Marker, []);
        b.add(Work::compute(DeviceId(0), 1.0), [x]);

        let mapping = a.extend_from(&b);
        assert_eq!(mapping, vec![TaskId(1), TaskId(2)]);
        assert_eq!(a.task(TaskId(2)).deps, vec![TaskId(1)]);
    }

    #[test]
    fn labels_are_preserved() {
        let mut g = TaskGraph::new();
        let id = g.add_labeled(Work::Marker, [], Some("barrier"));
        assert_eq!(g.task(id).label.as_deref(), Some("barrier"));
    }
}
