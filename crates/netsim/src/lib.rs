//! Deterministic discrete-event, flow-level cluster network simulator.
//!
//! This crate is the hardware substrate of the `crossmesh` workspace. The
//! paper evaluates its communication strategies on a GPU cluster whose only
//! properties that matter for the analysis (§3 of the paper) are:
//!
//! 1. fast intra-host links (NVLink-class) and slow inter-host links,
//! 2. a fully-connected inter-host topology with equal pairwise bandwidth,
//! 3. the communication bottleneck sits at the host NIC, and
//! 4. full-duplex links: separate sending and receiving bandwidth.
//!
//! [`ClusterSpec`] describes such a cluster, [`TaskGraph`] describes a DAG of
//! compute tasks and network flows, and [`Engine`] executes the DAG on the
//! cluster: compute tasks occupy a device serially (FIFO), concurrent flows
//! share link and NIC capacity with max–min fairness (progressive filling),
//! and the engine advances a single simulated clock to the next completion.
//! The result is a [`Trace`] with per-task intervals and the makespan.
//!
//! The simulator is fully deterministic: no wall-clock time and no
//! randomness are consulted anywhere.
//!
//! # Example
//!
//! ```
//! use crossmesh_netsim::{ClusterSpec, Engine, LinkParams, TaskGraph, Work};
//!
//! # fn main() -> Result<(), crossmesh_netsim::SimError> {
//! // Two hosts with two devices each, 10 GB/s intra-host, 1 GB/s NIC.
//! let cluster = ClusterSpec::homogeneous(2, 2, LinkParams::new(10e9, 1e9));
//! let mut graph = TaskGraph::new();
//! let d = cluster.device(0, 0);
//! let e = cluster.device(1, 0);
//! let send = graph.add(Work::flow(d, e, 1e9), []);
//! graph.add(Work::compute(e, 0.5), [send]);
//! let trace = Engine::new(&cluster).run(&graph)?;
//! // 1 s transfer + 0.5 s compute (+ a 25 µs NIC latency).
//! assert!((trace.makespan() - 1.5).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backend;
mod chrome_trace;
mod engine;
mod error;
mod faults;
mod graph;
mod rates;
#[doc(hidden)]
pub mod reference;
pub mod stats;
mod topology;
mod trace;

pub use backend::{AggregateSimBackend, Backend, SimBackend};
pub use chrome_trace::to_chrome_trace;
pub use engine::Engine;
pub use error::{FailureKind, SimError};
pub use faults::{Disruptions, NicScalePeriod};
pub use graph::{Task, TaskGraph, TaskId, Work};
pub use rates::SimModel;
pub use stats::SimStats;
pub use topology::{ClusterSpec, DeviceId, FabricModel, HostId, HostSpec, LinkParams};
pub use trace::{FaultStats, ResourceUsage, TaskInterval, Trace, TraceBuilder};
