//! The execution-backend seam: anything that can run a [`TaskGraph`] on a
//! [`ClusterSpec`] and produce a [`Trace`].
//!
//! The paper's artifact separates the communication *plan* from the *engine
//! that runs it*; this trait is that seam. The discrete-event simulator
//! ([`SimBackend`]) predicts timing analytically, while real executors
//! (e.g. the thread/TCP runtime in `crossmesh-runtime`) move actual bytes
//! and report wall-clock timing in the same [`Trace`] shape, so planners,
//! schedules, and the Chrome-trace exporter work unchanged on either.

use crate::engine::Engine;
use crate::error::SimError;
use crate::graph::TaskGraph;
use crate::rates::SimModel;
use crate::topology::ClusterSpec;
use crate::trace::Trace;
use std::fmt::Debug;

/// An engine that can execute a lowered task graph on a cluster.
pub trait Backend: Debug {
    /// Short stable identifier (e.g. `"sim"`, `"threads"`, `"tcp"`), used
    /// by CLI flags and reports.
    fn name(&self) -> &'static str;

    /// Executes every task in `graph`, honoring its dependency edges, and
    /// returns per-task intervals in seconds plus NIC usage accounting.
    fn execute(&self, cluster: &ClusterSpec, graph: &TaskGraph) -> Result<Trace, SimError>;
}

impl<B: Backend + ?Sized> Backend for &B {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn execute(&self, cluster: &ClusterSpec, graph: &TaskGraph) -> Result<Trace, SimError> {
        (**self).execute(cluster, graph)
    }
}

impl<B: Backend + ?Sized> Backend for Box<B> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn execute(&self, cluster: &ClusterSpec, graph: &TaskGraph) -> Result<Trace, SimError> {
        (**self).execute(cluster, graph)
    }
}

/// The discrete-event flow-level simulator as a [`Backend`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SimBackend;

impl Backend for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn execute(&self, cluster: &ClusterSpec, graph: &TaskGraph) -> Result<Trace, SimError> {
        Engine::new(cluster).run(graph)
    }
}

/// The simulator under the [`SimModel::Aggregate`] contention model: flows
/// on a resource split its capacity uniformly (`cap / count`) instead of
/// solving exact max–min fairness. Strictly conservative (never predicts a
/// faster finish than [`SimBackend`]) and cheap enough for 10k-host sweeps.
#[derive(Debug, Clone, Copy, Default)]
pub struct AggregateSimBackend;

impl Backend for AggregateSimBackend {
    fn name(&self) -> &'static str {
        "sim-aggregate"
    }

    fn execute(&self, cluster: &ClusterSpec, graph: &TaskGraph) -> Result<Trace, SimError> {
        Engine::with_model(cluster, SimModel::Aggregate).run(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinkParams, Work};

    #[test]
    fn sim_backend_matches_engine() {
        let c = ClusterSpec::homogeneous(2, 2, LinkParams::new(10.0, 1.0));
        let mut g = TaskGraph::new();
        let f = g.add(Work::flow(c.device(0, 0), c.device(1, 0), 5.0), []);
        g.add(Work::compute(c.device(1, 0), 1.0), [f]);
        let direct = Engine::new(&c).run(&g).unwrap();
        let via_backend = SimBackend.execute(&c, &g).unwrap();
        assert_eq!(direct, via_backend);
        assert_eq!(SimBackend.name(), "sim");
    }

    #[test]
    fn aggregate_backend_runs_and_names_itself() {
        let c = ClusterSpec::homogeneous(2, 2, LinkParams::new(10.0, 1.0));
        let mut g = TaskGraph::new();
        g.add(Work::flow(c.device(0, 0), c.device(1, 0), 5.0), []);
        let t = AggregateSimBackend.execute(&c, &g).unwrap();
        assert!(t.makespan() > 0.0);
        assert_eq!(AggregateSimBackend.name(), "sim-aggregate");
    }

    #[test]
    fn backend_is_object_safe() {
        let c = ClusterSpec::homogeneous(1, 2, LinkParams::new(10.0, 1.0));
        let mut g = TaskGraph::new();
        g.add(Work::compute(c.device(0, 0), 0.25), []);
        let boxed: Box<dyn Backend> = Box::new(SimBackend);
        let trace = boxed.execute(&c, &g).unwrap();
        assert!(trace.makespan() > 0.0);
    }
}
