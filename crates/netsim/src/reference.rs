//! The pre-refactor discrete-event engine, frozen verbatim.
//!
//! This is the progressive-filling engine exactly as it stood before the
//! incremental fair-share / indexed event-core rewrite: on every flow-set
//! change it re-solves max–min rates over *all* flows × *all* resources,
//! and on every event it linearly scans every active flow for the next
//! drain time. It is O(F·R) per event and unusable past a few hundred
//! hosts — which is precisely why it is kept: the equivalence proptests
//! (`tests/netsim_equivalence.rs`) pin the rewritten engine against this
//! one on random clusters and task graphs, and `bench::netsim` uses it as
//! the baseline for the events/sec speedup figure.
//!
//! Do not "fix" or optimise this module; its value is that it does not
//! change. (It retains the latent empty-`resources` infinite-loop hazard
//! the new solver fixes — no graph built through [`TaskGraph::add`]
//! reaches it.)

use crate::error::SimError;
use crate::faults::Disruptions;
use crate::graph::{TaskGraph, TaskId, Work};
use crate::topology::{ClusterSpec, DeviceId, HostId};
use crate::trace::{FaultStats, ResourceUsage, TaskInterval, Trace};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Relative tolerance used to decide simultaneity of events and saturation
/// of resources (kept identical to the live engine's).
const REL_EPS: f64 = 1e-9;

/// The frozen pre-refactor engine. See the module docs: reference and
/// baseline only — use [`Engine`](crate::Engine) for real runs.
#[doc(hidden)]
#[derive(Debug)]
pub struct ReferenceEngine<'a> {
    cluster: &'a ClusterSpec,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    ComputeDone(TaskId),
    /// The fixed latency of a flow elapsed; the flow starts draining bytes.
    FlowLatencyDone(TaskId),
    /// An injected fault fires; the payload indexes `Run::fault_actions`.
    Fault(usize),
}

/// A scheduled state change injected by [`Disruptions`].
#[derive(Debug, Clone, Copy, PartialEq)]
enum FaultAction {
    /// The host dies: everything on it or flowing through it fails.
    HostDown(HostId),
    /// The host's NIC send/recv capacity becomes `base * scale`.
    SetNicScale(HostId, f64),
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

#[derive(Debug)]
struct FlowState {
    task: TaskId,
    remaining: f64,
    rate: f64,
    resources: Vec<usize>,
}

/// An entry in a per-device FIFO ready queue, ordered by ready time then id.
#[derive(Debug, Clone, Copy)]
struct QueuedCompute {
    ready: f64,
    task: TaskId,
}

impl PartialEq for QueuedCompute {
    fn eq(&self, other: &Self) -> bool {
        self.ready == other.ready && self.task == other.task
    }
}
impl Eq for QueuedCompute {}
impl PartialOrd for QueuedCompute {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedCompute {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.ready
            .total_cmp(&other.ready)
            .then(self.task.cmp(&other.task))
    }
}

impl<'a> ReferenceEngine<'a> {
    /// Creates a reference engine over the given cluster.
    pub fn new(cluster: &'a ClusterSpec) -> Self {
        ReferenceEngine { cluster }
    }

    /// Runs `graph` to completion and returns the trace.
    ///
    /// # Errors
    ///
    /// Same contract as [`Engine::run`](crate::Engine::run).
    pub fn run(&self, graph: &TaskGraph) -> Result<Trace, SimError> {
        Run::new(self.cluster, graph, &Disruptions::none())?.execute()
    }

    /// Runs `graph` under the given injected [`Disruptions`].
    ///
    /// # Errors
    ///
    /// Same contract as
    /// [`Engine::run_with_disruptions`](crate::Engine::run_with_disruptions).
    ///
    /// # Panics
    ///
    /// Panics if `disruptions` fails [`Disruptions::validate`].
    pub fn run_with_disruptions(
        &self,
        graph: &TaskGraph,
        disruptions: &Disruptions,
    ) -> Result<Trace, SimError> {
        if let Err(why) = disruptions.validate() {
            panic!("invalid disruptions: {why}");
        }
        Run::new(self.cluster, graph, disruptions)?.execute()
    }
}

struct Run<'a> {
    cluster: &'a ClusterSpec,
    graph: &'a TaskGraph,
    pending_deps: Vec<usize>,
    dependents: Vec<Vec<TaskId>>,
    intervals: Vec<TaskInterval>,
    done: Vec<bool>,
    completed: usize,
    usage: ResourceUsage,

    time: f64,
    events: BinaryHeap<Reverse<Event>>,
    next_seq: u64,

    device_queue: Vec<BinaryHeap<Reverse<QueuedCompute>>>,
    device_busy: Vec<bool>,

    flows: Vec<FlowState>,
    rates_dirty: bool,
    capacities: Vec<f64>,

    fault_actions: Vec<FaultAction>,
    host_dead: Vec<bool>,
    running_on: Vec<Option<TaskId>>,
    compute_scale: Vec<f64>,
    drops_left: BTreeMap<u32, u32>,
    attempts: BTreeMap<u32, u32>,
    retry_backoff: f64,
    max_retries: u32,
    failed: Vec<bool>,
    failed_tasks: Vec<TaskId>,
    stats: FaultStats,
}

impl<'a> Run<'a> {
    fn new(
        cluster: &'a ClusterSpec,
        graph: &'a TaskGraph,
        disruptions: &Disruptions,
    ) -> Result<Self, SimError> {
        let n = graph.len();
        let mut pending_deps = vec![0usize; n];
        let mut dependents = vec![Vec::new(); n];
        for (id, task) in graph.iter() {
            pending_deps[id.0 as usize] = task.deps.len();
            for d in &task.deps {
                dependents[d.0 as usize].push(id);
            }
            let check = |dev: DeviceId| -> Result<(), SimError> {
                if cluster.contains(dev) {
                    Ok(())
                } else {
                    Err(SimError::UnknownDevice {
                        task: id,
                        device: dev,
                    })
                }
            };
            match task.work {
                Work::Compute { device, .. } | Work::ComputeFlops { device, .. } => check(device)?,
                Work::Flow { src, dst, .. } => {
                    check(src)?;
                    check(dst)?;
                }
                Work::Marker => {}
            }
        }

        let d = cluster.num_devices() as usize;
        let capacities = cluster.resource_capacities();

        let mut compute_scale = vec![1.0f64; d];
        for &(device, factor) in &disruptions.compute_slowdown {
            if cluster.contains(device) {
                compute_scale[device.0 as usize] *= factor;
            }
        }

        let h = cluster.num_hosts() as usize;
        let mut run = Run {
            cluster,
            graph,
            pending_deps,
            dependents,
            intervals: vec![
                TaskInterval {
                    start: 0.0,
                    finish: 0.0
                };
                n
            ],
            done: vec![false; n],
            completed: 0,
            usage: ResourceUsage::default(),
            time: 0.0,
            events: BinaryHeap::new(),
            next_seq: 0,
            device_queue: (0..d).map(|_| BinaryHeap::new()).collect(),
            device_busy: vec![false; d],
            flows: Vec::new(),
            rates_dirty: false,
            capacities,
            fault_actions: Vec::new(),
            host_dead: vec![false; h],
            running_on: vec![None; d],
            compute_scale,
            drops_left: disruptions
                .flow_drops
                .iter()
                .filter(|&(_, &k)| k > 0)
                .map(|(&t, &k)| (t, k))
                .collect(),
            attempts: BTreeMap::new(),
            retry_backoff: disruptions.retry_backoff,
            max_retries: disruptions.max_retries,
            failed: vec![false; n],
            failed_tasks: Vec::new(),
            stats: FaultStats::default(),
        };

        for &(host, at) in &disruptions.host_down {
            if (host.0 as usize) < run.host_dead.len() {
                let idx = run.fault_actions.len();
                run.fault_actions.push(FaultAction::HostDown(host));
                run.push_event(at, EventKind::Fault(idx));
            }
        }
        for p in &disruptions.nic_scale {
            if (p.host.0 as usize) < run.host_dead.len() {
                let idx = run.fault_actions.len();
                run.fault_actions
                    .push(FaultAction::SetNicScale(p.host, p.factor));
                run.push_event(p.from, EventKind::Fault(idx));
                let idx = run.fault_actions.len();
                run.fault_actions
                    .push(FaultAction::SetNicScale(p.host, 1.0));
                run.push_event(p.until, EventKind::Fault(idx));
            }
        }
        Ok(run)
    }

    fn push_event(&mut self, time: f64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(Reverse(Event { time, seq, kind }));
    }

    fn fail_task(&mut self, task: TaskId, completions: &mut Vec<TaskId>) {
        self.intervals[task.0 as usize].start = self.time;
        self.failed[task.0 as usize] = true;
        self.failed_tasks.push(task);
        completions.push(task);
    }

    fn is_dead(&self, host: HostId) -> bool {
        self.host_dead[host.0 as usize]
    }

    fn make_ready(&mut self, task: TaskId, completions: &mut Vec<TaskId>) {
        let t = self.graph.task(task);
        if t.deps.iter().any(|d| self.failed[d.0 as usize]) {
            self.fail_task(task, completions);
            return;
        }
        let needs_dead_host = match t.work {
            Work::Compute { device, .. } | Work::ComputeFlops { device, .. } => {
                self.is_dead(self.cluster.host_of(device))
            }
            Work::Flow { src, dst, .. } => {
                self.is_dead(self.cluster.host_of(src)) || self.is_dead(self.cluster.host_of(dst))
            }
            Work::Marker => false,
        };
        if needs_dead_host {
            self.fail_task(task, completions);
            return;
        }
        self.intervals[task.0 as usize].start = self.time;
        match t.work {
            Work::Marker => completions.push(task),
            Work::Compute { device, .. } | Work::ComputeFlops { device, .. } => {
                self.device_queue[device.0 as usize].push(Reverse(QueuedCompute {
                    ready: self.time,
                    task,
                }));
            }
            Work::Flow { src, dst, bytes } => {
                let src_host = self.cluster.host_of(src);
                let dst_host = self.cluster.host_of(dst);
                let links = self.cluster.host(src_host).links;
                let latency = if src_host == dst_host {
                    links.intra_host_latency
                } else {
                    self.usage.record(src_host, dst_host, bytes);
                    links.inter_host_latency
                };
                self.push_event(self.time + latency, EventKind::FlowLatencyDone(task));
            }
        }
    }

    fn activate_flow(&mut self, task: TaskId, completions: &mut Vec<TaskId>) {
        let Work::Flow { src, dst, bytes } = self.graph.task(task).work else {
            unreachable!("latency event for a non-flow task");
        };
        if self.is_dead(self.cluster.host_of(src)) || self.is_dead(self.cluster.host_of(dst)) {
            self.fail_task(task, completions);
            return;
        }
        if bytes <= 0.0 {
            completions.push(task);
            return;
        }
        let d = self.cluster.num_devices() as usize;
        let h = self.cluster.num_hosts() as usize;
        let src_host = self.cluster.host_of(src);
        let dst_host = self.cluster.host_of(dst);
        let mut resources = vec![
            src.0 as usize,     // device send
            d + dst.0 as usize, // device recv
        ];
        if src_host != dst_host {
            resources.push(2 * d + src_host.0 as usize); // host NIC send
            resources.push(2 * d + h + dst_host.0 as usize); // host NIC recv
            self.cluster
                .fabric_route(src, dst, 2 * d + 2 * h, &mut resources);
        }
        self.flows.push(FlowState {
            task,
            remaining: bytes,
            rate: 0.0,
            resources,
        });
        self.rates_dirty = true;
    }

    fn dispatch_computes(&mut self) {
        for dev in 0..self.device_queue.len() {
            if self.device_busy[dev] {
                continue;
            }
            if let Some(Reverse(q)) = self.device_queue[dev].pop() {
                self.device_busy[dev] = true;
                let seconds = match self.graph.task(q.task).work {
                    Work::Compute { seconds, .. } => seconds,
                    Work::ComputeFlops { device, flops } => {
                        flops / self.cluster.host(self.cluster.host_of(device)).device_flops
                    }
                    _ => unreachable!("non-compute task in device queue"),
                } * self.compute_scale[dev];
                self.intervals[q.task.0 as usize].start =
                    self.intervals[q.task.0 as usize].start.max(self.time);
                self.running_on[dev] = Some(q.task);
                self.push_event(self.time + seconds, EventKind::ComputeDone(q.task));
            }
        }
    }

    fn apply_fault(&mut self, action: FaultAction, completions: &mut Vec<TaskId>) {
        let d = self.cluster.num_devices() as usize;
        let h = self.cluster.num_hosts() as usize;
        match action {
            FaultAction::SetNicScale(host, scale) => {
                let base = self.cluster.host(host).links.inter_host_bw
                    * self.cluster.host_nic_multiplier();
                self.capacities[2 * d + host.0 as usize] = base * scale;
                self.capacities[2 * d + h + host.0 as usize] = base * scale;
                self.rates_dirty = true;
            }
            FaultAction::HostDown(host) => {
                if self.host_dead[host.0 as usize] {
                    return;
                }
                self.host_dead[host.0 as usize] = true;
                let mut i = 0;
                while i < self.flows.len() {
                    let fails = match self.graph.task(self.flows[i].task).work {
                        Work::Flow { src, dst, .. } => {
                            self.cluster.host_of(src) == host || self.cluster.host_of(dst) == host
                        }
                        _ => false,
                    };
                    if fails {
                        let task = self.flows[i].task;
                        self.flows.swap_remove(i);
                        self.rates_dirty = true;
                        self.fail_task(task, completions);
                    } else {
                        i += 1;
                    }
                }
                let devices: Vec<DeviceId> = self.cluster.devices_on(host).collect();
                for dev in devices {
                    let dev = dev.0 as usize;
                    if let Some(task) = self.running_on[dev].take() {
                        self.fail_task(task, completions);
                    }
                    self.device_busy[dev] = true;
                    while let Some(Reverse(q)) = self.device_queue[dev].pop() {
                        self.fail_task(q.task, completions);
                    }
                }
            }
        }
    }

    /// The original global progressive-filling max–min rate assignment:
    /// re-solves every flow against every resource on each call.
    fn recompute_rates(&mut self) {
        let mut used = vec![0.0f64; self.capacities.len()];
        let mut count = vec![0u32; self.capacities.len()];
        let mut frozen = vec![false; self.flows.len()];
        for f in &self.flows {
            for &r in &f.resources {
                count[r] += 1;
            }
        }
        let mut remaining = self.flows.len();
        let mut fill = 0.0f64;
        while remaining > 0 {
            let mut delta = f64::INFINITY;
            for (r, &c) in count.iter().enumerate() {
                if c > 0 {
                    let head = (self.capacities[r] - used[r]) / c as f64;
                    if head < delta {
                        delta = head;
                    }
                }
            }
            debug_assert!(delta.is_finite());
            fill += delta;
            for (r, &c) in count.iter().enumerate() {
                if c > 0 {
                    used[r] += delta * c as f64;
                }
            }
            for (i, f) in self.flows.iter_mut().enumerate() {
                if frozen[i] {
                    continue;
                }
                let saturated = f
                    .resources
                    .iter()
                    .any(|&r| self.capacities[r] - used[r] <= REL_EPS * self.capacities[r]);
                if saturated {
                    frozen[i] = true;
                    f.rate = fill;
                    remaining -= 1;
                    for &r in &f.resources {
                        count[r] -= 1;
                    }
                }
            }
        }
        self.rates_dirty = false;
    }

    fn complete(&mut self, task: TaskId, newly_ready: &mut Vec<TaskId>) {
        debug_assert!(!self.done[task.0 as usize], "task completed twice");
        self.done[task.0 as usize] = true;
        self.completed += 1;
        self.intervals[task.0 as usize].finish = self.time;
        for i in 0..self.dependents[task.0 as usize].len() {
            let dep = self.dependents[task.0 as usize][i];
            let c = &mut self.pending_deps[dep.0 as usize];
            *c -= 1;
            if *c == 0 {
                newly_ready.push(dep);
            }
        }
    }

    fn execute(mut self) -> Result<Trace, SimError> {
        let mut completions: Vec<TaskId> = Vec::new();
        let initially_ready: Vec<TaskId> = self
            .pending_deps
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == 0)
            .map(|(i, _)| TaskId(i as u32))
            .collect();
        for t in initially_ready {
            self.make_ready(t, &mut completions);
        }

        loop {
            while let Some(task) = completions.pop() {
                let mut ready = Vec::new();
                self.complete(task, &mut ready);
                for r in ready {
                    self.make_ready(r, &mut completions);
                }
            }
            self.dispatch_computes();
            if self.rates_dirty {
                self.recompute_rates();
            }

            if self.completed == self.graph.len() {
                break;
            }

            let heap_next = self.events.peek().map(|Reverse(e)| e.time);
            let flow_next = self
                .flows
                .iter()
                .map(|f| {
                    if f.rate > 0.0 {
                        self.time + f.remaining / f.rate
                    } else {
                        f64::INFINITY
                    }
                })
                .fold(f64::INFINITY, f64::min);
            let next = match heap_next {
                Some(h) => h.min(flow_next),
                None => flow_next,
            };
            if !next.is_finite() {
                return Err(SimError::Stalled {
                    remaining: self.graph.len() - self.completed,
                });
            }

            let dt = next - self.time;
            let eps = REL_EPS * next.max(1e-12);
            self.time = next;
            if dt > 0.0 {
                for f in &mut self.flows {
                    f.remaining -= f.rate * dt;
                }
            }

            let mut i = 0;
            while i < self.flows.len() {
                let f = &self.flows[i];
                let finished = f.remaining <= f.rate * eps || f.remaining <= 0.0;
                if finished {
                    let task = f.task;
                    self.flows.swap_remove(i);
                    self.rates_dirty = true;
                    if self.drops_left.get(&task.0).copied().unwrap_or(0) > 0 {
                        self.handle_dropped_flow(task, &mut completions);
                    } else {
                        completions.push(task);
                    }
                } else {
                    i += 1;
                }
            }
            while let Some(Reverse(e)) = self.events.peek().copied() {
                if e.time <= self.time + eps {
                    self.events.pop();
                    match e.kind {
                        EventKind::ComputeDone(task) => {
                            if self.done[task.0 as usize] {
                                continue;
                            }
                            let device = self
                                .graph
                                .task(task)
                                .work
                                .compute_device()
                                .expect("compute event for non-compute task");
                            self.device_busy[device.0 as usize] = false;
                            self.running_on[device.0 as usize] = None;
                            completions.push(task);
                        }
                        EventKind::FlowLatencyDone(task) => {
                            self.activate_flow(task, &mut completions);
                        }
                        EventKind::Fault(idx) => {
                            let action = self.fault_actions[idx];
                            self.apply_fault(action, &mut completions);
                        }
                    }
                } else {
                    break;
                }
            }
        }

        self.failed_tasks.sort_unstable();
        self.failed_tasks.dedup();
        Ok(Trace::faulted(
            self.intervals,
            self.usage,
            self.stats,
            self.failed_tasks,
        ))
    }

    fn handle_dropped_flow(&mut self, task: TaskId, completions: &mut Vec<TaskId>) {
        let attempts = self.attempts.get(&task.0).copied().unwrap_or(0);
        if attempts >= self.max_retries {
            self.drops_left.remove(&task.0);
            self.stats.dropped_flows += 1;
            self.fail_task(task, completions);
            return;
        }
        let left = self
            .drops_left
            .get_mut(&task.0)
            .expect("drop count present");
        *left -= 1;
        if *left == 0 {
            self.drops_left.remove(&task.0);
        }
        self.attempts.insert(task.0, attempts + 1);
        self.stats.retries += 1;
        if let Work::Flow { src, dst, bytes } = self.graph.task(task).work {
            let src_host = self.cluster.host_of(src);
            let dst_host = self.cluster.host_of(dst);
            if src_host != dst_host {
                self.usage.record(src_host, dst_host, bytes);
            }
        }
        let backoff = self.retry_backoff * f64::powi(2.0, attempts as i32);
        self.push_event(self.time + backoff, EventKind::FlowLatencyDone(task));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkParams;

    fn two_hosts() -> ClusterSpec {
        ClusterSpec::homogeneous(2, 2, LinkParams::new(10.0, 1.0).with_latencies(0.0, 0.0))
    }

    #[test]
    fn reference_still_solves_max_min_sharing() {
        let c = two_hosts();
        let mut g = TaskGraph::new();
        let a = g.add(Work::flow(c.device(0, 0), c.device(1, 0), 2.0), []);
        let b = g.add(Work::flow(c.device(0, 1), c.device(1, 1), 6.0), []);
        let t = ReferenceEngine::new(&c).run(&g).unwrap();
        assert!((t.interval(a).finish - 4.0).abs() < 1e-9);
        assert!((t.interval(b).finish - 8.0).abs() < 1e-9);
    }

    #[test]
    fn reference_is_deterministic() {
        let c = two_hosts();
        let mut g = TaskGraph::new();
        for i in 0..8 {
            let src = c.device(0, i % 2);
            let dst = c.device(1, (i + 1) % 2);
            g.add(Work::flow(src, dst, 1.0 + i as f64), []);
        }
        let t1 = ReferenceEngine::new(&c).run(&g).unwrap();
        let t2 = ReferenceEngine::new(&c).run(&g).unwrap();
        assert_eq!(t1, t2);
    }
}
