//! Engine performance counters.
//!
//! Every run tallies a [`SimStats`] (events processed, rate re-solves,
//! saturation-frontier peak, …) available through
//! [`Engine::run_stats`](crate::Engine::run_stats) and, cumulatively
//! across all runs in the process, through [`cumulative`]. The cumulative
//! counters are plain relaxed atomics — cheap enough to update
//! unconditionally — so callers that hold a metrics registry (the CLI,
//! `bench`, the serve daemon via `crossmesh-obs`) can publish
//! `netsim.events_processed` / `netsim.rate_recomputes` /
//! `netsim.frontier_size` without this crate depending on the obs stack
//! (obs depends on netsim, not the reverse).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Counters from one engine run (or, via [`cumulative`], all runs so far).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Heap events popped and acted on (compute/latency/fault/flow-drain).
    pub events_processed: u64,
    /// Flow-drain events discarded because the flow's rate changed (lazy
    /// invalidation) or the flow was killed after the event was scheduled.
    pub events_stale: u64,
    /// Fair-share re-solves (one per affected component per flow-set
    /// change in the exact model; one per batch in the aggregate model).
    pub rate_recomputes: u64,
    /// Total flows whose rate was recomputed, summed over all re-solves —
    /// `flows_resolved / rate_recomputes` is the mean bottleneck-set size.
    pub flows_resolved: u64,
    /// Largest saturation frontier: bottleneck resources in one re-solve.
    pub frontier_size: usize,
    /// Peak number of simultaneously active (draining) flows.
    pub peak_active_flows: usize,
}

static EVENTS: AtomicU64 = AtomicU64::new(0);
static STALE: AtomicU64 = AtomicU64::new(0);
static RECOMPUTES: AtomicU64 = AtomicU64::new(0);
static RESOLVED: AtomicU64 = AtomicU64::new(0);
static FRONTIER: AtomicUsize = AtomicUsize::new(0);
static PEAK_FLOWS: AtomicUsize = AtomicUsize::new(0);

/// Folds one run's counters into the process-wide totals. Called by the
/// engine at the end of every run.
pub(crate) fn record(s: &SimStats) {
    EVENTS.fetch_add(s.events_processed, Ordering::Relaxed);
    STALE.fetch_add(s.events_stale, Ordering::Relaxed);
    RECOMPUTES.fetch_add(s.rate_recomputes, Ordering::Relaxed);
    RESOLVED.fetch_add(s.flows_resolved, Ordering::Relaxed);
    FRONTIER.fetch_max(s.frontier_size, Ordering::Relaxed);
    PEAK_FLOWS.fetch_max(s.peak_active_flows, Ordering::Relaxed);
}

/// Snapshot of the process-wide totals: counters sum over every engine
/// run so far; `frontier_size` and `peak_active_flows` are maxima.
pub fn cumulative() -> SimStats {
    SimStats {
        events_processed: EVENTS.load(Ordering::Relaxed),
        events_stale: STALE.load(Ordering::Relaxed),
        rate_recomputes: RECOMPUTES.load(Ordering::Relaxed),
        flows_resolved: RESOLVED.load(Ordering::Relaxed),
        frontier_size: FRONTIER.load(Ordering::Relaxed),
        peak_active_flows: PEAK_FLOWS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_and_maxes() {
        let before = cumulative();
        record(&SimStats {
            events_processed: 3,
            events_stale: 1,
            rate_recomputes: 2,
            flows_resolved: 5,
            frontier_size: 1,
            peak_active_flows: 4,
        });
        let after = cumulative();
        assert_eq!(after.events_processed, before.events_processed + 3);
        assert_eq!(after.rate_recomputes, before.rate_recomputes + 2);
        assert!(after.peak_active_flows >= 4);
    }
}
