//! Simulator errors.

use crate::{DeviceId, TaskId};
use std::error::Error;
use std::fmt;

/// Errors returned by [`Engine::run`](crate::Engine::run).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A task refers to a device not present in the cluster.
    UnknownDevice {
        /// The offending task.
        task: TaskId,
        /// The device id that is out of range.
        device: DeviceId,
    },
    /// The run did not complete every task (cannot happen for graphs built
    /// through [`TaskGraph::add`](crate::TaskGraph::add), which are acyclic
    /// by construction; kept as a defensive invariant check).
    Stalled {
        /// Number of tasks that never became ready.
        remaining: usize,
    },
    /// A real-execution backend failed outside the simulated model (thread
    /// panic, socket error, payload mismatch, ...) in a way that cannot be
    /// pinned on a single task. Task-attributable failures use
    /// [`SimError::TaskFailed`] instead.
    Backend {
        /// Which backend failed (see [`Backend::name`](crate::Backend::name)).
        backend: &'static str,
        /// Human-readable failure description.
        message: String,
    },
    /// A specific task failed — under fault injection (a crashed host, a
    /// flow whose retries ran out) or a structural problem the backend can
    /// attribute to one task. Carries a [`FailureKind`] so callers can
    /// distinguish transport trouble from graph/setup mistakes.
    TaskFailed {
        /// Which backend reported the failure.
        backend: &'static str,
        /// The task that failed.
        task: TaskId,
        /// Broad class of the failure.
        kind: FailureKind,
        /// Human-readable detail.
        detail: String,
    },
}

/// Broad classification of a task-attributable failure, used by
/// [`SimError::TaskFailed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FailureKind {
    /// The transport layer failed: socket errors, truncated frames,
    /// byte-count mismatches, hung-up channels.
    Transport,
    /// The task graph or its routing was wrong: a task queued on the wrong
    /// worker, a frame addressed to a non-flow task.
    Graph,
    /// The task ran on (or sent to) a host taken down by fault injection.
    HostCrash,
    /// An injected flow drop persisted past the retry budget.
    RetriesExhausted,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FailureKind::Transport => "transport",
            FailureKind::Graph => "graph",
            FailureKind::HostCrash => "host-crash",
            FailureKind::RetriesExhausted => "retries-exhausted",
        };
        f.write_str(name)
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownDevice { task, device } => {
                write!(f, "task {task} uses device {device} not in the cluster")
            }
            SimError::Stalled { remaining } => {
                write!(f, "simulation stalled with {remaining} tasks never ready")
            }
            SimError::Backend { backend, message } => {
                write!(f, "{backend} backend failed: {message}")
            }
            SimError::TaskFailed {
                backend,
                task,
                kind,
                detail,
            } => {
                write!(
                    f,
                    "{backend} backend: task {task} failed ({kind}): {detail}"
                )
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::UnknownDevice {
            task: TaskId(3),
            device: DeviceId(9),
        };
        assert_eq!(e.to_string(), "task t3 uses device d9 not in the cluster");
        let s = SimError::Stalled { remaining: 2 };
        assert!(s.to_string().contains("2 tasks"));
        let t = SimError::TaskFailed {
            backend: "sim",
            task: TaskId(7),
            kind: FailureKind::HostCrash,
            detail: "host h1 crashed at t=0.5s".into(),
        };
        assert_eq!(
            t.to_string(),
            "sim backend: task t7 failed (host-crash): host h1 crashed at t=0.5s"
        );
    }

    #[test]
    fn failure_kinds_display_as_slugs() {
        assert_eq!(FailureKind::Transport.to_string(), "transport");
        assert_eq!(FailureKind::Graph.to_string(), "graph");
        assert_eq!(FailureKind::HostCrash.to_string(), "host-crash");
        assert_eq!(
            FailureKind::RetriesExhausted.to_string(),
            "retries-exhausted"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
