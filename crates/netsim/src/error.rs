//! Simulator errors.

use crate::{DeviceId, TaskId};
use std::error::Error;
use std::fmt;

/// Errors returned by [`Engine::run`](crate::Engine::run).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A task refers to a device not present in the cluster.
    UnknownDevice {
        /// The offending task.
        task: TaskId,
        /// The device id that is out of range.
        device: DeviceId,
    },
    /// The run did not complete every task (cannot happen for graphs built
    /// through [`TaskGraph::add`](crate::TaskGraph::add), which are acyclic
    /// by construction; kept as a defensive invariant check).
    Stalled {
        /// Number of tasks that never became ready.
        remaining: usize,
    },
    /// A real-execution backend failed outside the simulated model (thread
    /// panic, socket error, payload mismatch, ...).
    Backend {
        /// Which backend failed (see [`Backend::name`](crate::Backend::name)).
        backend: &'static str,
        /// Human-readable failure description.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownDevice { task, device } => {
                write!(f, "task {task} uses device {device} not in the cluster")
            }
            SimError::Stalled { remaining } => {
                write!(f, "simulation stalled with {remaining} tasks never ready")
            }
            SimError::Backend { backend, message } => {
                write!(f, "{backend} backend failed: {message}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::UnknownDevice {
            task: TaskId(3),
            device: DeviceId(9),
        };
        assert_eq!(e.to_string(), "task t3 uses device d9 not in the cluster");
        let s = SimError::Stalled { remaining: 2 };
        assert!(s.to_string().contains("2 tasks"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
