//! Mechanical fault-injection inputs for the [`Engine`](crate::Engine).
//!
//! [`Disruptions`] is the *mechanism* half of fault injection: a fully
//! resolved, randomness-free description of what goes wrong and when.
//! Seeding, probability rolls, and user-facing schedules live in the
//! `crossmesh-faults` crate, which compiles its `FaultSchedule` down to
//! this type. Keeping randomness out of `netsim` preserves the crate's
//! core guarantee: identical inputs produce identical traces.

use crate::topology::{DeviceId, HostId};
use std::collections::BTreeMap;

/// A temporary bandwidth degradation of one host's NIC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NicScalePeriod {
    /// The host whose NIC degrades.
    pub host: HostId,
    /// Multiplier applied to the NIC's send and receive capacity while the
    /// period is active (e.g. `0.1` = the link runs at 10%).
    pub factor: f64,
    /// Simulated time the degradation begins, seconds.
    pub from: f64,
    /// Simulated time the NIC recovers to full capacity, seconds.
    pub until: f64,
}

/// Fully resolved disruptions applied to one engine run.
///
/// All fields are mechanical: there is no randomness here, so the engine
/// stays deterministic under any `Disruptions` value. Flow drops are
/// expressed as an exact per-task drop count (how many transmission
/// attempts are lost before one succeeds), already rolled by the caller.
#[derive(Debug, Clone, PartialEq)]
pub struct Disruptions {
    /// Hosts that crash, with the simulated time of death. From that point
    /// on every task running on, queued on, or flowing through the host
    /// fails, and the failure poisons dependent tasks.
    pub host_down: Vec<(HostId, f64)>,
    /// NIC degradation periods (see [`NicScalePeriod`]).
    pub nic_scale: Vec<NicScalePeriod>,
    /// Per-device compute slowdown factors (stragglers): a factor of `s`
    /// makes every compute task on the device take `s`× as long.
    pub compute_slowdown: Vec<(DeviceId, f64)>,
    /// For each flow task id: how many transmission attempts are dropped.
    /// Each drop costs a full re-transfer of the flow's bytes plus an
    /// exponential-backoff delay.
    pub flow_drops: BTreeMap<u32, u32>,
    /// Base delay before the first re-transmission, simulated seconds;
    /// attempt `k` waits `retry_backoff * 2^k`.
    pub retry_backoff: f64,
    /// Maximum number of re-transmissions per flow before it fails.
    pub max_retries: u32,
}

impl Disruptions {
    /// No disruptions: the engine behaves exactly as a plain run.
    pub fn none() -> Self {
        Disruptions {
            host_down: Vec::new(),
            nic_scale: Vec::new(),
            compute_slowdown: Vec::new(),
            flow_drops: BTreeMap::new(),
            retry_backoff: 1e-3,
            max_retries: 3,
        }
    }

    /// True if this value disrupts nothing.
    pub fn is_empty(&self) -> bool {
        self.host_down.is_empty()
            && self.nic_scale.is_empty()
            && self.compute_slowdown.is_empty()
            && self.flow_drops.is_empty()
    }

    /// Checks internal consistency; the engine asserts this on entry.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency:
    /// non-finite or non-positive times/factors, or an inverted
    /// degradation period.
    pub fn validate(&self) -> Result<(), String> {
        for &(host, at) in &self.host_down {
            if !at.is_finite() || at < 0.0 {
                return Err(format!(
                    "host {host} crash time {at} must be >= 0 and finite"
                ));
            }
        }
        for p in &self.nic_scale {
            if !(p.factor > 0.0 && p.factor.is_finite()) {
                return Err(format!(
                    "NIC scale factor {} for {} must be positive and finite",
                    p.factor, p.host
                ));
            }
            if !p.from.is_finite() || !p.until.is_finite() || p.from < 0.0 || p.until < p.from {
                return Err(format!(
                    "NIC scale period [{}, {}] for {} is invalid",
                    p.from, p.until, p.host
                ));
            }
        }
        for &(device, factor) in &self.compute_slowdown {
            if !(factor > 0.0 && factor.is_finite()) {
                return Err(format!(
                    "compute slowdown {factor} for {device} must be positive and finite"
                ));
            }
        }
        if !(self.retry_backoff >= 0.0 && self.retry_backoff.is_finite()) {
            return Err(format!(
                "retry backoff {} must be >= 0 and finite",
                self.retry_backoff
            ));
        }
        Ok(())
    }
}

impl Default for Disruptions {
    fn default() -> Self {
        Disruptions::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_empty_and_valid() {
        let d = Disruptions::none();
        assert!(d.is_empty());
        assert!(d.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut d = Disruptions::none();
        d.host_down.push((HostId(0), -1.0));
        assert!(d.validate().is_err());

        let mut d = Disruptions::none();
        d.nic_scale.push(NicScalePeriod {
            host: HostId(0),
            factor: 0.0,
            from: 0.0,
            until: 1.0,
        });
        assert!(d.validate().is_err());

        let mut d = Disruptions::none();
        d.nic_scale.push(NicScalePeriod {
            host: HostId(0),
            factor: 0.5,
            from: 2.0,
            until: 1.0,
        });
        assert!(d.validate().is_err());

        let mut d = Disruptions::none();
        d.compute_slowdown.push((DeviceId(0), f64::INFINITY));
        assert!(d.validate().is_err());
    }
}
