//! Incremental max–min fair-share rate solver.
//!
//! The engine's flows form a bipartite graph with the resources they
//! occupy (device send/recv, host NICs, fabric slots). Max–min fair rates
//! decompose over the *connected components* of that graph: progressive
//! filling inside one component never reads or writes another. This
//! solver exploits that: it keeps per-resource flow counts and a
//! resource→flows index, and on any change (flow added, flow removed,
//! capacity rescaled by a fault) re-solves only the components reachable
//! from the changed resources. Flows in untouched components keep their
//! cached rates bit-for-bit.
//!
//! Inside a component the solve is the classic water-filling loop: all
//! unfrozen flows fill uniformly; when a resource saturates (headroom ≤
//! `REL_EPS` relative), the flows touching it freeze at the current fill
//! level and release their claim on further filling. The arithmetic per
//! component is identical to the pre-refactor global loop restricted to
//! that component, so results are a pure function of (component flows,
//! capacities) — the incremental solution always equals the from-scratch
//! one exactly, and matches the old *global* loop to ~1 ulp (the old loop
//! coupled independent components through the summation order of its
//! global fill level).
//!
//! A flow with an **empty resource list** (nothing constrains it — e.g. a
//! hypothetical fabric that routes some pair over no slots) is assigned
//! `f64::INFINITY` up front and never enters a component. The old loop
//! would never freeze such a flow: `delta` went infinite, tripping a
//! `debug_assert` in debug builds and spinning forever in release.
//!
//! The **aggregate model** ([`SimModel::Aggregate`](crate::SimModel))
//! replaces water-filling with dslab-style uniform sharing: a flow's rate
//! is `min_r capacity[r] / count[r]` over its resources. That never
//! exceeds the exact max–min rate (at the exact solve's freeze point the
//! frozen flow holds the *largest* rate among the `n` flows crossing the
//! saturated resource, so its fair share is ≥ `cap/n`), needs only a
//! one-hop update on changes (no transitive re-solve), and errs toward
//! longer makespans — a conservative approximation for coarse sweeps.

/// Relative headroom below which a resource counts as saturated, and the
/// engines treat event times as simultaneous. Shared with both engines.
pub(crate) const REL_EPS: f64 = 1e-9;

/// Which contention model the solver applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimModel {
    /// Exact max–min fairness by per-component progressive filling.
    #[default]
    Exact,
    /// dslab-style aggregate throughput: each flow gets
    /// `min_r capacity[r]/count[r]`; cheaper, never above the exact rate.
    Aggregate,
}

impl SimModel {
    /// Stable lowercase name (CLI `--sim-model` values).
    pub fn name(self) -> &'static str {
        match self {
            SimModel::Exact => "exact",
            SimModel::Aggregate => "aggregate",
        }
    }

    /// Parses a CLI `--sim-model` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "exact" => Some(SimModel::Exact),
            "aggregate" => Some(SimModel::Aggregate),
            _ => None,
        }
    }
}

/// Counters the solver accumulates for [`SimStats`](crate::SimStats).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SolverStats {
    /// Component (or one-hop, in aggregate mode) re-solves performed.
    pub recomputes: u64,
    /// Total flows whose rate was recomputed across all re-solves.
    pub flows_resolved: u64,
    /// Largest saturation frontier (bottleneck resources of one re-solve).
    pub frontier_peak: usize,
}

/// The incremental fair-share solver. Flows are identified by the
/// engine's slot indices; the solver keeps arrays parallel to the
/// engine's slot table.
#[derive(Debug)]
pub(crate) struct FairShare {
    model: SimModel,
    /// Capacity of each resource (mutable under NIC-scale faults).
    caps: Vec<f64>,
    /// Active flows crossing each resource.
    count: Vec<u32>,
    /// Slot lists per resource (alive flows only, eagerly maintained).
    res_flows: Vec<Vec<u32>>,
    /// Per slot: the resources the flow occupies (empty when slot free).
    flow_res: Vec<Vec<usize>>,
    /// Per slot: this flow's position inside `res_flows[r]` for each of
    /// its resources (kept in sync so removal is O(degree)).
    flow_pos: Vec<Vec<u32>>,
    /// Per slot: the solved rate. `NAN` for freshly added slots so the
    /// first solve always reports them as changed.
    rates: Vec<f64>,
    /// Seed resources whose component must be re-solved.
    dirty_res: Vec<usize>,
    dirty_mark: Vec<bool>,
    /// Slots assigned `INFINITY` at add time (unconstrained flows),
    /// reported as changed on the next resolve.
    pending_unconstrained: Vec<u32>,

    // Scratch reused across resolves (cleared via the touched lists).
    visited_res: Vec<bool>,
    visited_flow: Vec<bool>,
    comp_res: Vec<usize>,
    comp_flows: Vec<u32>,
    comp_frozen: Vec<bool>,
    used: Vec<f64>,
    live: Vec<u32>,

    pub stats: SolverStats,
}

impl FairShare {
    pub fn new(caps: Vec<f64>, model: SimModel) -> Self {
        let r = caps.len();
        FairShare {
            model,
            caps,
            count: vec![0; r],
            res_flows: vec![Vec::new(); r],
            flow_res: Vec::new(),
            flow_pos: Vec::new(),
            rates: Vec::new(),
            dirty_res: Vec::new(),
            dirty_mark: vec![false; r],
            pending_unconstrained: Vec::new(),
            visited_res: vec![false; r],
            visited_flow: Vec::new(),
            comp_res: Vec::new(),
            comp_flows: Vec::new(),
            comp_frozen: Vec::new(),
            used: vec![0.0; r],
            live: vec![0; r],
            stats: SolverStats::default(),
        }
    }

    /// The current solved rate of `slot`.
    pub fn rate(&self, slot: u32) -> f64 {
        self.rates[slot as usize]
    }

    fn mark_res_dirty(&mut self, r: usize) {
        if !self.dirty_mark[r] {
            self.dirty_mark[r] = true;
            self.dirty_res.push(r);
        }
    }

    /// Rescales resource `r`'s capacity; its component re-solves on the
    /// next [`resolve`](Self::resolve).
    pub fn set_capacity(&mut self, r: usize, cap: f64) {
        if self.caps[r] != cap {
            self.caps[r] = cap;
            self.mark_res_dirty(r);
        }
    }

    fn ensure_slot(&mut self, slot: u32) {
        let need = slot as usize + 1;
        if self.flow_res.len() < need {
            self.flow_res.resize_with(need, Vec::new);
            self.flow_pos.resize_with(need, Vec::new);
            self.rates.resize(need, f64::NAN);
            self.visited_flow.resize(need, false);
        }
    }

    /// Registers a new flow occupying `resources`. An empty list means the
    /// flow is unconstrained: it gets `f64::INFINITY` immediately (the fix
    /// for the old engine's infinite-loop hazard) and is still reported
    /// through `changed` on the next resolve.
    pub fn add_flow(&mut self, slot: u32, resources: Vec<usize>) {
        self.ensure_slot(slot);
        let s = slot as usize;
        debug_assert!(self.flow_res[s].is_empty(), "slot already occupied");
        if resources.is_empty() {
            self.rates[s] = f64::INFINITY;
            self.pending_unconstrained.push(slot);
            return;
        }
        let mut pos = Vec::with_capacity(resources.len());
        for &r in &resources {
            pos.push(self.res_flows[r].len() as u32);
            self.res_flows[r].push(slot);
            self.count[r] += 1;
            self.mark_res_dirty(r);
        }
        self.flow_res[s] = resources;
        self.flow_pos[s] = pos;
        self.rates[s] = f64::NAN;
    }

    /// Unregisters `slot`; the components it touched re-solve on the next
    /// [`resolve`](Self::resolve).
    pub fn remove_flow(&mut self, slot: u32) {
        let s = slot as usize;
        let resources = std::mem::take(&mut self.flow_res[s]);
        let positions = std::mem::take(&mut self.flow_pos[s]);
        for (&r, &p) in resources.iter().zip(&positions) {
            let p = p as usize;
            self.res_flows[r].swap_remove(p);
            if let Some(&moved) = self.res_flows[r].get(p) {
                // Fix the moved flow's recorded position for resource r.
                let m = moved as usize;
                let k = self.flow_res[m]
                    .iter()
                    .position(|&mr| mr == r)
                    .expect("moved flow lists r");
                self.flow_pos[m][k] = p as u32;
            }
            self.count[r] -= 1;
            self.mark_res_dirty(r);
        }
        self.rates[s] = f64::NAN;
    }

    /// Re-solves every component reachable from a dirty resource and
    /// appends to `changed` the slots whose rate differs from the cached
    /// value. Touching nothing is free: with no dirty state this is a
    /// no-op.
    pub fn resolve(&mut self, changed: &mut Vec<u32>) {
        changed.append(&mut self.pending_unconstrained);
        if self.dirty_res.is_empty() {
            return;
        }
        match self.model {
            SimModel::Exact => self.resolve_exact(changed),
            SimModel::Aggregate => self.resolve_aggregate(changed),
        }
        for i in 0..self.dirty_res.len() {
            self.dirty_mark[self.dirty_res[i]] = false;
        }
        self.dirty_res.clear();
    }

    fn resolve_exact(&mut self, changed: &mut Vec<u32>) {
        for seed_i in 0..self.dirty_res.len() {
            let seed = self.dirty_res[seed_i];
            if self.visited_res[seed] {
                continue;
            }
            // BFS the component containing `seed` over the flow↔resource
            // bipartite graph. Resources with no flows are still marked
            // visited so repeated seeds stay cheap.
            self.comp_res.clear();
            self.comp_flows.clear();
            self.visited_res[seed] = true;
            self.comp_res.push(seed);
            let mut head = 0;
            while head < self.comp_res.len() {
                let r = self.comp_res[head];
                head += 1;
                for fi in 0..self.res_flows[r].len() {
                    let slot = self.res_flows[r][fi];
                    let s = slot as usize;
                    if self.visited_flow[s] {
                        continue;
                    }
                    self.visited_flow[s] = true;
                    self.comp_flows.push(slot);
                    for ri in 0..self.flow_res[s].len() {
                        let r2 = self.flow_res[s][ri];
                        if !self.visited_res[r2] {
                            self.visited_res[r2] = true;
                            self.comp_res.push(r2);
                        }
                    }
                }
            }
            if !self.comp_flows.is_empty() {
                self.solve_component(changed);
            }
            // Clear the per-component scratch before the next seed: a later
            // dirty resource may live in a different component.
            for i in 0..self.comp_res.len() {
                self.visited_res[self.comp_res[i]] = false;
            }
            for i in 0..self.comp_flows.len() {
                self.visited_flow[self.comp_flows[i] as usize] = false;
            }
        }
    }

    /// Progressive filling over the current `comp_res`/`comp_flows`. The
    /// loop body mirrors the reference engine's `recompute_rates`
    /// restricted to one component, so the arithmetic (and therefore the
    /// solved rates) is order-independent and reproducible.
    fn solve_component(&mut self, changed: &mut Vec<u32>) {
        self.stats.recomputes += 1;
        self.stats.flows_resolved += self.comp_flows.len() as u64;
        for &r in &self.comp_res {
            self.used[r] = 0.0;
            self.live[r] = self.count[r];
        }
        self.comp_frozen.clear();
        self.comp_frozen.resize(self.comp_flows.len(), false);
        let mut remaining = self.comp_flows.len();
        let mut fill = 0.0f64;
        while remaining > 0 {
            let mut delta = f64::INFINITY;
            for &r in &self.comp_res {
                let c = self.live[r];
                if c > 0 {
                    let head = (self.caps[r] - self.used[r]) / f64::from(c);
                    if head < delta {
                        delta = head;
                    }
                }
            }
            if !delta.is_finite() {
                // Every remaining flow sees only infinite-capacity
                // resources: they are effectively unconstrained.
                for i in 0..self.comp_flows.len() {
                    if !self.comp_frozen[i] {
                        self.set_rate(self.comp_flows[i], f64::INFINITY, changed);
                    }
                }
                break;
            }
            fill += delta;
            for &r in &self.comp_res {
                let c = self.live[r];
                if c > 0 {
                    self.used[r] += delta * f64::from(c);
                }
            }
            let mut froze_any = false;
            for i in 0..self.comp_flows.len() {
                if self.comp_frozen[i] {
                    continue;
                }
                let slot = self.comp_flows[i];
                let s = slot as usize;
                let saturated = self.flow_res[s]
                    .iter()
                    .any(|&r| self.caps[r] - self.used[r] <= REL_EPS * self.caps[r]);
                if saturated {
                    self.comp_frozen[i] = true;
                    remaining -= 1;
                    froze_any = true;
                    for ri in 0..self.flow_res[s].len() {
                        let r = self.flow_res[s][ri];
                        self.live[r] -= 1;
                    }
                    self.set_rate(slot, fill, changed);
                }
            }
            if !froze_any {
                // Defensive: floating-point kept the argmin resource a hair
                // above the saturation threshold. Force-freeze its flows so
                // the loop always terminates (the old engine would spin).
                debug_assert!(false, "progressive filling failed to converge");
                let mut argmin = usize::MAX;
                let mut best = f64::INFINITY;
                for &r in &self.comp_res {
                    if self.live[r] > 0 {
                        let head = (self.caps[r] - self.used[r]) / f64::from(self.live[r]);
                        if head < best {
                            best = head;
                            argmin = r;
                        }
                    }
                }
                for fi in 0..self.res_flows[argmin].len() {
                    let slot = self.res_flows[argmin][fi];
                    let i = self
                        .comp_flows
                        .iter()
                        .position(|&f| f == slot)
                        .expect("flow on component resource is in component");
                    if !self.comp_frozen[i] {
                        self.comp_frozen[i] = true;
                        remaining -= 1;
                        for ri in 0..self.flow_res[slot as usize].len() {
                            let r = self.flow_res[slot as usize][ri];
                            self.live[r] -= 1;
                        }
                        self.set_rate(slot, fill, changed);
                    }
                }
            }
        }
        // The saturation frontier: bottleneck resources of this component.
        let frontier = self
            .comp_res
            .iter()
            .filter(|&&r| {
                self.count[r] > 0 && self.caps[r] - self.used[r] <= REL_EPS * self.caps[r]
            })
            .count();
        if frontier > self.stats.frontier_peak {
            self.stats.frontier_peak = frontier;
        }
    }

    /// Aggregate model: each flow crossing a dirty resource gets
    /// `min_r caps[r]/count[r]`. Counts only change on dirty resources, so
    /// one hop suffices — no transitive component walk.
    fn resolve_aggregate(&mut self, changed: &mut Vec<u32>) {
        self.stats.recomputes += 1;
        let mut touched = 0u64;
        let mut frontier = 0usize;
        for seed_i in 0..self.dirty_res.len() {
            let r = self.dirty_res[seed_i];
            if self.count[r] > 0 {
                frontier += 1;
            }
            for fi in 0..self.res_flows[r].len() {
                let slot = self.res_flows[r][fi];
                let s = slot as usize;
                if self.visited_flow[s] {
                    continue;
                }
                self.visited_flow[s] = true;
                touched += 1;
                let mut rate = f64::INFINITY;
                for ri in 0..self.flow_res[s].len() {
                    let rr = self.flow_res[s][ri];
                    let share = self.caps[rr] / f64::from(self.count[rr]);
                    if share < rate {
                        rate = share;
                    }
                }
                self.set_rate(slot, rate, changed);
            }
        }
        for seed_i in 0..self.dirty_res.len() {
            let r = self.dirty_res[seed_i];
            for fi in 0..self.res_flows[r].len() {
                self.visited_flow[self.res_flows[r][fi] as usize] = false;
            }
        }
        self.stats.flows_resolved += touched;
        if frontier > self.stats.frontier_peak {
            self.stats.frontier_peak = frontier;
        }
    }

    fn set_rate(&mut self, slot: u32, rate: f64, changed: &mut Vec<u32>) {
        let s = slot as usize;
        // NaN (fresh slot) compares unequal to everything, so new flows are
        // always reported.
        if self.rates[s] != rate {
            self.rates[s] = rate;
            changed.push(slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates_of(fs: &FairShare, n: u32) -> Vec<f64> {
        (0..n).map(|s| fs.rate(s)).collect()
    }

    #[test]
    fn two_flows_share_one_resource() {
        let mut fs = FairShare::new(vec![1.0], SimModel::Exact);
        let mut ch = Vec::new();
        fs.add_flow(0, vec![0]);
        fs.add_flow(1, vec![0]);
        fs.resolve(&mut ch);
        assert_eq!(rates_of(&fs, 2), vec![0.5, 0.5]);
        assert_eq!(ch.len(), 2);
    }

    #[test]
    fn removal_restores_full_rate() {
        let mut fs = FairShare::new(vec![1.0], SimModel::Exact);
        let mut ch = Vec::new();
        fs.add_flow(0, vec![0]);
        fs.add_flow(1, vec![0]);
        fs.resolve(&mut ch);
        ch.clear();
        fs.remove_flow(0);
        fs.resolve(&mut ch);
        assert_eq!(ch, vec![1]);
        assert_eq!(fs.rate(1), 1.0);
    }

    #[test]
    fn untouched_component_keeps_cached_rate_bit_for_bit() {
        // Resources 0 and 1 host disjoint components; churning component 1
        // must not touch component 0's solved rate (or report it changed).
        let mut fs = FairShare::new(vec![3.0, 1.0], SimModel::Exact);
        let mut ch = Vec::new();
        fs.add_flow(0, vec![0]);
        fs.add_flow(1, vec![0]);
        fs.add_flow(2, vec![1]);
        fs.resolve(&mut ch);
        let cached = fs.rate(0);
        ch.clear();
        fs.remove_flow(2);
        fs.add_flow(3, vec![1]);
        fs.add_flow(4, vec![1]);
        fs.resolve(&mut ch);
        assert!(!ch.contains(&0) && !ch.contains(&1), "{ch:?}");
        assert_eq!(fs.rate(0).to_bits(), cached.to_bits());
        assert_eq!(fs.rate(3), 0.5);
    }

    #[test]
    fn incremental_matches_from_scratch_exactly() {
        // Build a coupled component incrementally and compare against a
        // fresh solver given the same final flow set: the per-component
        // canonical solve must make them bit-identical.
        let caps = vec![1.0, 2.0, 0.5, 4.0];
        let flows: Vec<Vec<usize>> = vec![
            vec![0, 1],
            vec![1, 2],
            vec![2, 3],
            vec![0, 3],
            vec![1],
            vec![3],
        ];
        let mut inc = FairShare::new(caps.clone(), SimModel::Exact);
        let mut ch = Vec::new();
        for (s, r) in flows.iter().enumerate() {
            inc.add_flow(s as u32, r.clone());
            inc.resolve(&mut ch); // resolve after every single change
        }
        // Churn: remove and re-add flow 2.
        inc.remove_flow(2);
        inc.resolve(&mut ch);
        inc.add_flow(2, flows[2].clone());
        inc.resolve(&mut ch);

        let mut scratch = FairShare::new(caps, SimModel::Exact);
        for (s, r) in flows.iter().enumerate() {
            scratch.add_flow(s as u32, r.clone());
        }
        scratch.resolve(&mut ch);
        for s in 0..flows.len() as u32 {
            assert_eq!(
                inc.rate(s).to_bits(),
                scratch.rate(s).to_bits(),
                "flow {s}: {} vs {}",
                inc.rate(s),
                scratch.rate(s)
            );
        }
    }

    #[test]
    fn empty_resources_flow_gets_infinite_rate_immediately() {
        // Regression for the pre-refactor hazard: an unconstrained flow
        // made the global loop's delta go infinite (debug assert death in
        // debug builds, infinite loop in release). It now solves instantly.
        let mut fs = FairShare::new(vec![1.0], SimModel::Exact);
        let mut ch = Vec::new();
        fs.add_flow(0, Vec::new());
        fs.add_flow(1, vec![0]);
        fs.resolve(&mut ch);
        assert_eq!(fs.rate(0), f64::INFINITY);
        assert_eq!(fs.rate(1), 1.0);
        assert!(ch.contains(&0) && ch.contains(&1));
        // Removal is a no-op structurally but must not panic.
        fs.remove_flow(0);
        ch.clear();
        fs.resolve(&mut ch);
        assert_eq!(ch, Vec::<u32>::new());
    }

    #[test]
    fn capacity_change_rescales_component() {
        let mut fs = FairShare::new(vec![2.0], SimModel::Exact);
        let mut ch = Vec::new();
        fs.add_flow(0, vec![0]);
        fs.add_flow(1, vec![0]);
        fs.resolve(&mut ch);
        assert_eq!(fs.rate(0), 1.0);
        ch.clear();
        fs.set_capacity(0, 0.5);
        fs.resolve(&mut ch);
        assert_eq!(fs.rate(0), 0.25);
        assert_eq!(fs.rate(1), 0.25);
        assert_eq!(ch.len(), 2);
    }

    #[test]
    fn max_min_redistributes_released_bandwidth() {
        // Flows: a on {0}, b on {0,1}, c on {1}. cap0 = 1, cap1 = 10.
        // b freezes at 0.5 with a; c then fills to 9.5.
        let mut fs = FairShare::new(vec![1.0, 10.0], SimModel::Exact);
        let mut ch = Vec::new();
        fs.add_flow(0, vec![0]);
        fs.add_flow(1, vec![0, 1]);
        fs.add_flow(2, vec![1]);
        fs.resolve(&mut ch);
        assert!((fs.rate(0) - 0.5).abs() < 1e-12);
        assert!((fs.rate(1) - 0.5).abs() < 1e-12);
        assert!((fs.rate(2) - 9.5).abs() < 1e-12);
        assert_eq!(fs.stats.frontier_peak, 2, "both resources saturate");
    }

    #[test]
    fn aggregate_rate_is_min_share_and_below_exact() {
        let caps = vec![1.0, 10.0];
        let mut agg = FairShare::new(caps.clone(), SimModel::Aggregate);
        let mut exact = FairShare::new(caps, SimModel::Exact);
        let flows: Vec<Vec<usize>> = vec![vec![0], vec![0, 1], vec![1]];
        let mut ch = Vec::new();
        for (s, r) in flows.iter().enumerate() {
            agg.add_flow(s as u32, r.clone());
            exact.add_flow(s as u32, r.clone());
        }
        agg.resolve(&mut ch);
        exact.resolve(&mut ch);
        // Aggregate: flow 2 shares resource 1 with flow 1 → 5.0, not 9.5.
        assert_eq!(agg.rate(0), 0.5);
        assert_eq!(agg.rate(1), 0.5);
        assert_eq!(agg.rate(2), 5.0);
        for s in 0..3 {
            assert!(agg.rate(s) <= exact.rate(s) + 1e-12);
        }
    }

    #[test]
    fn aggregate_updates_are_one_hop() {
        // Chain 0-1-2 over resources {a},{a,b},{b}: removing flow 0 dirties
        // only resource a, so flow 2 (on b alone) is not re-rated.
        let mut fs = FairShare::new(vec![1.0, 1.0], SimModel::Aggregate);
        let mut ch = Vec::new();
        fs.add_flow(0, vec![0]);
        fs.add_flow(1, vec![0, 1]);
        fs.add_flow(2, vec![1]);
        fs.resolve(&mut ch);
        ch.clear();
        let before = fs.stats.flows_resolved;
        fs.remove_flow(0);
        fs.resolve(&mut ch);
        assert_eq!(
            fs.stats.flows_resolved - before,
            1,
            "only the sharer of resource 0 is examined"
        );
        assert!(ch.is_empty(), "its rate stays capped by shared resource 1");
        assert_eq!(fs.rate(1), 0.5);
    }

    #[test]
    fn slot_reuse_after_removal() {
        let mut fs = FairShare::new(vec![1.0], SimModel::Exact);
        let mut ch = Vec::new();
        fs.add_flow(0, vec![0]);
        fs.resolve(&mut ch);
        fs.remove_flow(0);
        fs.add_flow(0, vec![0]);
        ch.clear();
        fs.resolve(&mut ch);
        assert_eq!(ch, vec![0]);
        assert_eq!(fs.rate(0), 1.0);
    }
}
