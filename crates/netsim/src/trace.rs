//! Execution traces produced by the engine.

use crate::graph::{TaskGraph, Work};
use crate::topology::{ClusterSpec, DeviceId, HostId};
use crate::TaskId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Start/finish interval of one task, in simulated seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskInterval {
    /// Time the task started executing (for flows: began transferring).
    pub start: f64,
    /// Time the task completed.
    pub finish: f64,
}

impl TaskInterval {
    /// Duration of the interval.
    pub fn duration(&self) -> f64 {
        self.finish - self.start
    }

    /// True if `self` and `other` overlap on a set of positive measure.
    pub fn overlaps(&self, other: &TaskInterval) -> bool {
        self.start < other.finish && other.start < self.finish
    }
}

/// Bytes moved through each host NIC over a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// Bytes sent out of each host (inter-host flows only).
    pub host_sent: BTreeMap<u32, f64>,
    /// Bytes received by each host (inter-host flows only).
    pub host_received: BTreeMap<u32, f64>,
}

impl ResourceUsage {
    /// Bytes sent by `host` across the network.
    pub fn sent_by(&self, host: HostId) -> f64 {
        self.host_sent.get(&host.0).copied().unwrap_or(0.0)
    }

    /// Bytes received by `host` across the network.
    pub fn received_by(&self, host: HostId) -> f64 {
        self.host_received.get(&host.0).copied().unwrap_or(0.0)
    }

    /// Total inter-host traffic (sum over senders).
    pub fn total_cross_host_bytes(&self) -> f64 {
        self.host_sent.values().sum()
    }

    pub(crate) fn record(&mut self, src: HostId, dst: HostId, bytes: f64) {
        *self.host_sent.entry(src.0).or_insert(0.0) += bytes;
        *self.host_received.entry(dst.0).or_insert(0.0) += bytes;
    }
}

/// Degradation counters accumulated while a run executes under fault
/// injection. All zero (and `degraded_makespan` absent) for a fault-free
/// run, so fault-free traces compare and serialize exactly as before.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Flow transmissions that had to be re-sent after an injected drop.
    pub retries: u64,
    /// Unit tasks re-assigned to a surviving sender by plan repair.
    pub failovers: u64,
    /// Flows that exhausted their retry budget and failed.
    pub dropped_flows: u64,
    /// End-to-end completion time including repair and re-execution,
    /// when a recovery layer re-ran the plan; `None` otherwise.
    pub degraded_makespan: Option<f64>,
}

impl FaultStats {
    /// True if no fault left any mark on the run.
    pub fn is_clean(&self) -> bool {
        self.retries == 0
            && self.failovers == 0
            && self.dropped_flows == 0
            && self.degraded_makespan.is_none()
    }
}

/// The result of a simulation run: per-task intervals plus aggregates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    intervals: Vec<TaskInterval>,
    makespan: f64,
    usage: ResourceUsage,
    faults: FaultStats,
    failed_tasks: Vec<TaskId>,
}

/// Incrementally assembles a [`Trace`] from per-task timings, for execution
/// backends living outside this crate (see [`crate::Backend`]).
#[derive(Debug, Clone, Default)]
pub struct TraceBuilder {
    intervals: Vec<TaskInterval>,
    usage: ResourceUsage,
    faults: FaultStats,
    failed_tasks: Vec<TaskId>,
}

impl TraceBuilder {
    /// A builder pre-sized for a graph of `tasks` tasks.
    pub fn with_capacity(tasks: usize) -> Self {
        TraceBuilder {
            intervals: Vec::with_capacity(tasks),
            usage: ResourceUsage::default(),
            faults: FaultStats::default(),
            failed_tasks: Vec::new(),
        }
    }

    /// Records the execution interval of `task`, in seconds. Tasks may be
    /// recorded in any order; gaps are zero-length intervals at t=0 until
    /// recorded.
    pub fn record_interval(&mut self, task: TaskId, start: f64, finish: f64) {
        let idx = task.0 as usize;
        if idx >= self.intervals.len() {
            self.intervals.resize(
                idx + 1,
                TaskInterval {
                    start: 0.0,
                    finish: 0.0,
                },
            );
        }
        self.intervals[idx] = TaskInterval { start, finish };
    }

    /// Accounts `bytes` of traffic from `src` to `dst` if they differ
    /// (intra-host traffic is not NIC traffic).
    pub fn record_flow(&mut self, src: HostId, dst: HostId, bytes: f64) {
        if src != dst {
            self.usage.record(src, dst, bytes);
        }
    }

    /// Overrides the fault counters carried by the final trace (backends
    /// that executed under fault injection report their retries here).
    pub fn record_fault_stats(&mut self, faults: FaultStats) {
        self.faults = faults;
    }

    /// Marks `task` as failed (it never completed; its interval is
    /// whatever was recorded, typically zero-length).
    pub fn record_failed_task(&mut self, task: TaskId) {
        self.failed_tasks.push(task);
    }

    /// Finalizes the trace; the makespan is the latest recorded finish.
    pub fn build(self) -> Trace {
        let mut failed = self.failed_tasks;
        failed.sort_unstable();
        failed.dedup();
        Trace::faulted(self.intervals, self.usage, self.faults, failed)
    }
}

impl Trace {
    pub(crate) fn faulted(
        intervals: Vec<TaskInterval>,
        usage: ResourceUsage,
        faults: FaultStats,
        failed_tasks: Vec<TaskId>,
    ) -> Self {
        let makespan = intervals.iter().map(|i| i.finish).fold(0.0, f64::max);
        Trace {
            intervals,
            makespan,
            usage,
            faults,
            failed_tasks,
        }
    }

    /// Completion time of the last task, in simulated seconds.
    pub fn makespan(&self) -> f64 {
        self.makespan
    }

    /// Degradation counters from fault injection (all zero for a clean run).
    pub fn fault_stats(&self) -> &FaultStats {
        &self.faults
    }

    /// Tasks that failed under fault injection instead of completing,
    /// sorted by id. Empty for a clean run.
    pub fn failed_tasks(&self) -> &[TaskId] {
        &self.failed_tasks
    }

    /// The execution interval of `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` was not part of the executed graph.
    pub fn interval(&self, task: TaskId) -> TaskInterval {
        self.intervals[task.0 as usize]
    }

    /// All intervals, indexed by task id.
    pub fn intervals(&self) -> &[TaskInterval] {
        &self.intervals
    }

    /// Inter-host traffic accounting.
    pub fn usage(&self) -> &ResourceUsage {
        &self.usage
    }

    /// Fraction of the makespan each device spent computing (compute tasks
    /// only — flows are attributed to the network, not the device).
    /// Devices that never compute are absent.
    pub fn device_utilization(&self, graph: &TaskGraph) -> BTreeMap<u32, f64> {
        let mut busy: BTreeMap<u32, f64> = BTreeMap::new();
        for (id, task) in graph.iter() {
            if let Some(dev) = task.work.compute_device() {
                *busy.entry(dev.0).or_insert(0.0) += self.interval(id).duration();
            }
        }
        if self.makespan > 0.0 {
            for v in busy.values_mut() {
                *v /= self.makespan;
            }
        }
        busy
    }

    /// Total seconds during which at least one flow between different
    /// hosts was in progress ("exposed or overlapped communication time"),
    /// computed by sweeping the merged flow intervals.
    pub fn cross_host_comm_seconds(&self, graph: &TaskGraph, cluster: &ClusterSpec) -> f64 {
        let mut intervals: Vec<TaskInterval> = graph
            .iter()
            .filter(|(_, t)| match t.work {
                Work::Flow { src, dst, .. } => !cluster.same_host(src, dst),
                _ => false,
            })
            .map(|(id, _)| self.interval(id))
            .filter(|iv| iv.duration() > 0.0)
            .collect();
        intervals.sort_by(|a, b| a.start.total_cmp(&b.start));
        let mut total = 0.0;
        let mut cur: Option<TaskInterval> = None;
        for iv in intervals {
            match &mut cur {
                None => cur = Some(iv),
                Some(c) if iv.start <= c.finish => c.finish = c.finish.max(iv.finish),
                Some(c) => {
                    total += c.duration();
                    *c = iv;
                }
            }
        }
        if let Some(c) = cur {
            total += c.duration();
        }
        total
    }

    /// Convenience: the busy seconds of one device (compute only).
    pub fn device_busy_seconds(&self, graph: &TaskGraph, device: DeviceId) -> f64 {
        graph
            .iter()
            .filter(|(_, t)| t.work.compute_device() == Some(device))
            .map(|(id, _)| self.interval(id).duration())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterSpec, Engine, LinkParams};

    #[test]
    fn utilization_and_comm_time_analysis() {
        let c = ClusterSpec::homogeneous(2, 1, LinkParams::new(10.0, 1.0).with_latencies(0.0, 0.0));
        let mut g = TaskGraph::new();
        let d0 = c.device(0, 0);
        let d1 = c.device(1, 0);
        // 2 s compute on d0 overlapping a 4 s flow, then 1 s compute on d1.
        g.add(Work::compute(d0, 2.0), []);
        let f = g.add(Work::flow(d0, d1, 4.0), []);
        g.add(Work::compute(d1, 1.0), [f]);
        let t = Engine::new(&c).run(&g).unwrap();
        assert!((t.makespan() - 5.0).abs() < 1e-9);
        let util = t.device_utilization(&g);
        assert!((util[&d0.0] - 2.0 / 5.0).abs() < 1e-9);
        assert!((util[&d1.0] - 1.0 / 5.0).abs() < 1e-9);
        assert!((t.cross_host_comm_seconds(&g, &c) - 4.0).abs() < 1e-9);
        assert!((t.device_busy_seconds(&g, d0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn overlapping_flow_intervals_merge() {
        let c = ClusterSpec::homogeneous(2, 2, LinkParams::new(10.0, 1.0).with_latencies(0.0, 0.0));
        let mut g = TaskGraph::new();
        // Two concurrent flows sharing the NIC: both run [0, 4]; merged
        // comm time is 4 s, not 8.
        g.add(Work::flow(c.device(0, 0), c.device(1, 0), 2.0), []);
        g.add(Work::flow(c.device(0, 1), c.device(1, 1), 2.0), []);
        // An intra-host flow must not count.
        g.add(Work::flow(c.device(0, 0), c.device(0, 1), 100.0), []);
        let t = Engine::new(&c).run(&g).unwrap();
        assert!((t.cross_host_comm_seconds(&g, &c) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn makespan_is_last_finish() {
        let t = Trace::faulted(
            vec![
                TaskInterval {
                    start: 0.0,
                    finish: 1.0,
                },
                TaskInterval {
                    start: 0.5,
                    finish: 3.0,
                },
            ],
            ResourceUsage::default(),
            FaultStats::default(),
            Vec::new(),
        );
        assert_eq!(t.makespan(), 3.0);
        assert!(t.fault_stats().is_clean());
    }

    #[test]
    fn overlap_detection() {
        let a = TaskInterval {
            start: 0.0,
            finish: 1.0,
        };
        let b = TaskInterval {
            start: 0.9,
            finish: 2.0,
        };
        let c = TaskInterval {
            start: 1.0,
            finish: 2.0,
        };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c), "touching intervals do not overlap");
    }

    #[test]
    fn usage_accumulates() {
        let mut u = ResourceUsage::default();
        u.record(HostId(0), HostId(1), 10.0);
        u.record(HostId(0), HostId(2), 5.0);
        assert_eq!(u.sent_by(HostId(0)), 15.0);
        assert_eq!(u.received_by(HostId(1)), 10.0);
        assert_eq!(u.received_by(HostId(3)), 0.0);
        assert_eq!(u.total_cross_host_bytes(), 15.0);
    }
}
