//! The discrete-event execution engine.
//!
//! Compute tasks occupy their device serially, FIFO in ready order.
//! Flows share network resources with max–min fairness, solved
//! *incrementally*: the [`FairShare`] solver keeps per-resource flow
//! counts and a resource→flow index, and a flow-set change re-solves only
//! the connected components of the flow↔resource graph it touches
//! (untouched components keep their cached rates bit-for-bit). Flow
//! completions live in the event heap as `FlowDrained` entries keyed by
//! predicted drain time and invalidated lazily by a per-slot generation
//! counter when a rate changes, so advancing time never scans the active
//! flow set. Same-timestamp completions (within `REL_EPS` relative) are
//! batched into one cascade, exactly like the pre-refactor engine.
//!
//! [`SimModel::Exact`] reproduces progressive-filling max–min fairness;
//! [`SimModel::Aggregate`] swaps in the dslab-style per-resource
//! aggregate-throughput approximation (`min_r cap/count`) for coarse
//! 10k-host sweeps. The frozen pre-refactor engine survives as
//! [`ReferenceEngine`](crate::reference::ReferenceEngine) and pins this
//! one in `tests/netsim_equivalence.rs`.

use crate::error::SimError;
use crate::faults::Disruptions;
use crate::graph::{TaskGraph, TaskId, Work};
use crate::rates::{FairShare, SimModel, REL_EPS};
use crate::stats::{self, SimStats};
use crate::topology::{ClusterSpec, DeviceId, HostId};
use crate::trace::{FaultStats, ResourceUsage, TaskInterval, Trace};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Executes [`TaskGraph`]s on a [`ClusterSpec`].
///
/// The engine is deterministic: identical inputs produce identical traces.
#[derive(Debug)]
pub struct Engine<'a> {
    cluster: &'a ClusterSpec,
    model: SimModel,
}

/// Timed events. Flow completions are `FlowDrained` entries scheduled at
/// the flow's predicted drain time; a rate change bumps the slot's
/// generation so the superseded entry is discarded when popped.
#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    ComputeDone(TaskId),
    /// The fixed latency of a flow elapsed; the flow starts draining bytes.
    FlowLatencyDone(TaskId),
    /// The flow in this slot drains its last byte — valid only if the
    /// slot's generation still matches the second payload.
    FlowDrained(u32, u32),
    /// An injected fault fires; the payload indexes `Run::fault_actions`.
    Fault(usize),
}

/// A scheduled state change injected by [`Disruptions`].
#[derive(Debug, Clone, Copy, PartialEq)]
enum FaultAction {
    /// The host dies: everything on it or flowing through it fails.
    HostDown(HostId),
    /// The host's NIC send/recv capacity becomes `base * scale`.
    SetNicScale(HostId, f64),
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

/// One active (or recycled) flow slot. Bytes drain lazily: `remaining`
/// is exact as of `updated_at` and is only materialized when the rate
/// changes, not on every event.
#[derive(Debug, Clone, Copy)]
struct FlowSlot {
    task: TaskId,
    remaining: f64,
    rate: f64,
    /// Simulated time at which `remaining` was last materialized.
    updated_at: f64,
    /// Bumped on every rate change and on release, so events scheduled
    /// against an older rate (or a previous occupant) are stale.
    gen: u32,
    alive: bool,
}

/// An entry in a per-device FIFO ready queue, ordered by ready time then id.
#[derive(Debug, Clone, Copy)]
struct QueuedCompute {
    ready: f64,
    task: TaskId,
}

impl PartialEq for QueuedCompute {
    fn eq(&self, other: &Self) -> bool {
        self.ready == other.ready && self.task == other.task
    }
}
impl Eq for QueuedCompute {}
impl PartialOrd for QueuedCompute {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedCompute {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.ready
            .total_cmp(&other.ready)
            .then(self.task.cmp(&other.task))
    }
}

impl<'a> Engine<'a> {
    /// Creates an engine over the given cluster using the exact
    /// (max–min fair) contention model.
    pub fn new(cluster: &'a ClusterSpec) -> Self {
        Engine {
            cluster,
            model: SimModel::Exact,
        }
    }

    /// Creates an engine with an explicit contention model.
    pub fn with_model(cluster: &'a ClusterSpec, model: SimModel) -> Self {
        Engine { cluster, model }
    }

    /// The contention model this engine applies.
    pub fn model(&self) -> SimModel {
        self.model
    }

    /// Runs `graph` to completion and returns the trace.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownDevice`] if a task references a device not
    /// in the cluster, and [`SimError::Stalled`] if the run cannot make
    /// progress (impossible for graphs built through [`TaskGraph::add`],
    /// which are acyclic by construction).
    pub fn run(&self, graph: &TaskGraph) -> Result<Trace, SimError> {
        self.run_stats(graph).map(|(trace, _)| trace)
    }

    /// Like [`run`](Self::run), additionally returning the engine's
    /// performance counters for this run.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::run`].
    pub fn run_stats(&self, graph: &TaskGraph) -> Result<(Trace, SimStats), SimError> {
        Run::new(self.cluster, graph, &Disruptions::none(), self.model)?.execute()
    }

    /// Runs `graph` under the given injected [`Disruptions`].
    ///
    /// Faults do not abort the run: a task on a crashed host (or a flow
    /// whose retries ran out) *fails*, the failure poisons every task
    /// depending on it, and the run completes with the failed set reported
    /// via [`Trace::failed_tasks`]. Retries and dropped flows are counted
    /// in [`Trace::fault_stats`]. The engine stays fully deterministic:
    /// identical graph + disruptions produce identical traces.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::run`].
    ///
    /// # Panics
    ///
    /// Panics if `disruptions` fails [`Disruptions::validate`].
    pub fn run_with_disruptions(
        &self,
        graph: &TaskGraph,
        disruptions: &Disruptions,
    ) -> Result<Trace, SimError> {
        if let Err(why) = disruptions.validate() {
            panic!("invalid disruptions: {why}");
        }
        Run::new(self.cluster, graph, disruptions, self.model)?
            .execute()
            .map(|(trace, _)| trace)
    }
}

struct Run<'a> {
    cluster: &'a ClusterSpec,
    graph: &'a TaskGraph,
    /// Unmet dependency counts.
    pending_deps: Vec<usize>,
    /// Reverse edges: tasks that depend on each task.
    dependents: Vec<Vec<TaskId>>,
    intervals: Vec<TaskInterval>,
    done: Vec<bool>,
    completed: usize,
    usage: ResourceUsage,

    time: f64,
    events: BinaryHeap<Reverse<Event>>,
    next_seq: u64,

    /// Per-device: queue of ready compute tasks and whether one is running.
    device_queue: Vec<BinaryHeap<Reverse<QueuedCompute>>>,
    device_busy: Vec<bool>,
    /// Devices that may be able to start a queued compute (a task was
    /// queued or the device went idle); only these are visited by
    /// `dispatch_computes` — never the whole device array.
    dispatch_dirty: Vec<u32>,
    dispatch_marked: Vec<bool>,

    /// Flow slot arena; completed slots go on the free list and are
    /// recycled (generation counters survive reuse).
    flows: Vec<FlowSlot>,
    free_slots: Vec<u32>,
    active_flows: usize,
    solver: FairShare,
    rates_dirty: bool,
    /// Scratch: slots whose rate the last resolve changed.
    changed: Vec<u32>,

    // --- fault injection state (all neutral for a clean run) ---
    /// Scheduled state changes, indexed by `EventKind::Fault` payloads.
    fault_actions: Vec<FaultAction>,
    /// Which hosts have crashed so far.
    host_dead: Vec<bool>,
    /// The compute task currently executing on each device, if any.
    running_on: Vec<Option<TaskId>>,
    /// Per-device compute slowdown factor (1.0 = nominal).
    compute_scale: Vec<f64>,
    /// Remaining injected transmission drops per flow task.
    drops_left: BTreeMap<u32, u32>,
    /// Re-transmissions already performed per flow task.
    attempts: BTreeMap<u32, u32>,
    retry_backoff: f64,
    max_retries: u32,
    /// Tasks that failed (directly or by poisoned dependency).
    failed: Vec<bool>,
    failed_tasks: Vec<TaskId>,
    fault_stats: FaultStats,
    sim_stats: SimStats,
}

impl<'a> Run<'a> {
    fn new(
        cluster: &'a ClusterSpec,
        graph: &'a TaskGraph,
        disruptions: &Disruptions,
        model: SimModel,
    ) -> Result<Self, SimError> {
        let n = graph.len();
        let mut pending_deps = vec![0usize; n];
        let mut dependents = vec![Vec::new(); n];
        for (id, task) in graph.iter() {
            pending_deps[id.0 as usize] = task.deps.len();
            for d in &task.deps {
                dependents[d.0 as usize].push(id);
            }
            // Validate devices up front so errors surface before any event.
            let check = |dev: DeviceId| -> Result<(), SimError> {
                if cluster.contains(dev) {
                    Ok(())
                } else {
                    Err(SimError::UnknownDevice {
                        task: id,
                        device: dev,
                    })
                }
            };
            match task.work {
                Work::Compute { device, .. } | Work::ComputeFlops { device, .. } => check(device)?,
                Work::Flow { src, dst, .. } => {
                    check(src)?;
                    check(dst)?;
                }
                Work::Marker => {}
            }
        }

        let d = cluster.num_devices() as usize;
        let h = cluster.num_hosts() as usize;
        // Resource layout: device send, device recv, host NIC send, host
        // NIC recv, then the fabric slots of the cluster's FabricModel
        // (empty for an unbounded flat fabric).
        let capacities = cluster.resource_capacities();

        let mut compute_scale = vec![1.0f64; d];
        for &(device, factor) in &disruptions.compute_slowdown {
            if cluster.contains(device) {
                compute_scale[device.0 as usize] *= factor;
            }
        }

        let mut run = Run {
            cluster,
            graph,
            pending_deps,
            dependents,
            intervals: vec![
                TaskInterval {
                    start: 0.0,
                    finish: 0.0
                };
                n
            ],
            done: vec![false; n],
            completed: 0,
            usage: ResourceUsage::default(),
            time: 0.0,
            events: BinaryHeap::new(),
            next_seq: 0,
            device_queue: (0..d).map(|_| BinaryHeap::new()).collect(),
            device_busy: vec![false; d],
            dispatch_dirty: Vec::new(),
            dispatch_marked: vec![false; d],
            flows: Vec::new(),
            free_slots: Vec::new(),
            active_flows: 0,
            solver: FairShare::new(capacities, model),
            rates_dirty: false,
            changed: Vec::new(),
            fault_actions: Vec::new(),
            host_dead: vec![false; h],
            running_on: vec![None; d],
            compute_scale,
            drops_left: disruptions
                .flow_drops
                .iter()
                .filter(|&(_, &k)| k > 0)
                .map(|(&t, &k)| (t, k))
                .collect(),
            attempts: BTreeMap::new(),
            retry_backoff: disruptions.retry_backoff,
            max_retries: disruptions.max_retries,
            failed: vec![false; n],
            failed_tasks: Vec::new(),
            fault_stats: FaultStats::default(),
            sim_stats: SimStats::default(),
        };

        // Schedule timed fault actions before any task event so that, at
        // equal times, the fault applies first (lower sequence numbers win).
        for &(host, at) in &disruptions.host_down {
            if (host.0 as usize) < run.host_dead.len() {
                let idx = run.fault_actions.len();
                run.fault_actions.push(FaultAction::HostDown(host));
                run.push_event(at, EventKind::Fault(idx));
            }
        }
        for p in &disruptions.nic_scale {
            if (p.host.0 as usize) < run.host_dead.len() {
                let idx = run.fault_actions.len();
                run.fault_actions
                    .push(FaultAction::SetNicScale(p.host, p.factor));
                run.push_event(p.from, EventKind::Fault(idx));
                let idx = run.fault_actions.len();
                run.fault_actions
                    .push(FaultAction::SetNicScale(p.host, 1.0));
                run.push_event(p.until, EventKind::Fault(idx));
            }
        }
        Ok(run)
    }

    fn push_event(&mut self, time: f64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(Reverse(Event { time, seq, kind }));
    }

    /// Fails `task` at the current time: it is marked failed (poisoning
    /// every dependent) and completes instantly with a zero-length
    /// interval, so the run still terminates and reports the damage.
    fn fail_task(&mut self, task: TaskId, completions: &mut Vec<TaskId>) {
        self.intervals[task.0 as usize].start = self.time;
        self.failed[task.0 as usize] = true;
        self.failed_tasks.push(task);
        completions.push(task);
    }

    /// True if `host` has crashed.
    fn is_dead(&self, host: HostId) -> bool {
        self.host_dead[host.0 as usize]
    }

    /// Marks `task` ready at the current time: markers complete instantly
    /// (cascading), compute tasks enter their device queue, flows enter
    /// their latency phase. Under fault injection, a task whose dependency
    /// failed — or that needs a crashed host — fails instead.
    fn make_ready(&mut self, task: TaskId, completions: &mut Vec<TaskId>) {
        let t = self.graph.task(task);
        if t.deps.iter().any(|d| self.failed[d.0 as usize]) {
            self.fail_task(task, completions);
            return;
        }
        let needs_dead_host = match t.work {
            Work::Compute { device, .. } | Work::ComputeFlops { device, .. } => {
                self.is_dead(self.cluster.host_of(device))
            }
            Work::Flow { src, dst, .. } => {
                self.is_dead(self.cluster.host_of(src)) || self.is_dead(self.cluster.host_of(dst))
            }
            Work::Marker => false,
        };
        if needs_dead_host {
            self.fail_task(task, completions);
            return;
        }
        self.intervals[task.0 as usize].start = self.time;
        match t.work {
            Work::Marker => completions.push(task),
            Work::Compute { device, .. } | Work::ComputeFlops { device, .. } => {
                self.device_queue[device.0 as usize].push(Reverse(QueuedCompute {
                    ready: self.time,
                    task,
                }));
                self.mark_dispatch(device.0 as usize);
            }
            Work::Flow { src, dst, bytes } => {
                let src_host = self.cluster.host_of(src);
                let dst_host = self.cluster.host_of(dst);
                let links = self.cluster.host(src_host).links;
                let latency = if src_host == dst_host {
                    links.intra_host_latency
                } else {
                    self.usage.record(src_host, dst_host, bytes);
                    links.inter_host_latency
                };
                self.push_event(self.time + latency, EventKind::FlowLatencyDone(task));
            }
        }
    }

    /// Moves a flow whose latency elapsed into the active (draining) set.
    fn activate_flow(&mut self, task: TaskId, completions: &mut Vec<TaskId>) {
        let Work::Flow { src, dst, bytes } = self.graph.task(task).work else {
            unreachable!("latency event for a non-flow task");
        };
        // A host crash between readiness and activation kills the flow.
        if self.is_dead(self.cluster.host_of(src)) || self.is_dead(self.cluster.host_of(dst)) {
            self.fail_task(task, completions);
            return;
        }
        if bytes <= 0.0 {
            completions.push(task);
            return;
        }
        let d = self.cluster.num_devices() as usize;
        let h = self.cluster.num_hosts() as usize;
        let src_host = self.cluster.host_of(src);
        let dst_host = self.cluster.host_of(dst);
        let mut resources = vec![
            src.0 as usize,     // device send
            d + dst.0 as usize, // device recv
        ];
        if src_host != dst_host {
            resources.push(2 * d + src_host.0 as usize); // host NIC send
            resources.push(2 * d + h + dst_host.0 as usize); // host NIC recv
            self.cluster
                .fabric_route(src, dst, 2 * d + 2 * h, &mut resources);
        }
        let slot = match self.free_slots.pop() {
            Some(slot) => {
                let gen = self.flows[slot as usize].gen;
                self.flows[slot as usize] = FlowSlot {
                    task,
                    remaining: bytes,
                    rate: 0.0,
                    updated_at: self.time,
                    gen,
                    alive: true,
                };
                slot
            }
            None => {
                let slot = self.flows.len() as u32;
                self.flows.push(FlowSlot {
                    task,
                    remaining: bytes,
                    rate: 0.0,
                    updated_at: self.time,
                    gen: 0,
                    alive: true,
                });
                slot
            }
        };
        self.solver.add_flow(slot, resources);
        self.active_flows += 1;
        if self.active_flows > self.sim_stats.peak_active_flows {
            self.sim_stats.peak_active_flows = self.active_flows;
        }
        self.rates_dirty = true;
    }

    /// Removes `slot` from the active set (completion or kill). The slot's
    /// generation bump invalidates any drain event still in the heap.
    fn release_flow(&mut self, slot: u32) {
        let f = &mut self.flows[slot as usize];
        debug_assert!(f.alive, "flow released twice");
        f.alive = false;
        f.gen = f.gen.wrapping_add(1);
        self.solver.remove_flow(slot);
        self.free_slots.push(slot);
        self.active_flows -= 1;
        self.rates_dirty = true;
    }

    /// Re-solves fair shares and reschedules drain events for every flow
    /// whose rate changed, materializing its lazily-drained `remaining`.
    fn apply_rates(&mut self) {
        let mut changed = std::mem::take(&mut self.changed);
        changed.clear();
        self.solver.resolve(&mut changed);
        for &slot in &changed {
            let f = &mut self.flows[slot as usize];
            if !f.alive {
                // The solver can report a slot that was re-rated and then
                // killed within one batch; its event is already stale.
                continue;
            }
            let dt = self.time - f.updated_at;
            if dt > 0.0 && f.rate > 0.0 && f.rate.is_finite() {
                f.remaining -= f.rate * dt;
                if f.remaining < 0.0 {
                    f.remaining = 0.0;
                }
            }
            f.updated_at = self.time;
            f.rate = self.solver.rate(slot);
            f.gen = f.gen.wrapping_add(1);
            if f.rate > 0.0 {
                let due = if f.rate.is_finite() {
                    self.time + f.remaining / f.rate
                } else {
                    self.time
                };
                let gen = f.gen;
                self.push_event(due, EventKind::FlowDrained(slot, gen));
            }
            // rate == 0 (a zeroed NIC): no event; the flow waits for a
            // future rate change, or the run stalls like the old engine.
        }
        self.changed = changed;
    }

    /// The flow in `slot` drained its last byte: release it and either
    /// complete the task or spend an injected drop on a retry.
    fn finish_flow(&mut self, slot: u32, completions: &mut Vec<TaskId>) {
        let task = self.flows[slot as usize].task;
        self.flows[slot as usize].remaining = 0.0;
        self.release_flow(slot);
        if self.drops_left.get(&task.0).copied().unwrap_or(0) > 0 {
            self.handle_dropped_flow(task, completions);
        } else {
            completions.push(task);
        }
    }

    /// Marks `dev` for the next `dispatch_computes` pass.
    fn mark_dispatch(&mut self, dev: usize) {
        if !self.dispatch_marked[dev] {
            self.dispatch_marked[dev] = true;
            self.dispatch_dirty.push(dev as u32);
        }
    }

    /// Starts the next queued compute task on every marked idle device.
    fn dispatch_computes(&mut self) {
        let mut dirty = std::mem::take(&mut self.dispatch_dirty);
        for dev in dirty.drain(..) {
            let dev = dev as usize;
            self.dispatch_marked[dev] = false;
            if self.device_busy[dev] {
                continue;
            }
            if let Some(Reverse(q)) = self.device_queue[dev].pop() {
                self.device_busy[dev] = true;
                let seconds = match self.graph.task(q.task).work {
                    Work::Compute { seconds, .. } => seconds,
                    Work::ComputeFlops { device, flops } => {
                        flops / self.cluster.host(self.cluster.host_of(device)).device_flops
                    }
                    _ => unreachable!("non-compute task in device queue"),
                } * self.compute_scale[dev];
                // The task may have been queued earlier than now; it starts
                // executing when the device picks it up.
                self.intervals[q.task.0 as usize].start =
                    self.intervals[q.task.0 as usize].start.max(self.time);
                self.running_on[dev] = Some(q.task);
                self.push_event(self.time + seconds, EventKind::ComputeDone(q.task));
            }
        }
        // Reuse the allocation across passes.
        self.dispatch_dirty = dirty;
    }

    /// Applies a scheduled fault action at the current time.
    fn apply_fault(&mut self, action: FaultAction, completions: &mut Vec<TaskId>) {
        let d = self.cluster.num_devices() as usize;
        let h = self.cluster.num_hosts() as usize;
        match action {
            FaultAction::SetNicScale(host, scale) => {
                let base = self.cluster.host(host).links.inter_host_bw
                    * self.cluster.host_nic_multiplier();
                self.solver
                    .set_capacity(2 * d + host.0 as usize, base * scale);
                self.solver
                    .set_capacity(2 * d + h + host.0 as usize, base * scale);
                self.rates_dirty = true;
            }
            FaultAction::HostDown(host) => {
                if self.host_dead[host.0 as usize] {
                    return;
                }
                self.host_dead[host.0 as usize] = true;
                // Kill active flows touching the host.
                for slot in 0..self.flows.len() as u32 {
                    if !self.flows[slot as usize].alive {
                        continue;
                    }
                    let task = self.flows[slot as usize].task;
                    let fails = match self.graph.task(task).work {
                        Work::Flow { src, dst, .. } => {
                            self.cluster.host_of(src) == host || self.cluster.host_of(dst) == host
                        }
                        _ => false,
                    };
                    if fails {
                        self.release_flow(slot);
                        self.fail_task(task, completions);
                    }
                }
                // Kill running and queued computes on the host's devices.
                let devices: Vec<DeviceId> = self.cluster.devices_on(host).collect();
                for dev in devices {
                    let dev = dev.0 as usize;
                    if let Some(task) = self.running_on[dev].take() {
                        self.fail_task(task, completions);
                    }
                    // Leave the device marked busy so nothing dispatches.
                    self.device_busy[dev] = true;
                    while let Some(Reverse(q)) = self.device_queue[dev].pop() {
                        self.fail_task(q.task, completions);
                    }
                }
            }
        }
    }

    fn complete(&mut self, task: TaskId, newly_ready: &mut Vec<TaskId>) {
        debug_assert!(!self.done[task.0 as usize], "task completed twice");
        self.done[task.0 as usize] = true;
        self.completed += 1;
        self.intervals[task.0 as usize].finish = self.time;
        for i in 0..self.dependents[task.0 as usize].len() {
            let dep = self.dependents[task.0 as usize][i];
            let c = &mut self.pending_deps[dep.0 as usize];
            *c -= 1;
            if *c == 0 {
                newly_ready.push(dep);
            }
        }
    }

    fn execute(mut self) -> Result<(Trace, SimStats), SimError> {
        // Seed: tasks with no dependencies are ready at t=0.
        let mut completions: Vec<TaskId> = Vec::new();
        let initially_ready: Vec<TaskId> = self
            .pending_deps
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == 0)
            .map(|(i, _)| TaskId(i as u32))
            .collect();
        for t in initially_ready {
            self.make_ready(t, &mut completions);
        }

        loop {
            // Drain the completion cascade (markers and zero-byte flows
            // complete instantly and may unlock more instant tasks).
            while let Some(task) = completions.pop() {
                let mut ready = Vec::new();
                self.complete(task, &mut ready);
                for r in ready {
                    self.make_ready(r, &mut completions);
                }
            }
            self.dispatch_computes();
            if self.rates_dirty {
                self.rates_dirty = false;
                self.apply_rates();
            }

            if self.completed == self.graph.len() {
                break;
            }

            // Next event time: the heap is the single source of truth —
            // flow completions are FlowDrained entries, not a scan.
            let Some(&Reverse(head)) = self.events.peek() else {
                return Err(SimError::Stalled {
                    remaining: self.graph.len() - self.completed,
                });
            };
            let next = head.time;
            let eps = REL_EPS * next.max(1e-12);
            self.time = next;

            // Pop the batch of (near-)simultaneous events.
            while let Some(Reverse(e)) = self.events.peek().copied() {
                if e.time > self.time + eps {
                    break;
                }
                self.events.pop();
                match e.kind {
                    EventKind::ComputeDone(task) => {
                        // Skip tasks already failed by a host crash.
                        if self.done[task.0 as usize] {
                            continue;
                        }
                        self.sim_stats.events_processed += 1;
                        let device = self
                            .graph
                            .task(task)
                            .work
                            .compute_device()
                            .expect("compute event for non-compute task");
                        self.device_busy[device.0 as usize] = false;
                        self.running_on[device.0 as usize] = None;
                        self.mark_dispatch(device.0 as usize);
                        completions.push(task);
                    }
                    EventKind::FlowLatencyDone(task) => {
                        self.sim_stats.events_processed += 1;
                        self.activate_flow(task, &mut completions);
                    }
                    EventKind::FlowDrained(slot, gen) => {
                        let f = &self.flows[slot as usize];
                        if !f.alive || f.gen != gen {
                            self.sim_stats.events_stale += 1;
                            continue;
                        }
                        self.sim_stats.events_processed += 1;
                        self.finish_flow(slot, &mut completions);
                    }
                    EventKind::Fault(idx) => {
                        self.sim_stats.events_processed += 1;
                        let action = self.fault_actions[idx];
                        self.apply_fault(action, &mut completions);
                    }
                }
            }
        }

        self.sim_stats.rate_recomputes = self.solver.stats.recomputes;
        self.sim_stats.flows_resolved = self.solver.stats.flows_resolved;
        self.sim_stats.frontier_size = self.solver.stats.frontier_peak;
        stats::record(&self.sim_stats);

        self.failed_tasks.sort_unstable();
        self.failed_tasks.dedup();
        Ok((
            Trace::faulted(
                self.intervals,
                self.usage,
                self.fault_stats,
                self.failed_tasks,
            ),
            self.sim_stats,
        ))
    }

    /// The transmission that just drained was an injected drop: retry with
    /// exponential backoff, or fail the flow once the budget is spent.
    fn handle_dropped_flow(&mut self, task: TaskId, completions: &mut Vec<TaskId>) {
        let attempts = self.attempts.get(&task.0).copied().unwrap_or(0);
        if attempts >= self.max_retries {
            self.drops_left.remove(&task.0);
            self.fault_stats.dropped_flows += 1;
            self.fail_task(task, completions);
            return;
        }
        let left = self
            .drops_left
            .get_mut(&task.0)
            .expect("drop count present");
        *left -= 1;
        if *left == 0 {
            self.drops_left.remove(&task.0);
        }
        self.attempts.insert(task.0, attempts + 1);
        self.fault_stats.retries += 1;
        // The re-transmission re-sends every byte across the NICs.
        if let Work::Flow { src, dst, bytes } = self.graph.task(task).work {
            let src_host = self.cluster.host_of(src);
            let dst_host = self.cluster.host_of(dst);
            if src_host != dst_host {
                self.usage.record(src_host, dst_host, bytes);
            }
        }
        let backoff = self.retry_backoff * f64::powi(2.0, attempts as i32);
        self.push_event(self.time + backoff, EventKind::FlowLatencyDone(task));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{HostSpec, LinkParams};

    /// Link parameters with zero latency for exact arithmetic in tests.
    fn exact_links(intra: f64, inter: f64) -> LinkParams {
        LinkParams::new(intra, inter).with_latencies(0.0, 0.0)
    }

    fn two_hosts() -> ClusterSpec {
        ClusterSpec::homogeneous(2, 2, exact_links(10.0, 1.0))
    }

    #[test]
    fn single_flow_uses_full_bandwidth() {
        let c = two_hosts();
        let mut g = TaskGraph::new();
        g.add(Work::flow(c.device(0, 0), c.device(1, 0), 5.0), []);
        let t = Engine::new(&c).run(&g).unwrap();
        assert!((t.makespan() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn intra_host_flow_uses_fast_link() {
        let c = two_hosts();
        let mut g = TaskGraph::new();
        g.add(Work::flow(c.device(0, 0), c.device(0, 1), 5.0), []);
        let t = Engine::new(&c).run(&g).unwrap();
        assert!((t.makespan() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn two_flows_share_nic_fairly() {
        let c = two_hosts();
        let mut g = TaskGraph::new();
        // Both flows leave host 0: they share its NIC send capacity (1 B/s).
        g.add(Work::flow(c.device(0, 0), c.device(1, 0), 2.0), []);
        g.add(Work::flow(c.device(0, 1), c.device(1, 1), 2.0), []);
        let t = Engine::new(&c).run(&g).unwrap();
        assert!((t.makespan() - 4.0).abs() < 1e-9, "got {}", t.makespan());
    }

    #[test]
    fn disjoint_host_pairs_do_not_interfere() {
        let c = ClusterSpec::homogeneous(4, 1, exact_links(10.0, 1.0));
        let mut g = TaskGraph::new();
        g.add(Work::flow(c.device(0, 0), c.device(1, 0), 3.0), []);
        g.add(Work::flow(c.device(2, 0), c.device(3, 0), 3.0), []);
        let t = Engine::new(&c).run(&g).unwrap();
        assert!((t.makespan() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn full_duplex_send_and_receive_concurrently() {
        let c = two_hosts();
        let mut g = TaskGraph::new();
        g.add(Work::flow(c.device(0, 0), c.device(1, 0), 4.0), []);
        g.add(Work::flow(c.device(1, 1), c.device(0, 1), 4.0), []);
        let t = Engine::new(&c).run(&g).unwrap();
        // Opposite directions: both at full rate.
        assert!((t.makespan() - 4.0).abs() < 1e-9, "got {}", t.makespan());
    }

    #[test]
    fn max_min_fairness_releases_bandwidth() {
        let c = two_hosts();
        let mut g = TaskGraph::new();
        // Flow A: 2 bytes, flow B: 6 bytes, same NIC. Shared at 0.5 B/s
        // until A finishes at t=4 (B has 4 left), then B runs at 1 B/s and
        // finishes at t=8.
        let a = g.add(Work::flow(c.device(0, 0), c.device(1, 0), 2.0), []);
        let b = g.add(Work::flow(c.device(0, 1), c.device(1, 1), 6.0), []);
        let t = Engine::new(&c).run(&g).unwrap();
        assert!((t.interval(a).finish - 4.0).abs() < 1e-9);
        assert!((t.interval(b).finish - 8.0).abs() < 1e-9);
    }

    #[test]
    fn receiver_nic_is_a_bottleneck_too() {
        let c = ClusterSpec::homogeneous(3, 1, exact_links(10.0, 1.0));
        let mut g = TaskGraph::new();
        // Two different senders into the same receiving host: its NIC recv
        // capacity (1 B/s) is shared.
        g.add(Work::flow(c.device(0, 0), c.device(2, 0), 2.0), []);
        g.add(Work::flow(c.device(1, 0), c.device(2, 0), 2.0), []);
        let t = Engine::new(&c).run(&g).unwrap();
        assert!((t.makespan() - 4.0).abs() < 1e-9, "got {}", t.makespan());
    }

    #[test]
    fn compute_tasks_serialize_on_a_device() {
        let c = two_hosts();
        let mut g = TaskGraph::new();
        let d = c.device(0, 0);
        g.add(Work::compute(d, 1.0), []);
        g.add(Work::compute(d, 2.0), []);
        let t = Engine::new(&c).run(&g).unwrap();
        assert!((t.makespan() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn compute_tasks_parallel_on_distinct_devices() {
        let c = two_hosts();
        let mut g = TaskGraph::new();
        g.add(Work::compute(c.device(0, 0), 2.0), []);
        g.add(Work::compute(c.device(0, 1), 2.0), []);
        let t = Engine::new(&c).run(&g).unwrap();
        assert!((t.makespan() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn flops_convert_via_device_rate() {
        let c = two_hosts().with_device_flops(4.0);
        let mut g = TaskGraph::new();
        g.add(Work::compute_flops(c.device(0, 0), 8.0), []);
        let t = Engine::new(&c).run(&g).unwrap();
        assert!((t.makespan() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dependencies_are_honored() {
        let c = two_hosts();
        let mut g = TaskGraph::new();
        let a = g.add(Work::compute(c.device(0, 0), 1.0), []);
        let f = g.add(Work::flow(c.device(0, 0), c.device(1, 0), 1.0), [a]);
        let b = g.add(Work::compute(c.device(1, 0), 1.0), [f]);
        let t = Engine::new(&c).run(&g).unwrap();
        assert!((t.interval(a).finish - 1.0).abs() < 1e-9);
        assert!((t.interval(f).start - 1.0).abs() < 1e-9);
        assert!((t.interval(f).finish - 2.0).abs() < 1e-9);
        assert!((t.interval(b).finish - 3.0).abs() < 1e-9);
        assert!((t.makespan() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_of_compute_and_flow() {
        let c = two_hosts();
        let mut g = TaskGraph::new();
        // A flow and an unrelated compute proceed concurrently.
        g.add(Work::flow(c.device(0, 0), c.device(1, 0), 3.0), []);
        g.add(Work::compute(c.device(0, 0), 3.0), []);
        let t = Engine::new(&c).run(&g).unwrap();
        assert!((t.makespan() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn markers_are_instant() {
        let c = two_hosts();
        let mut g = TaskGraph::new();
        let a = g.add(Work::compute(c.device(0, 0), 1.5), []);
        let m = g.add(Work::Marker, [a]);
        let b = g.add(Work::compute(c.device(0, 1), 1.0), [m]);
        let t = Engine::new(&c).run(&g).unwrap();
        assert!((t.interval(m).finish - 1.5).abs() < 1e-9);
        assert!((t.interval(b).finish - 2.5).abs() < 1e-9);
    }

    #[test]
    fn zero_byte_flow_costs_only_latency() {
        let c = ClusterSpec::homogeneous(2, 1, LinkParams::new(10.0, 1.0).with_latencies(0.0, 0.5));
        let mut g = TaskGraph::new();
        g.add(Work::flow(c.device(0, 0), c.device(1, 0), 0.0), []);
        let t = Engine::new(&c).run(&g).unwrap();
        assert!((t.makespan() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn latency_adds_to_transfer_time() {
        let c =
            ClusterSpec::homogeneous(2, 1, LinkParams::new(10.0, 1.0).with_latencies(0.0, 0.25));
        let mut g = TaskGraph::new();
        g.add(Work::flow(c.device(0, 0), c.device(1, 0), 1.0), []);
        let t = Engine::new(&c).run(&g).unwrap();
        assert!((t.makespan() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn unknown_device_is_reported() {
        let c = two_hosts();
        let mut g = TaskGraph::new();
        g.add(Work::compute(DeviceId(99), 1.0), []);
        let err = Engine::new(&c).run(&g).unwrap_err();
        assert_eq!(
            err,
            SimError::UnknownDevice {
                task: TaskId(0),
                device: DeviceId(99)
            }
        );
    }

    #[test]
    fn empty_graph_has_zero_makespan() {
        let c = two_hosts();
        let t = Engine::new(&c).run(&TaskGraph::new()).unwrap();
        assert_eq!(t.makespan(), 0.0);
    }

    #[test]
    fn usage_tracks_cross_host_bytes_only() {
        let c = two_hosts();
        let mut g = TaskGraph::new();
        g.add(Work::flow(c.device(0, 0), c.device(1, 0), 7.0), []);
        g.add(Work::flow(c.device(0, 0), c.device(0, 1), 100.0), []);
        let t = Engine::new(&c).run(&g).unwrap();
        assert_eq!(t.usage().total_cross_host_bytes(), 7.0);
        assert_eq!(t.usage().sent_by(crate::HostId(0)), 7.0);
        assert_eq!(t.usage().received_by(crate::HostId(1)), 7.0);
    }

    #[test]
    fn chain_of_chunked_flows_pipelines() {
        // A 3-device line across 3 hosts, message split in K chunks:
        // classic store-and-forward pipelining. Total bytes 8, K = 4 chunks
        // of 2 bytes; NIC 1 B/s. Expected: first chunk arrives at hop 2 at
        // t=4, last chunk finishes at t = 8 + 2 = 10 (= t + t/K * A with
        // t=8, A=1 extra hop).
        let c = ClusterSpec::homogeneous(3, 1, exact_links(100.0, 1.0));
        let mut g = TaskGraph::new();
        let (d0, d1, d2) = (c.device(0, 0), c.device(1, 0), c.device(2, 0));
        let k = 4;
        let chunk = 2.0;
        let mut prev_hop1: Option<TaskId> = None;
        let mut prev_hop2: Option<TaskId> = None;
        for _ in 0..k {
            let h1 = g.add(Work::flow(d0, d1, chunk), prev_hop1.iter().copied());
            let deps: Vec<TaskId> = [Some(h1), prev_hop2].into_iter().flatten().collect();
            let h2 = g.add(Work::flow(d1, d2, chunk), deps);
            prev_hop1 = Some(h1);
            prev_hop2 = Some(h2);
        }
        let t = Engine::new(&c).run(&g).unwrap();
        assert!((t.makespan() - 10.0).abs() < 1e-6, "got {}", t.makespan());
    }

    #[test]
    fn heterogeneous_nic_speeds_are_respected() {
        // Host 1 has a 4x faster NIC than host 2; identical flows out of
        // host 0 finish 4x apart (each constrained by its receiver NIC
        // after the shared sender NIC frees up)... simpler: two senders.
        let links_fast = LinkParams::new(100.0, 4.0).with_latencies(0.0, 0.0);
        let links_slow = LinkParams::new(100.0, 1.0).with_latencies(0.0, 0.0);
        let c = ClusterSpec::new(vec![
            HostSpec {
                devices: 1,
                links: links_fast,
                device_flops: 1e12,
            },
            HostSpec {
                devices: 1,
                links: links_slow,
                device_flops: 1e12,
            },
            HostSpec {
                devices: 1,
                links: links_fast,
                device_flops: 1e12,
            },
        ]);
        let mut g = TaskGraph::new();
        // Fast host 0 -> fast host 2: 4 B/s. Slow host 1 -> fast host 2:
        // 1 B/s (its own NIC limits).
        let fast = g.add(Work::flow(c.device(0, 0), c.device(2, 0), 8.0), []);
        let slow = g.add(Work::flow(c.device(1, 0), c.device(2, 0), 8.0), []);
        let t = Engine::new(&c).run(&g).unwrap();
        // Receiver NIC is 4 B/s total: fair share gives the slow flow its
        // full 1 B/s and the fast flow 3 B/s until it finishes.
        assert!(
            (t.interval(slow).finish - 8.0).abs() < 1e-9,
            "slow NIC limits"
        );
        assert!(
            t.interval(fast).finish < 8.0,
            "fast flow must finish earlier: {:?}",
            t.interval(fast)
        );
    }

    #[test]
    fn fabric_capacity_caps_aggregate_traffic() {
        // Two flows on disjoint host pairs (1 B/s NICs): full bisection
        // finishes in 3 s; a 1.5 B/s oversubscribed core shares 0.75 B/s
        // each, finishing in 4 s.
        let full = ClusterSpec::homogeneous(4, 1, exact_links(10.0, 1.0));
        let capped = full.clone().with_fabric_capacity(1.5);
        let mut g = TaskGraph::new();
        g.add(Work::flow(full.device(0, 0), full.device(1, 0), 3.0), []);
        g.add(Work::flow(full.device(2, 0), full.device(3, 0), 3.0), []);
        let t_full = Engine::new(&full).run(&g).unwrap();
        let t_capped = Engine::new(&capped).run(&g).unwrap();
        assert!((t_full.makespan() - 3.0).abs() < 1e-9);
        assert!(
            (t_capped.makespan() - 4.0).abs() < 1e-9,
            "got {}",
            t_capped.makespan()
        );
    }

    #[test]
    fn fabric_capacity_ignores_intra_host_flows() {
        let c = ClusterSpec::homogeneous(1, 2, exact_links(10.0, 1.0)).with_fabric_capacity(0.5);
        let mut g = TaskGraph::new();
        g.add(Work::flow(c.device(0, 0), c.device(0, 1), 5.0), []);
        let t = Engine::new(&c).run(&g).unwrap();
        assert!((t.makespan() - 0.5).abs() < 1e-9, "NVLink unaffected");
    }

    #[test]
    fn rail_fabric_gives_each_rail_its_own_nic() {
        // 2 hosts × 2 devices, 2 rails at 1 B/s each. Two same-rail flows
        // on different rails run concurrently at full NIC speed — on the
        // flat fabric they'd share the single 1 B/s host NIC.
        let flat = ClusterSpec::homogeneous(2, 2, exact_links(10.0, 1.0));
        let rails = flat.clone().with_fabric(crate::FabricModel::RailOptimized {
            rails: 2,
            spine_capacity: 1.0,
        });
        let mut g = TaskGraph::new();
        g.add(Work::flow(flat.device(0, 0), flat.device(1, 0), 4.0), []);
        g.add(Work::flow(flat.device(0, 1), flat.device(1, 1), 4.0), []);
        let t_flat = Engine::new(&flat).run(&g).unwrap();
        let t_rails = Engine::new(&rails).run(&g).unwrap();
        assert!(
            (t_flat.makespan() - 8.0).abs() < 1e-9,
            "{}",
            t_flat.makespan()
        );
        assert!(
            (t_rails.makespan() - 4.0).abs() < 1e-9,
            "{}",
            t_rails.makespan()
        );
    }

    #[test]
    fn rail_fabric_charges_cross_rail_flows_on_the_spine() {
        // A cross-rail flow (local 0 -> local 1) shares the 0.5 B/s spine.
        let c = ClusterSpec::homogeneous(2, 2, exact_links(10.0, 1.0)).with_fabric(
            crate::FabricModel::RailOptimized {
                rails: 2,
                spine_capacity: 0.5,
            },
        );
        let mut g = TaskGraph::new();
        g.add(Work::flow(c.device(0, 0), c.device(1, 1), 2.0), []);
        let t = Engine::new(&c).run(&g).unwrap();
        assert!((t.makespan() - 4.0).abs() < 1e-9, "{}", t.makespan());
    }

    #[test]
    fn fat_tree_oversubscription_throttles_cross_pod_flows_only() {
        // 4 hosts in pods of 2, 1 B/s NICs, oversub 4 -> each pod uplink is
        // 2/4 = 0.5 B/s. Intra-pod flow: full NIC. Cross-pod flow: 0.5 B/s.
        let c = ClusterSpec::homogeneous(4, 1, exact_links(10.0, 1.0)).with_fabric(
            crate::FabricModel::FatTree {
                pod_hosts: 2,
                oversubscription: 4.0,
            },
        );
        let mut g = TaskGraph::new();
        let intra = g.add(Work::flow(c.device(0, 0), c.device(1, 0), 2.0), []);
        let t = Engine::new(&c).run(&g).unwrap();
        assert!((t.interval(intra).finish - 2.0).abs() < 1e-9);
        let mut g = TaskGraph::new();
        let cross = g.add(Work::flow(c.device(0, 0), c.device(2, 0), 2.0), []);
        let t = Engine::new(&c).run(&g).unwrap();
        assert!((t.interval(cross).finish - 4.0).abs() < 1e-9);
    }

    #[test]
    fn torus_transit_traffic_congests_shared_edges() {
        // 1×4 torus ring, 1 B/s links. h0->h2 routes east over h0's and
        // h1's east edges (2 hops each way tie -> east); h1->h2 shares h1's
        // east edge, so both flows halve on it.
        let c = ClusterSpec::homogeneous(4, 1, exact_links(10.0, 1.0)).with_fabric(
            crate::FabricModel::Torus2D {
                rows: 1,
                cols: 4,
                link_capacity: 1.0,
            },
        );
        let mut g = TaskGraph::new();
        let far = g.add(Work::flow(c.device(0, 0), c.device(2, 0), 2.0), []);
        let near = g.add(Work::flow(c.device(1, 0), c.device(2, 0), 2.0), []);
        let t = Engine::new(&c).run(&g).unwrap();
        // Both charge h1's east edge: 0.5 B/s each -> 4 s.
        assert!((t.interval(far).finish - 4.0).abs() < 1e-9);
        assert!((t.interval(near).finish - 4.0).abs() < 1e-9);
        // Alone, the far flow still runs at 1 B/s despite two hops.
        let mut g = TaskGraph::new();
        let solo = g.add(Work::flow(c.device(0, 0), c.device(2, 0), 2.0), []);
        let t = Engine::new(&c).run(&g).unwrap();
        assert!((t.interval(solo).finish - 2.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_across_runs() {
        let c = two_hosts();
        let mut g = TaskGraph::new();
        for i in 0..8 {
            let src = c.device(0, i % 2);
            let dst = c.device(1, (i + 1) % 2);
            g.add(Work::flow(src, dst, 1.0 + i as f64), []);
        }
        let t1 = Engine::new(&c).run(&g).unwrap();
        let t2 = Engine::new(&c).run(&g).unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn clean_run_has_clean_fault_stats() {
        let c = two_hosts();
        let mut g = TaskGraph::new();
        g.add(Work::flow(c.device(0, 0), c.device(1, 0), 5.0), []);
        let t = Engine::new(&c).run(&g).unwrap();
        assert!(t.fault_stats().is_clean());
        assert!(t.failed_tasks().is_empty());
    }

    #[test]
    fn nic_degradation_slows_a_flow_mid_transfer() {
        let c = two_hosts();
        let mut g = TaskGraph::new();
        // 8 bytes at 1 B/s; the NIC runs at 25% during [2, 6]: 2 bytes by
        // t=2, 1 byte over [2, 6], remaining 5 bytes after recovery → 11 s.
        g.add(Work::flow(c.device(0, 0), c.device(1, 0), 8.0), []);
        let mut d = Disruptions::none();
        d.nic_scale.push(crate::NicScalePeriod {
            host: crate::HostId(0),
            factor: 0.25,
            from: 2.0,
            until: 6.0,
        });
        let t = Engine::new(&c).run_with_disruptions(&g, &d).unwrap();
        assert!((t.makespan() - 11.0).abs() < 1e-9, "got {}", t.makespan());
        assert!(t.failed_tasks().is_empty());
    }

    #[test]
    fn straggler_slows_compute_on_one_device() {
        let c = two_hosts();
        let mut g = TaskGraph::new();
        let slow = g.add(Work::compute(c.device(0, 0), 1.0), []);
        let fast = g.add(Work::compute(c.device(0, 1), 1.0), []);
        let mut d = Disruptions::none();
        d.compute_slowdown.push((c.device(0, 0), 3.0));
        let t = Engine::new(&c).run_with_disruptions(&g, &d).unwrap();
        assert!((t.interval(slow).finish - 3.0).abs() < 1e-9);
        assert!((t.interval(fast).finish - 1.0).abs() < 1e-9);
    }

    #[test]
    fn host_crash_fails_tasks_and_poisons_dependents() {
        let c = two_hosts();
        let mut g = TaskGraph::new();
        // A long flow out of host 0, a dependent compute on host 1, and an
        // unrelated compute on host 1 that must survive.
        let f = g.add(Work::flow(c.device(0, 0), c.device(1, 0), 10.0), []);
        let dep = g.add(Work::compute(c.device(1, 0), 1.0), [f]);
        let ok = g.add(Work::compute(c.device(1, 1), 2.0), []);
        let mut d = Disruptions::none();
        d.host_down.push((crate::HostId(0), 3.0));
        let t = Engine::new(&c).run_with_disruptions(&g, &d).unwrap();
        assert_eq!(t.failed_tasks(), &[f, dep]);
        assert!((t.interval(f).finish - 3.0).abs() < 1e-9, "dies at crash");
        assert!((t.interval(ok).finish - 2.0).abs() < 1e-9, "survivor runs");
    }

    #[test]
    fn host_crash_kills_running_compute() {
        let c = two_hosts();
        let mut g = TaskGraph::new();
        let doomed = g.add(Work::compute(c.device(0, 0), 5.0), []);
        let mut d = Disruptions::none();
        d.host_down.push((crate::HostId(0), 1.0));
        let t = Engine::new(&c).run_with_disruptions(&g, &d).unwrap();
        assert_eq!(t.failed_tasks(), &[doomed]);
        assert!((t.interval(doomed).finish - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tasks_arriving_after_a_crash_fail_immediately() {
        let c = two_hosts();
        let mut g = TaskGraph::new();
        let a = g.add(Work::compute(c.device(1, 0), 2.0), []);
        let late = g.add(Work::compute(c.device(0, 0), 1.0), [a]);
        let mut d = Disruptions::none();
        d.host_down.push((crate::HostId(0), 1.0));
        let t = Engine::new(&c).run_with_disruptions(&g, &d).unwrap();
        assert_eq!(t.failed_tasks(), &[late]);
        assert!((t.interval(late).start - 2.0).abs() < 1e-9);
        assert!((t.interval(late).finish - 2.0).abs() < 1e-9);
    }

    #[test]
    fn flow_drops_retry_with_backoff() {
        let c = two_hosts();
        let mut g = TaskGraph::new();
        // 2 bytes at 1 B/s, dropped twice: transfers at [0,2], [2+b,4+b],
        // [4+3b, 6+3b] with b = 1 s backoff doubling per attempt.
        let f = g.add(Work::flow(c.device(0, 0), c.device(1, 0), 2.0), []);
        let mut d = Disruptions::none();
        d.flow_drops.insert(f.0, 2);
        d.retry_backoff = 1.0;
        let t = Engine::new(&c).run_with_disruptions(&g, &d).unwrap();
        assert!((t.makespan() - 9.0).abs() < 1e-9, "got {}", t.makespan());
        assert_eq!(t.fault_stats().retries, 2);
        assert!(t.failed_tasks().is_empty());
        // Every transmission re-sends the bytes across the NIC.
        assert_eq!(t.usage().total_cross_host_bytes(), 6.0);
    }

    #[test]
    fn drops_beyond_the_retry_budget_fail_the_flow() {
        let c = two_hosts();
        let mut g = TaskGraph::new();
        let f = g.add(Work::flow(c.device(0, 0), c.device(1, 0), 2.0), []);
        let dep = g.add(Work::compute(c.device(1, 0), 1.0), [f]);
        let mut d = Disruptions::none();
        d.flow_drops.insert(f.0, 5);
        d.max_retries = 2;
        d.retry_backoff = 0.5;
        let t = Engine::new(&c).run_with_disruptions(&g, &d).unwrap();
        assert_eq!(t.failed_tasks(), &[f, dep]);
        assert_eq!(t.fault_stats().retries, 2);
        assert_eq!(t.fault_stats().dropped_flows, 1);
    }

    #[test]
    fn disrupted_runs_are_deterministic() {
        let c = two_hosts();
        let mut g = TaskGraph::new();
        let mut prev = None;
        for i in 0..8 {
            let src = c.device(0, i % 2);
            let dst = c.device(1, (i + 1) % 2);
            let deps: Vec<TaskId> = prev.into_iter().collect();
            prev = Some(g.add(Work::flow(src, dst, 1.0 + i as f64), deps));
        }
        let mut d = Disruptions::none();
        d.nic_scale.push(crate::NicScalePeriod {
            host: crate::HostId(0),
            factor: 0.5,
            from: 1.0,
            until: 4.0,
        });
        d.flow_drops.insert(2, 1);
        d.host_down.push((crate::HostId(1), 20.0));
        let t1 = Engine::new(&c).run_with_disruptions(&g, &d).unwrap();
        let t2 = Engine::new(&c).run_with_disruptions(&g, &d).unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn empty_disruptions_match_a_plain_run() {
        let c = two_hosts();
        let mut g = TaskGraph::new();
        g.add(Work::flow(c.device(0, 0), c.device(1, 0), 3.0), []);
        g.add(Work::compute(c.device(0, 0), 1.0), []);
        let plain = Engine::new(&c).run(&g).unwrap();
        let faulted = Engine::new(&c)
            .run_with_disruptions(&g, &Disruptions::none())
            .unwrap();
        assert_eq!(plain, faulted);
    }

    #[test]
    #[should_panic(expected = "invalid disruptions")]
    fn invalid_disruptions_panic() {
        let c = two_hosts();
        let g = TaskGraph::new();
        let mut d = Disruptions::none();
        d.host_down.push((crate::HostId(0), f64::NAN));
        let _ = Engine::new(&c).run_with_disruptions(&g, &d);
    }

    // --- SimModel / stats tests (new with the incremental engine) ---

    #[test]
    fn sim_model_names_round_trip() {
        assert_eq!(SimModel::parse("exact"), Some(SimModel::Exact));
        assert_eq!(SimModel::parse("aggregate"), Some(SimModel::Aggregate));
        assert_eq!(SimModel::parse("bogus"), None);
        assert_eq!(SimModel::Exact.name(), "exact");
        assert_eq!(SimModel::Aggregate.name(), "aggregate");
        assert_eq!(Engine::new(&two_hosts()).model(), SimModel::Exact);
    }

    #[test]
    fn aggregate_model_matches_exact_on_symmetric_sharing() {
        // Two identical flows over one NIC: uniform sharing IS max–min.
        let c = two_hosts();
        let mut g = TaskGraph::new();
        g.add(Work::flow(c.device(0, 0), c.device(1, 0), 2.0), []);
        g.add(Work::flow(c.device(0, 1), c.device(1, 1), 2.0), []);
        let exact = Engine::new(&c).run(&g).unwrap();
        let agg = Engine::with_model(&c, SimModel::Aggregate).run(&g).unwrap();
        assert!((agg.makespan() - exact.makespan()).abs() < 1e-9);
    }

    #[test]
    fn aggregate_model_is_conservative_on_asymmetric_sharing() {
        // Fast sender (4 B/s) + slow sender (1 B/s) into one 4 B/s
        // receiver. Exact max–min redistributes the slow flow's unused
        // share to the fast flow (3 B/s); the aggregate model keeps the
        // uniform split (2 B/s), so the fast flow finishes later — but
        // never earlier than exact.
        let links_fast = LinkParams::new(100.0, 4.0).with_latencies(0.0, 0.0);
        let links_slow = LinkParams::new(100.0, 1.0).with_latencies(0.0, 0.0);
        let c = ClusterSpec::new(vec![
            HostSpec {
                devices: 1,
                links: links_fast,
                device_flops: 1e12,
            },
            HostSpec {
                devices: 1,
                links: links_slow,
                device_flops: 1e12,
            },
            HostSpec {
                devices: 1,
                links: links_fast,
                device_flops: 1e12,
            },
        ]);
        let mut g = TaskGraph::new();
        let fast = g.add(Work::flow(c.device(0, 0), c.device(2, 0), 8.0), []);
        let slow = g.add(Work::flow(c.device(1, 0), c.device(2, 0), 8.0), []);
        let exact = Engine::new(&c).run(&g).unwrap();
        let agg = Engine::with_model(&c, SimModel::Aggregate).run(&g).unwrap();
        // Aggregate: fast = min(4/1, 4/2) = 2 B/s → done at t=4 (exact:
        // 8/3 s). Slow: 1 B/s → t=8 either way.
        assert!((agg.interval(fast).finish - 4.0).abs() < 1e-9);
        assert!((agg.interval(slow).finish - 8.0).abs() < 1e-9);
        assert!(agg.interval(fast).finish >= exact.interval(fast).finish - 1e-9);
        assert!(agg.makespan() >= exact.makespan() - 1e-9);
    }

    #[test]
    fn aggregate_model_is_deterministic() {
        let c = two_hosts();
        let mut g = TaskGraph::new();
        for i in 0..8 {
            let src = c.device(0, i % 2);
            let dst = c.device(1, (i + 1) % 2);
            g.add(Work::flow(src, dst, 1.0 + i as f64), []);
        }
        let e = Engine::with_model(&c, SimModel::Aggregate);
        assert_eq!(e.run(&g).unwrap(), e.run(&g).unwrap());
    }

    #[test]
    fn run_stats_counts_events_and_recomputes() {
        let c = two_hosts();
        let mut g = TaskGraph::new();
        let a = g.add(Work::flow(c.device(0, 0), c.device(1, 0), 2.0), []);
        g.add(Work::flow(c.device(0, 1), c.device(1, 1), 6.0), [a]);
        g.add(Work::compute(c.device(0, 0), 1.0), []);
        let (t, s) = Engine::new(&c).run_stats(&g).unwrap();
        assert!(t.makespan() > 0.0);
        // 2 latency events + 2 drains + 1 compute.
        assert_eq!(s.events_processed, 5);
        assert!(s.rate_recomputes >= 2, "{s:?}");
        assert!(s.flows_resolved >= 2);
        assert_eq!(s.peak_active_flows, 1, "flows are sequential here");
        assert!(s.frontier_size >= 1);
        // Cumulative process-wide counters absorbed this run.
        let total = crate::stats::cumulative();
        assert!(total.events_processed >= s.events_processed);
    }

    #[test]
    fn stale_drain_events_are_discarded_not_processed() {
        // Flow B starts alone at 1 B/s (drain predicted at t=4); at t=1 a
        // compute finishes and unlocks flow A on the same NIC, halving B's
        // rate. B's superseded t=4 event pops before its real t=7 finish
        // and must be discarded as stale, not processed.
        let c = two_hosts();
        let mut g = TaskGraph::new();
        let b = g.add(Work::flow(c.device(0, 0), c.device(1, 0), 4.0), []);
        let w = g.add(Work::compute(c.device(0, 1), 1.0), []);
        let a = g.add(Work::flow(c.device(0, 1), c.device(1, 1), 4.0), [w]);
        let (t, s) = Engine::new(&c).run_stats(&g).unwrap();
        assert!((t.interval(b).finish - 7.0).abs() < 1e-9, "{t:?}");
        // A: 2 bytes by t=5 at 0.5 B/s... it speeds back up to 1 B/s when
        // B ends at t=7 (3 bytes drained), finishing its last byte at t=8.
        assert!((t.interval(a).finish - 8.0).abs() < 1e-9, "{t:?}");
        assert!(s.events_stale >= 1, "{s:?}");
        assert_eq!(s.peak_active_flows, 2);
    }

    #[test]
    fn recycled_flow_slots_do_not_resurrect_old_events() {
        // Many short sequential flows force slot reuse; generations must
        // keep a recycled slot's stale events from completing the new
        // occupant early.
        let c = two_hosts();
        let mut g = TaskGraph::new();
        let mut prev: Option<TaskId> = None;
        for i in 0..16 {
            let deps: Vec<TaskId> = prev.into_iter().collect();
            prev = Some(g.add(
                Work::flow(c.device(0, i % 2), c.device(1, i % 2), 1.0),
                deps,
            ));
        }
        let t = Engine::new(&c).run(&g).unwrap();
        assert!((t.makespan() - 16.0).abs() < 1e-9, "got {}", t.makespan());
    }
}
