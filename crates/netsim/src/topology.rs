//! Cluster topology: hosts, devices, and link parameters.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a compute device (e.g., a GPU), global across the cluster.
///
/// Devices are numbered host by host: host 0 owns devices `0..d0`, host 1
/// owns `d0..d0+d1`, and so on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DeviceId(pub u32);

/// Identifier of a host (a machine holding one or more devices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(pub u32);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl From<u32> for DeviceId {
    fn from(v: u32) -> Self {
        DeviceId(v)
    }
}

impl From<u32> for HostId {
    fn from(v: u32) -> Self {
        HostId(v)
    }
}

/// Bandwidth and latency parameters of a homogeneous cluster.
///
/// Bandwidths are in bytes per second, latencies in seconds. Links are
/// full duplex: sending and receiving draw on separate capacities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Per-device intra-host send bandwidth (NVLink-class), bytes/s.
    pub intra_host_bw: f64,
    /// Per-host NIC bandwidth for inter-host traffic, bytes/s (each
    /// direction; the host is the bottleneck, per the paper's §3 setting).
    pub inter_host_bw: f64,
    /// Fixed latency added to every intra-host flow, seconds.
    pub intra_host_latency: f64,
    /// Fixed latency added to every inter-host flow, seconds.
    pub inter_host_latency: f64,
}

impl LinkParams {
    /// Creates link parameters with the given intra-host and inter-host
    /// bandwidths (bytes/s) and small default latencies (5 µs intra-host,
    /// 25 µs inter-host).
    ///
    /// # Panics
    ///
    /// Panics if either bandwidth is not strictly positive and finite.
    pub fn new(intra_host_bw: f64, inter_host_bw: f64) -> Self {
        assert!(
            intra_host_bw > 0.0 && intra_host_bw.is_finite(),
            "intra-host bandwidth must be positive and finite"
        );
        assert!(
            inter_host_bw > 0.0 && inter_host_bw.is_finite(),
            "inter-host bandwidth must be positive and finite"
        );
        LinkParams {
            intra_host_bw,
            inter_host_bw,
            intra_host_latency: 5e-6,
            inter_host_latency: 25e-6,
        }
    }

    /// Returns a copy with both latencies overridden.
    #[must_use]
    pub fn with_latencies(mut self, intra: f64, inter: f64) -> Self {
        self.intra_host_latency = intra;
        self.inter_host_latency = inter;
        self
    }
}

/// The modeled inter-host fabric: how cross-host flows are routed and which
/// shared capacities they contend on, beyond each host's NIC.
///
/// The paper assumes a flat full-bisection network bottlenecked at the host
/// NIC ([`FabricModel::Flat`] with no aggregate cap). The other variants
/// model the multi-tier topologies MoE all-to-all traffic actually crosses:
/// rail-optimized clusters (one NIC per device, K parallel rail switches),
/// two-level fat trees with an oversubscribed core, and 2D host tori.
///
/// Every variant maps each cross-host flow onto a fixed set of capacity
/// slots that the engine's max–min fair sharing contends over; intra-host
/// flows never touch the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FabricModel {
    /// Flat two-tier fabric: every host pair connected at NIC bandwidth.
    /// `capacity` optionally caps the *sum* of all concurrent cross-host
    /// traffic (an oversubscribed core); `None` is the paper's
    /// full-bisection assumption — capacity checks are vacuous.
    Flat {
        /// Aggregate cross-host capacity, bytes/s; `None` = full bisection.
        capacity: Option<f64>,
    },
    /// Rail-optimized fabric: `rails` parallel switch planes ("rails"), with
    /// the device at local index `l` owning a dedicated NIC on rail
    /// `l % rails`. Each (host, rail) NIC runs at the host's
    /// `inter_host_bw`, so a host's aggregate egress is `rails ×` the flat
    /// fabric's. Same-rail flows stay on one switch; cross-rail flows also
    /// cross a shared spine of `spine_capacity` bytes/s — which is why
    /// rail-aligned spraying (RailS) wins here.
    RailOptimized {
        /// Number of rail planes (NICs per host).
        rails: u32,
        /// Capacity of the spine connecting different rails, bytes/s.
        spine_capacity: f64,
    },
    /// Two-level fat tree: hosts grouped into pods of `pod_hosts` leaves.
    /// Intra-pod traffic switches at the non-blocking leaf; cross-pod
    /// traffic shares each pod's uplink, provisioned at the pod's summed
    /// NIC bandwidth divided by `oversubscription`.
    FatTree {
        /// Hosts per pod (last pod may be smaller).
        pod_hosts: u32,
        /// Core oversubscription factor (≥ 1; 1 = full bisection core).
        oversubscription: f64,
    },
    /// 2D torus of hosts (`rows × cols`, row-major host numbering) with
    /// per-direction link capacity `link_capacity` on every edge. Flows are
    /// routed dimension-ordered (columns first, shortest wrap direction,
    /// ties broken toward +x/+y) and charge every directed edge they
    /// traverse, so transit traffic congests intermediate links.
    Torus2D {
        /// Number of host rows.
        rows: u32,
        /// Number of host columns.
        cols: u32,
        /// Per-direction capacity of each torus edge, bytes/s.
        link_capacity: f64,
    },
}

impl Default for FabricModel {
    /// The paper's flat full-bisection fabric.
    fn default() -> Self {
        FabricModel::Flat { capacity: None }
    }
}

impl fmt::Display for FabricModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricModel::Flat { capacity: None } => write!(f, "flat/full-bisection"),
            FabricModel::Flat { capacity: Some(c) } => write!(f, "flat/core={c:.3e} B/s"),
            FabricModel::RailOptimized {
                rails,
                spine_capacity,
            } => write!(f, "rails(k={rails}, spine={spine_capacity:.3e} B/s)"),
            FabricModel::FatTree {
                pod_hosts,
                oversubscription,
            } => write!(
                f,
                "fat-tree(pod={pod_hosts} hosts, oversub={oversubscription}x)"
            ),
            FabricModel::Torus2D {
                rows,
                cols,
                link_capacity,
            } => write!(f, "torus2d({rows}x{cols}, link={link_capacity:.3e} B/s)"),
        }
    }
}

impl FabricModel {
    /// True when the fabric imposes no cross-host capacity beyond the host
    /// NICs — any aggregate-capacity sanity check is vacuously satisfied.
    pub fn is_unbounded(&self) -> bool {
        matches!(self, FabricModel::Flat { capacity: None })
    }

    /// The number of rail planes, for rail-optimized fabrics.
    pub fn rails(&self) -> Option<u32> {
        match self {
            FabricModel::RailOptimized { rails, .. } => Some(*rails),
            _ => None,
        }
    }
}

/// Per-host description: device count, link parameters, and compute rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostSpec {
    /// Number of devices attached to this host.
    pub devices: u32,
    /// Link parameters used by flows touching this host.
    pub links: LinkParams,
    /// Peak compute rate of each device, FLOP/s. Used to convert
    /// [`Work::compute_flops`](crate::Work::compute_flops) tasks to time.
    pub device_flops: f64,
}

/// A cluster: an ordered list of hosts, each with a set of devices.
///
/// The inter-host topology is fully connected with equal pairwise bandwidth,
/// bottlenecked at each host's NIC (the common cloud/datacenter setting the
/// paper assumes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    hosts: Vec<HostSpec>,
    /// `device_host[d]` is the host owning global device `d`.
    device_host: Vec<HostId>,
    /// `host_base[h]` is the global id of host `h`'s first device.
    host_base: Vec<u32>,
    /// The modeled inter-host fabric (see [`FabricModel`]).
    fabric: FabricModel,
}

impl ClusterSpec {
    /// Builds a cluster from per-host specs.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is empty or any host has zero devices.
    pub fn new(hosts: Vec<HostSpec>) -> Self {
        assert!(!hosts.is_empty(), "cluster must have at least one host");
        let mut device_host = Vec::new();
        let mut host_base = Vec::with_capacity(hosts.len());
        for (h, spec) in hosts.iter().enumerate() {
            assert!(spec.devices > 0, "host {h} must have at least one device");
            host_base.push(device_host.len() as u32);
            for _ in 0..spec.devices {
                device_host.push(HostId(h as u32));
            }
        }
        ClusterSpec {
            hosts,
            device_host,
            host_base,
            fabric: FabricModel::default(),
        }
    }

    /// Builds a homogeneous cluster: `n_hosts` hosts with `devices_per_host`
    /// devices each, all sharing `links`, with a default compute rate of
    /// 100 TFLOP/s per device (override with [`ClusterSpec::with_device_flops`]).
    ///
    /// # Panics
    ///
    /// Panics if `n_hosts` or `devices_per_host` is zero.
    pub fn homogeneous(n_hosts: u32, devices_per_host: u32, links: LinkParams) -> Self {
        assert!(n_hosts > 0, "cluster must have at least one host");
        let host = HostSpec {
            devices: devices_per_host,
            links,
            device_flops: 100e12,
        };
        ClusterSpec::new(vec![host; n_hosts as usize])
    }

    /// Returns a copy with every device's compute rate set to `flops` FLOP/s.
    ///
    /// # Panics
    ///
    /// Panics if `flops` is not strictly positive and finite.
    #[must_use]
    pub fn with_device_flops(mut self, flops: f64) -> Self {
        assert!(
            flops > 0.0 && flops.is_finite(),
            "device FLOP/s must be positive and finite"
        );
        for h in &mut self.hosts {
            h.device_flops = flops;
        }
        self
    }

    /// Returns a copy whose inter-host fabric is oversubscribed: the sum
    /// of all concurrent cross-host traffic is capped at `bytes_per_sec`
    /// (an extension beyond the paper's full-bisection assumption, for
    /// studying congested datacenter cores).
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not strictly positive and finite.
    #[must_use]
    pub fn with_fabric_capacity(mut self, bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec > 0.0 && bytes_per_sec.is_finite(),
            "fabric capacity must be positive and finite"
        );
        self.fabric = FabricModel::Flat {
            capacity: Some(bytes_per_sec),
        };
        self
    }

    /// Returns a copy with the inter-host fabric replaced by `fabric`.
    ///
    /// # Panics
    ///
    /// Panics if the fabric is inconsistent with the cluster: zero rails or
    /// a non-positive spine/link capacity, an oversubscription factor below
    /// one, zero-host pods, or a torus whose `rows × cols` does not equal
    /// the host count.
    #[must_use]
    pub fn with_fabric(mut self, fabric: FabricModel) -> Self {
        match fabric {
            FabricModel::Flat { capacity } => {
                if let Some(c) = capacity {
                    assert!(
                        c > 0.0 && c.is_finite(),
                        "fabric capacity must be positive and finite"
                    );
                }
            }
            FabricModel::RailOptimized {
                rails,
                spine_capacity,
            } => {
                assert!(rails > 0, "a rail-optimized fabric needs at least one rail");
                assert!(
                    spine_capacity > 0.0 && spine_capacity.is_finite(),
                    "spine capacity must be positive and finite"
                );
            }
            FabricModel::FatTree {
                pod_hosts,
                oversubscription,
            } => {
                assert!(pod_hosts > 0, "a fat-tree pod needs at least one host");
                assert!(
                    oversubscription >= 1.0 && oversubscription.is_finite(),
                    "oversubscription factor must be >= 1"
                );
            }
            FabricModel::Torus2D {
                rows,
                cols,
                link_capacity,
            } => {
                assert!(
                    rows as usize * cols as usize == self.hosts.len(),
                    "torus is {rows}x{cols} but the cluster has {} hosts",
                    self.hosts.len()
                );
                assert!(
                    link_capacity > 0.0 && link_capacity.is_finite(),
                    "torus link capacity must be positive and finite"
                );
            }
        }
        self.fabric = fabric;
        self
    }

    /// The modeled inter-host fabric.
    pub fn fabric(&self) -> &FabricModel {
        &self.fabric
    }

    /// The aggregate inter-host fabric capacity, if the cluster models a
    /// flat fabric with an oversubscribed core (see
    /// [`ClusterSpec::with_fabric_capacity`]). Multi-tier fabrics return
    /// `None` — their capacities are per-link, not aggregate.
    pub fn fabric_capacity(&self) -> Option<f64> {
        match self.fabric {
            FabricModel::Flat { capacity } => capacity,
            _ => None,
        }
    }

    /// The local index of `device` on its host (its position among the
    /// host's devices).
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn local_index(&self, device: DeviceId) -> u32 {
        let host = self.host_of(device);
        device.0 - self.host_base[host.0 as usize]
    }

    /// The rail plane `device`'s NIC sits on, for rail-optimized fabrics.
    pub fn rail_of(&self, device: DeviceId) -> Option<u32> {
        self.fabric.rails().map(|k| self.local_index(device) % k)
    }

    /// Capacities of the fabric resource slots the engine appends after the
    /// per-device and per-host-NIC slots. Empty for an unbounded flat
    /// fabric. Slots are finite by construction.
    pub(crate) fn fabric_slot_capacities(&self) -> Vec<f64> {
        match self.fabric {
            FabricModel::Flat { capacity: None } => Vec::new(),
            FabricModel::Flat { capacity: Some(c) } => vec![c],
            FabricModel::RailOptimized {
                rails,
                spine_capacity,
            } => {
                // [per-(host,rail) send ×H·K][per-(host,rail) recv ×H·K][spine].
                let mut slots = Vec::with_capacity(2 * self.hosts.len() * rails as usize + 1);
                for direction in 0..2 {
                    let _ = direction;
                    for host in &self.hosts {
                        for _ in 0..rails {
                            slots.push(host.links.inter_host_bw);
                        }
                    }
                }
                slots.push(spine_capacity);
                slots
            }
            FabricModel::FatTree {
                pod_hosts,
                oversubscription,
            } => {
                // [per-pod uplink ×P][per-pod downlink ×P]; each pod's link
                // is its summed NIC bandwidth divided by the oversubscription.
                let pods = self.hosts.chunks(pod_hosts as usize);
                let caps: Vec<f64> = pods
                    .map(|pod| {
                        pod.iter().map(|h| h.links.inter_host_bw).sum::<f64>() / oversubscription
                    })
                    .collect();
                let mut slots = caps.clone();
                slots.extend(caps);
                slots
            }
            FabricModel::Torus2D { link_capacity, .. } => {
                // 4 directed edges per host: +x (east), -x (west), +y
                // (south), -y (north).
                vec![link_capacity; self.hosts.len() * 4]
            }
        }
    }

    /// Appends (to `out`) the absolute resource indices a cross-host flow
    /// `src → dst` occupies in the fabric, where `base` is the index of the
    /// first fabric slot. Must mirror [`fabric_slot_capacities`]'s layout.
    pub(crate) fn fabric_route(
        &self,
        src: DeviceId,
        dst: DeviceId,
        base: usize,
        out: &mut Vec<usize>,
    ) {
        let src_host = self.host_of(src).0 as usize;
        let dst_host = self.host_of(dst).0 as usize;
        match self.fabric {
            FabricModel::Flat { capacity: None } => {}
            FabricModel::Flat { capacity: Some(_) } => out.push(base),
            FabricModel::RailOptimized { rails, .. } => {
                let k = rails as usize;
                let h = self.hosts.len();
                let src_rail = (self.local_index(src) % rails) as usize;
                let dst_rail = (self.local_index(dst) % rails) as usize;
                out.push(base + src_host * k + src_rail);
                out.push(base + h * k + dst_host * k + dst_rail);
                if src_rail != dst_rail {
                    out.push(base + 2 * h * k);
                }
            }
            FabricModel::FatTree { pod_hosts, .. } => {
                let src_pod = src_host / pod_hosts as usize;
                let dst_pod = dst_host / pod_hosts as usize;
                if src_pod != dst_pod {
                    let pods = self.hosts.len().div_ceil(pod_hosts as usize);
                    out.push(base + src_pod);
                    out.push(base + pods + dst_pod);
                }
            }
            FabricModel::Torus2D { rows, cols, .. } => {
                torus_route(src_host, dst_host, rows as usize, cols as usize, base, out);
            }
        }
    }

    /// The full engine resource-capacity table for this cluster, in the
    /// canonical slot layout shared by both simulator engines:
    /// `[device send ×D][device recv ×D][host NIC send ×H][host NIC recv
    /// ×H][fabric slots…]`. Device slots carry the host's intra-host
    /// bandwidth; NIC slots carry the inter-host bandwidth times
    /// [`host_nic_multiplier`](Self::host_nic_multiplier); fabric slots
    /// follow [`fabric_slot_capacities`](Self::fabric_slot_capacities).
    pub(crate) fn resource_capacities(&self) -> Vec<f64> {
        let d = self.num_devices() as usize;
        let h = self.num_hosts() as usize;
        let fabric = self.fabric_slot_capacities();
        let mut capacities = vec![0.0; 2 * d + 2 * h];
        for dev in 0..d {
            let host = self.host_of(DeviceId(dev as u32));
            let bw = self.host(host).links.intra_host_bw;
            capacities[dev] = bw; // device send
            capacities[d + dev] = bw; // device recv
        }
        let nic_mult = self.host_nic_multiplier();
        for host in 0..h {
            let bw = self.host(HostId(host as u32)).links.inter_host_bw * nic_mult;
            capacities[2 * d + host] = bw; // host send
            capacities[2 * d + h + host] = bw; // host recv
        }
        capacities.extend(fabric);
        capacities
    }

    /// Factor applied to each host's NIC send/recv capacity: a
    /// rail-optimized host has one NIC per rail, so its aggregate egress is
    /// `rails ×` the flat fabric's.
    pub(crate) fn host_nic_multiplier(&self) -> f64 {
        match self.fabric {
            FabricModel::RailOptimized { rails, .. } => f64::from(rails),
            _ => 1.0,
        }
    }

    /// Total number of devices in the cluster.
    pub fn num_devices(&self) -> u32 {
        self.device_host.len() as u32
    }

    /// Number of hosts in the cluster.
    pub fn num_hosts(&self) -> u32 {
        self.hosts.len() as u32
    }

    /// The host that owns `device`.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn host_of(&self, device: DeviceId) -> HostId {
        self.device_host[device.0 as usize]
    }

    /// The global id of the `local`-th device on host `host`.
    ///
    /// # Panics
    ///
    /// Panics if `host` or `local` is out of range.
    pub fn device(&self, host: u32, local: u32) -> DeviceId {
        let spec = &self.hosts[host as usize];
        assert!(
            local < spec.devices,
            "host {host} has {} devices, asked for local index {local}",
            spec.devices
        );
        DeviceId(self.host_base[host as usize] + local)
    }

    /// All global device ids on `host`, in order.
    pub fn devices_on(&self, host: HostId) -> impl Iterator<Item = DeviceId> + '_ {
        let base = self.host_base[host.0 as usize];
        let n = self.hosts[host.0 as usize].devices;
        (base..base + n).map(DeviceId)
    }

    /// The spec of `host`.
    pub fn host(&self, host: HostId) -> &HostSpec {
        &self.hosts[host.0 as usize]
    }

    /// Whether both devices sit on the same host.
    pub fn same_host(&self, a: DeviceId, b: DeviceId) -> bool {
        self.host_of(a) == self.host_of(b)
    }

    /// True if `device` is a valid id for this cluster.
    pub fn contains(&self, device: DeviceId) -> bool {
        (device.0 as usize) < self.device_host.len()
    }
}

impl fmt::Display for ClusterSpec {
    /// One-line topology summary naming the modeled fabric explicitly, so
    /// an unbounded fabric is a visible statement rather than a silent
    /// default.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hosts / {} devices, fabric {}",
            self.num_hosts(),
            self.num_devices(),
            self.fabric
        )
    }
}

/// Dimension-ordered torus routing: walks columns first, then rows, taking
/// the shortest wrap direction (ties toward +x/+y), pushing each traversed
/// directed edge's slot index. Edge slots per host: `host*4 + dir` with
/// dirs 0 = east (+col), 1 = west, 2 = south (+row), 3 = north.
fn torus_route(
    src_host: usize,
    dst_host: usize,
    rows: usize,
    cols: usize,
    base: usize,
    out: &mut Vec<usize>,
) {
    let (mut r, mut c) = (src_host / cols, src_host % cols);
    let (dst_r, dst_c) = (dst_host / cols, dst_host % cols);
    while c != dst_c {
        let east = (dst_c + cols - c) % cols;
        let west = (c + cols - dst_c) % cols;
        let host = r * cols + c;
        if east <= west {
            out.push(base + host * 4);
            c = (c + 1) % cols;
        } else {
            out.push(base + host * 4 + 1);
            c = (c + cols - 1) % cols;
        }
    }
    while r != dst_r {
        let south = (dst_r + rows - r) % rows;
        let north = (r + rows - dst_r) % rows;
        let host = r * cols + c;
        if south <= north {
            out.push(base + host * 4 + 2);
            r = (r + 1) % rows;
        } else {
            out.push(base + host * 4 + 3);
            r = (r + rows - 1) % rows;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> ClusterSpec {
        ClusterSpec::homogeneous(3, 4, LinkParams::new(100e9, 1.25e9))
    }

    #[test]
    fn device_numbering_is_host_major() {
        let c = cluster();
        assert_eq!(c.num_devices(), 12);
        assert_eq!(c.num_hosts(), 3);
        assert_eq!(c.device(0, 0), DeviceId(0));
        assert_eq!(c.device(1, 0), DeviceId(4));
        assert_eq!(c.device(2, 3), DeviceId(11));
    }

    #[test]
    fn host_of_inverts_device() {
        let c = cluster();
        for h in 0..3 {
            for l in 0..4 {
                assert_eq!(c.host_of(c.device(h, l)), HostId(h));
            }
        }
    }

    #[test]
    fn devices_on_lists_local_devices() {
        let c = cluster();
        let on1: Vec<_> = c.devices_on(HostId(1)).collect();
        assert_eq!(
            on1,
            vec![DeviceId(4), DeviceId(5), DeviceId(6), DeviceId(7)]
        );
    }

    #[test]
    fn same_host_checks() {
        let c = cluster();
        assert!(c.same_host(DeviceId(0), DeviceId(3)));
        assert!(!c.same_host(DeviceId(3), DeviceId(4)));
    }

    #[test]
    fn heterogeneous_hosts() {
        let links = LinkParams::new(10e9, 1e9);
        let c = ClusterSpec::new(vec![
            HostSpec {
                devices: 1,
                links,
                device_flops: 1e12,
            },
            HostSpec {
                devices: 3,
                links,
                device_flops: 2e12,
            },
        ]);
        assert_eq!(c.num_devices(), 4);
        assert_eq!(c.host_of(DeviceId(0)), HostId(0));
        assert_eq!(c.host_of(DeviceId(1)), HostId(1));
        assert_eq!(c.device(1, 2), DeviceId(3));
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn empty_cluster_panics() {
        ClusterSpec::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "local index")]
    fn out_of_range_local_device_panics() {
        cluster().device(0, 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_panics() {
        LinkParams::new(0.0, 1e9);
    }

    #[test]
    fn with_device_flops_overrides_all() {
        let c = cluster().with_device_flops(5e12);
        for h in 0..3 {
            assert_eq!(c.host(HostId(h)).device_flops, 5e12);
        }
    }

    #[test]
    fn default_fabric_is_unbounded_flat() {
        let c = cluster();
        assert!(c.fabric().is_unbounded());
        assert_eq!(c.fabric_capacity(), None);
        assert!(c.fabric_slot_capacities().is_empty());
        let mut route = Vec::new();
        c.fabric_route(DeviceId(0), DeviceId(4), 10, &mut route);
        assert!(route.is_empty());
        assert_eq!(c.host_nic_multiplier(), 1.0);
    }

    #[test]
    fn flat_capped_fabric_has_one_slot() {
        let c = cluster().with_fabric_capacity(3.0);
        assert!(!c.fabric().is_unbounded());
        assert_eq!(c.fabric_capacity(), Some(3.0));
        assert_eq!(c.fabric_slot_capacities(), vec![3.0]);
        let mut route = Vec::new();
        c.fabric_route(DeviceId(0), DeviceId(4), 24, &mut route);
        assert_eq!(route, vec![24]);
    }

    #[test]
    fn rail_fabric_routes_on_the_sender_and_receiver_rails() {
        // 3 hosts × 4 devices, 2 rails: local index parity picks the rail.
        let c = cluster().with_fabric(FabricModel::RailOptimized {
            rails: 2,
            spine_capacity: 5.0,
        });
        assert_eq!(c.rail_of(DeviceId(0)), Some(0));
        assert_eq!(c.rail_of(DeviceId(1)), Some(1));
        assert_eq!(c.rail_of(DeviceId(5)), Some(1)); // host 1, local 1
                                                     // Slots: send 3×2, recv 3×2, spine -> 13 slots.
        let slots = c.fabric_slot_capacities();
        assert_eq!(slots.len(), 13);
        assert_eq!(slots[12], 5.0);
        assert_eq!(c.host_nic_multiplier(), 2.0);
        // Same-rail flow h0/l1 -> h1/l1: send slot (0,1), recv slot (1,1).
        let mut route = Vec::new();
        c.fabric_route(DeviceId(1), DeviceId(5), 0, &mut route);
        assert_eq!(route, vec![1, 6 + 3]);
        // Cross-rail flow h0/l0 -> h1/l1 additionally crosses the spine.
        route.clear();
        c.fabric_route(DeviceId(0), DeviceId(5), 0, &mut route);
        assert_eq!(route, vec![0, 6 + 3, 12]);
    }

    #[test]
    fn fat_tree_charges_uplinks_only_across_pods() {
        // 3 hosts in pods of 2 -> pods {h0,h1} and {h2}.
        let c = cluster().with_fabric(FabricModel::FatTree {
            pod_hosts: 2,
            oversubscription: 4.0,
        });
        let slots = c.fabric_slot_capacities();
        // Pod 0: 2 hosts × 1.25e9 / 4; pod 1: 1 host × 1.25e9 / 4.
        assert_eq!(slots.len(), 4);
        assert!((slots[0] - 2.0 * 1.25e9 / 4.0).abs() < 1.0);
        assert!((slots[1] - 1.25e9 / 4.0).abs() < 1.0);
        // Intra-pod cross-host flow: leaf is non-blocking.
        let mut route = Vec::new();
        c.fabric_route(DeviceId(0), DeviceId(4), 0, &mut route);
        assert!(route.is_empty());
        // Cross-pod flow: src pod uplink + dst pod downlink.
        c.fabric_route(DeviceId(0), DeviceId(8), 0, &mut route);
        assert_eq!(route, vec![0, 2 + 1]);
    }

    #[test]
    fn torus_routes_dimension_ordered_with_wraparound() {
        let c = ClusterSpec::homogeneous(6, 2, LinkParams::new(100e9, 1.25e9)).with_fabric(
            FabricModel::Torus2D {
                rows: 2,
                cols: 3,
                link_capacity: 7.0,
            },
        );
        assert_eq!(c.fabric_slot_capacities(), vec![7.0; 24]);
        // Host 0 (0,0) -> host 5 (1,2): cols 0->2 wraps west (1 hop beats
        // 2 east), then rows 0->1 south.
        let mut route = Vec::new();
        c.fabric_route(c.device(0, 0), c.device(5, 0), 0, &mut route);
        // West edge of host 0, then south edge of host 2 (0,2).
        assert_eq!(route, vec![1, 2 * 4 + 2]);
        // Adjacent east: one edge.
        route.clear();
        c.fabric_route(c.device(0, 0), c.device(1, 0), 0, &mut route);
        assert_eq!(route, vec![0]);
    }

    #[test]
    #[should_panic(expected = "torus is 2x2")]
    fn torus_shape_must_match_host_count() {
        let _ = cluster().with_fabric(FabricModel::Torus2D {
            rows: 2,
            cols: 2,
            link_capacity: 1.0,
        });
    }

    #[test]
    fn fabric_display_names_the_model() {
        assert_eq!(FabricModel::default().to_string(), "flat/full-bisection");
        assert!(cluster()
            .with_fabric_capacity(2e9)
            .to_string()
            .contains("flat/core=2.000e9"));
        let rails = FabricModel::RailOptimized {
            rails: 4,
            spine_capacity: 1.25e9,
        };
        assert_eq!(rails.to_string(), "rails(k=4, spine=1.250e9 B/s)");
        assert!(cluster().to_string().starts_with("3 hosts / 12 devices"));
    }
}
