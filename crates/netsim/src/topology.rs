//! Cluster topology: hosts, devices, and link parameters.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a compute device (e.g., a GPU), global across the cluster.
///
/// Devices are numbered host by host: host 0 owns devices `0..d0`, host 1
/// owns `d0..d0+d1`, and so on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DeviceId(pub u32);

/// Identifier of a host (a machine holding one or more devices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(pub u32);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl From<u32> for DeviceId {
    fn from(v: u32) -> Self {
        DeviceId(v)
    }
}

impl From<u32> for HostId {
    fn from(v: u32) -> Self {
        HostId(v)
    }
}

/// Bandwidth and latency parameters of a homogeneous cluster.
///
/// Bandwidths are in bytes per second, latencies in seconds. Links are
/// full duplex: sending and receiving draw on separate capacities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Per-device intra-host send bandwidth (NVLink-class), bytes/s.
    pub intra_host_bw: f64,
    /// Per-host NIC bandwidth for inter-host traffic, bytes/s (each
    /// direction; the host is the bottleneck, per the paper's §3 setting).
    pub inter_host_bw: f64,
    /// Fixed latency added to every intra-host flow, seconds.
    pub intra_host_latency: f64,
    /// Fixed latency added to every inter-host flow, seconds.
    pub inter_host_latency: f64,
}

impl LinkParams {
    /// Creates link parameters with the given intra-host and inter-host
    /// bandwidths (bytes/s) and small default latencies (5 µs intra-host,
    /// 25 µs inter-host).
    ///
    /// # Panics
    ///
    /// Panics if either bandwidth is not strictly positive and finite.
    pub fn new(intra_host_bw: f64, inter_host_bw: f64) -> Self {
        assert!(
            intra_host_bw > 0.0 && intra_host_bw.is_finite(),
            "intra-host bandwidth must be positive and finite"
        );
        assert!(
            inter_host_bw > 0.0 && inter_host_bw.is_finite(),
            "inter-host bandwidth must be positive and finite"
        );
        LinkParams {
            intra_host_bw,
            inter_host_bw,
            intra_host_latency: 5e-6,
            inter_host_latency: 25e-6,
        }
    }

    /// Returns a copy with both latencies overridden.
    #[must_use]
    pub fn with_latencies(mut self, intra: f64, inter: f64) -> Self {
        self.intra_host_latency = intra;
        self.inter_host_latency = inter;
        self
    }
}

/// Per-host description: device count, link parameters, and compute rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostSpec {
    /// Number of devices attached to this host.
    pub devices: u32,
    /// Link parameters used by flows touching this host.
    pub links: LinkParams,
    /// Peak compute rate of each device, FLOP/s. Used to convert
    /// [`Work::compute_flops`](crate::Work::compute_flops) tasks to time.
    pub device_flops: f64,
}

/// A cluster: an ordered list of hosts, each with a set of devices.
///
/// The inter-host topology is fully connected with equal pairwise bandwidth,
/// bottlenecked at each host's NIC (the common cloud/datacenter setting the
/// paper assumes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    hosts: Vec<HostSpec>,
    /// `device_host[d]` is the host owning global device `d`.
    device_host: Vec<HostId>,
    /// `host_base[h]` is the global id of host `h`'s first device.
    host_base: Vec<u32>,
    /// Aggregate capacity of the inter-host fabric, bytes/s; `None` models
    /// the full-bisection network the paper assumes.
    fabric_capacity: Option<f64>,
}

impl ClusterSpec {
    /// Builds a cluster from per-host specs.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is empty or any host has zero devices.
    pub fn new(hosts: Vec<HostSpec>) -> Self {
        assert!(!hosts.is_empty(), "cluster must have at least one host");
        let mut device_host = Vec::new();
        let mut host_base = Vec::with_capacity(hosts.len());
        for (h, spec) in hosts.iter().enumerate() {
            assert!(spec.devices > 0, "host {h} must have at least one device");
            host_base.push(device_host.len() as u32);
            for _ in 0..spec.devices {
                device_host.push(HostId(h as u32));
            }
        }
        ClusterSpec {
            hosts,
            device_host,
            host_base,
            fabric_capacity: None,
        }
    }

    /// Builds a homogeneous cluster: `n_hosts` hosts with `devices_per_host`
    /// devices each, all sharing `links`, with a default compute rate of
    /// 100 TFLOP/s per device (override with [`ClusterSpec::with_device_flops`]).
    ///
    /// # Panics
    ///
    /// Panics if `n_hosts` or `devices_per_host` is zero.
    pub fn homogeneous(n_hosts: u32, devices_per_host: u32, links: LinkParams) -> Self {
        assert!(n_hosts > 0, "cluster must have at least one host");
        let host = HostSpec {
            devices: devices_per_host,
            links,
            device_flops: 100e12,
        };
        ClusterSpec::new(vec![host; n_hosts as usize])
    }

    /// Returns a copy with every device's compute rate set to `flops` FLOP/s.
    ///
    /// # Panics
    ///
    /// Panics if `flops` is not strictly positive and finite.
    #[must_use]
    pub fn with_device_flops(mut self, flops: f64) -> Self {
        assert!(
            flops > 0.0 && flops.is_finite(),
            "device FLOP/s must be positive and finite"
        );
        for h in &mut self.hosts {
            h.device_flops = flops;
        }
        self
    }

    /// Returns a copy whose inter-host fabric is oversubscribed: the sum
    /// of all concurrent cross-host traffic is capped at `bytes_per_sec`
    /// (an extension beyond the paper's full-bisection assumption, for
    /// studying congested datacenter cores).
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not strictly positive and finite.
    #[must_use]
    pub fn with_fabric_capacity(mut self, bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec > 0.0 && bytes_per_sec.is_finite(),
            "fabric capacity must be positive and finite"
        );
        self.fabric_capacity = Some(bytes_per_sec);
        self
    }

    /// The aggregate inter-host fabric capacity, if the cluster models an
    /// oversubscribed core (see [`ClusterSpec::with_fabric_capacity`]).
    pub fn fabric_capacity(&self) -> Option<f64> {
        self.fabric_capacity
    }

    /// Total number of devices in the cluster.
    pub fn num_devices(&self) -> u32 {
        self.device_host.len() as u32
    }

    /// Number of hosts in the cluster.
    pub fn num_hosts(&self) -> u32 {
        self.hosts.len() as u32
    }

    /// The host that owns `device`.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn host_of(&self, device: DeviceId) -> HostId {
        self.device_host[device.0 as usize]
    }

    /// The global id of the `local`-th device on host `host`.
    ///
    /// # Panics
    ///
    /// Panics if `host` or `local` is out of range.
    pub fn device(&self, host: u32, local: u32) -> DeviceId {
        let spec = &self.hosts[host as usize];
        assert!(
            local < spec.devices,
            "host {host} has {} devices, asked for local index {local}",
            spec.devices
        );
        DeviceId(self.host_base[host as usize] + local)
    }

    /// All global device ids on `host`, in order.
    pub fn devices_on(&self, host: HostId) -> impl Iterator<Item = DeviceId> + '_ {
        let base = self.host_base[host.0 as usize];
        let n = self.hosts[host.0 as usize].devices;
        (base..base + n).map(DeviceId)
    }

    /// The spec of `host`.
    pub fn host(&self, host: HostId) -> &HostSpec {
        &self.hosts[host.0 as usize]
    }

    /// Whether both devices sit on the same host.
    pub fn same_host(&self, a: DeviceId, b: DeviceId) -> bool {
        self.host_of(a) == self.host_of(b)
    }

    /// True if `device` is a valid id for this cluster.
    pub fn contains(&self, device: DeviceId) -> bool {
        (device.0 as usize) < self.device_host.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> ClusterSpec {
        ClusterSpec::homogeneous(3, 4, LinkParams::new(100e9, 1.25e9))
    }

    #[test]
    fn device_numbering_is_host_major() {
        let c = cluster();
        assert_eq!(c.num_devices(), 12);
        assert_eq!(c.num_hosts(), 3);
        assert_eq!(c.device(0, 0), DeviceId(0));
        assert_eq!(c.device(1, 0), DeviceId(4));
        assert_eq!(c.device(2, 3), DeviceId(11));
    }

    #[test]
    fn host_of_inverts_device() {
        let c = cluster();
        for h in 0..3 {
            for l in 0..4 {
                assert_eq!(c.host_of(c.device(h, l)), HostId(h));
            }
        }
    }

    #[test]
    fn devices_on_lists_local_devices() {
        let c = cluster();
        let on1: Vec<_> = c.devices_on(HostId(1)).collect();
        assert_eq!(
            on1,
            vec![DeviceId(4), DeviceId(5), DeviceId(6), DeviceId(7)]
        );
    }

    #[test]
    fn same_host_checks() {
        let c = cluster();
        assert!(c.same_host(DeviceId(0), DeviceId(3)));
        assert!(!c.same_host(DeviceId(3), DeviceId(4)));
    }

    #[test]
    fn heterogeneous_hosts() {
        let links = LinkParams::new(10e9, 1e9);
        let c = ClusterSpec::new(vec![
            HostSpec {
                devices: 1,
                links,
                device_flops: 1e12,
            },
            HostSpec {
                devices: 3,
                links,
                device_flops: 2e12,
            },
        ]);
        assert_eq!(c.num_devices(), 4);
        assert_eq!(c.host_of(DeviceId(0)), HostId(0));
        assert_eq!(c.host_of(DeviceId(1)), HostId(1));
        assert_eq!(c.device(1, 2), DeviceId(3));
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn empty_cluster_panics() {
        ClusterSpec::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "local index")]
    fn out_of_range_local_device_panics() {
        cluster().device(0, 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_panics() {
        LinkParams::new(0.0, 1e9);
    }

    #[test]
    fn with_device_flops_overrides_all() {
        let c = cluster().with_device_flops(5e12);
        for h in 0..3 {
            assert_eq!(c.host(HostId(h)).device_flops, 5e12);
        }
    }
}
