//! Chrome tracing export: visualize simulated executions in
//! `chrome://tracing` / Perfetto.
//!
//! Each device becomes a "thread"; compute tasks and flows (attributed to
//! their source device) become complete events (`ph: "X"`) with
//! microsecond timestamps; markers become instant events (`ph: "i"`) named
//! from their graph label.

use crate::graph::{TaskGraph, Work};
use crate::trace::Trace;

/// One Chrome trace event: a complete event (`ph: "X"`, with `dur`) or a
/// thread-scoped instant (`ph: "i"`, with `s`). Rendered by hand so the
/// field set can differ per phase and the byte output stays stable.
#[derive(Debug, Clone)]
struct ChromeEvent {
    name: String,
    cat: &'static str,
    ph: &'static str,
    /// Start, microseconds.
    ts: f64,
    /// Duration, microseconds. Omitted on instant events.
    dur: Option<f64>,
    pid: u32,
    tid: u32,
    /// Instant-event scope (`"t"` = thread). Omitted on complete events.
    s: Option<&'static str>,
}

impl ChromeEvent {
    fn render(&self) -> String {
        let mut out = format!(
            "{{\"name\":{},\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{}",
            serde_json::to_string(&self.name).expect("strings serialize"),
            self.cat,
            self.ph,
            self.ts
        );
        if let Some(dur) = self.dur {
            out.push_str(&format!(",\"dur\":{dur}"));
        }
        out.push_str(&format!(",\"pid\":{},\"tid\":{}", self.pid, self.tid));
        if let Some(s) = self.s {
            out.push_str(&format!(",\"s\":\"{s}\""));
        }
        out.push('}');
        out
    }
}

/// Renders `trace` of `graph` as a Chrome-tracing JSON array.
///
/// Compute tasks appear on their device's row; flows appear on the *source*
/// device's row under the `comm` category; markers appear as thread-scoped
/// instant events (`ph: "i"`, category `marker`) named from their graph
/// label, so schedule epochs and phase boundaries show up as vertical
/// pins on the timeline.
///
/// The result loads directly into `chrome://tracing` or
/// [Perfetto](https://ui.perfetto.dev).
pub fn to_chrome_trace(graph: &TaskGraph, trace: &Trace) -> String {
    let mut events = Vec::new();
    for (id, task) in graph.iter() {
        let interval = trace.interval(id);
        let (cat, tid, default_name) = match task.work {
            Work::Compute { device, .. } | Work::ComputeFlops { device, .. } => {
                ("compute", device.0, format!("compute {id}"))
            }
            Work::Flow { src, dst, bytes } => {
                ("comm", src.0, format!("flow {id} -> {dst} ({bytes:.0} B)"))
            }
            Work::Marker => {
                events.push(ChromeEvent {
                    name: task.label.clone().unwrap_or_else(|| format!("marker {id}")),
                    cat: "marker",
                    ph: "i",
                    ts: interval.start * 1e6,
                    dur: None,
                    pid: 0,
                    tid: 0,
                    s: Some("t"),
                });
                continue;
            }
        };
        events.push(ChromeEvent {
            name: task.label.clone().unwrap_or(default_name),
            cat,
            ph: "X",
            ts: interval.start * 1e6,
            dur: Some((interval.finish - interval.start).max(0.0) * 1e6),
            pid: 0,
            tid,
            s: None,
        });
    }
    let rendered: Vec<String> = events.iter().map(ChromeEvent::render).collect();
    format!("[{}]", rendered.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterSpec, Engine, LinkParams, Work};

    #[test]
    fn export_contains_compute_and_comm_events() {
        let c = ClusterSpec::homogeneous(2, 1, LinkParams::new(10.0, 1.0));
        let mut g = TaskGraph::new();
        let f = g.add_labeled(
            Work::flow(c.device(0, 0), c.device(1, 0), 5.0),
            [],
            Some("payload"),
        );
        g.add(Work::compute(c.device(1, 0), 1.0), [f]);
        g.add_labeled(Work::Marker, [], Some("epoch"));
        g.add(Work::Marker, []);
        let trace = Engine::new(&c).run(&g).unwrap();
        let json = to_chrome_trace(&g, &trace);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = parsed.as_array().unwrap();
        // Two complete events plus two marker instants.
        assert_eq!(events.len(), 4);
        assert_eq!(events[0]["name"], "payload");
        assert_eq!(events[0]["cat"], "comm");
        assert_eq!(events[1]["cat"], "compute");
        assert!(events[1]["ts"].as_f64().unwrap() >= 5.0e6 * 0.99);
        assert_eq!(events[2]["ph"], "i");
        assert_eq!(events[2]["name"], "epoch");
        assert_eq!(events[2]["s"], "t");
        assert!(events[2].get("dur").is_none());
        assert_eq!(events[3]["name"], "marker t3");
    }

    #[test]
    fn durations_are_non_negative_microseconds() {
        let c = ClusterSpec::homogeneous(1, 2, LinkParams::new(10.0, 1.0));
        let mut g = TaskGraph::new();
        g.add(Work::compute(c.device(0, 0), 0.5), []);
        g.add(Work::flow(c.device(0, 0), c.device(0, 1), 1.0), []);
        let trace = Engine::new(&c).run(&g).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&to_chrome_trace(&g, &trace)).unwrap();
        for e in parsed.as_array().unwrap() {
            assert!(e["dur"].as_f64().unwrap() >= 0.0);
        }
    }
}
