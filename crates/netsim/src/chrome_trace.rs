//! Chrome tracing export: visualize simulated executions in
//! `chrome://tracing` / Perfetto.
//!
//! Each device becomes a "thread"; compute tasks, flows (attributed to
//! their source device), and markers become complete events (`ph: "X"`)
//! with microsecond timestamps.

use crate::graph::{TaskGraph, Work};
use crate::trace::Trace;
use serde::Serialize;

/// One Chrome trace event (the "complete event" form).
#[derive(Debug, Clone, Serialize)]
struct ChromeEvent {
    name: String,
    cat: &'static str,
    ph: &'static str,
    /// Start, microseconds.
    ts: f64,
    /// Duration, microseconds.
    dur: f64,
    pid: u32,
    tid: u32,
}

/// Renders `trace` of `graph` as a Chrome-tracing JSON array.
///
/// Compute tasks appear on their device's row; flows appear on the *source*
/// device's row under the `comm` category; markers are omitted (they are
/// instantaneous bookkeeping).
///
/// The result loads directly into `chrome://tracing` or
/// [Perfetto](https://ui.perfetto.dev).
pub fn to_chrome_trace(graph: &TaskGraph, trace: &Trace) -> String {
    let mut events = Vec::new();
    for (id, task) in graph.iter() {
        let interval = trace.interval(id);
        let (cat, tid, default_name) = match task.work {
            Work::Compute { device, .. } | Work::ComputeFlops { device, .. } => {
                ("compute", device.0, format!("compute {id}"))
            }
            Work::Flow { src, dst, bytes } => {
                ("comm", src.0, format!("flow {id} -> {dst} ({bytes:.0} B)"))
            }
            Work::Marker => continue,
        };
        events.push(ChromeEvent {
            name: task.label.clone().unwrap_or(default_name),
            cat,
            ph: "X",
            ts: interval.start * 1e6,
            dur: (interval.finish - interval.start).max(0.0) * 1e6,
            pid: 0,
            tid,
        });
    }
    serde_json::to_string(&events).expect("chrome events serialize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterSpec, Engine, LinkParams, Work};

    #[test]
    fn export_contains_compute_and_comm_events() {
        let c = ClusterSpec::homogeneous(2, 1, LinkParams::new(10.0, 1.0));
        let mut g = TaskGraph::new();
        let f = g.add_labeled(
            Work::flow(c.device(0, 0), c.device(1, 0), 5.0),
            [],
            Some("payload"),
        );
        g.add(Work::compute(c.device(1, 0), 1.0), [f]);
        g.add(Work::Marker, []);
        let trace = Engine::new(&c).run(&g).unwrap();
        let json = to_chrome_trace(&g, &trace);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = parsed.as_array().unwrap();
        // Marker omitted: exactly two events.
        assert_eq!(events.len(), 2);
        assert_eq!(events[0]["name"], "payload");
        assert_eq!(events[0]["cat"], "comm");
        assert_eq!(events[1]["cat"], "compute");
        assert!(events[1]["ts"].as_f64().unwrap() >= 5.0e6 * 0.99);
    }

    #[test]
    fn durations_are_non_negative_microseconds() {
        let c = ClusterSpec::homogeneous(1, 2, LinkParams::new(10.0, 1.0));
        let mut g = TaskGraph::new();
        g.add(Work::compute(c.device(0, 0), 0.5), []);
        g.add(Work::flow(c.device(0, 0), c.device(0, 1), 1.0), []);
        let trace = Engine::new(&c).run(&g).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&to_chrome_trace(&g, &trace)).unwrap();
        for e in parsed.as_array().unwrap() {
            assert!(e["dur"].as_f64().unwrap() >= 0.0);
        }
    }
}
