//! Per-tenant admission control: token buckets and bounded queues.
//!
//! The daemon degrades gracefully under overload by *refusing* work, not
//! by queueing it without bound. Each tenant gets a token bucket (steady
//! rate plus a burst allowance) gating entry to a bounded per-tenant
//! queue; a request that finds the bucket empty or the queue full is
//! answered immediately with `Rejected{retry_after}` so the client backs
//! off instead of timing out. Time is injected (`now: Instant`) rather
//! than read, so admission decisions are deterministic under test.

use std::time::{Duration, Instant};

/// Admission limits applied to every tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Sustained requests per second each tenant may submit.
    pub rate: f64,
    /// Burst allowance: the bucket's capacity in requests.
    pub burst: f64,
    /// Bound on each tenant's queue; arrivals past it are shed even when
    /// the token bucket still has capacity.
    pub queue_depth: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            rate: 50.0,
            burst: 20.0,
            queue_depth: 64,
        }
    }
}

/// A classic token bucket: refills continuously at `rate` tokens/second
/// up to `capacity`, spends one token per admitted request.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: f64,
    capacity: f64,
    tokens: f64,
    last_refill: Instant,
}

impl TokenBucket {
    /// A full bucket. `rate` and `capacity` are clamped to sane floors so
    /// a zero-rate configuration degrades to "one request per very long
    /// while" instead of dividing by zero.
    pub fn new(rate: f64, capacity: f64, now: Instant) -> TokenBucket {
        let rate = if rate.is_finite() && rate > 0.0 {
            rate
        } else {
            1e-6
        };
        let capacity = if capacity.is_finite() && capacity >= 1.0 {
            capacity
        } else {
            1.0
        };
        TokenBucket {
            rate,
            capacity,
            tokens: capacity,
            last_refill: now,
        }
    }

    /// Refills for the elapsed time and tries to spend one token.
    /// `Err(wait)` is the duration until a token will be available — the
    /// `retry_after` hint sent to the client.
    pub fn try_acquire(&mut self, now: Instant) -> Result<(), Duration> {
        let elapsed = now.saturating_duration_since(self.last_refill);
        self.last_refill = now;
        self.tokens = (self.tokens + elapsed.as_secs_f64() * self.rate).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - self.tokens;
            Err(Duration::from_secs_f64(deficit / self.rate))
        }
    }

    /// Tokens currently available (after a refill to `now`).
    pub fn available(&mut self, now: Instant) -> f64 {
        let elapsed = now.saturating_duration_since(self.last_refill);
        self.last_refill = now;
        self.tokens = (self.tokens + elapsed.as_secs_f64() * self.rate).min(self.capacity);
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_burst_up_to_capacity_is_admitted_then_shed() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(10.0, 3.0, t0);
        assert!(b.try_acquire(t0).is_ok());
        assert!(b.try_acquire(t0).is_ok());
        assert!(b.try_acquire(t0).is_ok());
        let wait = b.try_acquire(t0).unwrap_err();
        // One token refills in 1/rate = 100ms.
        assert!(wait > Duration::from_millis(50) && wait <= Duration::from_millis(100));
    }

    #[test]
    fn tokens_refill_at_the_configured_rate() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(10.0, 1.0, t0);
        assert!(b.try_acquire(t0).is_ok());
        assert!(b.try_acquire(t0).is_err());
        // 100ms later exactly one token is back.
        let t1 = t0 + Duration::from_millis(100);
        assert!(b.try_acquire(t1).is_ok());
        assert!(b.try_acquire(t1).is_err());
    }

    #[test]
    fn refill_never_exceeds_capacity() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(100.0, 2.0, t0);
        let later = t0 + Duration::from_secs(60);
        assert!((b.available(later) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_configs_are_clamped_not_panicking() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(0.0, 0.0, t0);
        assert!(b.try_acquire(t0).is_ok(), "capacity floor is one token");
        assert!(b.try_acquire(t0).is_err(), "zero rate never refills fast");
        let mut b = TokenBucket::new(f64::NAN, f64::INFINITY, t0);
        assert!(b.try_acquire(t0).is_ok());
    }

    #[test]
    fn retry_after_shrinks_as_time_passes() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(2.0, 1.0, t0);
        assert!(b.try_acquire(t0).is_ok());
        let w1 = b.try_acquire(t0).unwrap_err();
        let w2 = b.try_acquire(t0 + Duration::from_millis(200)).unwrap_err();
        assert!(w2 < w1, "{w2:?} should be under {w1:?}");
    }
}
