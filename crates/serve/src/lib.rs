//! `crossmesh-serve` — a multi-tenant resharding daemon.
//!
//! Planning a cross-mesh reshard is the expensive, cacheable step; the
//! paper's setting (many training jobs sharing one cluster) makes it a
//! natural *service*. This crate runs the planner stack as a long-lived
//! daemon: clients submit resharding problems over a length-prefixed JSON
//! protocol on TCP, a worker pool plans them through one shared
//! cross-tenant [`PlanCache`](crossmesh_core::PlanCache) (two tenants
//! resharding the same shape pay for one plan), every plan passes the
//! `crossmesh-check` static verifier before execution, and per-tenant
//! token buckets plus bounded queues shed load explicitly — an overloaded
//! daemon answers `Rejected{retry_after}` instead of queueing without
//! bound.
//!
//! # Example
//!
//! ```
//! use crossmesh_serve::{Client, Request, RequestBody, ReshardRequest, Response,
//!                       ServeConfig, Server};
//!
//! # fn main() -> std::io::Result<()> {
//! let server = Server::start(ServeConfig::default())?;
//! let mut client = Client::connect(server.addr())?;
//! match client.reshard("tenant-a", ReshardRequest::example())? {
//!     Response::Done(d) => assert!(d.simulated_seconds > 0.0),
//!     other => panic!("unexpected reply: {other:?}"),
//! }
//! let summary = server.shutdown();
//! assert_eq!(summary.completed, 1);
//! assert_eq!(summary.verifier_convictions, 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod client;
pub mod proto;
pub mod server;

pub use admission::{AdmissionConfig, TokenBucket};
pub use client::Client;
pub use proto::{
    DoneReply, ErrorReply, RejectedReply, Request, RequestBody, ReshardRequest, Response,
    StatsReply, TelemetryReply, TenantStats,
};
pub use server::{BackendKind, ServeConfig, ServeSummary, Server};
