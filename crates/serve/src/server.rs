//! The resharding daemon: accept loop, per-tenant dispatch, worker pool.
//!
//! Life of a request: a reader thread parses the frame and runs admission
//! (token bucket, then bounded queue) under the dispatch lock — rejected
//! requests are answered right there with a `retry_after` hint and never
//! touch a worker. Admitted jobs land in their tenant's queue; workers
//! pull across tenants round-robin (so one chatty tenant cannot starve
//! the rest), plan through the shared cross-tenant [`PlanCache`], execute
//! on the configured backend — which runs the `crossmesh-check` static
//! verifier before anything moves — and write the reply tagged with the
//! request id (clients may pipeline; replies come in completion order).
//!
//! Shutdown is a two-phase drain: first new work is refused while queued
//! work finishes, then the accept and reader loops (which poll their
//! sockets on short ticks precisely so this works) are stopped and
//! metrics/timeline files are flushed.

use crate::admission::{AdmissionConfig, TokenBucket};
use crate::proto::{
    self, DoneReply, ErrorReply, FrameRead, RejectedReply, Request, RequestBody, ReshardRequest,
    Response, StatsReply, TelemetryReply, TenantStats,
};
use crossmesh_core::{
    CostParams, DfsPlanner, EnsemblePlanner, LoadBalancePlanner, NaivePlanner, Plan, PlanCache,
    Planner, PlannerConfig, RandomizedGreedyPlanner, ReshardingTask, SenderExclusions,
};
use crossmesh_faults::{execute_with_repair_cached, FaultSchedule};
use crossmesh_hb as hb;
use crossmesh_mesh::DeviceMesh;
use crossmesh_models::presets;
use crossmesh_netsim::{Backend, ClusterSpec, LinkParams, SimBackend};
use crossmesh_obs as obs;
use crossmesh_runtime::{PollListener, ThreadedBackend};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, VecDeque};
use std::net::{SocketAddr, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Consecutive rejections (across all tenants, with no admission in
/// between) that count as a shed spike and trigger a flight-recorder
/// dump. Fires once per spike: the streak must be broken by an admission
/// before another dump can trigger.
const SHED_SPIKE_STREAK: u64 = 16;

/// Which execution backend serves requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Flow-level simulator (fast, deterministic; the default).
    Sim,
    /// Real multi-threaded execution with in-process channels.
    Threads,
    /// Threads plus TCP loopback for inter-host flows.
    Tcp,
}

impl BackendKind {
    /// Parses the CLI's backend names.
    ///
    /// # Errors
    ///
    /// A message naming the unknown backend.
    pub fn parse(name: &str) -> Result<BackendKind, String> {
        match name {
            "sim" => Ok(BackendKind::Sim),
            "threads" => Ok(BackendKind::Threads),
            "tcp" => Ok(BackendKind::Tcp),
            other => Err(format!("unknown backend {other:?}")),
        }
    }

    fn instantiate(self) -> Box<dyn Backend> {
        match self {
            BackendKind::Sim => Box::new(SimBackend),
            BackendKind::Threads => Box::new(ThreadedBackend::threads()),
            BackendKind::Tcp => Box::new(ThreadedBackend::tcp()),
        }
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker pool width (planning/execution concurrency).
    pub workers: usize,
    /// Per-tenant admission limits.
    pub admission: AdmissionConfig,
    /// Execution backend for admitted requests.
    pub backend: BackendKind,
    /// Planner used when a request leaves `planner` empty.
    pub default_planner: String,
    /// Honour remote [`RequestBody::Shutdown`] requests. Off by default:
    /// a tenant must not be able to stop the daemon unless the operator
    /// opted in.
    pub allow_remote_shutdown: bool,
    /// Write the metrics registry (text format) here on shutdown.
    pub metrics_out: Option<String>,
    /// Write a Chrome/Perfetto timeline of queue depth and throughput
    /// counters here on shutdown.
    pub trace_out: Option<String>,
    /// Directory for flight-recorder dumps (`flightrec-<trigger>-<n>.json`).
    /// Dump triggers — check convictions, fault repairs, shed spikes, SLO
    /// breaches, worker/reader panics — are no-ops when unset.
    pub flightrec_dir: Option<String>,
    /// SLO bound on the rolling-window p99 of execution latency,
    /// milliseconds. Breaches fire `obs.slo.*` counters and a
    /// flight-recorder dump. Unset installs no latency rule.
    pub slo_exec_p99_ms: Option<f64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            admission: AdmissionConfig::default(),
            backend: BackendKind::Sim,
            default_planner: "ours".into(),
            allow_remote_shutdown: false,
            metrics_out: None,
            trace_out: None,
            flightrec_dir: None,
            slo_exec_p99_ms: None,
        }
    }
}

/// One admitted request waiting for a worker.
struct Job {
    id: u64,
    tenant: String,
    req: ReshardRequest,
    conn: Arc<Conn>,
    enqueued: Instant,
}

/// The write half of a client connection. Workers for different tenants
/// may answer onto the same socket, so writes serialize on this lock and
/// each frame carries its request id for the client to correlate.
struct Conn {
    writer: Mutex<TcpStream>,
}

impl Conn {
    /// Best-effort reply: a client that hung up mid-flight loses its
    /// response, which is its problem, not the daemon's.
    fn send(&self, resp: &Response) {
        let mut w = self.writer.lock();
        let _ = proto::write_frame(&mut *w, resp);
    }
}

/// Per-tenant dispatch state, all guarded by the dispatch lock.
struct TenantState {
    bucket: TokenBucket,
    queue: VecDeque<Job>,
    accepted: u64,
    rejected: u64,
    completed: u64,
    failed: u64,
}

/// Everything behind the dispatch lock: tenant queues plus the
/// round-robin cursor workers use to pick the next tenant.
struct DispatchState {
    tenants: BTreeMap<String, TenantState>,
    cursor: usize,
    queued: usize,
}

impl DispatchState {
    /// Pops one job, round-robin across tenants with non-empty queues.
    /// The cursor indexes the (sorted) tenant key space so fairness is
    /// deterministic given a fixed arrival order.
    fn pop_round_robin(&mut self) -> Option<Job> {
        if self.queued == 0 || self.tenants.is_empty() {
            return None;
        }
        let names: Vec<String> = self.tenants.keys().cloned().collect();
        let n = names.len();
        for step in 0..n {
            let name = &names[(self.cursor + step) % n];
            if let Some(state) = self.tenants.get_mut(name) {
                if let Some(job) = state.queue.pop_front() {
                    self.cursor = (self.cursor + step + 1) % n;
                    self.queued -= 1;
                    return Some(job);
                }
            }
        }
        None
    }
}

/// Cross-thread server state.
struct Shared {
    cfg: ServeConfig,
    cache: PlanCache,
    registry: obs::MetricsRegistry,
    dispatch: Mutex<DispatchState>,
    work: Condvar,
    /// Phase 1 of shutdown: refuse new work, finish queued work.
    draining: AtomicBool,
    /// Phase 2: accept/reader loops exit at their next tick.
    stopped: AtomicBool,
    /// Set by a remote `Shutdown` request (when allowed); observed by
    /// [`Server::run_until_shutdown`].
    shutdown_requested: AtomicBool,
    /// Verification failures at execute time (the cache counts hit-path
    /// invalidations separately in its own registry).
    exec_convictions: AtomicU64,
    started: Instant,
    /// `(ts_us, queue_depth, completed)` samples for the timeline export.
    samples: Mutex<Vec<(f64, f64, f64)>>,
    queue_depth: obs::Gauge,
    queue_ms: obs::Histogram,
    plan_ms: obs::Histogram,
    exec_ms: obs::Histogram,
    /// Rolling one-minute latency windows behind the `Telemetry` reply's
    /// p50/p99/p999 summaries and the SLO monitor's quantile rules.
    queue_window: obs::SlidingWindowHistogram,
    plan_window: obs::SlidingWindowHistogram,
    exec_window: obs::SlidingWindowHistogram,
    /// Always-on flight recorder; dumped on triggers when
    /// [`ServeConfig::flightrec_dir`] is set.
    recorder: Arc<obs::FlightRecorder>,
    slo: obs::SloMonitor,
    /// Consecutive rejections with no admission in between; a shed spike
    /// fires when it reaches [`SHED_SPIKE_STREAK`].
    shed_streak: AtomicU64,
}

impl Shared {
    /// The daemon's monotonic clock, seconds since start. Feeds the
    /// sliding windows and the SLO monitor.
    fn clock(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Best-effort flight-recorder dump; a no-op without a configured
    /// dump directory, and a failing write never takes down the daemon
    /// it is trying to explain.
    fn dump_flightrec(&self, trigger: &str) {
        let Some(dir) = &self.cfg.flightrec_dir else {
            return;
        };
        match self.recorder.dump_to_dir(Path::new(dir), trigger) {
            Ok(path) => {
                self.registry.counter("serve.flightrec_dumps").inc();
                obs::event(
                    obs::Level::Info,
                    "serve",
                    "flightrec_dump",
                    &[
                        obs::Field::str("trigger", trigger),
                        obs::Field::str("path", path.display().to_string()),
                    ],
                );
            }
            Err(e) => obs::event(
                obs::Level::Warn,
                "serve",
                "flightrec_dump_failed",
                &[obs::Field::str("error", e.to_string())],
            ),
        }
    }

    /// Runs the SLO rules; each breach logs, counts (inside the monitor),
    /// and dumps the flight recorder. The monitor's per-rule cooldown
    /// keeps a sustained breach from dumping on every evaluation.
    fn evaluate_slo(&self) {
        for breach in self.slo.evaluate(self.clock(), &self.registry) {
            obs::event(
                obs::Level::Warn,
                "serve",
                "slo_breach",
                &[
                    obs::Field::str("rule", breach.rule.clone()),
                    obs::Field::f64("value", breach.value),
                    obs::Field::f64("threshold", breach.threshold),
                ],
            );
            self.dump_flightrec("slo-breach");
        }
    }

    /// Renders the full Prometheus-style exposition: the daemon and
    /// plan-cache registries plus the rolling-window latency summaries.
    /// Syncs the netsim engine counters first so `netsim.*` metrics are
    /// current, and evaluates the SLO rules so `obs.slo.*` counters in
    /// the exposition reflect this scrape.
    fn telemetry_text(&self) -> String {
        obs::sync_netsim_metrics(&self.registry);
        self.evaluate_slo();
        let now = self.clock();
        let mut text = self.registry.snapshot().render_prometheus();
        text.push_str(&self.cache.registry().snapshot().render_prometheus());
        text.push_str(
            &self
                .queue_window
                .render_prometheus("serve.queue_ms.window", now),
        );
        text.push_str(
            &self
                .plan_window
                .render_prometheus("serve.plan_ms.window", now),
        );
        text.push_str(
            &self
                .exec_window
                .render_prometheus("serve.exec_ms.window", now),
        );
        text
    }

    fn sample(&self) {
        let ts = self.started.elapsed().as_secs_f64() * 1e6;
        let (depth, completed) = {
            let st = self.dispatch.lock();
            let done: u64 = st.tenants.values().map(|t| t.completed).sum();
            (st.queued as f64, done as f64)
        };
        self.queue_depth.set(depth);
        self.samples.lock().push((ts, depth, completed));
    }

    fn tenant_counter(&self, tenant: &str, which: &str) -> obs::Counter {
        self.registry
            .counter(&format!("serve.tenant.{tenant}.{which}"))
    }

    /// Total verifier convictions: execute-time failures plus cache
    /// hit-path invalidations.
    fn convictions(&self) -> u64 {
        self.exec_convictions.load(Ordering::Relaxed)
            + self
                .cache
                .registry()
                .snapshot()
                .counter("plan_cache.invalidations")
    }

    fn stats_reply(&self, id: u64) -> StatsReply {
        let cache = self.cache.stats();
        let mut reply = StatsReply {
            id,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_entries: cache.entries,
            verifier_convictions: self.convictions(),
            ..StatsReply::default()
        };
        let st = self.dispatch.lock();
        for (name, t) in &st.tenants {
            reply.accepted += t.accepted;
            reply.rejected += t.rejected;
            reply.completed += t.completed;
            reply.failed += t.failed;
            reply.tenants.insert(
                name.clone(),
                TenantStats {
                    accepted: t.accepted,
                    rejected: t.rejected,
                    completed: t.completed,
                    failed: t.failed,
                    queue_depth: t.queue.len(),
                },
            );
        }
        reply
    }
}

/// End-of-life report returned by [`Server::shutdown`].
#[derive(Debug, Clone, serde::Serialize)]
pub struct ServeSummary {
    /// Requests admitted past admission control.
    pub accepted: u64,
    /// Requests shed.
    pub rejected: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Admitted requests that failed.
    pub failed: u64,
    /// Shared-cache hits across all tenants.
    pub cache_hits: u64,
    /// Shared-cache misses.
    pub cache_misses: u64,
    /// Verifier convictions (must be zero in a healthy run).
    pub verifier_convictions: u64,
    /// Daemon uptime, seconds.
    pub uptime_seconds: f64,
}

/// A running resharding daemon. Dropping it without calling
/// [`shutdown`](Server::shutdown) aborts ungracefully (threads are
/// detached); call `shutdown` to drain.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    /// Keeps the flight recorder installed (fanned out with whatever
    /// collector was already active) for the server's lifetime; dropping
    /// the guard on shutdown restores the previous collector.
    _obs_guard: obs::CollectorGuard,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl Server {
    /// Binds an ephemeral loopback port (with CI-safe retry) and starts
    /// the accept loop and worker pool.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = PollListener::bind_ephemeral()?;
        let addr = listener.local_addr()?;
        let registry = obs::MetricsRegistry::new();
        let hist_bounds = [0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 500.0];

        // One-minute rolling windows (60 one-second slots) behind the
        // telemetry quantiles and the SLO rules.
        let queue_window = obs::SlidingWindowHistogram::new(1.0, 60);
        let plan_window = obs::SlidingWindowHistogram::new(1.0, 60);
        let exec_window = obs::SlidingWindowHistogram::new(1.0, 60);
        let mut slo = obs::SloMonitor::new(5.0);
        // Burn rate: shedding more than half the incoming requests over
        // an evaluation interval (with enough traffic to mean something)
        // is an overload signal even when latency looks fine.
        slo.add_rule(obs::SloRule::burn_rate(
            "shed_rate",
            registry.counter("serve.shed"),
            registry.counter("serve.requests"),
            0.5,
            20,
        ));
        if let Some(p99_ms) = cfg.slo_exec_p99_ms {
            slo.add_rule(obs::SloRule::quantile(
                "exec_p99_ms",
                exec_window.clone(),
                0.99,
                p99_ms,
                8,
            ));
        }

        // Install the flight recorder for the server's lifetime, fanned
        // out with whatever collector the host process already had. Also
        // publish it as the process-wide recorder so the panic hook (and
        // any other `dump_global` trigger) can reach it.
        let recorder = Arc::new(obs::FlightRecorder::new());
        let fanned: Arc<dyn obs::Collector> = match obs::collector() {
            Some(prev) => Arc::new(obs::Fanout::new(vec![prev, recorder.clone()])),
            None => recorder.clone(),
        };
        let obs_guard = obs::install(fanned);
        obs::recorder::set_global(Some(recorder.clone()));
        if let Some(dir) = &cfg.flightrec_dir {
            obs::recorder::install_panic_hook(PathBuf::from(dir));
        }

        let shared = Arc::new(Shared {
            queue_depth: registry.gauge("serve.queue_depth"),
            queue_ms: registry.histogram("serve.queue_ms", &hist_bounds),
            plan_ms: registry.histogram("serve.plan_ms", &hist_bounds),
            exec_ms: registry.histogram("serve.exec_ms", &hist_bounds),
            queue_window,
            plan_window,
            exec_window,
            recorder,
            slo,
            shed_streak: AtomicU64::new(0),
            cfg,
            cache: PlanCache::new(),
            registry,
            dispatch: Mutex::new(DispatchState {
                tenants: BTreeMap::new(),
                cursor: 0,
                queued: 0,
            }),
            work: Condvar::new(),
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            exec_convictions: AtomicU64::new(0),
            started: Instant::now(),
            samples: Mutex::new(Vec::new()),
        });

        let workers = (0..shared.cfg.workers.max(1))
            .map(|i| {
                let s = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&s))
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let s = Arc::clone(&shared);
            let r = Arc::clone(&readers);
            thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(&listener, &s, &r))?
        };

        obs::event(
            obs::Level::Info,
            "serve",
            "started",
            &[
                obs::Field::str("addr", addr.to_string()),
                obs::Field::u64("workers", shared.cfg.workers.max(1) as u64),
            ],
        );
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            workers,
            readers,
            _obs_guard: obs_guard,
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counter snapshot (same shape the `Stats` request returns).
    pub fn stats(&self) -> StatsReply {
        self.shared.stats_reply(0)
    }

    /// The Prometheus-style exposition the `Telemetry` request returns.
    pub fn telemetry(&self) -> String {
        self.shared.telemetry_text()
    }

    /// The daemon's metrics registry (per-tenant counters, latency
    /// histograms, queue-depth gauge).
    pub fn registry(&self) -> &obs::MetricsRegistry {
        &self.shared.registry
    }

    /// Flags the daemon for shutdown, as if a permitted remote `Shutdown`
    /// request had arrived. [`run_until_shutdown`](Server::run_until_shutdown)
    /// observes the flag; callers driving the server directly just call
    /// [`shutdown`](Server::shutdown).
    pub fn request_shutdown(&self) {
        self.shared.shutdown_requested.store(true, Ordering::SeqCst);
    }

    /// Whether a shutdown has been requested (remotely or via
    /// [`request_shutdown`](Server::request_shutdown)). Lets a driver run
    /// its own wait loop with a deadline.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Blocks until a shutdown is requested (remotely, or via
    /// [`request_shutdown`](Server::request_shutdown) from another thread
    /// holding a reference), then drains and returns the summary.
    pub fn run_until_shutdown(self) -> ServeSummary {
        while !self.shutdown_requested() {
            thread::sleep(Duration::from_millis(25));
        }
        self.shutdown()
    }

    /// Graceful shutdown: refuse new work, finish queued work, stop the
    /// accept and reader loops, flush metrics and timeline files.
    pub fn shutdown(mut self) -> ServeSummary {
        let shared = &self.shared;
        // Phase 1: drain. Readers now answer every reshard request with
        // `Rejected{shutting_down}`; workers exit once queues are empty.
        shared.draining.store(true, Ordering::SeqCst);
        shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Phase 2: stop the I/O loops at their next poll tick.
        shared.stopped.store(true, Ordering::SeqCst);
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        let readers: Vec<JoinHandle<()>> = std::mem::take(&mut *self.readers.lock());
        for r in readers {
            let _ = r.join();
        }
        shared.sample();
        // Phase 3: flush observability outputs. Sync the netsim engine
        // counters first so `netsim.*` metrics are current in the dump.
        if let Some(path) = &shared.cfg.metrics_out {
            obs::sync_netsim_metrics(&shared.registry);
            let mut text = shared.registry.render_text();
            text.push_str(&shared.cache.registry().render_text());
            let _ = std::fs::write(path, text);
        }
        if let Some(path) = &shared.cfg.trace_out {
            let _ = std::fs::write(path, render_timeline(shared));
        }

        let stats = shared.stats_reply(0);
        let summary = ServeSummary {
            accepted: stats.accepted,
            rejected: stats.rejected,
            completed: stats.completed,
            failed: stats.failed,
            cache_hits: stats.cache_hits,
            cache_misses: stats.cache_misses,
            verifier_convictions: stats.verifier_convictions,
            uptime_seconds: shared.started.elapsed().as_secs_f64(),
        };
        obs::event(
            obs::Level::Info,
            "serve",
            "stopped",
            &[
                obs::Field::u64("completed", summary.completed),
                obs::Field::u64("rejected", summary.rejected),
                obs::Field::u64("convictions", summary.verifier_convictions),
            ],
        );
        summary
    }
}

/// Renders the queue-depth/throughput timeline as a Chrome trace.
fn render_timeline(shared: &Shared) -> String {
    let mut export = obs::export::TraceExport::new();
    let samples = shared.samples.lock();
    let depth: Vec<(f64, f64)> = samples.iter().map(|&(ts, d, _)| (ts, d)).collect();
    let done: Vec<(f64, f64)> = samples.iter().map(|&(ts, _, c)| (ts, c)).collect();
    export.add_counter("serve.queue_depth", &depth);
    export.add_counter("serve.completed", &done);
    export.add_instant("serve.start", "serve", 0.0, 0, 0);
    export.add_instant(
        "serve.shutdown",
        "serve",
        shared.started.elapsed().as_secs_f64() * 1e6,
        0,
        0,
    );
    export.render()
}

/// Accepts connections until `stopped`, spawning one reader per client.
fn accept_loop(
    listener: &PollListener,
    shared: &Arc<Shared>,
    readers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut next_conn = 0u64;
    while !shared.stopped.load(Ordering::SeqCst) {
        match listener.accept_timeout(Duration::from_millis(50)) {
            Ok(Some((stream, _peer))) => {
                next_conn += 1;
                let s = Arc::clone(shared);
                let spawned = thread::Builder::new()
                    .name(format!("serve-conn-{next_conn}"))
                    .spawn(move || {
                        // A panicking reader must not die silently: dump
                        // the flight recorder so the frame that killed it
                        // is inspectable, and count the death.
                        let r = catch_unwind(AssertUnwindSafe(|| reader_loop(stream, &s)));
                        if r.is_err() {
                            s.registry.counter("serve.worker_panics").inc();
                            s.dump_flightrec("reader-panic");
                        }
                    });
                match spawned {
                    Ok(handle) => readers.lock().push(handle),
                    Err(e) => obs::event(
                        obs::Level::Error,
                        "serve",
                        "reader_spawn_failed",
                        &[obs::Field::str("error", e.to_string())],
                    ),
                }
            }
            Ok(None) => {}
            Err(e) => {
                obs::event(
                    obs::Level::Error,
                    "serve",
                    "accept_failed",
                    &[obs::Field::str("error", e.to_string())],
                );
                break;
            }
        }
    }
}

/// Reads frames off one connection, running admission inline and handing
/// admitted jobs to the worker pool. Polls on a short read timeout so
/// shutdown is observed within a tick even on an idle connection.
fn reader_loop(stream: TcpStream, shared: &Arc<Shared>) {
    if stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .is_err()
    {
        return;
    }
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let conn = Arc::new(Conn {
        writer: Mutex::new(writer),
    });
    let mut reader = stream;
    loop {
        if shared.stopped.load(Ordering::SeqCst) {
            // Final sweep before closing: answer every frame already on
            // the wire (reshards are rejected as `shutting_down` by
            // `handle_request` since we are draining). Closing with
            // unread bytes in the socket buffer would RST the peer and
            // discard replies it has not read yet — requests would
            // silently vanish instead of being explicitly shed.
            // Bounded so a client that keeps streaming cannot stall
            // shutdown; anything past the cap is abandoned to the RST.
            for _ in 0..4096 {
                match proto::read_frame_timeout::<_, Request>(&mut reader) {
                    Ok(FrameRead::Frame(req)) => handle_request(req, &conn, shared),
                    Ok(FrameRead::TimedOut) | Ok(FrameRead::Eof) | Err(_) => return,
                }
            }
            return;
        }
        match proto::read_frame_timeout::<_, Request>(&mut reader) {
            Ok(FrameRead::TimedOut) => {}
            Ok(FrameRead::Eof) => return,
            Ok(FrameRead::Frame(req)) => handle_request(req, &conn, shared),
            Err(e) => {
                obs::event(
                    obs::Level::Warn,
                    "serve",
                    "bad_frame",
                    &[obs::Field::str("error", e.to_string())],
                );
                return;
            }
        }
    }
}

/// Dispatches one parsed request: control requests answer inline,
/// reshard requests run admission.
fn handle_request(req: Request, conn: &Arc<Conn>, shared: &Arc<Shared>) {
    match req.body {
        RequestBody::Ping => conn.send(&Response::Pong { id: req.id }),
        RequestBody::Stats => conn.send(&Response::Stats(shared.stats_reply(req.id))),
        RequestBody::Telemetry => conn.send(&Response::Telemetry(TelemetryReply {
            id: req.id,
            text: shared.telemetry_text(),
        })),
        RequestBody::Shutdown => {
            if shared.cfg.allow_remote_shutdown {
                conn.send(&Response::ShuttingDown { id: req.id });
                shared.shutdown_requested.store(true, Ordering::SeqCst);
            } else {
                conn.send(&Response::Error(ErrorReply {
                    id: req.id,
                    message: "remote shutdown is not enabled on this server".into(),
                }));
            }
        }
        RequestBody::Reshard(r) => admit(req.id, req.tenant, r, conn, shared),
    }
}

/// Admission control: bucket, then bounded queue, under the dispatch
/// lock. Rejections are answered here; admitted jobs wake a worker.
fn admit(id: u64, tenant: String, req: ReshardRequest, conn: &Arc<Conn>, shared: &Arc<Shared>) {
    let now = Instant::now();
    let verdict = {
        let mut st = shared.dispatch.lock();
        if shared.draining.load(Ordering::SeqCst) {
            let t = st
                .tenants
                .entry(tenant.clone())
                .or_insert_with(|| new_tenant(&shared.cfg.admission, now));
            t.rejected += 1;
            Err(("shutting_down".to_string(), 1000))
        } else {
            let cfg = shared.cfg.admission;
            let t = st
                .tenants
                .entry(tenant.clone())
                .or_insert_with(|| new_tenant(&cfg, now));
            match t.bucket.try_acquire(now) {
                Err(wait) => {
                    t.rejected += 1;
                    Err(("rate_limited".to_string(), wait.as_millis() as u64 + 1))
                }
                Ok(()) if t.queue.len() >= cfg.queue_depth => {
                    t.rejected += 1;
                    // Hint: one bucket period — by then at least one slot
                    // should have drained.
                    Err((
                        "queue_full".to_string(),
                        ((1000.0 / cfg.rate.max(1e-6)) as u64).clamp(1, 10_000),
                    ))
                }
                Ok(()) => {
                    t.accepted += 1;
                    // Admission-queue access point for `check::race`: every
                    // push/pop must stay under the dispatch lock.
                    hb::write(hb::object_id(&shared.dispatch));
                    t.queue.push_back(Job {
                        id,
                        tenant: tenant.clone(),
                        req,
                        conn: Arc::clone(conn),
                        enqueued: now,
                    });
                    st.queued += 1;
                    Ok(())
                }
            }
        }
    };
    shared.registry.counter("serve.requests").inc();
    match verdict {
        Ok(()) => {
            shared.shed_streak.store(0, Ordering::Relaxed);
            shared.tenant_counter(&tenant, "accepted").inc();
            shared.sample();
            shared.work.notify_one();
        }
        Err((reason, retry_after_ms)) => {
            shared.registry.counter("serve.shed").inc();
            shared.tenant_counter(&tenant, "rejected").inc();
            let streak = shared.shed_streak.fetch_add(1, Ordering::Relaxed) + 1;
            if streak == SHED_SPIKE_STREAK {
                obs::event(
                    obs::Level::Warn,
                    "serve",
                    "shed_spike",
                    &[
                        obs::Field::u64("streak", streak),
                        obs::Field::str("reason", reason.clone()),
                    ],
                );
                shared.dump_flightrec("shed-spike");
            }
            conn.send(&Response::Rejected(RejectedReply {
                id,
                reason,
                retry_after_ms,
            }));
        }
    }
}

fn new_tenant(cfg: &AdmissionConfig, now: Instant) -> TenantState {
    TenantState {
        bucket: TokenBucket::new(cfg.rate, cfg.burst, now),
        queue: VecDeque::new(),
        accepted: 0,
        rejected: 0,
        completed: 0,
        failed: 0,
    }
}

/// Worker loop: pop round-robin, process, repeat; exit once draining and
/// empty.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut st = shared.dispatch.lock();
            loop {
                if let Some(job) = st.pop_round_robin() {
                    hb::write(hb::object_id(&shared.dispatch));
                    break Some(job);
                }
                if shared.draining.load(Ordering::SeqCst) {
                    break None;
                }
                shared.work.wait_for(&mut st, Duration::from_millis(50));
            }
        };
        let Some(job) = job else { return };
        // A panicking job must cost the daemon one reply, not one worker:
        // dump the recorder, answer the client, count the tenant failure,
        // and keep looping.
        let (id, tenant, conn) = (job.id, job.tenant.clone(), Arc::clone(&job.conn));
        if catch_unwind(AssertUnwindSafe(|| process(job, shared))).is_err() {
            shared.registry.counter("serve.worker_panics").inc();
            shared.dump_flightrec("worker-panic");
            {
                let mut st = shared.dispatch.lock();
                if let Some(t) = st.tenants.get_mut(&tenant) {
                    t.failed += 1;
                }
            }
            shared.tenant_counter(&tenant, "failed").inc();
            conn.send(&Response::Error(ErrorReply {
                id,
                message: "internal error: worker panicked (flight recorder dumped)".into(),
            }));
        }
        shared.evaluate_slo();
        shared.sample();
    }
}

/// Builds the planner named by the request (mirrors the CLI's table).
fn planner_for(
    name: &str,
    config: PlannerConfig,
    seed: Option<u64>,
) -> Result<Box<dyn Planner>, String> {
    let greedy = || {
        let p = RandomizedGreedyPlanner::new(config);
        match seed {
            Some(s) => p.with_seed(s),
            None => p,
        }
    };
    Ok(match name {
        "ours" => Box::new(EnsemblePlanner::new(config).with_greedy(greedy())),
        "naive" => Box::new(NaivePlanner::new(config)),
        "lpt" => Box::new(LoadBalancePlanner::new(config)),
        "dfs" => Box::new(DfsPlanner::new(config)),
        "greedy" => Box::new(greedy()),
        other => return Err(format!("unknown planner {other:?}")),
    })
}

/// Rebuilds the task and cluster from a request's portable strings, the
/// same way the CLI's `TaskSpecFile::build` does.
fn build_task(req: &ReshardRequest) -> Result<(ReshardingTask, ClusterSpec, CostParams), String> {
    let src_mesh_shape = proto::parse_mesh(&req.src_mesh)?;
    let dst_mesh_shape = proto::parse_mesh(&req.dst_mesh)?;
    let shape = proto::parse_shape(&req.shape)?;
    if req.elem_bytes == 0 {
        return Err("elem_bytes must be positive".into());
    }
    let params = presets::p3_cost_params();
    let gpus = src_mesh_shape.1.max(dst_mesh_shape.1) as u32;
    let hosts = (src_mesh_shape.0 + dst_mesh_shape.0) as u32;
    let cluster = ClusterSpec::homogeneous(
        hosts,
        gpus,
        LinkParams::new(params.intra_bw, params.inter_bw)
            .with_latencies(params.intra_latency, params.inter_latency),
    );
    let src = DeviceMesh::from_cluster(&cluster, 0, src_mesh_shape, "src")
        .map_err(|e| format!("src mesh: {e}"))?;
    let dst = DeviceMesh::from_cluster(&cluster, src_mesh_shape.0, dst_mesh_shape, "dst")
        .map_err(|e| format!("dst mesh: {e}"))?;
    let task = ReshardingTask::new(
        src,
        req.src_spec.parse().map_err(|e| format!("src spec: {e}"))?,
        dst,
        req.dst_spec.parse().map_err(|e| format!("dst spec: {e}"))?,
        &shape,
        req.elem_bytes,
    )
    .map_err(|e| format!("task: {e}"))?;
    Ok((task, cluster, params))
}

/// Plans (through the shared cache), executes, and answers one job.
fn process(job: Job, shared: &Arc<Shared>) {
    let queue_ms = job.enqueued.elapsed().as_secs_f64() * 1e3;
    shared.queue_ms.observe(queue_ms);
    shared.queue_window.observe(shared.clock(), queue_ms);
    let outcome = run_job(&job, shared, queue_ms);
    let (ok, resp) = match outcome {
        Ok(done) => (true, Response::Done(done)),
        Err(message) => (
            false,
            Response::Error(ErrorReply {
                id: job.id,
                message,
            }),
        ),
    };
    {
        let mut st = shared.dispatch.lock();
        if let Some(t) = st.tenants.get_mut(&job.tenant) {
            if ok {
                t.completed += 1;
            } else {
                t.failed += 1;
            }
        }
    }
    shared
        .tenant_counter(&job.tenant, if ok { "completed" } else { "failed" })
        .inc();
    job.conn.send(&resp);
}

fn run_job(job: &Job, shared: &Arc<Shared>, queue_ms: f64) -> Result<DoneReply, String> {
    let (task, cluster, params) = build_task(&job.req)?;
    let planner_name = if job.req.planner.is_empty() {
        shared.cfg.default_planner.as_str()
    } else {
        job.req.planner.as_str()
    };
    let planner = planner_for(planner_name, PlannerConfig::new(params), job.req.seed)?;

    let plan_start = Instant::now();
    let (plan, cache_hit): (Plan<'_>, bool) = shared
        .cache
        .plan_with_exclusions_outcome(&*planner, &task, &SenderExclusions::none())
        .map_err(|e| format!("planning failed: {e}"))?;
    let plan_ms = plan_start.elapsed().as_secs_f64() * 1e3;
    shared.plan_ms.observe(plan_ms);
    shared.plan_window.observe(shared.clock(), plan_ms);

    let exec_start = Instant::now();
    let on_exec_error = |e: String| {
        if e.contains("static verification") {
            shared.exec_convictions.fetch_add(1, Ordering::Relaxed);
            shared.dump_flightrec("check-conviction");
        }
        format!("execution failed: {e}")
    };

    // Requests carrying a fault schedule execute under injection with
    // automatic repair; the repair's failover planning reuses the shared
    // plan cache, so repeated (plan, crashed-hosts) pairs replay.
    let simulated_seconds = match parse_faults(job.req.faults.as_deref())? {
        Some(schedule) => {
            let recovery = match shared.cfg.backend {
                BackendKind::Sim => execute_with_repair_cached(
                    &plan,
                    &cluster,
                    &SimBackend,
                    &schedule,
                    Some(&shared.cache),
                ),
                BackendKind::Threads => execute_with_repair_cached(
                    &plan,
                    &cluster,
                    &ThreadedBackend::threads(),
                    &schedule,
                    Some(&shared.cache),
                ),
                BackendKind::Tcp => execute_with_repair_cached(
                    &plan,
                    &cluster,
                    &ThreadedBackend::tcp(),
                    &schedule,
                    Some(&shared.cache),
                ),
            }
            .map_err(|e| on_exec_error(format!("{e}")))?;
            if recovery.repaired {
                shared.registry.counter("serve.fault_repairs").inc();
                shared
                    .registry
                    .counter("serve.failovers")
                    .add(recovery.failovers as u64);
                obs::event(
                    obs::Level::Warn,
                    "serve",
                    "fault_repair",
                    &[
                        obs::Field::u64("failovers", recovery.failovers as u64),
                        obs::Field::u64("retries", recovery.retries),
                    ],
                );
                shared.dump_flightrec("fault-repair");
            }
            recovery.report.simulated_seconds
        }
        None => {
            let backend = shared.cfg.backend.instantiate();
            plan.execute_with(&*backend, &cluster)
                .map_err(|e| on_exec_error(format!("{e}")))?
                .simulated_seconds
        }
    };
    let exec_ms = exec_start.elapsed().as_secs_f64() * 1e3;
    shared.exec_ms.observe(exec_ms);
    shared.exec_window.observe(shared.clock(), exec_ms);

    Ok(DoneReply {
        id: job.id,
        cache_hit,
        queue_ms,
        plan_ms,
        exec_ms,
        estimate_seconds: plan.estimate(),
        simulated_seconds,
        unit_tasks: task.units().len(),
    })
}

/// Parses a request's optional inline fault schedule. Empty or
/// whitespace-only text counts as absent.
fn parse_faults(text: Option<&str>) -> Result<Option<FaultSchedule>, String> {
    match text {
        Some(t) if !t.trim().is_empty() => FaultSchedule::from_json(t)
            .map(Some)
            .map_err(|e| format!("bad fault schedule: {e}")),
        _ => Ok(None),
    }
}
