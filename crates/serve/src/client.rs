//! Blocking client for the resharding daemon.
//!
//! The send and receive halves are separate so a load generator can keep
//! many requests in flight on one connection (`send` N times, then match
//! `recv`'d replies by id). [`Client::request`] is the simple
//! one-in-one-out convenience.

use crate::proto::{self, Request, RequestBody, ReshardRequest, Response, StatsReply};
use std::io;
use std::net::{SocketAddr, TcpStream};

/// A blocking connection to a resharding daemon.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true).ok();
        let reader = writer.try_clone()?;
        Ok(Client {
            writer,
            reader,
            next_id: 0,
        })
    }

    /// The next unused request id (monotone per connection).
    pub fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    /// Sends one request without waiting for its reply (pipelining).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        proto::write_frame(&mut self.writer, req)
    }

    /// Receives the next reply, in whatever completion order the daemon
    /// produced; `None` means the daemon closed the connection.
    ///
    /// # Errors
    ///
    /// Propagates socket and framing errors.
    pub fn recv(&mut self) -> io::Result<Option<Response>> {
        proto::read_frame(&mut self.reader)
    }

    /// One-in-one-out: sends `req` and waits for its reply.
    ///
    /// # Errors
    ///
    /// Socket errors, or `UnexpectedEof` if the daemon hung up first.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        self.send(req)?;
        match self.recv()? {
            Some(resp) if resp.id() == req.id => Ok(resp),
            // A pipelined caller mixing `request` with `send` would lose
            // this frame; `request` is strictly for the simple lockstep
            // pattern, so any other id is a protocol error.
            Some(resp) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "reply id {} does not match request id {}",
                    resp.id(),
                    req.id
                ),
            )),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection before replying",
            )),
        }
    }

    /// Sends a reshard request and waits for the reply.
    ///
    /// # Errors
    ///
    /// Propagates socket/framing errors.
    pub fn reshard(&mut self, tenant: &str, req: ReshardRequest) -> io::Result<Response> {
        let r = Request {
            id: self.fresh_id(),
            tenant: tenant.into(),
            body: RequestBody::Reshard(req),
        };
        self.request(&r)
    }

    /// Fetches the daemon's counter snapshot.
    ///
    /// # Errors
    ///
    /// Socket/framing errors, or `InvalidData` on a non-stats reply.
    pub fn stats(&mut self) -> io::Result<StatsReply> {
        let r = Request {
            id: self.fresh_id(),
            tenant: String::new(),
            body: RequestBody::Stats,
        };
        match self.request(&r)? {
            Response::Stats(s) => Ok(s),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected stats, got {other:?}"),
            )),
        }
    }

    /// Fetches the daemon's live Prometheus-style metrics exposition.
    ///
    /// # Errors
    ///
    /// Socket/framing errors, or `InvalidData` on a non-telemetry reply.
    pub fn telemetry(&mut self) -> io::Result<String> {
        let r = Request {
            id: self.fresh_id(),
            tenant: String::new(),
            body: RequestBody::Telemetry,
        };
        match self.request(&r)? {
            Response::Telemetry(t) => Ok(t.text),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected telemetry, got {other:?}"),
            )),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Socket/framing errors, or `InvalidData` on a non-pong reply.
    pub fn ping(&mut self) -> io::Result<()> {
        let r = Request {
            id: self.fresh_id(),
            tenant: String::new(),
            body: RequestBody::Ping,
        };
        match self.request(&r)? {
            Response::Pong { .. } => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected pong, got {other:?}"),
            )),
        }
    }

    /// Asks the daemon to drain and exit (requires the server to allow
    /// remote shutdown).
    ///
    /// # Errors
    ///
    /// Socket/framing errors, or `PermissionDenied` if the daemon refused.
    pub fn shutdown(&mut self) -> io::Result<()> {
        let r = Request {
            id: self.fresh_id(),
            tenant: String::new(),
            body: RequestBody::Shutdown,
        };
        match self.request(&r)? {
            Response::ShuttingDown { .. } => Ok(()),
            Response::Error(e) => Err(io::Error::new(io::ErrorKind::PermissionDenied, e.message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected shutdown ack, got {other:?}"),
            )),
        }
    }
}
