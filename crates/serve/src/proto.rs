//! The daemon's wire protocol: length-prefixed JSON frames over TCP.
//!
//! Every frame is a 4-byte little-endian payload length followed by one
//! JSON document. Requests carry a client-chosen `id` that every reply
//! echoes, so a client may pipeline many requests on one connection and
//! match responses as they arrive (the daemon's workers reply in
//! completion order, not submission order).
//!
//! JSON-over-TCP is deliberate: the daemon's unit of work is *planning*
//! (milliseconds), not byte shuffling, so the protocol optimises for
//! debuggability — `nc` + a JSON pretty-printer is a usable client.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{self, ErrorKind, Read, Write};

/// Frames larger than this are rejected instead of allocated: a corrupt
/// or hostile length prefix must not OOM the daemon.
pub const MAX_FRAME: usize = 4 << 20;

/// One client request: a tenant identity, a client-chosen id echoed by
/// the reply, and the request body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the reply.
    pub id: u64,
    /// Tenant this request is accounted (and rate-limited) under.
    pub tenant: String,
    /// What to do.
    pub body: RequestBody,
}

/// The request payload variants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RequestBody {
    /// Plan (through the shared cache), verify, and execute a resharding
    /// task.
    Reshard(ReshardRequest),
    /// Report server-wide and per-tenant counters.
    Stats,
    /// Report live metrics in Prometheus text exposition format,
    /// including rolling-window p50/p99/p999 latency quantiles.
    Telemetry,
    /// Liveness probe.
    Ping,
    /// Ask the daemon to drain and exit (honoured only when the server
    /// was configured to allow remote shutdown).
    Shutdown,
}

/// A resharding problem, in the same portable string encoding the CLI
/// and `crossmesh check` use (`"2x4"` meshes, `"S0RR"` specs,
/// `"1024x64"` shapes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReshardRequest {
    /// Source sharding spec, e.g. `"RS0R"`.
    pub src_spec: String,
    /// Destination sharding spec, e.g. `"S0RR"`.
    pub dst_spec: String,
    /// Source mesh `rows x cols`, e.g. `"2x4"`.
    pub src_mesh: String,
    /// Destination mesh `rows x cols`.
    pub dst_mesh: String,
    /// Tensor shape, e.g. `"1024x64"`.
    pub shape: String,
    /// Bytes per element.
    pub elem_bytes: u64,
    /// Planner name (`ours`/`naive`/`lpt`/`dfs`/`greedy`); empty selects
    /// the server's default.
    pub planner: String,
    /// Seed for the randomized-greedy planner.
    pub seed: Option<u64>,
    /// Optional inline JSON fault schedule (`crossmesh-faults` format).
    /// When set, the job executes under fault injection with automatic
    /// repair; absent (or `null`, as older clients send) runs clean.
    pub faults: Option<String>,
}

impl ReshardRequest {
    /// A small default request (used by tests and examples).
    pub fn example() -> ReshardRequest {
        ReshardRequest {
            src_spec: "RS0R".into(),
            dst_spec: "S0RR".into(),
            src_mesh: "2x4".into(),
            dst_mesh: "2x4".into(),
            shape: "64x64x8".into(),
            elem_bytes: 4,
            planner: String::new(),
            seed: None,
            faults: None,
        }
    }
}

/// Every reply the daemon sends. All variants echo the request `id`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The request was planned, verified, and executed.
    Done(DoneReply),
    /// Admission control turned the request away; retry after the hint.
    Rejected(RejectedReply),
    /// The request was admitted but failed (bad specs, data loss,
    /// verification conviction, backend error).
    Error(ErrorReply),
    /// Counter snapshot.
    Stats(StatsReply),
    /// Prometheus-style exposition for [`RequestBody::Telemetry`].
    Telemetry(TelemetryReply),
    /// Pong for [`RequestBody::Ping`].
    Pong {
        /// Echoed request id.
        id: u64,
    },
    /// Acknowledges [`RequestBody::Shutdown`]; the daemon drains and
    /// exits after sending this.
    ShuttingDown {
        /// Echoed request id.
        id: u64,
    },
}

impl Response {
    /// The echoed request id, whatever the variant.
    pub fn id(&self) -> u64 {
        match self {
            Response::Done(r) => r.id,
            Response::Rejected(r) => r.id,
            Response::Error(r) => r.id,
            Response::Stats(r) => r.id,
            Response::Telemetry(r) => r.id,
            Response::Pong { id } | Response::ShuttingDown { id } => *id,
        }
    }
}

/// A completed resharding request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DoneReply {
    /// Echoed request id.
    pub id: u64,
    /// Whether the plan came from the shared cross-tenant cache.
    pub cache_hit: bool,
    /// Milliseconds spent queued before a worker picked the request up.
    pub queue_ms: f64,
    /// Milliseconds spent planning (or replaying the cached plan).
    pub plan_ms: f64,
    /// Milliseconds spent executing on the configured backend.
    pub exec_ms: f64,
    /// The plan's analytic makespan estimate, seconds.
    pub estimate_seconds: f64,
    /// The backend's reported completion time, seconds.
    pub simulated_seconds: f64,
    /// Unit tasks in the resharding problem.
    pub unit_tasks: usize,
}

/// Load was shed: the tenant's token bucket or queue was full, or the
/// daemon is draining.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RejectedReply {
    /// Echoed request id.
    pub id: u64,
    /// Why: `rate_limited`, `queue_full`, or `shutting_down`.
    pub reason: String,
    /// Client backoff hint: when capacity should next be available.
    pub retry_after_ms: u64,
}

/// An admitted request that could not complete.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorReply {
    /// Echoed request id.
    pub id: u64,
    /// Human-readable failure description.
    pub message: String,
}

/// Live metrics in Prometheus text exposition format: every counter,
/// gauge, and histogram in the daemon's registry plus rolling-window
/// latency summaries (`*_window{quantile="0.5"|"0.99"|"0.999"}`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetryReply {
    /// Echoed request id.
    pub id: u64,
    /// The exposition text (newline-terminated metric lines).
    pub text: String,
}

/// Per-tenant counter snapshot inside [`StatsReply`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantStats {
    /// Requests admitted past admission control.
    pub accepted: u64,
    /// Requests shed (rate limit, queue bound, or drain).
    pub rejected: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Admitted requests that failed.
    pub failed: u64,
    /// Requests currently queued.
    pub queue_depth: usize,
}

/// Server-wide counter snapshot.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StatsReply {
    /// Echoed request id.
    pub id: u64,
    /// Sum of per-tenant accepted counts.
    pub accepted: u64,
    /// Sum of per-tenant rejected counts.
    pub rejected: u64,
    /// Sum of per-tenant completed counts.
    pub completed: u64,
    /// Sum of per-tenant failed counts.
    pub failed: u64,
    /// Shared plan-cache hits across all tenants.
    pub cache_hits: u64,
    /// Shared plan-cache misses.
    pub cache_misses: u64,
    /// Entries resident in the shared cache.
    pub cache_entries: usize,
    /// Verifier convictions: cache-hit invalidations plus pre-execute
    /// verification failures. Zero in a healthy deployment.
    pub verifier_convictions: u64,
    /// Per-tenant breakdown, keyed by tenant name.
    pub tenants: BTreeMap<String, TenantStats>,
}

/// Outcome of one timed frame read.
#[derive(Debug)]
pub enum FrameRead<T> {
    /// A whole frame arrived and parsed.
    Frame(T),
    /// The peer closed the connection at a frame boundary.
    Eof,
    /// The read timed out before the first byte of a frame; the
    /// connection is still healthy (re-check shutdown flags and retry).
    TimedOut,
}

/// Writes one length-prefixed JSON frame.
///
/// # Errors
///
/// Propagates serialization and socket errors.
pub fn write_frame<W: Write, T: Serialize>(w: &mut W, value: &T) -> io::Result<()> {
    let body = serde_json::to_string(value)
        .map_err(|e| io::Error::new(ErrorKind::InvalidData, format!("serialize frame: {e:?}")))?;
    let bytes = body.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds MAX_FRAME", bytes.len()),
        ));
    }
    w.write_all(&(bytes.len() as u32).to_le_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads exactly `buf.len()` bytes, tolerating timeout ticks *only*
/// before the first byte when `allow_timeout_at_start` is set (in which
/// case `Ok(false)` reports the timeout). Mid-buffer timeouts keep
/// waiting: a frame, once started, must finish.
fn read_exact_tolerant<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    allow_timeout_at_start: bool,
) -> io::Result<Option<bool>> {
    let mut got = 0usize;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(None); // clean EOF at a boundary
                }
                return Err(io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if got == 0 && allow_timeout_at_start {
                    return Ok(Some(false));
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(true))
}

/// Reads one frame, honouring the stream's read timeout at frame
/// boundaries (so accept/reader loops can poll a shutdown flag).
///
/// # Errors
///
/// Propagates socket errors, oversized frames, and JSON parse failures.
pub fn read_frame_timeout<R: Read, T: serde::de::DeserializeOwned>(
    r: &mut R,
) -> io::Result<FrameRead<T>> {
    let mut len_buf = [0u8; 4];
    match read_exact_tolerant(r, &mut len_buf, true)? {
        None => return Ok(FrameRead::Eof),
        Some(false) => return Ok(FrameRead::TimedOut),
        Some(true) => {}
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            format!("incoming frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut body = vec![0u8; len];
    match read_exact_tolerant(r, &mut body, false)? {
        None | Some(false) => Err(io::Error::new(
            ErrorKind::UnexpectedEof,
            "peer closed mid-frame",
        )),
        Some(true) => {
            let text = String::from_utf8(body)
                .map_err(|e| io::Error::new(ErrorKind::InvalidData, format!("{e}")))?;
            serde_json::from_str(&text)
                .map(FrameRead::Frame)
                .map_err(|e| {
                    io::Error::new(ErrorKind::InvalidData, format!("bad frame JSON: {e:?}"))
                })
        }
    }
}

/// Reads one frame from a stream with no read timeout set; `None` means
/// the peer closed cleanly.
///
/// # Errors
///
/// Propagates socket errors, oversized frames, and JSON parse failures.
pub fn read_frame<R: Read, T: serde::de::DeserializeOwned>(r: &mut R) -> io::Result<Option<T>> {
    match read_frame_timeout(r)? {
        FrameRead::Frame(t) => Ok(Some(t)),
        FrameRead::Eof => Ok(None),
        // Without a read timeout the OS never reports WouldBlock; treat a
        // spurious one as an error rather than spinning.
        FrameRead::TimedOut => Err(io::Error::new(
            ErrorKind::TimedOut,
            "read timed out on a stream without a timeout policy",
        )),
    }
}

/// Parses `"2x4"` into `(rows, cols)`.
///
/// # Errors
///
/// A message naming the malformed input.
pub fn parse_mesh(s: &str) -> Result<(usize, usize), String> {
    let (a, b) = s
        .split_once(['x', 'X'])
        .ok_or_else(|| format!("mesh {s:?} must look like 2x4"))?;
    let rows: usize = a.parse().map_err(|_| format!("bad mesh rows in {s:?}"))?;
    let cols: usize = b.parse().map_err(|_| format!("bad mesh cols in {s:?}"))?;
    if rows == 0 || cols == 0 {
        return Err(format!("mesh {s:?} must be non-empty"));
    }
    Ok((rows, cols))
}

/// Parses `"1024x64x8"` into a shape vector.
///
/// # Errors
///
/// A message naming the malformed component.
pub fn parse_shape(s: &str) -> Result<Vec<u64>, String> {
    s.split(['x', 'X'])
        .map(|p| {
            p.parse::<u64>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("bad shape component {p:?} in {s:?}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let req = Request {
            id: 7,
            tenant: "acme".into(),
            body: RequestBody::Reshard(ReshardRequest::example()),
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &req).unwrap();
        let mut cursor = &buf[..];
        let got: Request = read_frame(&mut cursor).unwrap().expect("one frame");
        assert_eq!(got, req);
        // And EOF afterwards.
        let eof: Option<Request> = read_frame(&mut cursor).unwrap();
        assert!(eof.is_none());
    }

    #[test]
    fn reshard_frames_from_pre_faults_clients_still_parse() {
        // Hand-built frame with no `faults` key, as clients predating the
        // field send it: the field must default to None, not error.
        let body = r#"{"id":3,"tenant":"t","body":{"Reshard":{"src_spec":"RS0R","dst_spec":"S0RR","src_mesh":"2x4","dst_mesh":"2x4","shape":"64x64x8","elem_bytes":4,"planner":"","seed":null}}}"#;
        let mut buf = Vec::new();
        buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
        buf.extend_from_slice(body.as_bytes());
        let got: Request = read_frame(&mut &buf[..]).unwrap().expect("frame");
        match got.body {
            RequestBody::Reshard(r) => assert_eq!(r.faults, None),
            other => panic!("parsed wrong body: {other:?}"),
        }
    }

    #[test]
    fn telemetry_request_round_trips() {
        let req = Request {
            id: 11,
            tenant: "ops".into(),
            body: RequestBody::Telemetry,
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &req).unwrap();
        let got: Request = read_frame(&mut &buf[..]).unwrap().expect("frame");
        assert_eq!(got, req);
    }

    #[test]
    fn every_response_variant_round_trips_with_its_id() {
        let responses = [
            Response::Done(DoneReply {
                id: 1,
                cache_hit: true,
                queue_ms: 0.5,
                plan_ms: 1.5,
                exec_ms: 0.25,
                estimate_seconds: 0.01,
                simulated_seconds: 0.012,
                unit_tasks: 8,
            }),
            Response::Rejected(RejectedReply {
                id: 2,
                reason: "rate_limited".into(),
                retry_after_ms: 12,
            }),
            Response::Error(ErrorReply {
                id: 3,
                message: "boom".into(),
            }),
            Response::Stats(StatsReply {
                id: 4,
                ..StatsReply::default()
            }),
            Response::Telemetry(TelemetryReply {
                id: 5,
                text: "serve_completed_total 3\n".into(),
            }),
            Response::Pong { id: 6 },
            Response::ShuttingDown { id: 7 },
        ];
        for (i, r) in responses.iter().enumerate() {
            let mut buf = Vec::new();
            write_frame(&mut buf, r).unwrap();
            let got: Response = read_frame(&mut &buf[..]).unwrap().expect("frame");
            assert_eq!(&got, r);
            assert_eq!(got.id(), (i + 1) as u64);
        }
    }

    #[test]
    fn oversized_frames_are_rejected_not_allocated() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let err = read_frame::<_, Request>(&mut &buf[..]).unwrap_err();
        assert!(err.to_string().contains("MAX_FRAME"), "{err}");
    }

    #[test]
    fn truncated_frames_error_instead_of_hanging() {
        let req = Request {
            id: 1,
            tenant: "t".into(),
            body: RequestBody::Ping,
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &req).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_frame::<_, Request>(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::UnexpectedEof);
    }

    #[test]
    fn mesh_and_shape_parsing() {
        assert_eq!(parse_mesh("2x4").unwrap(), (2, 4));
        assert!(parse_mesh("0x4").is_err());
        assert!(parse_mesh("nope").is_err());
        assert_eq!(parse_shape("8x4").unwrap(), vec![8, 4]);
        assert!(parse_shape("8x0").is_err());
    }
}
