//! Lowering a scheduled pipeline onto the simulator.

use crate::schedule::{build_schedule, Op, Schedule, ScheduleKind, WeightDelay};
use crate::stage::StageGraph;
use crossmesh_collectives::estimate_unit_task;
use crossmesh_core::{CostParams, Plan, PlanCache, Planner};
use crossmesh_netsim::{
    Backend, ClusterSpec, DeviceId, SimBackend, SimError, TaskGraph, TaskId, Work,
};
use crossmesh_obs as obs;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Registry handles for pipeline execution, resolved once. Bubble time is
/// the per-stage idle fraction of the iteration, in seconds — the gap the
/// schedule failed to hide behind compute.
struct PipelineMetrics {
    iterations: obs::Counter,
    stage_bubble: obs::Histogram,
}

fn pipeline_metrics() -> &'static PipelineMetrics {
    static METRICS: OnceLock<PipelineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let m = obs::metrics();
        PipelineMetrics {
            iterations: m.counter("pipeline.iterations"),
            stage_bubble: m.histogram(
                "pipeline.stage_bubble_s",
                &[0.01, 0.1, 1.0, 10.0, 100.0, 1000.0],
            ),
        }
    })
}

/// How cross-mesh resharding interacts with stage compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommMode {
    /// Communication blocks the sending stage until delivery completes and
    /// receivers wait for the whole transfer — the "Broadcast" baseline of
    /// §5.2 (single-task optimization, no overlap).
    Synchronous,
    /// Sends are fire-and-forget; each receiving device waits only for its
    /// own tiles. Combined with eager-1F1B this is the paper's full system.
    Overlapped,
    /// Every resharding is replaced by a single 1-byte flow: the paper's
    /// hypothetical "Signal Send/Recv" upper bound, which keeps the data
    /// dependencies but removes virtually all communication cost.
    Signal,
}

/// Pipeline execution configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Which schedule shape to run.
    pub schedule: ScheduleKind,
    /// How communication interacts with compute.
    pub comm: CommMode,
    /// Placement of the weight-gradient halves.
    pub weight_delay: WeightDelay,
}

impl PipelineConfig {
    /// The paper's full system: eager-1F1B with overlapped communication.
    pub fn ours() -> Self {
        PipelineConfig {
            schedule: ScheduleKind::Eager1F1B,
            comm: CommMode::Overlapped,
            weight_delay: WeightDelay::None,
        }
    }
}

/// Results of one simulated training iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Time of the iteration (all microbatches, forward + backward).
    pub iteration_seconds: f64,
    /// Per stage: the peak number of in-flight activations.
    pub peak_live_activations: Vec<usize>,
    /// Per stage: peak memory per device (weights + live activations).
    pub peak_memory_bytes: Vec<f64>,
    /// Total bytes that crossed host NICs.
    pub cross_host_bytes: f64,
    /// Seconds during which cross-host communication was in flight
    /// (merged intervals) — compare against `iteration_seconds` to see how
    /// much communication the schedule exposed or hid.
    pub comm_busy_seconds: f64,
    /// Mean fraction of the iteration each participating device spent
    /// computing.
    pub mean_device_utilization: f64,
    /// Number of simulator tasks lowered.
    pub tasks_lowered: usize,
    /// Resharding plans served from the [`PlanCache`] during this call
    /// (0 when no cache was supplied).
    pub plan_cache_hits: u64,
    /// Resharding plans that had to be computed during this call (0 when
    /// no cache was supplied).
    pub plan_cache_misses: u64,
}

impl PipelineReport {
    /// Plan-cache hits as a fraction of this call's plan lookups (0 when
    /// planning was uncached).
    pub fn plan_cache_hit_rate(&self) -> f64 {
        let total = self.plan_cache_hits + self.plan_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.plan_cache_hits as f64 / total as f64
        }
    }
}

/// The least weight delay whose overlap window covers the slowest backward
/// resharding edge, per the paper's cost-model heuristic ("we use a simple
/// cost model to estimate the compute and communication time and delay the
/// least to cover all communications").
pub fn auto_weight_delay(graph: &StageGraph, params: &CostParams) -> WeightDelay {
    let mut worst_comm = 0.0f64;
    for edge in graph.edges() {
        let comm: f64 = edge
            .backward
            .units()
            .iter()
            .map(|u| {
                let h = u.senders[0].1;
                estimate_unit_task(params, u, h, crossmesh_core::Strategy::broadcast())
            })
            .sum();
        worst_comm = worst_comm.max(comm);
    }
    let min_bact = graph
        .stages()
        .iter()
        .map(|s| s.backward_act_seconds)
        .fold(f64::INFINITY, f64::min);
    if worst_comm <= 0.0 || !min_bact.is_finite() || min_bact <= 0.0 {
        return WeightDelay::None;
    }
    let d = (worst_comm / min_bact).ceil() as usize;
    WeightDelay::Fixed(d.min(graph.stages().len()))
}

/// Handles of one lowered resharding instance.
struct CommInstance {
    /// Tasks each destination device must wait for (overlapped mode).
    per_device: HashMap<DeviceId, Vec<TaskId>>,
    /// Joins the whole transfer.
    done: TaskId,
}

/// Simulates one training iteration of `graph` on `cluster`.
///
/// Cross-stage reshardings are planned once per edge and direction by
/// `planner`, then lowered per microbatch according to `config.comm`.
///
/// # Errors
///
/// Propagates simulator errors (stage meshes referencing devices outside
/// `cluster`).
///
/// # Panics
///
/// Panics if the schedule deadlocks (impossible for the built-in schedule
/// kinds) or the stage graph is empty.
pub fn simulate(
    graph: &StageGraph,
    cluster: &ClusterSpec,
    planner: &dyn Planner,
    config: &PipelineConfig,
) -> Result<PipelineReport, SimError> {
    simulate_with(graph, cluster, planner, config, &SimBackend)
}

/// Like [`simulate`], but runs the lowered iteration graph through an
/// arbitrary [`Backend`] — the flow-level simulator or a real execution
/// backend (e.g. the threaded runtime). Timing fields of the report then
/// carry that backend's clock.
///
/// # Errors
///
/// Propagates backend errors.
///
/// # Panics
///
/// Panics if the schedule deadlocks (impossible for the built-in schedule
/// kinds) or the stage graph is empty.
pub fn simulate_with(
    graph: &StageGraph,
    cluster: &ClusterSpec,
    planner: &dyn Planner,
    config: &PipelineConfig,
    backend: &dyn Backend,
) -> Result<PipelineReport, SimError> {
    simulate_with_cache(graph, cluster, planner, config, backend, None)
}

/// Like [`simulate_with`], with an optional [`PlanCache`]: resharding plans
/// are looked up by content before running the planner, so repeated
/// iterations (or edges resharding identical tensors) plan once. The
/// report's `plan_cache_hits`/`plan_cache_misses` carry this call's share
/// of the cache traffic.
///
/// # Errors
///
/// Propagates backend errors.
///
/// # Panics
///
/// Panics if the schedule deadlocks (impossible for the built-in schedule
/// kinds) or the stage graph is empty.
pub fn simulate_with_cache(
    graph: &StageGraph,
    cluster: &ClusterSpec,
    planner: &dyn Planner,
    config: &PipelineConfig,
    backend: &dyn Backend,
    cache: Option<&PlanCache>,
) -> Result<PipelineReport, SimError> {
    let num_stages = graph.stages().len();
    assert!(num_stages > 0, "pipeline needs at least one stage");
    let schedule = build_schedule(
        config.schedule,
        num_stages,
        graph.num_microbatches(),
        config.weight_delay,
    );
    simulate_schedule_with_cache(
        graph,
        cluster,
        planner,
        config.comm,
        &schedule,
        backend,
        cache,
    )
}

/// Like [`simulate_with`], but runs an explicit per-stage [`Schedule`]
/// instead of deriving one from a [`ScheduleKind`] — the entry point for
/// custom schedules such as
/// [`build_straggler_schedule`](crate::schedule::build_straggler_schedule).
///
/// # Errors
///
/// Propagates backend errors.
///
/// # Panics
///
/// Panics if the schedule's stage or microbatch count does not match
/// `graph`, or if the schedule deadlocks.
pub fn simulate_schedule(
    graph: &StageGraph,
    cluster: &ClusterSpec,
    planner: &dyn Planner,
    comm: CommMode,
    schedule: &Schedule,
    backend: &dyn Backend,
) -> Result<PipelineReport, SimError> {
    simulate_schedule_with_cache(graph, cluster, planner, comm, schedule, backend, None)
}

/// Like [`simulate_schedule`], with an optional [`PlanCache`] consulted for
/// every per-edge resharding plan.
///
/// # Errors
///
/// Propagates backend errors.
///
/// # Panics
///
/// Panics if the schedule's stage or microbatch count does not match
/// `graph`, or if the schedule deadlocks.
#[allow(clippy::too_many_arguments)]
pub fn simulate_schedule_with_cache(
    graph: &StageGraph,
    cluster: &ClusterSpec,
    planner: &dyn Planner,
    comm: CommMode,
    schedule: &Schedule,
    backend: &dyn Backend,
    cache: Option<&PlanCache>,
) -> Result<PipelineReport, SimError> {
    let num_stages = graph.stages().len();
    assert!(num_stages > 0, "pipeline needs at least one stage");
    assert_eq!(
        schedule.num_stages(),
        num_stages,
        "schedule must cover every stage"
    );
    assert_eq!(
        schedule.num_microbatches(),
        graph.num_microbatches(),
        "schedule and graph disagree on microbatch count"
    );
    let span = obs::Span::enter(
        obs::Level::Debug,
        "pipeline",
        "simulate",
        &[
            obs::Field::u64("stages", num_stages as u64),
            obs::Field::u64("microbatches", graph.num_microbatches() as u64),
            obs::Field::str("backend", backend.name()),
        ],
    );
    pipeline_metrics().iterations.inc();
    let stats_before = cache.map(|c| c.stats()).unwrap_or_default();
    let mut lowering = Lowering::new(graph, schedule, planner, comm, cache);
    lowering.run();
    lowering.lower_grad_sync();
    let Lowering { task_graph, .. } = lowering;

    let trace = backend.execute(cluster, &task_graph)?;
    let peak_live: Vec<usize> = (0..num_stages)
        .map(|s| schedule.peak_live_activations(s))
        .collect();
    let peak_memory = graph
        .stages()
        .iter()
        .zip(&peak_live)
        .map(|(st, &live)| st.weight_bytes + live as f64 * st.stored_activation_bytes())
        .collect();
    let utilization = trace.device_utilization(&task_graph);
    let mean_device_utilization = if utilization.is_empty() {
        0.0
    } else {
        utilization.values().sum::<f64>() / utilization.len() as f64
    };
    let stats_after = cache.map(|c| c.stats()).unwrap_or_default();
    let iteration = trace.makespan();
    // Per-stage bubble: the mean idle time of the stage's devices over the
    // iteration — what the schedule failed to hide behind compute.
    for stage in graph.stages() {
        let devs = stage.mesh.devices();
        let busy: f64 = devs
            .iter()
            .map(|d| utilization.get(&d.0).copied().unwrap_or(0.0))
            .sum();
        let mean_util = if devs.is_empty() {
            0.0
        } else {
            busy / devs.len() as f64
        };
        pipeline_metrics()
            .stage_bubble
            .observe(iteration * (1.0 - mean_util));
    }
    span.record(&[obs::Field::f64("iteration_seconds", iteration)]);
    Ok(PipelineReport {
        iteration_seconds: trace.makespan(),
        peak_live_activations: peak_live,
        peak_memory_bytes: peak_memory,
        cross_host_bytes: trace.usage().total_cross_host_bytes(),
        comm_busy_seconds: trace.cross_host_comm_seconds(&task_graph, cluster),
        mean_device_utilization,
        tasks_lowered: task_graph.len(),
        plan_cache_hits: stats_after.hits - stats_before.hits,
        plan_cache_misses: stats_after.misses - stats_before.misses,
    })
}

struct Lowering<'a> {
    graph: &'a StageGraph,
    schedule: &'a Schedule,
    comm: CommMode,
    task_graph: TaskGraph,
    /// Per stage: next op index to lower.
    op_ptr: Vec<usize>,
    /// Per stage, per device (mesh order): last lowered task in the
    /// device's serial chain.
    last_on_device: Vec<Vec<Option<TaskId>>>,
    /// Lowered forward comm per (edge, microbatch).
    fwd_comm: HashMap<(usize, usize), CommInstance>,
    /// Lowered backward (gradient) comm per (edge, microbatch).
    bwd_comm: HashMap<(usize, usize), CommInstance>,
    /// Per-edge plans, computed once.
    fwd_plans: Vec<Option<Plan<'a>>>,
    bwd_plans: Vec<Option<Plan<'a>>>,
    /// One "communicator" per (source hosts, destination hosts) mesh pair:
    /// resharding instances between the same meshes in the same direction
    /// issue in order, like collectives on one NCCL communicator. Maps the
    /// pair to the previous instance's completion.
    comm_chain: HashMap<(Vec<crossmesh_netsim::HostId>, Vec<crossmesh_netsim::HostId>), TaskId>,
}

impl<'a> Lowering<'a> {
    fn new(
        graph: &'a StageGraph,
        schedule: &'a Schedule,
        planner: &dyn Planner,
        comm: CommMode,
        cache: Option<&PlanCache>,
    ) -> Self {
        let n = graph.stages().len();
        let plan_task = |task: &'a crossmesh_core::ReshardingTask| match cache {
            Some(c) => c.plan(planner, task),
            None => planner.plan(task),
        };
        let (fwd_plans, bwd_plans) = match comm {
            CommMode::Signal => (
                graph.edges().iter().map(|_| None).collect(),
                graph.edges().iter().map(|_| None).collect(),
            ),
            _ => (
                graph
                    .edges()
                    .iter()
                    .map(|e| Some(plan_task(&e.forward)))
                    .collect(),
                graph
                    .edges()
                    .iter()
                    .map(|e| Some(plan_task(&e.backward)))
                    .collect(),
            ),
        };
        Lowering {
            graph,
            schedule,
            comm,
            task_graph: TaskGraph::new(),
            op_ptr: vec![0; n],
            last_on_device: graph
                .stages()
                .iter()
                .map(|s| vec![None; s.mesh.num_devices()])
                .collect(),
            fwd_comm: HashMap::new(),
            bwd_comm: HashMap::new(),
            fwd_plans,
            bwd_plans,
            comm_chain: HashMap::new(),
        }
    }

    fn run(&mut self) {
        loop {
            let mut progressed = false;
            for s in 0..self.graph.stages().len() {
                while self.try_advance(s) {
                    progressed = true;
                }
            }
            if self
                .op_ptr
                .iter()
                .enumerate()
                .all(|(s, &p)| p == self.schedule.stage_ops(s).len())
            {
                return;
            }
            assert!(progressed, "pipeline schedule deadlocked");
        }
    }

    /// Lowers the next op of stage `s` if its cross-stage inputs are ready.
    fn try_advance(&mut self, s: usize) -> bool {
        let ops = self.schedule.stage_ops(s);
        let Some(&op) = ops.get(self.op_ptr[s]) else {
            return false;
        };
        // Check and collect cross-stage dependencies.
        let comm_keys: Vec<(bool, usize, usize)> = match op {
            Op::Forward(mb) => self.graph.in_edges(s).map(|(e, _)| (true, e, mb)).collect(),
            Op::BackwardAct(mb) => self
                .graph
                .out_edges(s)
                .map(|(e, _)| (false, e, mb))
                .collect(),
            Op::BackwardWeight(_) => Vec::new(),
        };
        for &(fwd, e, mb) in &comm_keys {
            let store = if fwd { &self.fwd_comm } else { &self.bwd_comm };
            if !store.contains_key(&(e, mb)) {
                return false;
            }
        }

        let stage = &self.graph.stages()[s];
        let seconds = match op {
            Op::Forward(_) => stage.forward_seconds,
            Op::BackwardAct(_) => stage.effective_backward_act_seconds(),
            Op::BackwardWeight(_) => stage.backward_weight_seconds,
        };
        let mut tasks = Vec::with_capacity(stage.mesh.num_devices());
        for (d, &dev) in stage.mesh.devices().iter().enumerate() {
            let mut deps: Vec<TaskId> = Vec::new();
            if let Some(prev) = self.last_on_device[s][d] {
                deps.push(prev);
            }
            for &(fwd, e, mb) in &comm_keys {
                let store = if fwd { &self.fwd_comm } else { &self.bwd_comm };
                let inst = &store[&(e, mb)];
                match self.comm {
                    CommMode::Overlapped => {
                        if let Some(ids) = inst.per_device.get(&dev) {
                            deps.extend(ids.iter().copied());
                        }
                    }
                    CommMode::Synchronous | CommMode::Signal => deps.push(inst.done),
                }
            }
            let t = self.task_graph.add_labeled(
                Work::compute(dev, seconds),
                deps,
                Some(format!("{} {}", stage.name, op)),
            );
            self.last_on_device[s][d] = Some(t);
            tasks.push(t);
        }
        self.op_ptr[s] += 1;

        // Producing ops trigger outgoing communication immediately.
        match op {
            Op::Forward(mb) => {
                let edges: Vec<usize> = self.graph.out_edges(s).map(|(e, _)| e).collect();
                for e in edges {
                    let inst = self.lower_comm(true, e, &tasks);
                    self.after_comm(s, true, e, &inst);
                    self.fwd_comm.insert((e, mb), inst);
                }
            }
            Op::BackwardAct(mb) => {
                let edges: Vec<usize> = self.graph.in_edges(s).map(|(e, _)| e).collect();
                for e in edges {
                    let inst = self.lower_comm(false, e, &tasks);
                    self.after_comm(s, false, e, &inst);
                    self.bwd_comm.insert((e, mb), inst);
                }
            }
            Op::BackwardWeight(_) => {}
        }
        true
    }

    /// Lowers one resharding instance gated by the producing compute tasks.
    fn lower_comm(&mut self, forward: bool, e: usize, producers: &[TaskId]) -> CommInstance {
        let edge = &self.graph.edges()[e];
        let resharding = if forward {
            &edge.forward
        } else {
            &edge.backward
        };
        match self.comm {
            CommMode::Signal => {
                // Zero payload: the flow costs only link latency, keeping
                // the data dependency while removing the communication
                // cost (the paper's 1-byte signal on a 10 Gbps NIC).
                let src = resharding.src_mesh().devices()[0];
                let dst = resharding.dst_mesh().devices()[0];
                let f = self.task_graph.add_labeled(
                    Work::flow(src, dst, 0.0),
                    producers.iter().copied(),
                    Some("signal"),
                );
                CommInstance {
                    per_device: HashMap::new(),
                    done: f,
                }
            }
            _ => {
                let plan = if forward {
                    self.fwd_plans[e].as_ref()
                } else {
                    self.bwd_plans[e].as_ref()
                }
                .expect("plans exist outside signal mode");
                let chain_key = (
                    resharding.src_mesh().distinct_hosts(),
                    resharding.dst_mesh().distinct_hosts(),
                );
                let mut deps: Vec<TaskId> = producers.to_vec();
                if let Some(&prev) = self.comm_chain.get(&chain_key) {
                    deps.push(prev);
                }
                let lowered = plan.lower(&mut self.task_graph, &deps);
                self.comm_chain.insert(chain_key, lowered.done);
                let mut per_device: HashMap<DeviceId, Vec<TaskId>> = HashMap::new();
                for unit in &lowered.per_unit {
                    for &(dev, t) in &unit.receiver_done {
                        per_device.entry(dev).or_default().push(t);
                    }
                }
                CommInstance {
                    per_device,
                    done: lowered.done,
                }
            }
        }
    }

    /// In synchronous mode the sending stage's devices are blocked until
    /// the transfer completes.
    fn after_comm(&mut self, s: usize, _forward: bool, _e: usize, inst: &CommInstance) {
        if self.comm == CommMode::Synchronous {
            for slot in &mut self.last_on_device[s] {
                *slot = Some(inst.done);
            }
        }
    }

    /// Lowers each stage's end-of-iteration gradient all-reduce (data
    /// parallelism), gated by the last op on every participating device.
    fn lower_grad_sync(&mut self) {
        for (s, stage) in self.graph.stages().iter().enumerate() {
            let Some(sync) = stage.grad_sync else {
                continue;
            };
            for group in stage.grad_sync_groups() {
                let ready: Vec<Vec<TaskId>> = group
                    .iter()
                    .map(|dev| {
                        let idx = stage
                            .mesh
                            .devices()
                            .iter()
                            .position(|d| d == dev)
                            .expect("group devices belong to the stage mesh");
                        self.last_on_device[s][idx].into_iter().collect()
                    })
                    .collect();
                crossmesh_collectives::ring_all_reduce(
                    &mut self.task_graph,
                    &group,
                    sync.bytes,
                    &ready,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::{EdgeTensor, Stage};
    use crossmesh_core::{EnsemblePlanner, PlannerConfig};
    use crossmesh_mesh::DeviceMesh;
    use crossmesh_netsim::LinkParams;

    /// Two hosts x 2 devices; stage 0 on host 0, stage 1 on host 1.
    fn cluster() -> ClusterSpec {
        ClusterSpec::homogeneous(2, 2, LinkParams::new(100.0, 1.0).with_latencies(0.0, 0.0))
    }

    fn planner() -> EnsemblePlanner {
        EnsemblePlanner::new(PlannerConfig::new(crossmesh_core::CostParams {
            inter_bw: 1.0,
            intra_bw: 100.0,
            inter_latency: 0.0,
            intra_latency: 0.0,
        }))
    }

    /// A 2-stage pipeline with per-microbatch forward time `f` and an edge
    /// carrying `bytes` (replicated -> replicated for simplicity).
    fn two_stage(c: &ClusterSpec, m: usize, f: f64, bytes: u64) -> StageGraph {
        let m0 = DeviceMesh::from_cluster(c, 0, (1, 2), "s0").unwrap();
        let m1 = DeviceMesh::from_cluster(c, 1, (1, 2), "s1").unwrap();
        let mut g = StageGraph::new(m);
        let a = g.add_stage(Stage::new("s0", m0, f).with_backward(f, f));
        let b = g.add_stage(Stage::new("s1", m1, f).with_backward(f, f));
        g.connect(
            a,
            b,
            EdgeTensor {
                shape: vec![bytes],
                elem_bytes: 1,
                src_spec: "R".parse().unwrap(),
                dst_spec: "R".parse().unwrap(),
            },
        )
        .unwrap();
        g
    }

    fn run(g: &StageGraph, c: &ClusterSpec, config: PipelineConfig) -> PipelineReport {
        simulate(g, c, &planner(), &config).unwrap()
    }

    #[test]
    fn zero_comm_makes_schedules_equal() {
        // With (near) free communication, 1F1B and eager-1F1B have the
        // same latency (paper §4).
        let c = cluster();
        let g = two_stage(&c, 6, 1.0, 1);
        let t_1f1b = run(
            &g,
            &c,
            PipelineConfig {
                schedule: ScheduleKind::OneFOneB,
                comm: CommMode::Signal,
                weight_delay: WeightDelay::None,
            },
        )
        .iteration_seconds;
        let t_eager = run(
            &g,
            &c,
            PipelineConfig {
                schedule: ScheduleKind::Eager1F1B,
                comm: CommMode::Signal,
                weight_delay: WeightDelay::None,
            },
        )
        .iteration_seconds;
        assert!(
            (t_1f1b - t_eager).abs() < 1e-6,
            "1f1b {t_1f1b} vs eager {t_eager}"
        );
    }

    #[test]
    fn eager_hides_communication_that_1f1b_exposes() {
        // Communication of 2s per microbatch boundary vs 1s compute ops.
        let c = cluster();
        let g = two_stage(&c, 8, 1.0, 2);
        let mk = |schedule, comm| PipelineConfig {
            schedule,
            comm,
            weight_delay: WeightDelay::None,
        };
        let signal = run(&g, &c, mk(ScheduleKind::OneFOneB, CommMode::Signal)).iteration_seconds;
        let sync = run(&g, &c, mk(ScheduleKind::OneFOneB, CommMode::Synchronous)).iteration_seconds;
        let overlap =
            run(&g, &c, mk(ScheduleKind::OneFOneB, CommMode::Overlapped)).iteration_seconds;
        let eager =
            run(&g, &c, mk(ScheduleKind::Eager1F1B, CommMode::Overlapped)).iteration_seconds;
        assert!(sync > overlap - 1e-9, "sync {sync} overlap {overlap}");
        assert!(eager <= overlap + 1e-9, "eager {eager} overlap {overlap}");
        assert!(eager < sync, "eager {eager} must beat sync {sync}");
        assert!(signal <= eager + 1e-9, "signal is the lower bound");
    }

    #[test]
    fn signal_matches_compute_bound() {
        // Signal mode: iteration ~= (warmup + steady) * op seconds. For 2
        // stages, M microbatches of (1f + 1b_act + 1b_w) each: the pipeline
        // bound is 3M + warmup-ish; just check it is close to 3M.
        let c = cluster();
        let m = 16;
        let g = two_stage(&c, m, 1.0, 1);
        let t = run(
            &g,
            &c,
            PipelineConfig {
                schedule: ScheduleKind::OneFOneB,
                comm: CommMode::Signal,
                weight_delay: WeightDelay::None,
            },
        )
        .iteration_seconds;
        let ideal = 3.0 * m as f64;
        assert!(t >= ideal, "cannot beat the compute bound");
        assert!(t <= ideal + 8.0, "bubble too large: {t} vs ideal {ideal}");
    }

    #[test]
    fn gpipe_peaks_at_all_microbatches() {
        let c = cluster();
        let g = two_stage(&c, 8, 1.0, 1);
        let r = run(
            &g,
            &c,
            PipelineConfig {
                schedule: ScheduleKind::GPipe,
                comm: CommMode::Signal,
                weight_delay: WeightDelay::None,
            },
        );
        assert_eq!(r.peak_live_activations, vec![8, 8]);
    }

    #[test]
    fn memory_report_combines_weights_and_activations() {
        let c = cluster();
        let m0 = DeviceMesh::from_cluster(&c, 0, (1, 2), "s0").unwrap();
        let m1 = DeviceMesh::from_cluster(&c, 1, (1, 2), "s1").unwrap();
        let mut g = StageGraph::new(4);
        g.add_stage(Stage::new("s0", m0, 1.0).with_memory(10.0, 1000.0));
        g.add_stage(Stage::new("s1", m1, 1.0).with_memory(10.0, 1000.0));
        let r = run(
            &g,
            &c,
            PipelineConfig {
                schedule: ScheduleKind::OneFOneB,
                comm: CommMode::Signal,
                weight_delay: WeightDelay::None,
            },
        );
        // Stage 0 warms up 2 microbatches: 1000 + 2*10.
        assert_eq!(r.peak_memory_bytes[0], 1020.0);
        assert_eq!(r.peak_memory_bytes[1], 1010.0);
    }

    #[test]
    fn weight_delay_does_not_change_totals() {
        let c = cluster();
        let g = two_stage(&c, 6, 1.0, 2);
        let base = run(
            &g,
            &c,
            PipelineConfig {
                schedule: ScheduleKind::Eager1F1B,
                comm: CommMode::Overlapped,
                weight_delay: WeightDelay::None,
            },
        );
        let delayed = run(
            &g,
            &c,
            PipelineConfig {
                schedule: ScheduleKind::Eager1F1B,
                comm: CommMode::Overlapped,
                weight_delay: WeightDelay::Fixed(1),
            },
        );
        // Same number of ops lowered; delaying shifts weight-gradient work
        // later but must not change the amount of work or move iteration
        // time materially on this comm-light pipeline.
        assert_eq!(base.tasks_lowered, delayed.tasks_lowered);
        let rel =
            (delayed.iteration_seconds - base.iteration_seconds).abs() / base.iteration_seconds;
        assert!(
            rel < 0.1,
            "delayed {} vs base {}",
            delayed.iteration_seconds,
            base.iteration_seconds
        );
    }

    #[test]
    fn auto_weight_delay_scales_with_comm() {
        let c = cluster();
        let params = crossmesh_core::CostParams {
            inter_bw: 1.0,
            intra_bw: 100.0,
            inter_latency: 0.0,
            intra_latency: 0.0,
        };
        let cheap = two_stage(&c, 4, 1.0, 1);
        let heavy = two_stage(&c, 4, 1.0, 50);
        let d_cheap = match auto_weight_delay(&cheap, &params) {
            WeightDelay::Fixed(d) => d,
            WeightDelay::None => 0,
        };
        let d_heavy = match auto_weight_delay(&heavy, &params) {
            WeightDelay::Fixed(d) => d,
            WeightDelay::None => 0,
        };
        assert!(d_heavy >= d_cheap);
        assert!(d_heavy >= 1);
    }

    #[test]
    fn grad_sync_extends_the_iteration() {
        let c = cluster();
        let mut g = two_stage(&c, 4, 1.0, 1);
        let base = run(
            &g,
            &c,
            PipelineConfig {
                schedule: ScheduleKind::OneFOneB,
                comm: CommMode::Signal,
                weight_delay: WeightDelay::None,
            },
        )
        .iteration_seconds;
        // Add a 100-byte gradient all-reduce over each stage's 2-device
        // axis (intra-host, 100 B/s): 2*(2-1)/2 * 100 / 100 = 1s extra.
        for s in 0..2 {
            let stage = g.stages()[s].clone().with_grad_sync(1, 100.0);
            *g.stage_mut(s) = stage;
        }
        let synced = run(
            &g,
            &c,
            PipelineConfig {
                schedule: ScheduleKind::OneFOneB,
                comm: CommMode::Signal,
                weight_delay: WeightDelay::None,
            },
        )
        .iteration_seconds;
        assert!(
            (synced - base - 1.0).abs() < 1e-6,
            "base {base} synced {synced}"
        );
    }

    #[test]
    fn trivial_dp_axis_has_no_sync_groups() {
        let c = cluster();
        let m0 = DeviceMesh::from_cluster(&c, 0, (1, 2), "s0").unwrap();
        let s = Stage::new("s0", m0, 1.0).with_grad_sync(0, 100.0);
        assert!(s.grad_sync_groups().is_empty(), "axis 0 has size 1");
        let c2 = cluster();
        let m1 = DeviceMesh::from_cluster(&c2, 0, (1, 2), "s1").unwrap();
        let expected = vec![m1.devices().to_vec()];
        let s = Stage::new("s1", m1, 1.0).with_grad_sync(1, 100.0);
        assert_eq!(s.grad_sync_groups(), expected);
    }

    #[test]
    fn straggler_aware_schedule_is_no_worse_under_an_injected_straggler() {
        use crate::schedule::build_straggler_schedule;
        use crossmesh_faults::{FaultEvent, FaultSchedule, FaultyBackend};

        let c = cluster();
        let m = 8;
        let slowdown = 3.0;
        let g = two_stage(&c, m, 1.0, 2);
        // Every device of stage 1 computes `slowdown`x slower.
        let mut faults = FaultSchedule::new(0);
        for d in g.stages()[1].mesh.devices() {
            faults = faults.with_event(FaultEvent::Straggler {
                device: d.0,
                slowdown,
            });
        }
        let backend = FaultyBackend::new(SimBackend, faults);
        let vanilla = simulate_schedule(
            &g,
            &c,
            &planner(),
            CommMode::Overlapped,
            &build_schedule(ScheduleKind::Eager1F1B, 2, m, WeightDelay::None),
            &backend,
        )
        .unwrap();
        let aware = simulate_schedule(
            &g,
            &c,
            &planner(),
            CommMode::Overlapped,
            &build_straggler_schedule(2, m, WeightDelay::None, &[1.0, slowdown]),
            &backend,
        )
        .unwrap();
        assert!(
            aware.iteration_seconds <= vanilla.iteration_seconds + 1e-9,
            "aware {} must not lose to vanilla {}",
            aware.iteration_seconds,
            vanilla.iteration_seconds
        );
        // The injected straggler really bites: both are slower than the
        // clean run.
        let clean = simulate_schedule(
            &g,
            &c,
            &planner(),
            CommMode::Overlapped,
            &build_schedule(ScheduleKind::Eager1F1B, 2, m, WeightDelay::None),
            &SimBackend,
        )
        .unwrap();
        assert!(vanilla.iteration_seconds > clean.iteration_seconds);
    }

    #[test]
    fn plan_cache_hits_across_iterations() {
        let c = cluster();
        let g = two_stage(&c, 6, 1.0, 2);
        let cache = crossmesh_core::PlanCache::new();
        let cfg = PipelineConfig::ours();
        let p = planner();
        let first = simulate_with_cache(&g, &c, &p, &cfg, &SimBackend, Some(&cache)).unwrap();
        assert!(first.plan_cache_misses > 0, "cold call must plan");
        let second = simulate_with_cache(&g, &c, &p, &cfg, &SimBackend, Some(&cache)).unwrap();
        assert_eq!(second.plan_cache_misses, 0, "warm call must not re-plan");
        assert!(second.plan_cache_hit_rate() > 0.0);
        // Cached plans are the same plans: identical iteration.
        assert_eq!(first.iteration_seconds, second.iteration_seconds);
        // Uncached calls report no cache traffic.
        let uncached = simulate(&g, &c, &p, &cfg).unwrap();
        assert_eq!(
            (uncached.plan_cache_hits, uncached.plan_cache_misses),
            (0, 0)
        );
        assert_eq!(uncached.iteration_seconds, first.iteration_seconds);
    }

    #[test]
    fn skip_connection_grads_flow_back() {
        // 3 stages on 3 hosts with a skip edge 0 -> 2; the iteration must
        // complete (no deadlock) and move bytes across all hosts.
        let c =
            ClusterSpec::homogeneous(3, 2, LinkParams::new(100.0, 1.0).with_latencies(0.0, 0.0));
        let mut g = StageGraph::new(4);
        let idx: Vec<usize> = (0..3)
            .map(|i| {
                let m = DeviceMesh::from_cluster(&c, i, (1, 2), format!("s{i}")).unwrap();
                g.add_stage(Stage::new(format!("s{i}"), m, 1.0))
            })
            .collect();
        let tensor = || EdgeTensor {
            shape: vec![4],
            elem_bytes: 1,
            src_spec: "R".parse().unwrap(),
            dst_spec: "R".parse().unwrap(),
        };
        g.connect(idx[0], idx[1], tensor()).unwrap();
        g.connect(idx[1], idx[2], tensor()).unwrap();
        g.connect(idx[0], idx[2], tensor()).unwrap();
        let r = simulate(&g, &c, &planner(), &PipelineConfig::ours()).unwrap();
        assert!(r.iteration_seconds > 0.0);
        assert!(r.cross_host_bytes > 0.0);
    }
}
