//! Per-stage operation orders for synchronous pipeline schedules.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One operation in a stage's schedule, tagged with its microbatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Forward pass of one microbatch.
    Forward(usize),
    /// Backward pass, activation-gradient half.
    BackwardAct(usize),
    /// Backward pass, weight-gradient half (no cross-mesh communication
    /// depends on it — the candidate for delaying).
    BackwardWeight(usize),
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Forward(m) => write!(f, "F{m}"),
            Op::BackwardAct(m) => write!(f, "B{m}"),
            Op::BackwardWeight(m) => write!(f, "W{m}"),
        }
    }
}

/// The family of synchronous schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScheduleKind {
    /// All forwards, then all backwards (reverse microbatch order).
    GPipe,
    /// One-forward-one-backward with a warmup of `#stages − i` microbatches
    /// on stage `i` (0-indexed).
    OneFOneB,
    /// The paper's eager-1F1B: warmup of `min(2(#stages − i) − 1, M)`
    /// forwards, creating slack between dependent tasks so communication
    /// overlaps (paper §4).
    Eager1F1B,
    /// Forward-only execution for pipelined inference: every stage streams
    /// all microbatches' forwards with no backward passes (the paper's
    /// techniques apply to "model-parallel distributed training and
    /// inference" alike). Activation-memory accounting does not apply.
    Inference,
}

impl fmt::Display for ScheduleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScheduleKind::GPipe => "gpipe",
            ScheduleKind::OneFOneB => "1f1b",
            ScheduleKind::Eager1F1B => "eager-1f1b",
            ScheduleKind::Inference => "inference",
        };
        f.write_str(s)
    }
}

/// How much the weight-gradient half of each backward is delayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WeightDelay {
    /// `BackwardWeight(m)` immediately follows `BackwardAct(m)`.
    None,
    /// `BackwardWeight(m)` is emitted after `BackwardAct(m + d)`,
    /// stragglers flushed at the end of the iteration.
    Fixed(usize),
}

impl WeightDelay {
    fn amount(self) -> usize {
        match self {
            WeightDelay::None => 0,
            WeightDelay::Fixed(d) => d,
        }
    }
}

/// A complete schedule: the ordered operation list of every stage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    per_stage: Vec<Vec<Op>>,
    num_microbatches: usize,
}

impl Schedule {
    /// The ordered operations of stage `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn stage_ops(&self, s: usize) -> &[Op] {
        &self.per_stage[s]
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.per_stage.len()
    }

    /// Number of microbatches.
    pub fn num_microbatches(&self) -> usize {
        self.num_microbatches
    }

    /// Number of warmup forwards stage `s` runs before its first backward.
    pub fn warmup(&self, s: usize) -> usize {
        self.per_stage[s]
            .iter()
            .position(|op| matches!(op, Op::BackwardAct(_)))
            .unwrap_or(self.per_stage[s].len())
    }

    /// The whole schedule in the static checker's dependency-free op form,
    /// ready for `crossmesh_check::verify::verify_schedule`.
    pub fn check_ops(&self) -> Vec<Vec<crossmesh_check::verify::ScheduleOp>> {
        use crossmesh_check::verify::ScheduleOp;
        self.per_stage
            .iter()
            .map(|ops| {
                ops.iter()
                    .map(|op| match *op {
                        Op::Forward(m) => ScheduleOp::Forward(m as u32),
                        Op::BackwardAct(m) => ScheduleOp::BackwardAct(m as u32),
                        Op::BackwardWeight(m) => ScheduleOp::BackwardWeight(m as u32),
                    })
                    .collect()
            })
            .collect()
    }

    /// Peak number of in-flight activations on stage `s`: the maximum over
    /// time of forwards started minus activation-backwards completed. This
    /// is the multiplier on the stage's per-microbatch activation memory.
    pub fn peak_live_activations(&self, s: usize) -> usize {
        let mut live = 0isize;
        let mut peak = 0isize;
        for op in &self.per_stage[s] {
            match op {
                Op::Forward(_) => {
                    live += 1;
                    peak = peak.max(live);
                }
                Op::BackwardAct(_) => live -= 1,
                Op::BackwardWeight(_) => {}
            }
        }
        peak as usize
    }
}

/// Builds the per-stage operation order for `kind` over `num_stages` stages
/// and `num_microbatches` microbatches, with the weight-gradient halves
/// placed according to `weight_delay`.
///
/// # Example
///
/// ```
/// use crossmesh_pipeline::{build_schedule, ScheduleKind, WeightDelay};
///
/// let s = build_schedule(ScheduleKind::Eager1F1B, 4, 16, WeightDelay::None);
/// // Stage 0 runs 2*(4-0)-1 = 7 eager warmup forwards; the last stage 1.
/// assert_eq!(s.warmup(0), 7);
/// assert_eq!(s.warmup(3), 1);
/// // The price: up to 7 in-flight activations on stage 0.
/// assert_eq!(s.peak_live_activations(0), 7);
/// ```
///
/// # Panics
///
/// Panics if `num_stages` or `num_microbatches` is zero.
pub fn build_schedule(
    kind: ScheduleKind,
    num_stages: usize,
    num_microbatches: usize,
    weight_delay: WeightDelay,
) -> Schedule {
    assert!(num_stages > 0, "need at least one stage");
    assert!(num_microbatches > 0, "need at least one microbatch");
    let m = num_microbatches;
    let per_stage = (0..num_stages)
        .map(|i| {
            if kind == ScheduleKind::Inference {
                return (0..m).map(Op::Forward).collect();
            }
            let warmup = match kind {
                ScheduleKind::GPipe => m,
                ScheduleKind::OneFOneB => (num_stages - i).min(m),
                ScheduleKind::Eager1F1B => (2 * (num_stages - i) - 1).min(m),
                ScheduleKind::Inference => unreachable!("handled above"),
            };
            stage_ops(warmup, m, weight_delay.amount())
        })
        .collect();
    Schedule {
        per_stage,
        num_microbatches,
    }
}

/// Builds a straggler-aware eager-1F1B schedule: each stage's warmup is
/// deepened by the relative slowdown of its slowest *downstream* stage.
///
/// With a straggler at stage `j > i`, stage `i`'s forwards outpace the
/// consumer, so extra warmup forwards cost nothing on the critical path —
/// but each one opens another overlap window for the cross-mesh
/// resharding queued behind the slow stage. Stage `i` runs
/// `ceil((2(S − i) − 1) · r_i)` warmup forwards where
/// `r_i = max(1, max_{j>i} slowdown_j / slowdown_i)`, capped at the
/// microbatch count. With uniform slowdowns this is exactly
/// [`ScheduleKind::Eager1F1B`].
///
/// `stage_slowdowns[i]` is stage `i`'s compute slowdown factor (`1.0` =
/// nominal speed), e.g. from a
/// `FaultEvent::Straggler`-style fault model.
///
/// # Panics
///
/// Panics if `num_stages` or `num_microbatches` is zero, if
/// `stage_slowdowns.len() != num_stages`, or if any slowdown is not
/// finite and `>= 1`.
pub fn build_straggler_schedule(
    num_stages: usize,
    num_microbatches: usize,
    weight_delay: WeightDelay,
    stage_slowdowns: &[f64],
) -> Schedule {
    assert!(num_stages > 0, "need at least one stage");
    assert!(num_microbatches > 0, "need at least one microbatch");
    assert_eq!(
        stage_slowdowns.len(),
        num_stages,
        "need one slowdown per stage"
    );
    assert!(
        stage_slowdowns.iter().all(|s| s.is_finite() && *s >= 1.0),
        "slowdowns must be finite and >= 1"
    );
    let m = num_microbatches;
    let per_stage = (0..num_stages)
        .map(|i| {
            let downstream = stage_slowdowns[i + 1..]
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max);
            let ratio = (downstream / stage_slowdowns[i]).max(1.0);
            let eager = (2 * (num_stages - i) - 1) as f64;
            let warmup = (eager * ratio).ceil() as usize;
            stage_ops(warmup.min(m), m, weight_delay.amount())
        })
        .collect();
    Schedule {
        per_stage,
        num_microbatches,
    }
}

/// Emits one stage's order: `warmup` forwards, then alternating
/// backward/forward until forwards run out, then the remaining backwards.
/// Weight-gradient ops trail their activation op by `delay` microbatches.
fn stage_ops(warmup: usize, m: usize, delay: usize) -> Vec<Op> {
    let mut ops = Vec::with_capacity(3 * m);
    let mut emitted_w = 0usize;
    for f in 0..warmup {
        ops.push(Op::Forward(f));
    }
    for b in 0..m {
        ops.push(Op::BackwardAct(b));
        if b + 1 > delay && emitted_w < m {
            ops.push(Op::BackwardWeight(emitted_w));
            emitted_w += 1;
        }
        let f = warmup + b;
        if f < m {
            ops.push(Op::Forward(f));
        }
    }
    while emitted_w < m {
        ops.push(Op::BackwardWeight(emitted_w));
        emitted_w += 1;
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each stage must run every op exactly once, forwards in order,
    /// backward-act before backward-weight per microbatch.
    fn assert_valid(s: &Schedule) {
        let m = s.num_microbatches();
        for st in 0..s.num_stages() {
            let ops = s.stage_ops(st);
            assert_eq!(ops.len(), 3 * m, "stage {st} has {} ops", ops.len());
            let mut next_f = 0;
            let mut done_b = vec![false; m];
            let mut done_w = vec![false; m];
            let mut done_f = vec![false; m];
            for op in ops {
                match *op {
                    Op::Forward(f) => {
                        assert_eq!(f, next_f, "forwards out of order on stage {st}");
                        next_f += 1;
                        done_f[f] = true;
                    }
                    Op::BackwardAct(b) => {
                        assert!(done_f[b], "B{b} before F{b} on stage {st}");
                        assert!(!done_b[b]);
                        done_b[b] = true;
                    }
                    Op::BackwardWeight(w) => {
                        assert!(done_b[w], "W{w} before B{w} on stage {st}");
                        assert!(!done_w[w]);
                        done_w[w] = true;
                    }
                }
            }
            assert!(done_b.iter().all(|&x| x) && done_w.iter().all(|&x| x));
        }
    }

    /// Every built schedule also passes the static checker's hazard pass
    /// (shape, ordering, and deadlock-freedom of the stage dependency
    /// graph) via the `check_ops` bridge.
    #[test]
    fn built_schedules_pass_the_static_checker() {
        for kind in [
            ScheduleKind::GPipe,
            ScheduleKind::OneFOneB,
            ScheduleKind::Eager1F1B,
            ScheduleKind::Inference,
        ] {
            for (stages, m) in [(1, 1), (2, 3), (4, 8), (3, 16)] {
                let s = build_schedule(kind, stages, m, WeightDelay::None);
                let diags = crossmesh_check::verify::verify_schedule(&s.check_ops(), m as u32);
                assert!(diags.is_empty(), "{kind} {stages}x{m}: {diags:?}");
            }
        }
    }

    #[test]
    fn all_schedules_are_valid_permutations() {
        for kind in [
            ScheduleKind::GPipe,
            ScheduleKind::OneFOneB,
            ScheduleKind::Eager1F1B,
        ] {
            for stages in 1..=4 {
                for m in 1..=8 {
                    for d in [
                        WeightDelay::None,
                        WeightDelay::Fixed(1),
                        WeightDelay::Fixed(3),
                    ] {
                        assert_valid(&build_schedule(kind, stages, m, d));
                    }
                }
            }
        }
    }

    #[test]
    fn inference_is_forwards_only() {
        let s = build_schedule(ScheduleKind::Inference, 3, 5, WeightDelay::None);
        for st in 0..3 {
            let ops = s.stage_ops(st);
            assert_eq!(ops.len(), 5);
            assert!(ops.iter().all(|o| matches!(o, Op::Forward(_))));
        }
        assert_eq!(s.warmup(0), 5, "no backward ever appears");
    }

    #[test]
    fn one_f_one_b_warmup_counts() {
        let s = build_schedule(ScheduleKind::OneFOneB, 4, 8, WeightDelay::None);
        assert_eq!(s.warmup(0), 4);
        assert_eq!(s.warmup(1), 3);
        assert_eq!(s.warmup(3), 1);
    }

    #[test]
    fn eager_warmup_counts_match_paper() {
        // Stage i runs 2(#stages - i) - 1 warmup forwards (1 on the last).
        let s = build_schedule(ScheduleKind::Eager1F1B, 4, 16, WeightDelay::None);
        assert_eq!(s.warmup(0), 7);
        assert_eq!(s.warmup(1), 5);
        assert_eq!(s.warmup(2), 3);
        assert_eq!(s.warmup(3), 1);
    }

    #[test]
    fn eager_warmup_capped_by_microbatches() {
        let s = build_schedule(ScheduleKind::Eager1F1B, 4, 2, WeightDelay::None);
        assert_eq!(s.warmup(0), 2);
    }

    #[test]
    fn gpipe_runs_all_forwards_first() {
        let s = build_schedule(ScheduleKind::GPipe, 2, 4, WeightDelay::None);
        let ops = s.stage_ops(0);
        assert!(ops[..4].iter().all(|o| matches!(o, Op::Forward(_))));
        assert_eq!(s.peak_live_activations(0), 4);
    }

    #[test]
    fn memory_increase_of_eager_matches_section4() {
        // Eager stores at most (2(S-i)-1) activations vs (S-i) for 1F1B:
        // the increase is at most #stages per stage.
        let stages = 4;
        let m = 16;
        let a = build_schedule(ScheduleKind::OneFOneB, stages, m, WeightDelay::None);
        let b = build_schedule(ScheduleKind::Eager1F1B, stages, m, WeightDelay::None);
        for i in 0..stages {
            let extra = b.peak_live_activations(i) as isize - a.peak_live_activations(i) as isize;
            assert!(extra >= 0 && extra <= stages as isize);
        }
    }

    #[test]
    fn last_stage_alternates_immediately() {
        let s = build_schedule(ScheduleKind::OneFOneB, 3, 4, WeightDelay::None);
        let ops = s.stage_ops(2);
        assert_eq!(ops[0], Op::Forward(0));
        assert_eq!(ops[1], Op::BackwardAct(0));
    }

    #[test]
    fn weight_delay_moves_weight_ops_later() {
        let none = build_schedule(ScheduleKind::OneFOneB, 2, 4, WeightDelay::None);
        let delayed = build_schedule(ScheduleKind::OneFOneB, 2, 4, WeightDelay::Fixed(2));
        let pos = |s: &Schedule, st: usize| {
            s.stage_ops(st)
                .iter()
                .position(|o| *o == Op::BackwardWeight(0))
                .unwrap()
        };
        assert!(pos(&delayed, 0) > pos(&none, 0));
    }

    #[test]
    fn straggler_schedule_matches_eager_when_uniform() {
        for slow in [1.0, 2.5] {
            let aware = build_straggler_schedule(4, 16, WeightDelay::None, &[slow; 4]);
            let eager = build_schedule(ScheduleKind::Eager1F1B, 4, 16, WeightDelay::None);
            assert_eq!(aware, eager, "uniform slowdown {slow} must reduce to eager");
        }
    }

    #[test]
    fn straggler_schedule_deepens_warmup_upstream_of_the_straggler() {
        // Stage 3 runs 2x slower: every upstream stage doubles its eager
        // warmup (7, 5, 3 -> 14, 10, 6); the straggler itself keeps 1.
        let s = build_straggler_schedule(4, 16, WeightDelay::None, &[1.0, 1.0, 1.0, 2.0]);
        assert_eq!(s.warmup(0), 14);
        assert_eq!(s.warmup(1), 10);
        assert_eq!(s.warmup(2), 6);
        assert_eq!(s.warmup(3), 1);
        assert_valid(&s);
    }

    #[test]
    fn straggler_warmup_is_capped_by_microbatches() {
        let s = build_straggler_schedule(4, 4, WeightDelay::Fixed(1), &[1.0, 1.0, 1.0, 8.0]);
        for st in 0..3 {
            assert_eq!(s.warmup(st), 4);
        }
        assert_valid(&s);
    }

    #[test]
    #[should_panic(expected = "one slowdown per stage")]
    fn straggler_schedule_rejects_wrong_arity() {
        build_straggler_schedule(3, 4, WeightDelay::None, &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "finite and >= 1")]
    fn straggler_schedule_rejects_speedups() {
        build_straggler_schedule(2, 4, WeightDelay::None, &[1.0, 0.5]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Op::Forward(3).to_string(), "F3");
        assert_eq!(Op::BackwardAct(1).to_string(), "B1");
        assert_eq!(Op::BackwardWeight(0).to_string(), "W0");
        assert_eq!(ScheduleKind::Eager1F1B.to_string(), "eager-1f1b");
    }
}
