//! Pipeline-parallel schedules and communication overlap (paper §4).
//!
//! A [`StageGraph`] describes a pipeline-parallel job: stages with
//! per-microbatch forward/backward costs, each placed on a
//! [`DeviceMesh`](crossmesh_mesh::DeviceMesh), connected by cross-mesh
//! tensor edges (adjacent stages *and* long skip connections, as in the
//! U-Transformer). Every edge is a full cross-mesh
//! [`ReshardingTask`](crossmesh_core::ReshardingTask).
//!
//! [`ScheduleKind`] selects the per-stage operation order:
//!
//! * [`ScheduleKind::GPipe`] — all forwards, then all backwards;
//! * [`ScheduleKind::OneFOneB`] — the synchronous 1F1B schedule, warmup of
//!   `#stages − i` microbatches;
//! * [`ScheduleKind::Eager1F1B`] — the paper's overlapping-friendly
//!   schedule: warmup of `2(#stages − i) − 1` forwards, which inserts
//!   independent compute between dependent tasks so cross-mesh resharding
//!   can hide behind it.
//!
//! [`CommMode`] selects how resharding interacts with compute:
//!
//! * [`CommMode::Synchronous`] — communication blocks the sender stage
//!   (the "Broadcast" baseline of §5.2: single-task optimization only);
//! * [`CommMode::Overlapped`] — sends are asynchronous and receivers wait
//!   only for their own tiles;
//! * [`CommMode::Signal`] — every resharding degrades to a 1-byte signal,
//!   the paper's hypothetical upper bound ("Signal Send/Recv").
//!
//! Backward passes are split into activation-gradient and weight-gradient
//! halves; [`WeightDelay`] delays the weight half to extend the overlap
//! window (§4, "backward weight delaying").
//!
//! [`simulate`] lowers a configured pipeline onto the flow-level simulator
//! and reports iteration time, per-stage peak activation counts and memory,
//! and cross-host traffic.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod exec;
mod schedule;
mod stage;

pub use exec::{
    auto_weight_delay, simulate, simulate_schedule, simulate_schedule_with_cache, simulate_with,
    simulate_with_cache, CommMode, PipelineConfig, PipelineReport,
};
pub use schedule::{
    build_schedule, build_straggler_schedule, Op, Schedule, ScheduleKind, WeightDelay,
};
pub use stage::{CommEdge, EdgeTensor, GradSync, Stage, StageGraph};

pub use crossmesh_core::{CostParams, Planner, PlannerConfig, Strategy};
