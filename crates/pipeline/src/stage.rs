//! Pipeline stage graphs: stages on meshes, connected by cross-mesh
//! resharding edges.

use crossmesh_core::ReshardingTask;
use crossmesh_mesh::{DeviceMesh, MeshError, ShardingSpec};

/// One pipeline stage: a subgraph of the model placed on a device mesh.
///
/// Costs are per microbatch and per device (stages run SPMD over their
/// mesh, so every device performs the same amount of work).
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Stage name, used in labels.
    pub name: String,
    /// The mesh this stage runs on.
    pub mesh: DeviceMesh,
    /// Forward compute time per microbatch, seconds.
    pub forward_seconds: f64,
    /// Activation-gradient backward compute time per microbatch, seconds.
    pub backward_act_seconds: f64,
    /// Weight-gradient backward compute time per microbatch, seconds.
    pub backward_weight_seconds: f64,
    /// Bytes of activations each device must keep per in-flight microbatch.
    pub activation_bytes: f64,
    /// Bytes of parameters + optimizer state per device (for memory
    /// reports).
    pub weight_bytes: f64,
    /// End-of-iteration gradient synchronization across the stage's
    /// data-parallel groups, if any.
    pub grad_sync: Option<GradSync>,
    /// Activation rematerialization: when `Some(keep_bytes)`, the stage
    /// stashes only `keep_bytes` per in-flight microbatch (typically its
    /// input boundary tensor) and recomputes the rest during the backward
    /// pass, which therefore costs an extra forward (§5.2: stages under
    /// memory pressure "use less rematerialization and are slightly
    /// faster" when pressure drops).
    pub remat_keep_bytes: Option<f64>,
}

/// End-of-iteration gradient all-reduce configuration for one stage: the
/// data-parallel axis of the stage mesh and the gradient bytes each device
/// contributes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradSync {
    /// Mesh axis along which weights are replicated (the dp axis); devices
    /// varying along this axis (all other coordinates fixed) form one
    /// all-reduce group.
    pub axis: usize,
    /// Gradient bytes per device.
    pub bytes: f64,
}

impl Stage {
    /// A stage with the given name, mesh, and per-microbatch compute times;
    /// backward defaults to 2× forward, split evenly between the
    /// activation and weight halves, and memory fields default to zero.
    pub fn new(name: impl Into<String>, mesh: DeviceMesh, forward_seconds: f64) -> Self {
        Stage {
            name: name.into(),
            mesh,
            forward_seconds,
            backward_act_seconds: forward_seconds,
            backward_weight_seconds: forward_seconds,
            activation_bytes: 0.0,
            weight_bytes: 0.0,
            grad_sync: None,
            remat_keep_bytes: None,
        }
    }

    /// Returns a copy with the backward halves replaced.
    #[must_use]
    pub fn with_backward(mut self, act_seconds: f64, weight_seconds: f64) -> Self {
        self.backward_act_seconds = act_seconds;
        self.backward_weight_seconds = weight_seconds;
        self
    }

    /// Returns a copy with the memory footprint replaced.
    #[must_use]
    pub fn with_memory(mut self, activation_bytes: f64, weight_bytes: f64) -> Self {
        self.activation_bytes = activation_bytes;
        self.weight_bytes = weight_bytes;
        self
    }

    /// Returns a copy with an end-of-iteration gradient all-reduce over
    /// the groups formed along mesh `axis`, `bytes` per device.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is not 0 or 1.
    #[must_use]
    pub fn with_grad_sync(mut self, axis: usize, bytes: f64) -> Self {
        assert!(axis < 2, "mesh axis must be 0 or 1");
        self.grad_sync = Some(GradSync { axis, bytes });
        self
    }

    /// Returns a copy with activation rematerialization enabled: only
    /// `keep_bytes` per in-flight microbatch are stashed and the
    /// activation-gradient backward additionally pays one forward
    /// recomputation.
    #[must_use]
    pub fn with_remat(mut self, keep_bytes: f64) -> Self {
        self.remat_keep_bytes = Some(keep_bytes);
        self
    }

    /// Effective activation bytes stored per in-flight microbatch.
    pub fn stored_activation_bytes(&self) -> f64 {
        self.remat_keep_bytes.unwrap_or(self.activation_bytes)
    }

    /// Effective activation-gradient backward time (includes the forward
    /// recomputation when rematerializing).
    pub fn effective_backward_act_seconds(&self) -> f64 {
        if self.remat_keep_bytes.is_some() {
            self.backward_act_seconds + self.forward_seconds
        } else {
            self.backward_act_seconds
        }
    }

    /// The gradient-synchronization groups of this stage: for each
    /// coordinate along the non-dp axis, the devices spanning the dp axis.
    /// Empty when the stage has no gradient sync or the dp axis is trivial.
    pub fn grad_sync_groups(&self) -> Vec<Vec<crossmesh_netsim::DeviceId>> {
        let Some(sync) = self.grad_sync else {
            return Vec::new();
        };
        if self.mesh.axis_size(sync.axis) <= 1 {
            return Vec::new();
        }
        let (rows, cols) = self.mesh.shape();
        use crossmesh_mesh::MeshCoord;
        match sync.axis {
            0 => (0..cols)
                .map(|col| {
                    (0..rows)
                        .map(|row| self.mesh.device(MeshCoord { row, col }))
                        .collect()
                })
                .collect(),
            _ => (0..rows)
                .map(|row| {
                    (0..cols)
                        .map(|col| self.mesh.device(MeshCoord { row, col }))
                        .collect()
                })
                .collect(),
        }
    }
}

/// The tensor carried by a cross-stage edge.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeTensor {
    /// Logical tensor shape.
    pub shape: Vec<u64>,
    /// Bytes per element (2 for fp16, 4 for fp32).
    pub elem_bytes: u64,
    /// Sharding of the tensor on the producer stage's mesh.
    pub src_spec: ShardingSpec,
    /// Required sharding on the consumer stage's mesh.
    pub dst_spec: ShardingSpec,
}

/// A directed cross-stage tensor edge with its forward (activation) and
/// backward (gradient) resharding tasks.
#[derive(Debug, Clone, PartialEq)]
pub struct CommEdge {
    /// Producing stage index.
    pub from: usize,
    /// Consuming stage index (may skip stages — e.g. U-Net skip
    /// connections).
    pub to: usize,
    /// Forward resharding: activation from `from`'s mesh to `to`'s mesh.
    pub forward: ReshardingTask,
    /// Backward resharding: gradient from `to`'s mesh back to `from`'s.
    pub backward: ReshardingTask,
}

/// A pipeline-parallel job: stages, cross-stage edges, and the microbatch
/// count.
#[derive(Debug, Clone, PartialEq)]
pub struct StageGraph {
    stages: Vec<Stage>,
    edges: Vec<CommEdge>,
    num_microbatches: usize,
}

impl StageGraph {
    /// Creates an empty graph executing `num_microbatches` microbatches per
    /// iteration.
    ///
    /// # Panics
    ///
    /// Panics if `num_microbatches` is zero.
    pub fn new(num_microbatches: usize) -> Self {
        assert!(num_microbatches > 0, "need at least one microbatch");
        StageGraph {
            stages: Vec::new(),
            edges: Vec::new(),
            num_microbatches,
        }
    }

    /// Appends a stage and returns its index.
    pub fn add_stage(&mut self, stage: Stage) -> usize {
        self.stages.push(stage);
        self.stages.len() - 1
    }

    /// Mutable access to stage `s` (e.g. to attach gradient sync after
    /// construction).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn stage_mut(&mut self, s: usize) -> &mut Stage {
        &mut self.stages[s]
    }

    /// Connects stage `from` to stage `to` (`from < to`) with `tensor`,
    /// building both the forward activation resharding and the reverse
    /// gradient resharding. Returns the edge index.
    ///
    /// # Errors
    ///
    /// Propagates layout errors; in particular the stage meshes must be
    /// disjoint.
    ///
    /// # Panics
    ///
    /// Panics if `from >= to` or either index is out of range.
    pub fn connect(
        &mut self,
        from: usize,
        to: usize,
        tensor: EdgeTensor,
    ) -> Result<usize, MeshError> {
        assert!(from < to, "edges must go forward in the pipeline");
        assert!(to < self.stages.len(), "stage index {to} out of range");
        let src_mesh = self.stages[from].mesh.clone();
        let dst_mesh = self.stages[to].mesh.clone();
        let forward = ReshardingTask::new(
            src_mesh.clone(),
            tensor.src_spec.clone(),
            dst_mesh.clone(),
            tensor.dst_spec.clone(),
            &tensor.shape,
            tensor.elem_bytes,
        )?;
        // The gradient has the activation's shape and mirrored sharding.
        let backward = ReshardingTask::new(
            dst_mesh,
            tensor.dst_spec,
            src_mesh,
            tensor.src_spec,
            &tensor.shape,
            tensor.elem_bytes,
        )?;
        self.edges.push(CommEdge {
            from,
            to,
            forward,
            backward,
        });
        Ok(self.edges.len() - 1)
    }

    /// The stages, in pipeline order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// All cross-stage edges.
    pub fn edges(&self) -> &[CommEdge] {
        &self.edges
    }

    /// Edges consumed by stage `s` (its forward inputs).
    pub fn in_edges(&self, s: usize) -> impl Iterator<Item = (usize, &CommEdge)> {
        self.edges
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.to == s)
    }

    /// Edges produced by stage `s` (whose gradients flow back into `s`).
    pub fn out_edges(&self, s: usize) -> impl Iterator<Item = (usize, &CommEdge)> {
        self.edges
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.from == s)
    }

    /// Number of microbatches per iteration.
    pub fn num_microbatches(&self) -> usize {
        self.num_microbatches
    }

    /// Total model FLOPs per iteration, if stage costs were built from a
    /// FLOP model — here simply the summed compute seconds, exposed for
    /// reporting convenience.
    pub fn total_compute_seconds(&self) -> f64 {
        self.stages
            .iter()
            .map(|s| {
                (s.forward_seconds + s.backward_act_seconds + s.backward_weight_seconds)
                    * self.num_microbatches as f64
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossmesh_netsim::{ClusterSpec, LinkParams};

    fn meshes() -> (DeviceMesh, DeviceMesh) {
        let c = ClusterSpec::homogeneous(2, 4, LinkParams::new(100e9, 1.25e9));
        (
            DeviceMesh::from_cluster(&c, 0, (1, 4), "s0").unwrap(),
            DeviceMesh::from_cluster(&c, 1, (1, 4), "s1").unwrap(),
        )
    }

    fn tensor() -> EdgeTensor {
        EdgeTensor {
            shape: vec![8, 1024, 1024],
            elem_bytes: 2,
            src_spec: "S0RR".parse().unwrap(),
            dst_spec: "S0RR".parse().unwrap(),
        }
    }

    #[test]
    fn connect_builds_both_directions() {
        let (m0, m1) = meshes();
        let mut g = StageGraph::new(4);
        let a = g.add_stage(Stage::new("a", m0, 1.0));
        let b = g.add_stage(Stage::new("b", m1, 1.0));
        let e = g.connect(a, b, tensor()).unwrap();
        let edge = &g.edges()[e];
        assert_eq!(edge.forward.src_mesh().name(), "s0");
        assert_eq!(edge.forward.dst_mesh().name(), "s1");
        assert_eq!(edge.backward.src_mesh().name(), "s1");
        assert_eq!(edge.backward.dst_mesh().name(), "s0");
        assert_eq!(edge.forward.total_bytes(), edge.backward.total_bytes());
    }

    #[test]
    fn skip_connections_are_allowed() {
        let c = ClusterSpec::homogeneous(3, 4, LinkParams::new(100e9, 1.25e9));
        let mut g = StageGraph::new(4);
        let s: Vec<usize> = (0..3)
            .map(|i| {
                let m = DeviceMesh::from_cluster(&c, i, (1, 4), format!("s{i}")).unwrap();
                g.add_stage(Stage::new(format!("s{i}"), m, 1.0))
            })
            .collect();
        g.connect(s[0], s[1], tensor()).unwrap();
        g.connect(s[1], s[2], tensor()).unwrap();
        g.connect(s[0], s[2], tensor()).unwrap(); // skip
        assert_eq!(g.in_edges(2).count(), 2);
        assert_eq!(g.out_edges(0).count(), 2);
    }

    #[test]
    #[should_panic(expected = "forward in the pipeline")]
    fn backward_edge_panics() {
        let (m0, m1) = meshes();
        let mut g = StageGraph::new(2);
        let a = g.add_stage(Stage::new("a", m0, 1.0));
        let b = g.add_stage(Stage::new("b", m1, 1.0));
        let _ = g.connect(b, a, tensor());
    }

    #[test]
    fn stage_builders() {
        let (m0, _) = meshes();
        let s = Stage::new("x", m0, 2.0)
            .with_backward(1.5, 0.5)
            .with_memory(10.0, 100.0);
        assert_eq!(s.backward_act_seconds, 1.5);
        assert_eq!(s.backward_weight_seconds, 0.5);
        assert_eq!(s.activation_bytes, 10.0);
    }

    #[test]
    fn total_compute_seconds_scales_with_microbatches() {
        let (m0, m1) = meshes();
        let mut g = StageGraph::new(3);
        g.add_stage(Stage::new("a", m0, 1.0));
        g.add_stage(Stage::new("b", m1, 2.0));
        // (1+1+1 + 2+2+2) * 3 microbatches
        assert_eq!(g.total_compute_seconds(), 27.0);
    }
}
