//! Table 1: per-GPU memory of one GPT-3 layer in mixed-precision training.

use serde::{Deserialize, Serialize};

/// The sizes Table 1 reports for one transformer layer under tensor model
/// parallelism, mixed precision. Element counts use the expressions from
/// the paper; byte sizes use the 14-bytes-per-parameter mixed-precision
/// training state (`168 H² / TMP`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryBreakdown {
    /// `12 H² / TMP` parameters per GPU.
    pub num_parameters: f64,
    /// `24 H² / TMP` optimizer-state parameters per GPU (fp32 Adam m and v
    /// over the layer's `12 H²` parameters, sharded).
    pub optimizer_state_parameters: f64,
    /// `B·S·H` activation elements per GPU.
    pub activation_elements: f64,
    /// `168 H² / TMP` bytes of weights + optimizer state per GPU.
    pub weights_and_optimizer_bytes: f64,
    /// `2·B·S·H` bytes of activations per GPU (fp16).
    pub activation_bytes: f64,
}

/// Computes Table 1 for a GPT-3 layer: hidden size `h`, sequence length
/// `s`, per-GPU microbatch size `b`, tensor-model-parallel degree `tmp`.
///
/// # Example
///
/// ```
/// use crossmesh_models::memory::{gpt3_layer_memory, GI};
///
/// // Table 1's setting: S=1024, H=12288, B=2, TMP=8 -> 2.95 GB of
/// // weights and optimizer state per GPU.
/// let m = gpt3_layer_memory(12288, 1024, 2, 8);
/// assert!((m.weights_and_optimizer_bytes / GI - 2.95).abs() < 0.01);
/// ```
///
/// # Panics
///
/// Panics if any argument is zero.
pub fn gpt3_layer_memory(h: u64, s: u64, b: u64, tmp: u64) -> MemoryBreakdown {
    assert!(
        h > 0 && s > 0 && b > 0 && tmp > 0,
        "arguments must be positive"
    );
    let h2 = (h * h) as f64;
    let bsh = (b * s * h) as f64;
    MemoryBreakdown {
        num_parameters: 12.0 * h2 / tmp as f64,
        optimizer_state_parameters: 24.0 * h2 / tmp as f64,
        activation_elements: bsh,
        weights_and_optimizer_bytes: 168.0 * h2 / tmp as f64,
        activation_bytes: 2.0 * bsh,
    }
}

/// Binary mega (Mi) — Table 1 reports element counts in binary units.
pub const MI: f64 = 1024.0 * 1024.0;

/// Binary giga (Gi).
pub const GI: f64 = 1024.0 * 1024.0 * 1024.0;

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1's exact setting: S=1024, H=12288, B=2, TMP=8.
    #[test]
    fn table1_values() {
        let m = gpt3_layer_memory(12288, 1024, 2, 8);
        assert!((m.num_parameters / MI - 216.0).abs() < 1.0, "216M params");
        assert!(
            (m.optimizer_state_parameters / MI - 432.0).abs() < 1.0,
            "432M optimizer params"
        );
        assert!(
            (m.activation_elements / MI - 24.0).abs() < 0.1,
            "24M activations"
        );
        assert!(
            (m.weights_and_optimizer_bytes / GI - 2.95).abs() < 0.01,
            "2.95 GB weights+optimizer, got {}",
            m.weights_and_optimizer_bytes / GI
        );
        assert!(
            (m.activation_bytes / MI - 48.0).abs() < 0.1,
            "48 MB activations"
        );
    }

    #[test]
    fn scales_inversely_with_tmp() {
        let a = gpt3_layer_memory(1024, 512, 2, 1);
        let b = gpt3_layer_memory(1024, 512, 2, 4);
        assert!((a.num_parameters / b.num_parameters - 4.0).abs() < 1e-12);
        // Activations do not shard with TMP in this accounting.
        assert_eq!(a.activation_bytes, b.activation_bytes);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_arg_panics() {
        gpt3_layer_memory(0, 1, 1, 1);
    }
}
