//! GPT-3-style stacked transformer cost model (Table 3, "GPT case1/2").

use crate::job::{ModelJob, ParallelConfig, Precision};
use crossmesh_mesh::{DeviceMesh, MeshError};
use crossmesh_netsim::{ClusterSpec, DeviceId, HostId};
use crossmesh_pipeline::{EdgeTensor, Stage, StageGraph};
use serde::{Deserialize, Serialize};

/// Configuration of a GPT-like model and its parallelization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GptConfig {
    /// Number of transformer layers.
    pub num_layers: usize,
    /// Hidden size `H`.
    pub hidden: u64,
    /// Sequence length `S`.
    pub seq_len: u64,
    /// Global batch size per iteration.
    pub global_batch: u64,
    /// Number of pipeline microbatches per iteration.
    pub num_microbatches: usize,
    /// Training precision.
    pub precision: Precision,
    /// `(dp, op, pp)` parallel degrees.
    pub parallel: ParallelConfig,
    /// Per-device memory budget; stages whose worst-case footprint exceeds
    /// it enable activation rematerialization (keep only the boundary
    /// tensor, recompute the rest in the backward — §5.2). V100 16 GB by
    /// default.
    pub device_memory_bytes: Option<f64>,
}

impl GptConfig {
    /// Table 3, "GPT case1": 2.6 B parameters, batch 1024, FP16,
    /// parallel config (2, 2, 2).
    pub fn case1() -> Self {
        GptConfig {
            num_layers: 32,
            hidden: 2560,
            seq_len: 1024,
            global_batch: 1024,
            num_microbatches: 32,
            precision: Precision::Fp16,
            parallel: ParallelConfig::new(2, 2, 2),
            device_memory_bytes: Some(16e9),
        }
    }

    /// Table 3, "GPT case2": same model, parallel config (4, 1, 2).
    pub fn case2() -> Self {
        GptConfig {
            parallel: ParallelConfig::new(4, 1, 2),
            ..GptConfig::case1()
        }
    }

    /// Approximate parameter count (`12 L H²`, embeddings ignored).
    pub fn num_params(&self) -> u64 {
        12 * self.num_layers as u64 * self.hidden * self.hidden
    }

    /// Forward FLOPs of one layer over a batch of `b` sequences:
    /// `24 b s H² + 4 b s² H` (dense matmuls plus attention scores).
    pub fn layer_forward_flops(&self, b: u64) -> f64 {
        let (s, h) = (self.seq_len as f64, self.hidden as f64);
        let b = b as f64;
        24.0 * b * s * h * h + 4.0 * b * s * s * h
    }

    /// Total model FLOPs per iteration: forward plus a 2× backward, all
    /// layers, whole global batch.
    pub fn total_flops(&self) -> f64 {
        3.0 * self.num_layers as f64 * self.layer_forward_flops(self.global_batch)
    }

    /// Microbatch size (sequences per microbatch across the whole stage).
    ///
    /// # Panics
    ///
    /// Panics if the batch does not divide by the microbatch count.
    pub fn microbatch_size(&self) -> u64 {
        let m = self.num_microbatches as u64;
        assert!(
            self.global_batch.is_multiple_of(m),
            "batch {} not divisible into {m} microbatches",
            self.global_batch
        );
        self.global_batch / m
    }

    /// Builds the pipeline job on `cluster`: `pp` stages of
    /// `num_layers / pp` layers, each on a `(dp, op)` mesh drawn from
    /// consecutive hosts, connected by `S^0 R R` activation edges (batch
    /// sharded over the data-parallel axis, replicated over the operator-
    /// parallel axis — §5.2).
    ///
    /// # Errors
    ///
    /// Propagates mesh errors when `cluster` cannot fit the config.
    ///
    /// # Panics
    ///
    /// Panics if `pp` does not divide the layer count or the cluster's
    /// host size does not divide the per-stage device count.
    pub fn build(&self, cluster: &ClusterSpec) -> Result<ModelJob, MeshError> {
        let p = &self.parallel;
        assert!(
            self.num_layers.is_multiple_of(p.pp),
            "{} layers do not split into {} stages",
            self.num_layers,
            p.pp
        );
        let layers_per_stage = self.num_layers / p.pp;
        let mb = self.microbatch_size();

        let mut graph = StageGraph::new(self.num_microbatches);
        let mut stage_ids = Vec::with_capacity(p.pp);
        let mut next_device = 0u32;
        for stage_idx in 0..p.pp {
            let mesh = mesh_from_devices(
                cluster,
                &mut next_device,
                (p.dp, p.op),
                format!("gpt-stage{stage_idx}"),
            )?;
            // Per-device forward time: the stage's layers over the whole
            // microbatch, split over dp (batch) and op (hidden) devices.
            let flops =
                self.layer_forward_flops(mb) * layers_per_stage as f64 / (p.dp * p.op) as f64;
            let fwd = flops / self.precision.effective_device_flops();
            // Each of the stage's layers stashes one ~BSH activation per
            // in-flight microbatch (Table 1's 2BSH per layer at fp16).
            let boundary_bytes =
                (self.precision.elem_bytes() * (mb / p.dp as u64) * self.seq_len * self.hidden)
                    as f64;
            let act_bytes = boundary_bytes * layers_per_stage as f64;
            // ZeRO-1-style optimizer-state sharding over dp replicas —
            // without it, Table 3's (4,1,2) config cannot fit 16 GB V100s.
            let weight_bytes = self.precision.zero1_state_bytes_per_param(p.dp)
                * (12 * layers_per_stage as u64 * self.hidden * self.hidden) as f64
                / p.op as f64;
            let mut stage = Stage::new(format!("gpt-stage{stage_idx}"), mesh, fwd)
                .with_backward(fwd, fwd)
                .with_memory(act_bytes, weight_bytes);
            if let Some(budget) = self.device_memory_bytes {
                // Worst-case in-flight microbatches under eager-1F1B.
                let worst_live = (2 * (p.pp - stage_idx) - 1).min(self.num_microbatches) as f64;
                if weight_bytes + worst_live * act_bytes > budget {
                    stage = stage.with_remat(boundary_bytes);
                }
            }
            if p.dp > 1 {
                // Data-parallel replicas (mesh axis 0) all-reduce their
                // weight gradients at the end of the iteration.
                let grad_bytes = self.precision.elem_bytes() as f64
                    * (12 * layers_per_stage as u64 * self.hidden * self.hidden) as f64
                    / p.op as f64;
                stage = stage.with_grad_sync(0, grad_bytes);
            }
            stage_ids.push(graph.add_stage(stage));
        }
        for w in stage_ids.windows(2) {
            graph.connect(
                w[0],
                w[1],
                EdgeTensor {
                    shape: vec![mb, self.seq_len, self.hidden],
                    elem_bytes: self.precision.elem_bytes(),
                    src_spec: "S0RR".parse().expect("static spec"),
                    dst_spec: "S0RR".parse().expect("static spec"),
                },
            )?;
        }
        Ok(ModelJob {
            graph,
            total_flops: self.total_flops(),
            num_devices: p.num_devices(),
        })
    }
}

/// Builds a `(rows, cols)` mesh over the next `rows*cols` devices of the
/// cluster in global device order (stages claim devices consecutively, so
/// a 4-device stage lands on one p3.8xlarge host).
fn mesh_from_devices(
    cluster: &ClusterSpec,
    next_device: &mut u32,
    shape: (usize, usize),
    name: String,
) -> Result<DeviceMesh, MeshError> {
    let n = (shape.0 * shape.1) as u32;
    if *next_device + n > cluster.num_devices() {
        return Err(MeshError::ClusterOutOfRange {
            what: format!(
                "devices {}..{} of {}",
                *next_device,
                *next_device + n,
                cluster.num_devices()
            ),
        });
    }
    let devices: Vec<DeviceId> = (*next_device..*next_device + n).map(DeviceId).collect();
    let hosts: Vec<HostId> = devices.iter().map(|&d| cluster.host_of(d)).collect();
    *next_device += n;
    DeviceMesh::new(name, shape, devices, hosts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::aws_p3_8xlarge;

    #[test]
    fn case1_is_2_6b_params() {
        let c = GptConfig::case1();
        let b = c.num_params() as f64 / 1e9;
        assert!((b - 2.5).abs() < 0.3, "got {b}B params");
    }

    #[test]
    fn build_produces_two_stages_on_two_hosts() {
        let cluster = aws_p3_8xlarge(2, Precision::Fp16);
        let job = GptConfig::case1().build(&cluster).unwrap();
        assert_eq!(job.graph.stages().len(), 2);
        assert_eq!(job.graph.edges().len(), 1);
        assert_eq!(job.num_devices, 8);
        // Stage 0 entirely on host 0.
        let s0 = &job.graph.stages()[0];
        assert_eq!(s0.mesh.distinct_hosts(), vec![HostId(0)]);
        assert_eq!(s0.mesh.shape(), (2, 2));
    }

    #[test]
    fn case2_mesh_shape() {
        let cluster = aws_p3_8xlarge(2, Precision::Fp16);
        let job = GptConfig::case2().build(&cluster).unwrap();
        assert_eq!(job.graph.stages()[0].mesh.shape(), (4, 1));
    }

    #[test]
    fn boundary_tensor_bytes() {
        // mb=32 sequences x 1024 x 2560 x 2 bytes.
        let cluster = aws_p3_8xlarge(2, Precision::Fp16);
        let job = GptConfig::case1().build(&cluster).unwrap();
        let edge = &job.graph.edges()[0];
        assert_eq!(edge.forward.total_bytes(), 32 * 1024 * 2560 * 2);
    }

    #[test]
    fn too_small_cluster_is_an_error() {
        let cluster = aws_p3_8xlarge(1, Precision::Fp16);
        assert!(GptConfig::case1().build(&cluster).is_err());
    }

    #[test]
    fn throughput_metric_sane() {
        let cluster = aws_p3_8xlarge(2, Precision::Fp16);
        let job = GptConfig::case1().build(&cluster).unwrap();
        // If the cluster ran at 100% efficiency the iteration would take
        // total_flops / (8 * 50 TFLOPS).
        let ideal = job.total_flops / (8.0 * 50e12);
        let tflops = job.per_gpu_tflops(ideal);
        assert!((tflops - 50.0).abs() < 1e-6);
    }

    #[test]
    fn case1_fits_v100_memory_without_remat() {
        let cluster = aws_p3_8xlarge(2, Precision::Fp16);
        let job = GptConfig::case1().build(&cluster).unwrap();
        for s in job.graph.stages() {
            assert!(s.remat_keep_bytes.is_none(), "case1 should fit 16 GB");
            let worst = s.weight_bytes + 4.0 * s.activation_bytes;
            assert!(worst < 16e9, "footprint {worst}");
        }
    }

    #[test]
    fn tight_memory_budget_triggers_remat_on_early_stages() {
        let cluster = aws_p3_8xlarge(2, Precision::Fp16);
        let mut cfg = GptConfig::case1();
        // Squeeze the budget until the worst-case footprint breaks it.
        cfg.device_memory_bytes = Some(7e9);
        let job = cfg.build(&cluster).unwrap();
        let s0 = &job.graph.stages()[0];
        assert!(s0.remat_keep_bytes.is_some(), "stage 0 must rematerialize");
        // Remat makes the backward pay a forward recomputation.
        assert!(s0.effective_backward_act_seconds() > s0.backward_act_seconds,);
        // The kept bytes are the single boundary tensor, far below the
        // full per-layer stash.
        assert!(s0.remat_keep_bytes.unwrap() < s0.activation_bytes / 2.0);
    }

    #[test]
    fn later_stages_rematerialize_less() {
        // §5.2: later stages have fewer in-flight microbatches, so a budget
        // can force remat on stage 0 while stage 1 stays remat-free and
        // its backward stays faster.
        let cluster = aws_p3_8xlarge(2, Precision::Fp16);
        let mut cfg = GptConfig::case1();
        cfg.device_memory_bytes = Some(8e9);
        let job = cfg.build(&cluster).unwrap();
        let stages = job.graph.stages();
        assert!(stages[0].remat_keep_bytes.is_some());
        assert!(stages[1].remat_keep_bytes.is_none());
        assert!(
            stages[1].effective_backward_act_seconds() < stages[0].effective_backward_act_seconds()
        );
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_microbatch_split_panics() {
        let mut c = GptConfig::case1();
        c.num_microbatches = 7;
        let _ = c.microbatch_size();
    }
}
