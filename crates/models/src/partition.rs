//! Operator chains and FLOP-balanced pipeline partitioning.
//!
//! The paper balances pipeline stages "with respect to FLOPs" (§5.2): the
//! model is a chain of operators, and inter-op parallelism must cut it
//! into `pp` contiguous stages whose heaviest stage is as light as
//! possible (the heaviest stage paces the whole pipeline). This module
//! provides the chain representation ([`OpNode`], [`OpChain`]), the exact
//! dynamic-programming partitioner ([`partition_balanced`] — the classic
//! linear-partition problem), and lowering of a partitioned chain into a
//! simulatable [`StageGraph`].

use crate::job::{ModelJob, Precision};
use crossmesh_autoshard::{search, AutoShardProblem};
use crossmesh_core::CostParams;
use crossmesh_mesh::{DeviceMesh, MeshError, ShardingSpec};
use crossmesh_netsim::ClusterSpec;
use crossmesh_pipeline::{EdgeTensor, Stage, StageGraph};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// One operator of a linear model graph, with per-microbatch costs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpNode {
    /// Operator name.
    pub name: String,
    /// Forward FLOPs per microbatch.
    pub forward_flops: f64,
    /// Parameter count.
    pub params: u64,
    /// Shape of the output activation per microbatch.
    pub output_shape: Vec<u64>,
}

impl OpNode {
    /// Creates an operator node.
    pub fn new(
        name: impl Into<String>,
        forward_flops: f64,
        params: u64,
        output_shape: Vec<u64>,
    ) -> Self {
        OpNode {
            name: name.into(),
            forward_flops,
            params,
            output_shape,
        }
    }
}

/// Splits `ops` into `pp` contiguous, non-empty stages minimizing the
/// maximum per-stage forward FLOPs (exact, via dynamic programming over
/// prefix sums — `O(n²·pp)`).
///
/// # Example
///
/// ```
/// use crossmesh_models::partition::{partition_balanced, OpNode};
///
/// let ops: Vec<OpNode> = [8.0, 4.0, 2.0, 1.0, 1.0, 1.0, 1.0]
///     .iter()
///     .map(|&f| OpNode::new("op", f, 0, vec![4]))
///     .collect();
/// // The heavy head op stands alone: max(8, 10) beats max(12, 6).
/// assert_eq!(partition_balanced(&ops, 2), vec![0..1, 1..7]);
/// ```
///
/// # Panics
///
/// Panics if `pp` is zero or exceeds the operator count.
pub fn partition_balanced(ops: &[OpNode], pp: usize) -> Vec<Range<usize>> {
    let n = ops.len();
    assert!(pp > 0, "need at least one stage");
    assert!(pp <= n, "cannot cut {n} ops into {pp} non-empty stages");
    let mut prefix = vec![0.0f64; n + 1];
    for (i, op) in ops.iter().enumerate() {
        prefix[i + 1] = prefix[i] + op.forward_flops;
    }
    let seg = |a: usize, b: usize| prefix[b] - prefix[a]; // ops[a..b]

    // dp[k][i]: minimal max-stage-cost splitting ops[0..i] into k stages.
    let inf = f64::INFINITY;
    let mut dp = vec![vec![inf; n + 1]; pp + 1];
    let mut cut = vec![vec![0usize; n + 1]; pp + 1];
    dp[0][0] = 0.0;
    for k in 1..=pp {
        for i in k..=n {
            for j in k - 1..i {
                let cost = dp[k - 1][j].max(seg(j, i));
                if cost < dp[k][i] {
                    dp[k][i] = cost;
                    cut[k][i] = j;
                }
            }
        }
    }
    // Recover the cut points.
    let mut bounds = vec![n];
    let mut i = n;
    for k in (1..=pp).rev() {
        i = cut[k][i];
        bounds.push(i);
    }
    bounds.reverse();
    bounds.windows(2).map(|w| w[0]..w[1]).collect()
}

/// How boundary tensors pick their sharding specs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BoundarySharding {
    /// Use the same fixed spec on both sides of every boundary.
    Fixed(ShardingSpec),
    /// Search the spec pair per boundary with `crossmesh-autoshard` (the
    /// paper's "(auto, auto, pp)" style).
    Auto,
}

/// A linear model as an operator chain plus execution parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpChain {
    /// The operators in execution order.
    pub ops: Vec<OpNode>,
    /// Microbatches per iteration.
    pub num_microbatches: usize,
    /// Bytes per activation element.
    pub elem_bytes: u64,
    /// Training precision (fixes the device compute rate and training
    /// state size).
    pub precision: Precision,
}

impl OpChain {
    /// Total forward FLOPs per microbatch.
    pub fn total_forward_flops(&self) -> f64 {
        self.ops.iter().map(|o| o.forward_flops).sum()
    }

    /// Total parameters.
    pub fn total_params(&self) -> u64 {
        self.ops.iter().map(|o| o.params).sum()
    }

    /// Partitions the chain into `pp` FLOP-balanced stages, places stage
    /// `i` on host `i` of `cluster` (all its devices, a `(1, d)` mesh),
    /// chooses boundary specs per `sharding`, and returns a simulatable
    /// job.
    ///
    /// # Errors
    ///
    /// Propagates mesh errors when the cluster has fewer hosts than
    /// stages, plus any autoshard failure.
    ///
    /// # Panics
    ///
    /// Panics if `pp` is zero or exceeds the op count.
    pub fn build(
        &self,
        cluster: &ClusterSpec,
        pp: usize,
        sharding: &BoundarySharding,
        params: &CostParams,
    ) -> Result<ModelJob, MeshError> {
        let ranges = partition_balanced(&self.ops, pp);
        let rate = self.precision.effective_device_flops();
        let state = self.precision.train_state_bytes_per_param();

        let mut graph = StageGraph::new(self.num_microbatches);
        let mut meshes = Vec::with_capacity(pp);
        let mut stage_ids = Vec::with_capacity(pp);
        let mut num_devices = 0usize;
        for (i, range) in ranges.iter().enumerate() {
            let devices = cluster.host(crossmesh_netsim::HostId(i as u32)).devices as usize;
            num_devices += devices;
            let mesh = DeviceMesh::from_cluster(cluster, i, (1, devices), format!("stage{i}"))?;
            let flops: f64 = self.ops[range.clone()]
                .iter()
                .map(|o| o.forward_flops)
                .sum();
            let stage_params: u64 = self.ops[range.clone()].iter().map(|o| o.params).sum();
            let fwd = flops / devices as f64 / rate;
            let last_out = &self.ops[range.end - 1].output_shape;
            let act_bytes =
                (last_out.iter().product::<u64>() * self.elem_bytes) as f64 / devices as f64;
            let stage = Stage::new(format!("stage{i}"), mesh.clone(), fwd)
                .with_backward(fwd, fwd)
                .with_memory(act_bytes, state * stage_params as f64 / devices as f64);
            stage_ids.push(graph.add_stage(stage));
            meshes.push(mesh);
        }

        for i in 0..pp - 1 {
            let shape = self.ops[ranges[i].end - 1].output_shape.clone();
            let (src_spec, dst_spec) = match sharding {
                BoundarySharding::Fixed(spec) => (spec.clone(), spec.clone()),
                BoundarySharding::Auto => {
                    let best = search(
                        &AutoShardProblem::new(
                            meshes[i].clone(),
                            meshes[i + 1].clone(),
                            shape.clone(),
                            self.elem_bytes,
                        ),
                        params,
                    )?;
                    (best.src_spec, best.dst_spec)
                }
            };
            graph.connect(
                stage_ids[i],
                stage_ids[i + 1],
                EdgeTensor {
                    shape,
                    elem_bytes: self.elem_bytes,
                    src_spec,
                    dst_spec,
                },
            )?;
        }

        Ok(ModelJob {
            total_flops: 3.0 * self.total_forward_flops() * self.num_microbatches as f64,
            graph,
            num_devices,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{aws_p3_8xlarge, p3_cost_params};
    use crossmesh_core::{EnsemblePlanner, PlannerConfig};
    use crossmesh_pipeline::{simulate, PipelineConfig};

    fn op(flops: f64) -> OpNode {
        OpNode::new("op", flops, 1000, vec![8, 16])
    }

    /// Brute-force optimum for cross-checking the DP.
    fn brute_force(ops: &[OpNode], pp: usize) -> f64 {
        fn go(ops: &[OpNode], pp: usize) -> f64 {
            if pp == 1 {
                return ops.iter().map(|o| o.forward_flops).sum();
            }
            (1..=ops.len() - pp + 1)
                .map(|cut| {
                    let head: f64 = ops[..cut].iter().map(|o| o.forward_flops).sum();
                    head.max(go(&ops[cut..], pp - 1))
                })
                .fold(f64::INFINITY, f64::min)
        }
        go(ops, pp)
    }

    fn cost(ops: &[OpNode], ranges: &[Range<usize>]) -> f64 {
        ranges
            .iter()
            .map(|r| ops[r.clone()].iter().map(|o| o.forward_flops).sum::<f64>())
            .fold(0.0, f64::max)
    }

    #[test]
    fn dp_matches_brute_force() {
        let shapes: &[&[f64]] = &[
            &[1.0, 1.0, 1.0, 1.0],
            &[5.0, 1.0, 1.0, 1.0, 1.0],
            &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            &[9.0, 1.0, 9.0, 1.0, 9.0],
            &[0.5, 0.5, 8.0, 0.5, 0.5],
        ];
        for flops in shapes {
            let ops: Vec<OpNode> = flops.iter().map(|&f| op(f)).collect();
            for pp in 1..=3.min(ops.len()) {
                let ranges = partition_balanced(&ops, pp);
                assert_eq!(ranges.len(), pp);
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, ops.len());
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "stages must be contiguous");
                }
                let got = cost(&ops, &ranges);
                let want = brute_force(&ops, pp);
                assert!(
                    (got - want).abs() < 1e-9,
                    "{flops:?} pp={pp}: dp {got} vs brute {want}"
                );
            }
        }
    }

    #[test]
    fn uniform_chain_splits_evenly() {
        let ops: Vec<OpNode> = (0..8).map(|_| op(1.0)).collect();
        let ranges = partition_balanced(&ops, 2);
        assert_eq!(ranges, vec![0..4, 4..8]);
    }

    #[test]
    fn heavy_head_takes_a_short_stage() {
        // A U-Net-like decreasing cost profile: the cut is NOT at the
        // midpoint by op count.
        let flops = [8.0, 4.0, 2.0, 1.0, 1.0, 1.0, 1.0];
        let ops: Vec<OpNode> = flops.iter().map(|&f| op(f)).collect();
        let ranges = partition_balanced(&ops, 2);
        // max(8, 10) = 10 beats max(12, 6) = 12: the 8-FLOP op stands alone.
        assert_eq!(ranges[0], 0..1, "heavy op gets its own short stage");
    }

    #[test]
    #[should_panic(expected = "non-empty stages")]
    fn too_many_stages_panics() {
        partition_balanced(&[op(1.0)], 2);
    }

    #[test]
    fn chain_builds_and_simulates() {
        let cluster = aws_p3_8xlarge(2, Precision::Fp16);
        let chain = OpChain {
            ops: (0..8)
                .map(|i| OpNode::new(format!("layer{i}"), 1e12, 1_000_000, vec![16, 64, 64]))
                .collect(),
            num_microbatches: 4,
            elem_bytes: 2,
            precision: Precision::Fp16,
        };
        let job = chain
            .build(
                &cluster,
                2,
                &BoundarySharding::Fixed("S1RR".parse().unwrap()),
                &p3_cost_params(),
            )
            .unwrap();
        assert_eq!(job.graph.stages().len(), 2);
        assert_eq!(job.num_devices, 8);
        let planner = EnsemblePlanner::new(PlannerConfig::new(p3_cost_params()));
        let r = simulate(&job.graph, &cluster, &planner, &PipelineConfig::ours()).unwrap();
        assert!(r.iteration_seconds > 0.0);
    }

    #[test]
    fn auto_boundaries_beat_or_match_replication() {
        let cluster = aws_p3_8xlarge(2, Precision::Fp16);
        let chain = OpChain {
            ops: (0..4)
                .map(|i| OpNode::new(format!("layer{i}"), 1e12, 1_000, vec![16, 64, 64]))
                .collect(),
            num_microbatches: 4,
            elem_bytes: 2,
            precision: Precision::Fp16,
        };
        let planner = EnsemblePlanner::new(PlannerConfig::new(p3_cost_params()));
        let run = |sharding: &BoundarySharding| {
            let job = chain
                .build(&cluster, 2, sharding, &p3_cost_params())
                .unwrap();
            simulate(&job.graph, &cluster, &planner, &PipelineConfig::ours())
                .unwrap()
                .iteration_seconds
        };
        let auto = run(&BoundarySharding::Auto);
        let replicated = run(&BoundarySharding::Fixed(ShardingSpec::replicated(3)));
        assert!(auto <= replicated * 1.01, "auto {auto} vs RRR {replicated}");
    }
}
