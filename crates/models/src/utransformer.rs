//! U-Transformer cost model (Table 3, "U-Trans case1"): a U-Net with
//! attention blocks and long skip connections, split into two pipeline
//! stages — the workload whose skip connections make cross-mesh resharding
//! the bottleneck (§5.2).

use crate::job::{ModelJob, ParallelConfig, Precision};
use crossmesh_mesh::{DeviceMesh, MeshError};
use crossmesh_netsim::ClusterSpec;
use crossmesh_pipeline::{EdgeTensor, Stage, StageGraph};
use serde::{Deserialize, Serialize};

/// Configuration of the U-Transformer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UTransformerConfig {
    /// Number of resolution levels on each side of the U (excluding the
    /// bottleneck).
    pub levels: usize,
    /// Channels at the top level; level `i` has `base_channels << i`.
    pub base_channels: u64,
    /// Convolution/attention blocks per level per side.
    pub blocks_per_level: usize,
    /// Input spatial resolution (square images).
    pub image_size: u64,
    /// Global batch size per iteration.
    pub global_batch: u64,
    /// Number of pipeline microbatches.
    pub num_microbatches: usize,
    /// Training precision (the paper uses FP32 for this model).
    pub precision: Precision,
}

impl UTransformerConfig {
    /// Table 3, "U-Trans case1": 2.1 B parameters, batch 2048, FP32, two
    /// pipeline stages with intra-op parallelism inside each.
    pub fn case1() -> Self {
        UTransformerConfig {
            levels: 4,
            base_channels: 400,
            blocks_per_level: 2,
            image_size: 64,
            global_batch: 2048,
            num_microbatches: 32,
            precision: Precision::Fp32,
        }
    }

    /// Channels at level `i`.
    pub fn channels(&self, level: usize) -> u64 {
        self.base_channels << level
    }

    /// Spatial side length at level `i`.
    pub fn spatial(&self, level: usize) -> u64 {
        self.image_size >> level
    }

    /// Bottleneck channels (one level deeper than the last).
    pub fn bottleneck_channels(&self) -> u64 {
        self.base_channels << self.levels
    }

    /// Parameters of one block at `c` channels: two 3×3 convolutions
    /// (`18 c²`) plus an attention block (`4 c²`).
    fn block_params(c: u64) -> u64 {
        22 * c * c
    }

    /// Approximate total parameter count.
    pub fn num_params(&self) -> u64 {
        let per_side: u64 = (0..self.levels)
            .map(|l| self.blocks_per_level as u64 * Self::block_params(self.channels(l)))
            .sum();
        2 * per_side + Self::block_params(self.bottleneck_channels())
    }

    /// Forward FLOPs of one block at `c` channels and `hw` spatial
    /// elements over `b` samples: convolutions (`36 c² hw`), attention
    /// projections (`8 c² hw`), and attention scores (`4 hw² c`).
    fn block_forward_flops(c: u64, hw: u64, b: u64) -> f64 {
        let (c, hw, b) = (c as f64, hw as f64, b as f64);
        b * (44.0 * c * c * hw + 4.0 * hw * hw * c)
    }

    /// Forward FLOPs of one side of the U (down or up path) for `b`
    /// samples.
    fn side_forward_flops(&self, b: u64) -> f64 {
        (0..self.levels)
            .map(|l| {
                let hw = self.spatial(l) * self.spatial(l);
                self.blocks_per_level as f64 * Self::block_forward_flops(self.channels(l), hw, b)
            })
            .sum()
    }

    /// Forward FLOPs of the bottleneck for `b` samples.
    fn bottleneck_forward_flops(&self, b: u64) -> f64 {
        let s = self.spatial(self.levels);
        Self::block_forward_flops(self.bottleneck_channels(), s * s, b)
    }

    /// Total model FLOPs per iteration (forward + 2× backward, full batch).
    pub fn total_flops(&self) -> f64 {
        let fwd = 2.0 * self.side_forward_flops(self.global_batch)
            + self.bottleneck_forward_flops(self.global_batch);
        3.0 * fwd
    }

    /// Microbatch size.
    ///
    /// # Panics
    ///
    /// Panics if the batch does not divide by the microbatch count.
    pub fn microbatch_size(&self) -> u64 {
        let m = self.num_microbatches as u64;
        assert!(
            self.global_batch.is_multiple_of(m),
            "batch {} not divisible into {m} microbatches",
            self.global_batch
        );
        self.global_batch / m
    }

    /// Builds the two-stage pipeline on `cluster`: stage 0 is the down
    /// path plus bottleneck on host 0, stage 1 the up path on host 1. The
    /// i-th down block's output feeds both the next down block (inside
    /// stage 0) and the mirror up block (a long skip connection — a
    /// cross-mesh resharding edge), so `levels + 1` edges cross the mesh
    /// boundary.
    ///
    /// # Errors
    ///
    /// Propagates mesh errors when `cluster` cannot fit two 4-GPU stages.
    pub fn build(&self, cluster: &ClusterSpec) -> Result<ModelJob, MeshError> {
        let mb = self.microbatch_size();
        let flops_rate = self.precision.effective_device_flops();
        let devices_per_stage = 4usize;

        let mesh0 = DeviceMesh::from_cluster(cluster, 0, (1, devices_per_stage), "utrans-down")?;
        let mesh1 = DeviceMesh::from_cluster(cluster, 1, (1, devices_per_stage), "utrans-up")?;

        let down_flops = self.side_forward_flops(mb) + self.bottleneck_forward_flops(mb);
        let up_flops = self.side_forward_flops(mb);
        let fwd0 = down_flops / devices_per_stage as f64 / flops_rate;
        let fwd1 = up_flops / devices_per_stage as f64 / flops_rate;

        // Peak activations: the level-0 feature map dominates.
        let act0 = (self.precision.elem_bytes()
            * mb
            * self.channels(0)
            * self.image_size
            * self.image_size) as f64
            / devices_per_stage as f64;
        // The 4-way batch-sharded intra-op parallelism is data parallelism
        // from the optimizer's perspective: shard its state ZeRO-1 style.
        let state = self
            .precision
            .zero1_state_bytes_per_param(devices_per_stage);
        let params_side = self.num_params() as f64 / 2.0;

        // Batch-sharded intra-op parallelism replicates the weights over
        // the stage's 4-device axis: gradients all-reduce over axis 1.
        let grad_bytes = self.precision.elem_bytes() as f64 * params_side;
        let mut graph = StageGraph::new(self.num_microbatches);
        let s0 = graph.add_stage(
            Stage::new("down", mesh0, fwd0)
                .with_backward(fwd0, fwd0)
                .with_memory(act0, state * params_side)
                .with_grad_sync(1, grad_bytes),
        );
        let s1 = graph.add_stage(
            Stage::new("up", mesh1, fwd1)
                .with_backward(fwd1, fwd1)
                .with_memory(act0, state * params_side)
                .with_grad_sync(1, grad_bytes),
        );

        // Bottleneck output: the "trunk" edge into the up path.
        let sb = self.spatial(self.levels);
        graph.connect(s0, s1, self.edge_tensor(mb, self.bottleneck_channels(), sb))?;
        // One skip connection per level.
        for l in 0..self.levels {
            graph.connect(
                s0,
                s1,
                self.edge_tensor(mb, self.channels(l), self.spatial(l)),
            )?;
        }

        Ok(ModelJob {
            graph,
            total_flops: self.total_flops(),
            num_devices: 2 * devices_per_stage,
        })
    }

    /// A `[batch, C, H, W]` activation edge, batch-sharded over the
    /// stage's 4-device axis on both sides.
    fn edge_tensor(&self, mb: u64, c: u64, spatial: u64) -> EdgeTensor {
        EdgeTensor {
            shape: vec![mb, c, spatial, spatial],
            elem_bytes: self.precision.elem_bytes(),
            src_spec: "S1RRR".parse().expect("static spec"),
            dst_spec: "S1RRR".parse().expect("static spec"),
        }
    }

    /// The parallel config of Table 3 for reporting: intra-op degree 4 per
    /// stage ("auto"), pipeline degree 2.
    pub fn parallel(&self) -> ParallelConfig {
        ParallelConfig::new(1, 4, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::aws_p3_8xlarge;

    #[test]
    fn case1_is_about_2_1b_params() {
        let c = UTransformerConfig::case1();
        let b = c.num_params() as f64 / 1e9;
        assert!((b - 2.1).abs() < 0.25, "got {b}B params");
    }

    #[test]
    fn build_creates_skip_edges() {
        let cluster = aws_p3_8xlarge(2, Precision::Fp32);
        let cfg = UTransformerConfig::case1();
        let job = cfg.build(&cluster).unwrap();
        assert_eq!(job.graph.stages().len(), 2);
        // Bottleneck + one skip per level, all crossing the mesh boundary.
        assert_eq!(job.graph.edges().len(), cfg.levels + 1);
        assert_eq!(job.graph.in_edges(1).count(), cfg.levels + 1);
    }

    #[test]
    fn skip_tensors_shrink_with_depth() {
        let cfg = UTransformerConfig::case1();
        let cluster = aws_p3_8xlarge(2, Precision::Fp32);
        let job = cfg.build(&cluster).unwrap();
        // Edge 1 is level 0 (largest spatial extent); later skip edges
        // carry 2x fewer bytes each level (2x channels, 4x fewer pixels).
        let bytes: Vec<u64> = job.graph.edges()[1..]
            .iter()
            .map(|e| e.forward.total_bytes())
            .collect();
        for w in bytes.windows(2) {
            assert_eq!(w[0], 2 * w[1]);
        }
    }

    #[test]
    fn communication_is_heavy_relative_to_compute() {
        // The defining property of the workload: per microbatch, the skip
        // bytes over a 10 Gbps NIC take longer than a stage's compute.
        let cfg = UTransformerConfig::case1();
        let cluster = aws_p3_8xlarge(2, Precision::Fp32);
        let job = cfg.build(&cluster).unwrap();
        let comm_bytes: u64 = job
            .graph
            .edges()
            .iter()
            .map(|e| e.forward.total_bytes())
            .sum();
        let comm_seconds = comm_bytes as f64 / 1.25e9;
        let compute_seconds = job.graph.stages()[0].forward_seconds;
        assert!(
            comm_seconds > 0.5 * compute_seconds,
            "comm {comm_seconds} vs compute {compute_seconds}"
        );
    }

    #[test]
    fn spatial_and_channel_schedules() {
        let cfg = UTransformerConfig::case1();
        assert_eq!(cfg.channels(0), 400);
        assert_eq!(cfg.channels(3), 3200);
        assert_eq!(cfg.bottleneck_channels(), 6400);
        assert_eq!(cfg.spatial(0), 64);
        assert_eq!(cfg.spatial(4), 4);
    }
}
