//! GPT-MoE cost model: a GPT trunk whose FFN layers are Mixture-of-Experts.
//!
//! Every transformer layer's dense FFN is replaced by `experts_per_layer`
//! expert FFNs behind a top-k gate, which adds two all-to-alls per layer
//! (dispatch and combine). The model derives the per-step all-to-all
//! traffic from the batch geometry and bridges to
//! [`crossmesh_moe::RoutingConfig`] so benchmarks draw the same seeded,
//! skewed routing matrices the data plane executes.

use crate::gpt::GptConfig;
use crossmesh_moe::RoutingConfig;
use serde::{Deserialize, Serialize};

/// A GPT trunk with MoE FFN layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GptMoeConfig {
    /// The dense trunk (attention, batch geometry, parallel degrees).
    pub base: GptConfig,
    /// Experts per MoE layer.
    pub experts_per_layer: usize,
    /// Experts each token is routed to.
    pub top_k: u32,
    /// Per-expert capacity as a multiple of the mean expert load.
    pub capacity_factor: f64,
    /// Zipf exponent of the gate's expert popularity (0 = balanced).
    pub skew: f64,
    /// Seed for the routing draw.
    pub seed: u64,
}

impl GptMoeConfig {
    /// A 16-expert top-2 MoE over the Table 3 "GPT case1" trunk — the
    /// GShard-style default (capacity factor 1.25, mildly skewed gate).
    pub fn case1() -> Self {
        GptMoeConfig {
            base: GptConfig::case1(),
            experts_per_layer: 16,
            top_k: 2,
            capacity_factor: 1.25,
            skew: 1.0,
            seed: 0,
        }
    }

    /// Returns a copy with the gate skew replaced.
    #[must_use]
    pub fn with_skew(mut self, skew: f64) -> Self {
        self.skew = skew;
        self
    }

    /// Returns a copy with the routing seed replaced.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Parameter count: the dense trunk plus the extra expert FFNs. Each
    /// expert FFN holds `8 H²` weights (two `H × 4H` matmuls); one of the
    /// `experts_per_layer` replaces the trunk's own FFN.
    pub fn num_params(&self) -> u64 {
        let h = self.base.hidden;
        let extra_ffns = self.experts_per_layer.saturating_sub(1) as u64;
        self.base.num_params() + self.base.num_layers as u64 * extra_ffns * 8 * h * h
    }

    /// Tokens resident on one device per microbatch: the microbatch's
    /// sequences × sequence length, split over the `dp × op` devices of a
    /// stage.
    pub fn tokens_per_device(&self) -> u64 {
        let p = &self.base.parallel;
        let tokens = self.base.microbatch_size() * self.base.seq_len;
        (tokens / (p.dp * p.op).max(1) as u64).max(1)
    }

    /// Wire bytes of one token (its hidden vector).
    pub fn token_bytes(&self) -> u64 {
        self.base.hidden * self.base.precision.elem_bytes()
    }

    /// The seeded routing draw for one MoE layer's dispatch.
    pub fn routing(&self) -> RoutingConfig {
        RoutingConfig {
            tokens_per_device: self.tokens_per_device(),
            token_bytes: self.token_bytes(),
            top_k: self.top_k,
            capacity_factor: self.capacity_factor,
            skew: self.skew,
            seed: self.seed,
        }
    }

    /// Upper bound on one layer's all-to-all payload per microbatch,
    /// summed over all source devices and both directions (dispatch +
    /// combine): `2 × devices × tokens_per_device × top_k × token_bytes`.
    pub fn a2a_bytes_per_layer(&self, devices: usize) -> u64 {
        2 * devices as u64 * self.tokens_per_device() * u64::from(self.top_k) * self.token_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moe_has_more_params_than_dense() {
        let moe = GptMoeConfig::case1();
        assert!(moe.num_params() > moe.base.num_params());
        // 16 experts × 8H² × 32 layers adds ~25B params over the 2.6B trunk.
        assert!(moe.num_params() as f64 / 1e9 > 20.0);
    }

    #[test]
    fn routing_mirrors_the_batch_geometry() {
        let moe = GptMoeConfig::case1().with_skew(1.5).with_seed(9);
        let r = moe.routing();
        // case1: mb 32 sequences × 1024 tokens over dp·op = 4 devices.
        assert_eq!(r.tokens_per_device, 32 * 1024 / 4);
        assert_eq!(r.token_bytes, 2560 * 2);
        assert_eq!(r.top_k, 2);
        assert_eq!(r.skew, 1.5);
        assert_eq!(r.seed, 9);
    }

    #[test]
    fn a2a_payload_counts_both_directions() {
        let moe = GptMoeConfig::case1();
        let one_way = 4 * moe.tokens_per_device() * 2 * moe.token_bytes();
        assert_eq!(moe.a2a_bytes_per_layer(4), 2 * one_way);
    }
}
