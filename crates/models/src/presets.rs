//! Cluster presets matching the paper's testbed.

use crate::Precision;
use crossmesh_core::CostParams;
use crossmesh_netsim::{ClusterSpec, LinkParams};

/// Per-device NVLink-class bandwidth inside a p3.8xlarge host, bytes/s.
pub const P3_INTRA_HOST_BW: f64 = 100e9;

/// Cross-node bandwidth within the paper's placement group: 10 Gbps.
pub const P3_INTER_HOST_BW: f64 = 1.25e9;

/// The paper's evaluation cluster class: `n_hosts` AWS p3.8xlarge
/// instances — 4 NVIDIA V100 (16 GB) GPUs per host connected by NVLink,
/// hosts connected at 10 Gbps — with the per-device compute rate picked for
/// `precision`.
///
/// # Panics
///
/// Panics if `n_hosts` is zero.
pub fn aws_p3_8xlarge(n_hosts: u32, precision: Precision) -> ClusterSpec {
    ClusterSpec::homogeneous(
        n_hosts,
        4,
        LinkParams::new(P3_INTRA_HOST_BW, P3_INTER_HOST_BW).with_latencies(5e-6, 25e-6),
    )
    .with_device_flops(precision.effective_device_flops())
}

/// Cost parameters matching [`aws_p3_8xlarge`], for planners.
pub fn p3_cost_params() -> CostParams {
    CostParams {
        inter_bw: P3_INTER_HOST_BW,
        intra_bw: P3_INTRA_HOST_BW,
        inter_latency: 25e-6,
        intra_latency: 5e-6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossmesh_netsim::HostId;

    #[test]
    fn preset_shape() {
        let c = aws_p3_8xlarge(2, Precision::Fp16);
        assert_eq!(c.num_hosts(), 2);
        assert_eq!(c.num_devices(), 8);
        let h = c.host(HostId(0));
        assert_eq!(h.links.inter_host_bw, 1.25e9);
        assert_eq!(h.device_flops, Precision::Fp16.effective_device_flops());
    }

    #[test]
    fn cost_params_match_preset() {
        let p = p3_cost_params();
        assert_eq!(p.inter_bw, P3_INTER_HOST_BW);
        assert_eq!(p.intra_bw, P3_INTRA_HOST_BW);
    }
}
