//! Common types for workload models.

use crossmesh_pipeline::StageGraph;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Numeric precision of training, which fixes element width and the
/// effective per-device compute rate we assume for a V100.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// Mixed precision (fp16 compute, fp32 master weights).
    Fp16,
    /// Full fp32.
    Fp32,
}

impl Precision {
    /// Bytes per tensor element.
    pub fn elem_bytes(self) -> u64 {
        match self {
            Precision::Fp16 => 2,
            Precision::Fp32 => 4,
        }
    }

    /// Effective achievable FLOP/s per V100 device (peak derated to the
    /// utilisation large dense models typically reach).
    pub fn effective_device_flops(self) -> f64 {
        match self {
            Precision::Fp16 => 50e12,
            Precision::Fp32 => 11e12,
        }
    }

    /// Bytes of weights + gradients + optimizer state per parameter.
    /// Mixed precision: fp16 weight (2) + fp32 master + Adam m/v
    /// (3 × 4) = 14, matching Table 1's `168 H²/TMP = 14 × 12 H²/TMP`.
    /// Fp32: weight + m + v at 4 bytes = 12, plus the fp32 gradient = 16.
    pub fn train_state_bytes_per_param(self) -> f64 {
        match self {
            Precision::Fp16 => 14.0,
            Precision::Fp32 => 16.0,
        }
    }

    /// Bytes per parameter with ZeRO-1-style sharding: the fp32 master
    /// weights and Adam moments (12 bytes) are partitioned across the `dp`
    /// data-parallel replicas; each device keeps its working copy of the
    /// weights at the training precision. This is how billion-parameter
    /// configurations like Table 3's (4,1,2) fit 16 GB devices at all.
    pub fn zero1_state_bytes_per_param(self, dp: usize) -> f64 {
        self.elem_bytes() as f64 + 12.0 / dp.max(1) as f64
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Precision::Fp16 => "FP16",
            Precision::Fp32 => "FP32",
        })
    }
}

/// The paper's `(data parallel, operator parallel, pipeline parallel)`
/// degree tuple (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParallelConfig {
    /// Data-parallel degree (batch split).
    pub dp: usize,
    /// Operator (tensor) parallel degree (hidden split).
    pub op: usize,
    /// Pipeline-parallel degree (layer split).
    pub pp: usize,
}

impl ParallelConfig {
    /// Creates a config; all degrees must be positive.
    ///
    /// # Panics
    ///
    /// Panics if any degree is zero.
    pub fn new(dp: usize, op: usize, pp: usize) -> Self {
        assert!(
            dp > 0 && op > 0 && pp > 0,
            "parallel degrees must be positive"
        );
        ParallelConfig { dp, op, pp }
    }

    /// Total number of devices the config occupies.
    pub fn num_devices(&self) -> usize {
        self.dp * self.op * self.pp
    }

    /// Devices per pipeline stage.
    pub fn devices_per_stage(&self) -> usize {
        self.dp * self.op
    }
}

impl fmt::Display for ParallelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.dp, self.op, self.pp)
    }
}

/// A ready-to-simulate model: the pipeline stage graph plus enough
/// accounting to convert simulated time to the paper's throughput metric.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelJob {
    /// The pipeline to simulate.
    pub graph: StageGraph,
    /// Total model FLOPs per training iteration (forward + backward over
    /// the whole global batch).
    pub total_flops: f64,
    /// Devices participating.
    pub num_devices: usize,
}

impl ModelJob {
    /// The paper's Figure 7 metric: aggregate cluster throughput in
    /// TFLOPS for an iteration that took `iteration_seconds`.
    ///
    /// # Panics
    ///
    /// Panics if `iteration_seconds` is not positive.
    pub fn aggregate_tflops(&self, iteration_seconds: f64) -> f64 {
        assert!(iteration_seconds > 0.0, "iteration time must be positive");
        self.total_flops / iteration_seconds / 1e12
    }

    /// Per-GPU throughput in TFLOPS.
    ///
    /// # Panics
    ///
    /// Panics if `iteration_seconds` is not positive.
    pub fn per_gpu_tflops(&self, iteration_seconds: f64) -> f64 {
        self.aggregate_tflops(iteration_seconds) / self.num_devices as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_properties() {
        assert_eq!(Precision::Fp16.elem_bytes(), 2);
        assert_eq!(Precision::Fp32.elem_bytes(), 4);
        assert!(
            Precision::Fp16.effective_device_flops() > Precision::Fp32.effective_device_flops()
        );
        assert_eq!(Precision::Fp16.train_state_bytes_per_param(), 14.0);
    }

    #[test]
    fn parallel_config_counts() {
        let p = ParallelConfig::new(2, 2, 2);
        assert_eq!(p.num_devices(), 8);
        assert_eq!(p.devices_per_stage(), 4);
        assert_eq!(p.to_string(), "(2, 2, 2)");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_degree_panics() {
        ParallelConfig::new(0, 1, 1);
    }
}
