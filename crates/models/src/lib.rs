//! Workload models for the paper's evaluation (§5).
//!
//! * [`presets`] — the AWS p3.8xlarge cluster class the paper runs on
//!   (4×V100 16 GB per host, NVLink intra-host, 10 Gbps Ethernet).
//! * [`gpt`] — a GPT-3-style stacked-transformer cost model with the
//!   Table 3 parallel configurations (2.6 B parameters, batch 1024,
//!   `(dp, op, pp)` = (2,2,2) and (4,1,2)).
//! * [`utransformer`] — the U-Transformer (U-Net with attention, long skip
//!   connections) at 2.1 B parameters, batch 2048, two pipeline stages.
//! * [`moe`] — a GPT-MoE variant whose FFN layers are expert mixtures,
//!   deriving per-layer all-to-all traffic and bridging to the seeded
//!   routing draws of `crossmesh-moe`.
//! * [`memory`] — the Table 1 per-layer memory breakdown for mixed
//!   precision GPT-3 training.
//! * [`partition`] — operator chains and the FLOP-balanced pipeline
//!   partitioner ("We balance pipeline stages with respect to FLOPs",
//!   §5.2), with optional autoshard boundary specs.
//!
//! Model builders produce a [`ModelJob`]: a ready-to-simulate
//! [`StageGraph`](crossmesh_pipeline::StageGraph) plus the iteration FLOP
//! count, so simulated times convert to the paper's aggregate-TFLOPS
//! throughput metric.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod gpt;
pub mod memory;
pub mod moe;
pub mod partition;
pub mod presets;
pub mod utransformer;

mod job;

pub use job::{ModelJob, ParallelConfig, Precision};
