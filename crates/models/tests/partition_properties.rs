//! Property-based tests of the FLOP-balanced pipeline partitioner.

use crossmesh_models::partition::{partition_balanced, OpNode};
use proptest::prelude::*;

fn chain_strategy() -> impl Strategy<Value = Vec<OpNode>> {
    prop::collection::vec(0.01f64..100.0, 1..12).prop_map(|flops| {
        flops
            .into_iter()
            .enumerate()
            .map(|(i, f)| OpNode::new(format!("op{i}"), f, 1, vec![4, 4]))
            .collect()
    })
}

/// Exponential-time reference optimum.
fn brute_force(flops: &[f64], pp: usize) -> f64 {
    if pp == 1 {
        return flops.iter().sum();
    }
    (1..=flops.len() - pp + 1)
        .map(|cut| {
            let head: f64 = flops[..cut].iter().sum();
            head.max(brute_force(&flops[cut..], pp - 1))
        })
        .fold(f64::INFINITY, f64::min)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The DP always returns a contiguous, complete, non-empty partition
    /// achieving the brute-force optimum.
    #[test]
    fn dp_is_optimal(ops in chain_strategy(), pp_seed in 1usize..4) {
        let pp = pp_seed.min(ops.len());
        let ranges = partition_balanced(&ops, pp);
        prop_assert_eq!(ranges.len(), pp);
        prop_assert_eq!(ranges[0].start, 0);
        prop_assert_eq!(ranges.last().unwrap().end, ops.len());
        for w in ranges.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
            prop_assert!(!w[1].is_empty());
        }
        prop_assert!(!ranges[0].is_empty());

        let flops: Vec<f64> = ops.iter().map(|o| o.forward_flops).collect();
        let got = ranges
            .iter()
            .map(|r| flops[r.clone()].iter().sum::<f64>())
            .fold(0.0, f64::max);
        let want = brute_force(&flops, pp);
        prop_assert!((got - want).abs() <= 1e-9 * want.max(1.0), "dp {got} vs brute {want}");
    }

    /// More stages never increase the bottleneck cost, and one stage costs
    /// exactly the total.
    #[test]
    fn monotone_in_stage_count(ops in chain_strategy()) {
        let flops: Vec<f64> = ops.iter().map(|o| o.forward_flops).collect();
        let total: f64 = flops.iter().sum();
        let cost = |pp: usize| {
            partition_balanced(&ops, pp)
                .iter()
                .map(|r| flops[r.clone()].iter().sum::<f64>())
                .fold(0.0, f64::max)
        };
        prop_assert!((cost(1) - total).abs() < 1e-9);
        let mut prev = f64::INFINITY;
        for pp in 1..=ops.len().min(4) {
            let c = cost(pp);
            prop_assert!(c <= prev + 1e-9, "pp={pp}: {c} > {prev}");
            // Never below the heaviest single op.
            let heaviest = flops.iter().cloned().fold(0.0, f64::max);
            prop_assert!(c + 1e-9 >= heaviest);
            prev = c;
        }
    }
}
