//! `crossmesh` — plan and simulate cross-mesh resharding and pipeline
//! schedules from the shell.
//!
//! ```text
//! crossmesh reshard  --src-spec RS0R --dst-spec S0RR --src-mesh 2x4 \
//!                    --dst-mesh 2x4 --shape 1024x1024x512 [--elem-bytes 4]
//!                    [--strategy broadcast|send_recv|local_allgather|global_allgather|alpa]
//!                    [--planner ours|naive|lpt|dfs|greedy] [--verify] [--json]
//! crossmesh pipeline --model gpt-case1|gpt-case2|utrans [--schedule eager|1f1b|gpipe]
//!                    [--comm overlap|sync|signal] [--microbatches N] [--iterations N] [--json]
//! crossmesh cluster  [--hosts N] [--gpus-per-host N] [--inter-bw B] [--intra-bw B] ...
//! ```
//!
//! Bandwidths default to the paper's p3.8xlarge class (NVLink intra-host,
//! 10 Gbps inter-host); `--inter-bw` / `--intra-bw` override them in
//! bytes/s. `--threads N` (or the `CROSSMESH_THREADS` environment
//! variable) sets the planner worker-pool width; plans are identical at
//! any width.

mod args;

use args::{parse_mesh, parse_shape, Args};
use crossmesh_autoshard::{search, AutoShardProblem};
use crossmesh_check::verify::AssignmentView;
use crossmesh_core::PlanCache;
use crossmesh_core::{
    dataplane, CostParams, DfsPlanner, EnsemblePlanner, LoadBalancePlanner, NaivePlanner, Planner,
    PlannerConfig, RandomizedGreedyPlanner, ReshardingTask, Strategy, StrategyChoice,
};
use crossmesh_faults::{execute_with_repair, FaultSchedule, RecoveryReport};
use crossmesh_mesh::DeviceMesh;
use crossmesh_models::gpt::GptConfig;
use crossmesh_models::utransformer::UTransformerConfig;
use crossmesh_models::{presets, ModelJob, Precision};
use crossmesh_netsim::{
    AggregateSimBackend, Backend, ClusterSpec, LinkParams, SimBackend, SimModel, TaskGraph, Trace,
    Work,
};
use crossmesh_obs as obs;
use crossmesh_pipeline::{
    simulate_with_cache, CommMode, PipelineConfig, ScheduleKind, WeightDelay,
};
use crossmesh_runtime::ThreadedBackend;
use std::error::Error;
use std::process::ExitCode;

const USAGE: &str = "\
crossmesh — cross-mesh resharding planner/simulator (MLSys 2023 reproduction)

USAGE:
  crossmesh reshard  --src-spec <SPEC> --dst-spec <SPEC> --src-mesh <RxC> --dst-mesh <RxC>
                     --shape <AxBxC> [--elem-bytes N] [--strategy S] [--planner P]
                     [--backend B] [--sim-model M] [--seed N] [--inter-bw B] [--intra-bw B]
                     [--faults FILE] [--threads N] [--verify] [--json]
  crossmesh pipeline --model gpt-case1|gpt-case2|utrans [--schedule eager|1f1b|gpipe]
                     [--comm overlap|sync|signal] [--microbatches N] [--iterations N]
                     [--backend B] [--sim-model M] [--threads N] [--json]
  crossmesh autospec --src-mesh <RxC> --dst-mesh <RxC> --shape <AxBxC> [--elem-bytes N]
                     [--fixed-src SPEC] [--fixed-dst SPEC] [--memory-cap BYTES] [--json]
  crossmesh check    --task spec.json --plan plan.json [--format text|json]
  crossmesh check    --races [--seeds N] [--format text|json]
  crossmesh validate-trace --trace FILE.json [--against OTHER.json] [--json]
  crossmesh moe      [--hosts N] [--gpus-per-host N] [--fabric rails|flat|fat-tree|torus]
                     [--strategy multi_rail|send_recv|broadcast] [--direction dispatch|combine]
                     [--tokens N] [--skew F] [--seed N] [--trace-out FILE] [--verify] [--json]
  crossmesh serve    [--workers N] [--backend B] [--planner P] [--rate R] [--burst B]
                     [--queue-depth N] [--allow-remote-shutdown] [--addr-out FILE]
                     [--metrics-out FILE] [--trace-out FILE] [--flightrec-dir DIR]
                     [--slo-exec-p99-ms MS] [--max-seconds S] [--json]
  crossmesh client   --addr HOST:PORT [--tenant NAME] [--ping|--stats|--telemetry|--shutdown]
                     [reshard args: --src-spec/--dst-spec/--src-mesh/--dst-mesh/--shape
                      [--elem-bytes N] [--planner P] [--seed N] [--faults FILE]] [--json]

  strategies: broadcast (default) | send_recv | local_allgather | global_allgather
              | tree_broadcast | multi_rail | alpa
  planners:   ours (default) | naive | lpt | dfs | greedy
  backends:   sim (default, flow-level simulator) | threads (real multi-threaded
              execution) | tcp (threads + TCP loopback for inter-host flows)
  --sim-model: exact (default, max-min fair sharing) | aggregate (uniform
              cap/count sharing: conservative, much cheaper on 10k-host
              clusters); only meaningful with --backend sim
  specs:      R / S0 / S1 / S01 per tensor dimension, e.g. S0RR
  --seed:     RNG seed for the randomized-greedy planner (ours/greedy)
  --faults:   JSON fault schedule (crossmesh-faults format) injected into the
              run; sender crashes trigger failover onto surviving replicas
  --emit-task/--emit-plan: write the reshard problem / the computed plan as
              JSON, in the format `crossmesh check` consumes
  check:      run the static plan verifier (coverage, sender, ring, and
              capacity rules) over an emitted plan; exits non-zero on errors
  check --races: run the happens-before race detector instead — the seeded
              defect classes must all convict across --seeds schedule seeds
              (default 8) and the clean concurrent suite must stay silent at
              pool widths 1/4/8; exits non-zero on any miss
  --threads:  planner worker-pool width (default: CROSSMESH_THREADS env var,
              else all cores); plans are byte-identical at any width
  --iterations: training iterations to simulate; the plan cache carries
              resharding plans across them and the hit rate is reported
  --trace-out: write the unified Chrome/Perfetto timeline (device rows,
              compute/comm events, counter tracks) — same schema for every
              backend; open at https://ui.perfetto.dev
  --metrics:  append the global metrics registry (planner, plan cache,
              recovery, runtime) to the output
  --metrics-out: write that same registry to a file; the serve daemon
              flushes it at shutdown, every other command after the run
  --flightrec-dir: serve — directory for flight-recorder dumps; the daemon
              writes a Perfetto-compatible flightrec-*.json on check
              convictions, fault repairs, shed spikes, SLO breaches, and
              worker panics
  --slo-exec-p99-ms: serve — SLO ceiling on the rolling-window p99
              execute latency; breaches bump obs.slo.* and dump the
              flight recorder
  --log-level: error|warn|info|debug|trace — stream structured spans and
              events to stderr
  moe:        plan, statically verify (plan.* and plan.a2a.* rules), and
              simulate one MoE all-to-all — token dispatch or expert
              combine — drawn from the seeded GPT-MoE gate on a typed
              fabric; --verify replays it on the byte-exact data plane
  serve:      run the multi-tenant resharding daemon on an ephemeral
              loopback port (printed on stdout, and written to --addr-out);
              per-tenant token-bucket admission (--rate req/s, --burst,
              --queue-depth), graceful drain on shutdown; --max-seconds
              bounds the run for CI harnesses
  client:     talk to a running daemon — submit a reshard (same spec
              arguments as `reshard`, --faults ships a fault schedule for
              the daemon to inject), or --ping/--stats/--shutdown;
              --telemetry prints the daemon's live Prometheus exposition
              with rolling-window latency quantiles";

fn main() -> ExitCode {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    match run(tokens) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(tokens: Vec<String>) -> Result<String, Box<dyn Error>> {
    let args = Args::parse(
        tokens,
        &[
            "json",
            "verify",
            "help",
            "metrics",
            "allow-remote-shutdown",
            "ping",
            "stats",
            "telemetry",
            "shutdown",
            "races",
        ],
    )?;
    if args.has_flag("help") {
        return Ok(USAGE.to_string());
    }
    // --log-level streams spans/events to stderr for the whole command;
    // the guard restores the previous (usually absent) collector on exit.
    let _logger = match args.get("log-level") {
        Some(name) => {
            let level =
                obs::Level::parse(name).ok_or_else(|| format!("unknown --log-level {name:?}"))?;
            Some(obs::install(std::sync::Arc::new(obs::StderrLogger::new(
                level,
            ))))
        }
        None => None,
    };
    let dispatch = || match args.command.as_deref() {
        Some("reshard") => reshard(&args),
        Some("pipeline") => pipeline(&args),
        Some("autospec") => autospec(&args),
        Some("check") => check(&args),
        Some("moe") => moe(&args),
        Some("validate-trace") => validate_trace(&args),
        Some("serve") => serve(&args),
        Some("client") => client(&args),
        None => Ok(USAGE.to_string()),
        Some(other) => Err(format!("unknown command {other:?}").into()),
    };
    // --threads installs a fixed-width planner pool around the whole
    // command; without it, the global pool (CROSSMESH_THREADS env var or
    // all cores) is used. Planning is deterministic either way.
    let out = match args.get_parsed("threads", 0usize)? {
        0 => dispatch(),
        n => rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .map_err(|e| format!("cannot build a {n}-thread pool: {e}"))?
            .install(dispatch),
    }?;
    // --metrics-out snapshots the whole registry to a file after any
    // non-serve command, netsim counters folded in first so the file is
    // never missing the engine's share. (The serve daemon owns the same
    // flag itself: it flushes at shutdown, after its workers are done.)
    if args.command.as_deref() != Some("serve") {
        if let Some(path) = args.get("metrics-out") {
            obs::sync_netsim_metrics(obs::metrics());
            std::fs::write(path, obs::metrics().render_text())
                .map_err(|e| format!("cannot write --metrics-out {path:?}: {e}"))?;
        }
    }
    if args.has_flag("metrics") {
        // Fold the netsim engine's cumulative counters in before rendering
        // so simulator-backed commands report netsim.* alongside the rest.
        obs::sync_netsim_metrics(obs::metrics());
        let text = obs::metrics().render_text();
        return Ok(format!("{out}\n\n== metrics ==\n{}", text.trim_end()));
    }
    Ok(out)
}

/// Parses and structurally validates an exported timeline; with
/// `--against`, additionally checks the two documents share one schema.
fn validate_trace(args: &Args) -> Result<String, Box<dyn Error>> {
    let path = args.get("trace").ok_or("missing --trace")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read --trace {path:?}: {e}"))?;
    let summary = obs::export::validate(&text).map_err(|e| format!("{path}: {e}"))?;
    let mut lines = vec![format!(
        "{path}: OK — {} events, {} device rows, {} counter tracks, categories [{}]",
        summary.events,
        summary.device_rows.len(),
        summary.counter_tracks.len(),
        summary
            .categories
            .iter()
            .cloned()
            .collect::<Vec<_>>()
            .join(", "),
    )];
    if let Some(other_path) = args.get("against") {
        let other_text = std::fs::read_to_string(other_path)
            .map_err(|e| format!("cannot read --against {other_path:?}: {e}"))?;
        let other = obs::export::validate(&other_text).map_err(|e| format!("{other_path}: {e}"))?;
        if !summary.schema_matches(&other) {
            return Err(format!("{path} and {other_path} do not share a schema").into());
        }
        lines.push(format!("{other_path}: OK — schema matches"));
    }
    if args.has_flag("json") {
        let out = serde_json::json!({
            "events": summary.events,
            "device_rows": summary.device_rows.len(),
            "counter_tracks": summary.counter_tracks.iter().collect::<Vec<_>>(),
            "categories": summary.categories.iter().collect::<Vec<_>>(),
            "phases": summary.phases.iter().collect::<Vec<_>>(),
            "schema_matches": args.get("against").map(|_| true),
        });
        return Ok(serde_json::to_string_pretty(&out)?);
    }
    Ok(lines.join("\n"))
}

/// The number of in-flight flows over time, derived from the executed
/// trace — rendered as a Perfetto counter track so both backends' exports
/// carry a `C`-phase series.
fn inflight_flow_samples(graph: &TaskGraph, trace: &Trace) -> Vec<(f64, f64)> {
    let mut deltas: Vec<(f64, f64)> = Vec::new();
    for (id, task) in graph.iter() {
        if let Work::Flow { .. } = task.work {
            let interval = trace.interval(id);
            deltas.push((interval.start * 1e6, 1.0));
            deltas.push((interval.finish * 1e6, -1.0));
        }
    }
    deltas.sort_by(|a, b| a.partial_cmp(b).expect("trace timestamps are finite"));
    let mut level = 0.0;
    let mut samples = vec![(0.0, 0.0)];
    for (ts, delta) in deltas {
        level += delta;
        samples.push((ts, level));
    }
    samples
}

fn autospec(args: &Args) -> Result<String, Box<dyn Error>> {
    let src_mesh_shape = parse_mesh(args.get("src-mesh").ok_or("missing --src-mesh")?)?;
    let dst_mesh_shape = parse_mesh(args.get("dst-mesh").ok_or("missing --dst-mesh")?)?;
    let shape = parse_shape(args.get("shape").ok_or("missing --shape")?)?;
    let elem_bytes: u64 = args.get_parsed("elem-bytes", 4)?;
    let params = cost_params(args)?;
    let gpus = src_mesh_shape.1.max(dst_mesh_shape.1) as u32;
    let hosts = (src_mesh_shape.0 + dst_mesh_shape.0) as u32;
    let cluster = ClusterSpec::homogeneous(
        hosts,
        gpus,
        LinkParams::new(params.intra_bw, params.inter_bw),
    );
    let src = DeviceMesh::from_cluster(&cluster, 0, src_mesh_shape, "src")?;
    let dst = DeviceMesh::from_cluster(&cluster, src_mesh_shape.0, dst_mesh_shape, "dst")?;
    let mut problem = AutoShardProblem::new(src, dst, shape, elem_bytes);
    if let Some(spec) = args.get("fixed-src") {
        problem = problem.with_fixed_src(spec.parse()?);
    }
    if let Some(spec) = args.get("fixed-dst") {
        problem = problem.with_fixed_dst(spec.parse()?);
    }
    if let Some(cap) = args.get("memory-cap") {
        problem = problem.with_memory_cap(cap.parse().map_err(|_| "bad --memory-cap")?);
    }
    let best = search(&problem, &params)?;
    if args.has_flag("json") {
        return Ok(serde_json::to_string_pretty(&best)?);
    }
    Ok(format!(
        "best specs: {} -> {}  (estimated {:.6}s; {} candidates evaluated)",
        best.src_spec, best.dst_spec, best.estimated_seconds, best.candidates_evaluated
    ))
}

fn cost_params(args: &Args) -> Result<CostParams, Box<dyn Error>> {
    let mut p = presets::p3_cost_params();
    p.inter_bw = args.get_parsed("inter-bw", p.inter_bw)?;
    p.intra_bw = args.get_parsed("intra-bw", p.intra_bw)?;
    Ok(p)
}

fn strategy_choice(name: &str) -> Result<StrategyChoice, Box<dyn Error>> {
    Ok(match name {
        "broadcast" => StrategyChoice::Fixed(Strategy::broadcast()),
        "send_recv" => StrategyChoice::Fixed(Strategy::SendRecv),
        "local_allgather" => StrategyChoice::Fixed(Strategy::LocalAllGather),
        "global_allgather" => StrategyChoice::Fixed(Strategy::GlobalAllGather),
        "tree_broadcast" => StrategyChoice::Fixed(Strategy::TreeBroadcast { chunks: 64 }),
        "multi_rail" => StrategyChoice::Fixed(Strategy::multi_rail(4)),
        "alpa" => StrategyChoice::AlpaAuto,
        other => return Err(format!("unknown strategy {other:?}").into()),
    })
}

fn planner_for(
    name: &str,
    config: PlannerConfig,
    seed: Option<u64>,
) -> Result<Box<dyn Planner>, Box<dyn Error>> {
    let greedy = || {
        let p = RandomizedGreedyPlanner::new(config);
        match seed {
            Some(s) => p.with_seed(s),
            None => p,
        }
    };
    Ok(match name {
        "ours" => Box::new(EnsemblePlanner::new(config).with_greedy(greedy())),
        "naive" => Box::new(NaivePlanner::new(config)),
        "lpt" => Box::new(LoadBalancePlanner::new(config)),
        "dfs" => Box::new(DfsPlanner::new(config)),
        "greedy" => Box::new(greedy()),
        other => return Err(format!("unknown planner {other:?}").into()),
    })
}

fn backend_for(name: &str, sim_model: SimModel) -> Result<Box<dyn Backend>, Box<dyn Error>> {
    Ok(match (name, sim_model) {
        ("sim", SimModel::Exact) => Box::new(SimBackend),
        ("sim", SimModel::Aggregate) => Box::new(AggregateSimBackend),
        ("threads", _) => Box::new(ThreadedBackend::threads()),
        ("tcp", _) => Box::new(ThreadedBackend::tcp()),
        (other, _) => return Err(format!("unknown backend {other:?}").into()),
    })
}

/// Parses `--sim-model exact|aggregate` (default exact). Only meaningful
/// with `--backend sim`; the real backends ignore it.
fn sim_model_arg(args: &Args) -> Result<SimModel, Box<dyn Error>> {
    let name = args.get_or("sim-model", "exact");
    SimModel::parse(name).ok_or_else(|| format!("unknown sim model {name:?}").into())
}

/// The portable description of a resharding problem that `reshard
/// --emit-task` writes and `check --task` reads: enough to rebuild the
/// exact task and cluster the plan was made for.
#[derive(serde::Serialize, serde::Deserialize)]
struct TaskSpecFile {
    src_spec: String,
    dst_spec: String,
    src_mesh: String,
    dst_mesh: String,
    shape: String,
    elem_bytes: u64,
    inter_bw: f64,
    intra_bw: f64,
    inter_latency: f64,
    intra_latency: f64,
}

impl TaskSpecFile {
    /// Rebuilds the task and cluster exactly as `reshard` constructs them.
    fn build(&self) -> Result<(ReshardingTask, ClusterSpec), Box<dyn Error>> {
        let src_mesh_shape = parse_mesh(&self.src_mesh)?;
        let dst_mesh_shape = parse_mesh(&self.dst_mesh)?;
        let shape = parse_shape(&self.shape)?;
        let gpus = src_mesh_shape.1.max(dst_mesh_shape.1) as u32;
        let hosts = (src_mesh_shape.0 + dst_mesh_shape.0) as u32;
        let cluster = ClusterSpec::homogeneous(
            hosts,
            gpus,
            LinkParams::new(self.intra_bw, self.inter_bw)
                .with_latencies(self.intra_latency, self.inter_latency),
        );
        let src = DeviceMesh::from_cluster(&cluster, 0, src_mesh_shape, "src")?;
        let dst = DeviceMesh::from_cluster(&cluster, src_mesh_shape.0, dst_mesh_shape, "dst")?;
        let task = ReshardingTask::new(
            src,
            self.src_spec.parse()?,
            dst,
            self.dst_spec.parse()?,
            &shape,
            self.elem_bytes,
        )?;
        Ok((task, cluster))
    }
}

/// `crossmesh check`: statically verifies a serialized plan against its
/// task without executing anything. Exits non-zero when any rule fires at
/// error severity.
fn check(args: &Args) -> Result<String, Box<dyn Error>> {
    if args.has_flag("races") {
        return check_races(args);
    }
    let task_path = args.get("task").ok_or("missing --task")?;
    let plan_path = args.get("plan").ok_or("missing --plan")?;
    let spec_text = std::fs::read_to_string(task_path)
        .map_err(|e| format!("cannot read --task {task_path:?}: {e}"))?;
    let spec: TaskSpecFile =
        serde_json::from_str(&spec_text).map_err(|e| format!("--task {task_path:?}: {e}"))?;
    let (task, cluster) = spec.build()?;
    let plan_text = std::fs::read_to_string(plan_path)
        .map_err(|e| format!("cannot read --plan {plan_path:?}: {e}"))?;
    let views: Vec<AssignmentView> =
        serde_json::from_str(&plan_text).map_err(|e| format!("--plan {plan_path:?}: {e}"))?;

    let diags = crossmesh_check::verify::verify_plan(
        task.units(),
        task.shape(),
        task.elem_bytes(),
        &views,
        Some(&cluster),
        &|_, _| false,
    );
    let body = match args.get_or("format", "text") {
        "json" => serde_json::to_string_pretty(&diags)?,
        "text" => {
            if diags.is_empty() {
                format!(
                    "check: OK — {} unit tasks, {} assignments, 0 diagnostics",
                    task.units().len(),
                    views.len()
                )
            } else {
                crossmesh_check::render_text(&diags)
            }
        }
        other => return Err(format!("unknown --format {other:?}").into()),
    };
    if crossmesh_check::has_errors(&diags) {
        // Findings are the output, not a usage error: print them and exit
        // non-zero without the usage banner.
        println!("{body}");
        std::process::exit(1);
    }
    Ok(body)
}

/// `crossmesh check --races`: run the happens-before race detector's
/// acceptance sweep — every seeded defect class must convict under its
/// expected `race.*` rule on every schedule seed, and the clean
/// concurrent suite must stay silent at pool widths 1, 4, and 8. Exits
/// non-zero on any miss, mirroring the `crossmesh-race` binary.
fn check_races(args: &Args) -> Result<String, Box<dyn Error>> {
    use crossmesh_check::race::{run_clean, run_defect, Defect};
    use crossmesh_check::schedules::sweep;

    let seeds: u64 = args.get_parsed("seeds", 8u64)?;
    if seeds == 0 {
        return Err("--seeds must be at least 1".into());
    }
    let mut failed = false;
    let mut defects = Vec::new();
    for defect in Defect::all() {
        let report = sweep(0, seeds, |seed| (run_defect(defect, seed), None));
        let matching = report
            .outcomes
            .iter()
            .filter(|o| {
                o.diagnostics
                    .iter()
                    .any(|d| defect.expected_rules().contains(&d.rule))
            })
            .count() as u64;
        failed |= matching != seeds;
        defects.push((defect, matching));
    }
    let mut widths = Vec::new();
    for width in [1usize, 4, 8] {
        let report = sweep(0, seeds, |seed| (run_clean(width, seed), None));
        let findings = report.total_findings();
        let oracle_failures = report.oracle_failures().len();
        failed |= findings > 0 || oracle_failures > 0;
        widths.push((width, findings, oracle_failures));
    }

    let body = match args.get_or("format", "text") {
        "json" => {
            let out = serde_json::json!({
                "seeds": seeds,
                "defects": defects
                    .iter()
                    .map(|(d, matching)| {
                        serde_json::json!({
                            "name": d.name(),
                            "expected_rules": d
                                .expected_rules()
                                .iter()
                                .map(|r| r.id())
                                .collect::<Vec<_>>(),
                            "convicted_seeds": matching,
                        })
                    })
                    .collect::<Vec<_>>(),
                "clean_widths": widths
                    .iter()
                    .map(|(w, findings, oracles)| {
                        serde_json::json!({
                            "width": w,
                            "findings": findings,
                            "oracle_failures": oracles,
                        })
                    })
                    .collect::<Vec<_>>(),
                "ok": !failed,
            });
            serde_json::to_string_pretty(&out)?
        }
        "text" => {
            let mut lines = Vec::new();
            for (defect, matching) in &defects {
                lines.push(format!(
                    "defect {}: {} ({matching}/{seeds} seeds convicted under {})",
                    defect.name(),
                    if *matching == seeds { "ok" } else { "MISSED" },
                    defect
                        .expected_rules()
                        .iter()
                        .map(|r| r.id())
                        .collect::<Vec<_>>()
                        .join("|"),
                ));
            }
            for (width, findings, oracles) in &widths {
                lines.push(format!(
                    "clean width {width}: {} ({seeds} seeds, {findings} findings, \
                     {oracles} oracle failures)",
                    if *findings == 0 && *oracles == 0 {
                        "ok"
                    } else {
                        "FALSE POSITIVE"
                    },
                ));
            }
            lines.push(if failed {
                "check --races: FAILED".to_string()
            } else {
                format!("check --races: OK — {seeds} seeds per sweep")
            });
            lines.join("\n")
        }
        other => return Err(format!("unknown --format {other:?}").into()),
    };
    if failed {
        // Misses are the output, not a usage error.
        println!("{body}");
        std::process::exit(1);
    }
    Ok(body)
}

/// `crossmesh moe`: plan, statically verify, and simulate one MoE
/// all-to-all (token dispatch or expert combine) whose per-pair shard
/// sizes come from the seeded GPT-MoE gate. Token hosts occupy the first
/// half of the cluster, expert hosts the second; `--verify` additionally
/// replays the plan on the byte-exact expert-shard data plane.
fn moe(args: &Args) -> Result<String, Box<dyn Error>> {
    use crossmesh_models::moe::GptMoeConfig;
    use crossmesh_moe::{execute_reference, execute_threaded, A2aTask, RoutingConfig};
    use crossmesh_netsim::FabricModel;

    let hosts: u32 = args.get_parsed("hosts", 8u32)?;
    if hosts < 2 || !hosts.is_multiple_of(2) {
        return Err("--hosts must be even: half token hosts, half expert hosts".into());
    }
    let gpus: u32 = args.get_parsed("gpus-per-host", 4u32)?;
    let params = cost_params(args)?;
    let fabric_name = args.get_or("fabric", "rails");
    let fabric = match fabric_name {
        "rails" => FabricModel::RailOptimized {
            rails: gpus,
            spine_capacity: params.inter_bw,
        },
        "flat" => FabricModel::Flat {
            capacity: Some(f64::from(hosts) * params.inter_bw / 2.0),
        },
        "fat-tree" => FabricModel::FatTree {
            pod_hosts: hosts / 2,
            oversubscription: 4.0,
        },
        "torus" => FabricModel::Torus2D {
            rows: 2,
            cols: hosts / 2,
            link_capacity: params.inter_bw,
        },
        other => return Err(format!("unknown fabric {other:?}").into()),
    };
    let cluster = ClusterSpec::homogeneous(
        hosts,
        gpus,
        LinkParams::new(params.intra_bw, params.inter_bw)
            .with_latencies(params.intra_latency, params.inter_latency),
    )
    .with_fabric(fabric);

    let half = (hosts / 2) as usize;
    let per = gpus as usize;
    let tokens_mesh = DeviceMesh::from_cluster(&cluster, 0, (half, per), "moe-tokens")?;
    let experts_mesh = DeviceMesh::from_cluster(&cluster, half, (half, per), "moe-experts")?;

    let skew: f64 = args.get_parsed("skew", 1.0)?;
    let seed: u64 = args.get_parsed("seed", 17)?;
    let model = GptMoeConfig::case1().with_skew(skew).with_seed(seed);
    let routing = RoutingConfig {
        tokens_per_device: args.get_parsed("tokens", 64u64)?,
        ..model.routing()
    };
    let senders = half * per;
    let bytes = routing.bytes_matrix(senders, senders);
    let a2a = match args.get_or("direction", "dispatch") {
        "dispatch" => A2aTask::dispatch(&tokens_mesh, &experts_mesh, &bytes),
        "combine" => A2aTask::combine(&tokens_mesh, &experts_mesh, &bytes),
        other => return Err(format!("unknown --direction {other:?}").into()),
    };

    let strategy_name = args.get_or("strategy", "multi_rail");
    let strategy = match strategy_name {
        // One chunk per rail: the a2a's per-pair parallelism already
        // fills the fabric; finer chunking only multiplies hop latency.
        "multi_rail" => Strategy::MultiRail {
            rails: gpus,
            chunks: gpus,
        },
        "send_recv" => Strategy::SendRecv,
        "broadcast" => Strategy::broadcast(),
        other => return Err(format!("unknown strategy {other:?}").into()),
    };
    let planner = LoadBalancePlanner::new(
        PlannerConfig::new(params).with_strategy(StrategyChoice::Fixed(strategy)),
    );
    let plan = planner.plan(a2a.task());

    let mut diags = plan.verify(Some(&cluster), &|_, _| false);
    let views: Vec<AssignmentView> = plan
        .assignments()
        .iter()
        .map(crossmesh_core::Assignment::as_view)
        .collect();
    diags.extend(crossmesh_check::verify::verify_a2a(
        a2a.pairs(),
        a2a.task().units(),
        a2a.task().elem_bytes(),
        &views,
        Some(&cluster),
    ));
    if crossmesh_check::has_errors(&diags) {
        // Convictions are the output, not a usage error.
        println!("{}", crossmesh_check::render_text(&diags));
        std::process::exit(1);
    }
    let warnings = diags.len();

    let report = plan.execute(&cluster)?;

    // Per-rail spray totals feed the moe.rail.* gauges so --metrics /
    // --metrics-out runs show how evenly the typed fabric's rails were
    // loaded; an empty vector means no assignment used multi-rail.
    let rail_bytes = a2a.rail_utilization(&plan);
    let rail_imbalance = if rail_bytes.is_empty() {
        None
    } else {
        let max = rail_bytes.iter().copied().fold(0.0f64, f64::max);
        let mean = rail_bytes.iter().sum::<f64>() / rail_bytes.len() as f64;
        Some(if mean > 0.0 { max / mean } else { 1.0 })
    };
    {
        let m = obs::metrics();
        for (i, b) in rail_bytes.iter().enumerate() {
            m.gauge(&format!("moe.rail.{i}.bytes")).set(*b);
        }
        if let Some(imb) = rail_imbalance {
            m.gauge("moe.rail.imbalance").set(imb);
            m.counter("moe.rail.sprayed_bytes")
                .add(rail_bytes.iter().sum::<f64>() as u64);
        }
    }

    if let Some(path) = args.get("trace-out") {
        // Same unified timeline as `reshard --trace-out`, plus a static
        // per-rail byte-load counter track for the spray decision.
        let mut graph = TaskGraph::new();
        plan.lower(&mut graph, &[]);
        let trace = SimBackend.execute(&cluster, &graph)?;
        let mut export = obs::export::TraceExport::new();
        export.push_run(&graph, &trace, &cluster, obs::export::RunKind::Primary, 0.0);
        export.add_counter(
            "comm.inflight_flows",
            &inflight_flow_samples(&graph, &trace),
        );
        for (i, b) in rail_bytes.iter().enumerate() {
            export.add_counter(format!("moe.rail.{i}.bytes"), &[(0.0, *b)]);
        }
        std::fs::write(path, export.render())?;
    }

    let verified = if args.has_flag("verify") {
        let reference = execute_reference(&a2a)?;
        let threaded = execute_threaded(&a2a, 4)?;
        if reference != threaded {
            return Err("threaded delivery diverged from the reference data plane".into());
        }
        Some(true)
    } else {
        None
    };

    if args.has_flag("json") {
        let out = serde_json::json!({
            "direction": a2a.direction().to_string(),
            "fabric": fabric_name,
            "strategy": strategy_name,
            "skew": skew,
            "seed": seed,
            "unit_tasks": a2a.task().units().len(),
            "pairs": a2a.pairs().len(),
            "total_bytes": a2a.total_bytes(),
            "simulated_seconds": report.simulated_seconds,
            "cross_host_bytes": report.cross_host_bytes,
            "rail_bytes": rail_bytes,
            "rail_imbalance": rail_imbalance,
            "diagnostics": warnings,
            "data_plane_verified": verified,
        });
        return Ok(serde_json::to_string_pretty(&out)?);
    }
    let mut out = format!(
        "moe {}: {} expert shards ({} unit tasks), {:.1} MB total\n\
         fabric {fabric_name}, strategy {strategy_name}, gate skew {skew:.1} (seed {seed})\n\
         simulated: {:.6}s, cross-host traffic {:.1} MB, {} warnings, 0 convictions",
        a2a.direction(),
        a2a.pairs().len(),
        a2a.task().units().len(),
        a2a.total_bytes() as f64 / 1e6,
        report.simulated_seconds,
        report.cross_host_bytes / 1e6,
        warnings,
    );
    if let Some(imb) = rail_imbalance {
        out.push_str(&format!(
            "\nrails: [{}] MB, imbalance {imb:.3} (max/mean)",
            rail_bytes
                .iter()
                .map(|b| format!("{:.1}", b / 1e6))
                .collect::<Vec<_>>()
                .join(", "),
        ));
    }
    if verified == Some(true) {
        out.push_str("\ndata plane: verified — every expert shard delivered byte-exactly");
    }
    Ok(out)
}

fn reshard(args: &Args) -> Result<String, Box<dyn Error>> {
    let src_spec = args.get("src-spec").ok_or("missing --src-spec")?.parse()?;
    let dst_spec = args.get("dst-spec").ok_or("missing --dst-spec")?.parse()?;
    let src_mesh_shape = parse_mesh(args.get("src-mesh").ok_or("missing --src-mesh")?)?;
    let dst_mesh_shape = parse_mesh(args.get("dst-mesh").ok_or("missing --dst-mesh")?)?;
    let shape = parse_shape(args.get("shape").ok_or("missing --shape")?)?;
    let elem_bytes: u64 = args.get_parsed("elem-bytes", 4)?;

    let params = cost_params(args)?;
    let gpus = src_mesh_shape.1.max(dst_mesh_shape.1) as u32;
    let hosts = (src_mesh_shape.0 + dst_mesh_shape.0) as u32;
    let cluster = ClusterSpec::homogeneous(
        hosts,
        gpus,
        LinkParams::new(params.intra_bw, params.inter_bw)
            .with_latencies(params.intra_latency, params.inter_latency),
    );
    let src = DeviceMesh::from_cluster(&cluster, 0, src_mesh_shape, "src")?;
    let dst = DeviceMesh::from_cluster(&cluster, src_mesh_shape.0, dst_mesh_shape, "dst")?;
    let task = ReshardingTask::new(src, src_spec, dst, dst_spec, &shape, elem_bytes)?;

    let seed = match args.get("seed") {
        Some(s) => Some(s.parse::<u64>().map_err(|_| "bad --seed")?),
        None => None,
    };
    let config = PlannerConfig::new(params)
        .with_strategy(strategy_choice(args.get_or("strategy", "broadcast"))?);
    let planner = planner_for(args.get_or("planner", "ours"), config, seed)?;
    let backend_name = args.get_or("backend", "sim");
    let backend = backend_for(backend_name, sim_model_arg(args)?)?;
    let plan = planner.plan(&task);
    if let Some(path) = args.get("emit-task") {
        let spec = TaskSpecFile {
            src_spec: args.get("src-spec").unwrap_or_default().to_string(),
            dst_spec: args.get("dst-spec").unwrap_or_default().to_string(),
            src_mesh: args.get("src-mesh").unwrap_or_default().to_string(),
            dst_mesh: args.get("dst-mesh").unwrap_or_default().to_string(),
            shape: args.get("shape").unwrap_or_default().to_string(),
            elem_bytes,
            inter_bw: params.inter_bw,
            intra_bw: params.intra_bw,
            inter_latency: params.inter_latency,
            intra_latency: params.intra_latency,
        };
        std::fs::write(path, serde_json::to_string_pretty(&spec)?)?;
    }
    if let Some(path) = args.get("emit-plan") {
        std::fs::write(path, serde_json::to_string_pretty(plan.assignments())?)?;
    }
    let (report, recovery) = match args.get("faults") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read --faults {path:?}: {e}"))?;
            let schedule =
                FaultSchedule::from_json(&text).map_err(|e| format!("--faults {path:?}: {e}"))?;
            schedule
                .validate()
                .map_err(|e| format!("--faults {path:?}: {e}"))?;
            // Also validate the compiled mechanical form against the
            // lowered graph: `to_disruptions` rolls per-flow drops, so
            // defects invisible in the declarative schedule surface here,
            // before the cluster commits to execution.
            let mut graph = TaskGraph::new();
            plan.lower(&mut graph, &[]);
            schedule
                .to_disruptions(&graph)
                .validate()
                .map_err(|e| format!("--faults {path:?}: compiled schedule invalid: {e}"))?;
            let r: RecoveryReport = match backend_name {
                "sim" => match sim_model_arg(args)? {
                    SimModel::Exact => {
                        execute_with_repair(&plan, &cluster, &SimBackend, &schedule)?
                    }
                    SimModel::Aggregate => {
                        execute_with_repair(&plan, &cluster, &AggregateSimBackend, &schedule)?
                    }
                },
                "threads" => {
                    execute_with_repair(&plan, &cluster, &ThreadedBackend::threads(), &schedule)?
                }
                "tcp" => execute_with_repair(&plan, &cluster, &ThreadedBackend::tcp(), &schedule)?,
                other => return Err(format!("unknown backend {other:?}").into()),
            };
            (r.report.clone(), Some(r))
        }
        None => (plan.execute_with(&*backend, &cluster)?, None),
    };

    if let Some(path) = args.get("trace") {
        // Re-run the lowering to export a Chrome trace of the transfer
        // through the selected backend.
        let mut graph = TaskGraph::new();
        plan.lower(&mut graph, &[]);
        let trace = backend.execute(&cluster, &graph)?;
        std::fs::write(path, crossmesh_netsim::to_chrome_trace(&graph, &trace))?;
    }
    if let Some(path) = args.get("trace-out") {
        // The unified timeline: same JSON schema whichever backend ran —
        // host/device rows, compute/comm complete events, marker instants,
        // and an in-flight-flow counter track.
        let mut graph = TaskGraph::new();
        plan.lower(&mut graph, &[]);
        let trace = backend.execute(&cluster, &graph)?;
        let mut export = obs::export::TraceExport::new();
        export.push_run(&graph, &trace, &cluster, obs::export::RunKind::Primary, 0.0);
        export.add_counter(
            "comm.inflight_flows",
            &inflight_flow_samples(&graph, &trace),
        );
        std::fs::write(path, export.render())?;
    }

    let verified = if args.has_flag("verify") {
        // The data plane materializes every element; keep it to sizes
        // where that is instant.
        let elements: u64 = shape.iter().product();
        if elements > 1 << 24 {
            return Err(format!(
                "--verify materializes every element; {elements} elements is too many                  (use a shape with at most {} elements)",
                1u64 << 24
            )
            .into());
        }
        dataplane::execute_and_verify(&plan)?;
        Some(true)
    } else {
        None
    };

    if args.has_flag("json") {
        let faults = recovery.as_ref().map(|r| {
            serde_json::json!({
                "repaired": r.repaired,
                "failovers": r.failovers,
                "excluded_hosts": r.excluded_hosts.iter().map(|h| h.0).collect::<Vec<u32>>(),
                "retries": r.retries,
                "degraded_makespan_seconds": r.degraded_makespan,
            })
        });
        let out = serde_json::json!({
            "task": task.to_string(),
            "unit_tasks": task.units().len(),
            "total_bytes": task.total_bytes(),
            "planner": planner.name(),
            "backend": backend.name(),
            "estimate_seconds": plan.estimate(),
            "lower_bound_seconds": plan.lower_bound(),
            "simulated_seconds": report.simulated_seconds,
            "cross_host_bytes": report.cross_host_bytes,
            "data_plane_verified": verified,
            "faults": faults,
        });
        return Ok(serde_json::to_string_pretty(&out)?);
    }
    let mut out = format!(
        "task: {task}\n{} unit tasks, {:.1} MB tensor\nplanner: {} (backend {})\n\
         simulated: {:.6}s (estimate {:.6}s, bandwidth bound {:.6}s)\n\
         cross-host traffic: {:.1} MB",
        task.units().len(),
        task.total_bytes() as f64 / 1e6,
        planner.name(),
        backend.name(),
        report.simulated_seconds,
        plan.estimate(),
        plan.lower_bound(),
        report.cross_host_bytes / 1e6,
    );
    if let Some(r) = &recovery {
        if r.repaired {
            let hosts: Vec<String> = r.excluded_hosts.iter().map(|h| h.to_string()).collect();
            out.push_str(&format!(
                "\nfaults: failed over {} unit tasks around {} ({} retries, degraded makespan {:.6}s)",
                r.failovers,
                hosts.join(","),
                r.retries,
                r.degraded_makespan.unwrap_or(report.simulated_seconds),
            ));
        } else {
            out.push_str(&format!(
                "\nfaults: absorbed {} retries, no failover needed",
                r.retries
            ));
        }
    }
    if verified == Some(true) {
        out.push_str("\ndata plane: verified — every destination tile correct");
    }
    Ok(out)
}

fn pipeline(args: &Args) -> Result<String, Box<dyn Error>> {
    let model = args.get("model").ok_or("missing --model")?;
    let microbatches: usize = args.get_parsed("microbatches", 0)?;
    let (name, job, cluster): (&str, ModelJob, ClusterSpec) = match model {
        "gpt-case1" | "gpt-case2" => {
            let cluster = presets::aws_p3_8xlarge(2, Precision::Fp16);
            let mut cfg = if model == "gpt-case1" {
                GptConfig::case1()
            } else {
                GptConfig::case2()
            };
            if microbatches > 0 {
                cfg.num_microbatches = microbatches;
            }
            ("GPT-2.6B", cfg.build(&cluster)?, cluster)
        }
        "utrans" => {
            let cluster = presets::aws_p3_8xlarge(2, Precision::Fp32);
            let mut cfg = UTransformerConfig::case1();
            if microbatches > 0 {
                cfg.num_microbatches = microbatches;
                cfg.global_batch = 64 * microbatches as u64;
            }
            ("U-Transformer-2.1B", cfg.build(&cluster)?, cluster)
        }
        other => return Err(format!("unknown model {other:?}").into()),
    };

    let schedule = match args.get_or("schedule", "eager") {
        "eager" => ScheduleKind::Eager1F1B,
        "1f1b" => ScheduleKind::OneFOneB,
        "gpipe" => ScheduleKind::GPipe,
        other => return Err(format!("unknown schedule {other:?}").into()),
    };
    let comm = match args.get_or("comm", "overlap") {
        "overlap" => CommMode::Overlapped,
        "sync" => CommMode::Synchronous,
        "signal" => CommMode::Signal,
        other => return Err(format!("unknown comm mode {other:?}").into()),
    };
    let backend = backend_for(args.get_or("backend", "sim"), sim_model_arg(args)?)?;
    let planner = EnsemblePlanner::new(PlannerConfig::new(presets::p3_cost_params()));
    let config = PipelineConfig {
        schedule,
        comm,
        weight_delay: WeightDelay::None,
    };
    let iterations = args.get_parsed("iterations", 1usize)?.max(1);
    // One plan cache across all iterations: every iteration after the
    // first replays its resharding plans instead of re-planning them.
    let cache = PlanCache::new();
    let (mut hits, mut misses) = (0u64, 0u64);
    let mut report = None;
    for _ in 0..iterations {
        let r = simulate_with_cache(
            &job.graph,
            &cluster,
            &planner,
            &config,
            &*backend,
            Some(&cache),
        )?;
        hits += r.plan_cache_hits;
        misses += r.plan_cache_misses;
        report = Some(r);
    }
    let report = report.expect("at least one iteration ran");
    let hit_rate = if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    };

    if args.has_flag("json") {
        let out = serde_json::json!({
            "model": name,
            "backend": backend.name(),
            "schedule": schedule.to_string(),
            "microbatches": job.graph.num_microbatches(),
            "iterations": iterations,
            "iteration_seconds": report.iteration_seconds,
            "aggregate_tflops": job.aggregate_tflops(report.iteration_seconds),
            "per_gpu_tflops": job.per_gpu_tflops(report.iteration_seconds),
            "cross_host_bytes": report.cross_host_bytes,
            "peak_memory_bytes": report.peak_memory_bytes,
            "plan_cache_hits": hits,
            "plan_cache_misses": misses,
            "plan_cache_hit_rate": hit_rate,
        });
        return Ok(serde_json::to_string_pretty(&out)?);
    }
    Ok(format!(
        "{name}: schedule {schedule}, {} microbatches, {iterations} iteration(s)\n\
         iteration {:.3}s — {:.1} aggregate TFLOPS ({:.1}/GPU)\n\
         cross-host traffic {:.2} GB, peak memory/GPU {:.2} GB\n\
         plan cache: {hits} hits / {misses} misses ({:.0}% hit rate)",
        job.graph.num_microbatches(),
        report.iteration_seconds,
        job.aggregate_tflops(report.iteration_seconds),
        job.per_gpu_tflops(report.iteration_seconds),
        report.cross_host_bytes / 1e9,
        report.peak_memory_bytes[0] / 1e9,
        hit_rate * 100.0,
    ))
}

/// `crossmesh serve`: run the multi-tenant resharding daemon until a
/// shutdown request (or `--max-seconds`) and report the drain summary.
fn serve(args: &Args) -> Result<String, Box<dyn Error>> {
    use crossmesh_serve::{AdmissionConfig, BackendKind, ServeConfig, Server};
    let admission = AdmissionConfig {
        rate: args.get_parsed("rate", AdmissionConfig::default().rate)?,
        burst: args.get_parsed("burst", AdmissionConfig::default().burst)?,
        queue_depth: args.get_parsed("queue-depth", AdmissionConfig::default().queue_depth)?,
    };
    let cfg = ServeConfig {
        workers: args.get_parsed("workers", 2usize)?,
        admission,
        backend: BackendKind::parse(args.get_or("backend", "sim"))?,
        default_planner: args.get_or("planner", "ours").to_string(),
        allow_remote_shutdown: args.has_flag("allow-remote-shutdown"),
        metrics_out: args.get("metrics-out").map(String::from),
        trace_out: args.get("trace-out").map(String::from),
        flightrec_dir: args.get("flightrec-dir").map(String::from),
        slo_exec_p99_ms: match args.get("slo-exec-p99-ms") {
            Some(v) => Some(v.parse::<f64>().map_err(|_| "bad --slo-exec-p99-ms")?),
            None => None,
        },
    };
    let max_seconds = args.get_parsed("max-seconds", 0.0f64)?;
    let server = Server::start(cfg)?;
    let addr = server.addr();
    // The address must reach the operator before the daemon blocks; the
    // run() return value only prints after shutdown.
    println!("serving on {addr}");
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    if let Some(path) = args.get("addr-out") {
        std::fs::write(path, addr.to_string())
            .map_err(|e| format!("cannot write --addr-out {path:?}: {e}"))?;
    }
    let deadline = (max_seconds > 0.0)
        .then(|| std::time::Instant::now() + std::time::Duration::from_secs_f64(max_seconds));
    while !server.shutdown_requested() {
        if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    let summary = server.shutdown();
    if args.has_flag("json") {
        return Ok(serde_json::to_string_pretty(&summary)?);
    }
    Ok(format!(
        "serve: drained after {:.1}s — {} completed / {} failed / {} rejected, \
         cache {} hits / {} misses, {} verifier convictions",
        summary.uptime_seconds,
        summary.completed,
        summary.failed,
        summary.rejected,
        summary.cache_hits,
        summary.cache_misses,
        summary.verifier_convictions,
    ))
}

/// `crossmesh client`: one request to a running daemon.
fn client(args: &Args) -> Result<String, Box<dyn Error>> {
    use crossmesh_serve::{Client, ReshardRequest, Response};
    let addr: std::net::SocketAddr = args
        .get("addr")
        .ok_or("missing --addr")?
        .parse()
        .map_err(|_| "bad --addr (want HOST:PORT)")?;
    let mut client = Client::connect(addr)?;
    let tenant = args.get_or("tenant", "default");
    if args.has_flag("ping") {
        client.ping()?;
        return Ok("pong".to_string());
    }
    if args.has_flag("shutdown") {
        client.shutdown()?;
        return Ok("daemon is shutting down".to_string());
    }
    if args.has_flag("telemetry") {
        // The daemon's live Prometheus-style exposition: counters,
        // histograms, and the rolling-window latency quantiles.
        return Ok(client.telemetry()?.trim_end().to_string());
    }
    if args.has_flag("stats") {
        let stats = client.stats()?;
        return Ok(if args.has_flag("json") {
            serde_json::to_string_pretty(&stats)?
        } else {
            format!(
                "stats: {} accepted / {} rejected / {} completed / {} failed; \
                 cache {} hits / {} misses / {} entries; {} convictions; {} tenants",
                stats.accepted,
                stats.rejected,
                stats.completed,
                stats.failed,
                stats.cache_hits,
                stats.cache_misses,
                stats.cache_entries,
                stats.verifier_convictions,
                stats.tenants.len(),
            )
        });
    }
    let req = ReshardRequest {
        src_spec: args
            .get("src-spec")
            .ok_or("missing --src-spec")?
            .to_string(),
        dst_spec: args
            .get("dst-spec")
            .ok_or("missing --dst-spec")?
            .to_string(),
        src_mesh: args
            .get("src-mesh")
            .ok_or("missing --src-mesh")?
            .to_string(),
        dst_mesh: args
            .get("dst-mesh")
            .ok_or("missing --dst-mesh")?
            .to_string(),
        shape: args.get("shape").ok_or("missing --shape")?.to_string(),
        elem_bytes: args.get_parsed("elem-bytes", 4u64)?,
        planner: args.get_or("planner", "").to_string(),
        seed: match args.get("seed") {
            Some(s) => Some(s.parse::<u64>().map_err(|_| "bad --seed")?),
            None => None,
        },
        faults: match args.get("faults") {
            Some(path) => Some(
                std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read --faults {path:?}: {e}"))?,
            ),
            None => None,
        },
    };
    let resp = client.reshard(tenant, req)?;
    if args.has_flag("json") {
        return Ok(serde_json::to_string_pretty(&resp)?);
    }
    Ok(match resp {
        Response::Done(d) => format!(
            "done: {} unit tasks, cache {}, queued {:.2}ms, planned {:.2}ms, \
             executed {:.2}ms, estimate {:.6}s, simulated {:.6}s",
            d.unit_tasks,
            if d.cache_hit { "hit" } else { "miss" },
            d.queue_ms,
            d.plan_ms,
            d.exec_ms,
            d.estimate_seconds,
            d.simulated_seconds,
        ),
        Response::Rejected(r) => format!(
            "rejected ({}): retry after {}ms",
            r.reason, r.retry_after_ms
        ),
        Response::Error(e) => return Err(e.message.into()),
        other => return Err(format!("unexpected reply: {other:?}").into()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn no_args_prints_usage() {
        let out = run(vec![]).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn reshard_runs_and_verifies() {
        let out = run(toks(
            "reshard --src-spec RS0R --dst-spec S0RR --src-mesh 2x4 --dst-mesh 2x4 \
             --shape 64x64x8 --verify",
        ))
        .unwrap();
        assert!(out.contains("simulated:"));
        assert!(out.contains("verified"));
    }

    #[test]
    fn reshard_json_output_parses() {
        let out = run(toks(
            "reshard --src-spec S0R --dst-spec RS1 --src-mesh 1x4 --dst-mesh 2x2 \
             --shape 32x32 --json",
        ))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(v["simulated_seconds"].as_f64().unwrap() > 0.0);
        assert_eq!(v["total_bytes"].as_u64().unwrap(), 32 * 32 * 4);
    }

    #[test]
    fn moe_runs_and_verifies_the_data_plane() {
        let out = run(toks("moe --tokens 16 --verify")).unwrap();
        assert!(out.contains("simulated:"), "got: {out}");
        assert!(out.contains("0 convictions"), "got: {out}");
        assert!(out.contains("data plane: verified"), "got: {out}");
    }

    #[test]
    fn moe_json_output_parses_on_every_fabric_and_direction() {
        for (fabric, direction) in [
            ("rails", "dispatch"),
            ("flat", "combine"),
            ("fat-tree", "dispatch"),
            ("torus", "combine"),
        ] {
            let out = run(toks(&format!(
                "moe --tokens 16 --fabric {fabric} --direction {direction} \
                 --strategy send_recv --json"
            )))
            .unwrap();
            let v: serde_json::Value = serde_json::from_str(&out).unwrap();
            assert_eq!(v["direction"].as_str(), Some(direction));
            assert_eq!(v["fabric"].as_str(), Some(fabric));
            assert!(v["simulated_seconds"].as_f64().unwrap() > 0.0);
            assert!(v["total_bytes"].as_u64().unwrap() > 0);
        }
    }

    #[test]
    fn moe_bad_inputs_are_reported() {
        assert!(run(toks("moe --fabric nope")).is_err());
        assert!(run(toks("moe --strategy nope")).is_err());
        assert!(run(toks("moe --direction nope")).is_err());
        assert!(run(toks("moe --hosts 3")).is_err());
    }

    #[test]
    fn moe_reports_rail_utilization() {
        let out = run(toks("moe --tokens 16 --json")).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        let rails = v["rail_bytes"].as_array().unwrap();
        assert!(!rails.is_empty(), "multi_rail plan sprayed nothing");
        let sum: f64 = rails.iter().map(|b| b.as_f64().unwrap()).sum();
        assert!(sum > 0.0);
        assert!(v["rail_imbalance"].as_f64().unwrap() >= 1.0);
        // A send_recv plan never sprays, so there is no rail load to report.
        let out = run(toks("moe --tokens 16 --strategy send_recv --json")).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(v["rail_bytes"].as_array().unwrap().is_empty());
        assert!(v["rail_imbalance"].is_null());
    }

    #[test]
    fn moe_metrics_and_trace_out_expose_rail_load() {
        let path = std::env::temp_dir().join("crossmesh_cli_moe_trace.json");
        let out = run(toks(&format!(
            "moe --tokens 16 --trace-out {} --metrics",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("rails: ["), "got: {out}");
        assert!(out.contains("moe.rail.0.bytes"), "got: {out}");
        assert!(out.contains("moe.rail.imbalance"), "got: {out}");
        let validated = run(toks(&format!(
            "validate-trace --trace {} --json",
            path.display()
        )))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&validated).unwrap();
        assert!(v["events"].as_u64().unwrap() > 0);
        let tracks: Vec<&str> = v["counter_tracks"]
            .as_array()
            .unwrap()
            .iter()
            .map(|t| t.as_str().unwrap())
            .collect();
        assert!(tracks.contains(&"comm.inflight_flows"), "got: {tracks:?}");
        assert!(tracks.contains(&"moe.rail.0.bytes"), "got: {tracks:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn metrics_out_file_includes_netsim_counters() {
        let path = std::env::temp_dir().join("crossmesh_cli_metrics_out.txt");
        run(toks(&format!(
            "reshard --src-spec S0R --dst-spec RS1 --src-mesh 1x4 --dst-mesh 2x2 \
             --shape 32x32 --metrics-out {}",
            path.display()
        )))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // The flush must fold the netsim engine's counters in before
        // rendering, or simulator runs silently lose their netsim.* share.
        assert!(text.contains("netsim.events_processed"), "got: {text}");
        assert!(text.contains("planner."), "got: {text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn client_telemetry_prints_the_daemon_exposition() {
        let server = crossmesh_serve::Server::start(crossmesh_serve::ServeConfig {
            workers: 1,
            ..Default::default()
        })
        .unwrap();
        let addr = server.addr();
        let out = run(toks(&format!(
            "client --addr {addr} --src-spec S0R --dst-spec RS1 --src-mesh 1x4 \
             --dst-mesh 2x2 --shape 32x32"
        )))
        .unwrap();
        assert!(out.contains("done:"), "got: {out}");
        let tel = run(toks(&format!("client --addr {addr} --telemetry"))).unwrap();
        assert!(tel.contains("# TYPE serve_requests counter"), "got: {tel}");
        assert!(tel.contains("serve_exec_ms_window"), "got: {tel}");
        server.shutdown();
    }

    #[test]
    fn check_races_sweeps_and_reports() {
        let out = run(toks("check --races --seeds 2 --format json")).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["ok"].as_bool(), Some(true), "got: {out}");
        assert_eq!(v["defects"].as_array().unwrap().len(), 3);
        for d in v["defects"].as_array().unwrap() {
            assert_eq!(d["convicted_seeds"].as_u64(), Some(2), "got: {d:?}");
        }
        for w in v["clean_widths"].as_array().unwrap() {
            assert_eq!(w["findings"].as_u64(), Some(0), "got: {w:?}");
        }
        let text = run(toks("check --races --seeds 1")).unwrap();
        assert!(text.contains("check --races: OK"), "got: {text}");
        assert!(run(toks("check --races --seeds 0")).is_err());
    }

    #[test]
    fn pipeline_runs_small_config() {
        let out = run(toks("pipeline --model gpt-case1 --microbatches 8 --json")).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(v["aggregate_tflops"].as_f64().unwrap() > 0.0);
        assert_eq!(v["microbatches"].as_u64().unwrap(), 8);
    }

    #[test]
    fn pipeline_iterations_hit_the_plan_cache() {
        let out = run(toks(
            "pipeline --model gpt-case1 --microbatches 4 --iterations 3 --json",
        ))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["iterations"].as_u64(), Some(3));
        assert!(v["plan_cache_hits"].as_u64().unwrap() > 0);
        assert!(v["plan_cache_hit_rate"].as_f64().unwrap() > 0.5);
        let text = run(toks(
            "pipeline --model gpt-case1 --microbatches 4 --iterations 3",
        ))
        .unwrap();
        assert!(text.contains("plan cache:"), "got: {text}");
    }

    #[test]
    fn thread_pool_width_does_not_change_the_plan() {
        let cmd = |threads: usize| {
            format!(
                "reshard --src-spec RS0R --dst-spec S0RR --src-mesh 2x4 --dst-mesh 2x4 \
                 --shape 64x64x8 --threads {threads} --json"
            )
        };
        let narrow = run(toks(&cmd(1))).unwrap();
        let wide = run(toks(&cmd(4))).unwrap();
        let vn: serde_json::Value = serde_json::from_str(&narrow).unwrap();
        let vw: serde_json::Value = serde_json::from_str(&wide).unwrap();
        assert_eq!(vn["estimate_seconds"], vw["estimate_seconds"]);
        assert_eq!(vn["simulated_seconds"], vw["simulated_seconds"]);
        assert!(run(toks("reshard --threads nope")).is_err());
    }

    #[test]
    fn bad_inputs_are_reported() {
        assert!(run(toks("reshard --src-spec QQ")).is_err());
        assert!(run(toks("pipeline --model nope")).is_err());
        assert!(run(toks("frobnicate")).is_err());
        assert!(run(toks(
            "reshard --src-spec S0R --dst-spec S0R --src-mesh 2x4 --dst-mesh 2x4 \
             --shape 8x8 --planner nope"
        ))
        .is_err());
    }

    #[test]
    fn autospec_finds_specs() {
        let out = run(toks(
            "autospec --src-mesh 2x4 --dst-mesh 2x4 --shape 64x64 --json",
        ))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(v["estimated_seconds"].as_f64().unwrap() > 0.0);
        assert_eq!(v["candidates_evaluated"].as_u64().unwrap(), 11 * 11);
    }

    #[test]
    fn trace_export_writes_chrome_json() {
        let dir = std::env::temp_dir().join("crossmesh_cli_trace_test.json");
        let path = dir.to_str().unwrap();
        run(toks(&format!(
            "reshard --src-spec S0R --dst-spec S1R --src-mesh 1x2 --dst-mesh 1x2 \
             --shape 16x16 --trace {path}"
        )))
        .unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert!(!v.as_array().unwrap().is_empty());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn strategies_and_planners_resolve() {
        for s in [
            "broadcast",
            "send_recv",
            "local_allgather",
            "global_allgather",
            "multi_rail",
            "alpa",
        ] {
            strategy_choice(s).unwrap();
        }
        let cfg = PlannerConfig::new(presets::p3_cost_params());
        for p in ["ours", "naive", "lpt", "dfs", "greedy"] {
            planner_for(p, cfg, None).unwrap();
            planner_for(p, cfg, Some(42)).unwrap();
        }
        for b in ["sim", "threads", "tcp"] {
            backend_for(b, SimModel::Exact).unwrap();
            backend_for(b, SimModel::Aggregate).unwrap();
        }
        assert!(backend_for("nope", SimModel::Exact).is_err());
    }

    #[test]
    fn reshard_runs_on_the_threaded_backend() {
        for backend in ["threads", "tcp"] {
            let out = run(toks(&format!(
                "reshard --src-spec S0R --dst-spec RS1 --src-mesh 1x4 --dst-mesh 2x2 \
                 --shape 32x32 --backend {backend} --json"
            )))
            .unwrap();
            let v: serde_json::Value = serde_json::from_str(&out).unwrap();
            assert_eq!(v["backend"].as_str().unwrap(), backend);
            // Wall-clock execution: the transfer takes real, positive time.
            assert!(v["simulated_seconds"].as_f64().unwrap() > 0.0);
            assert_eq!(v["total_bytes"].as_u64().unwrap(), 32 * 32 * 4);
        }
    }

    #[test]
    fn reshard_with_faults_fails_over() {
        use crossmesh_faults::FaultEvent;
        let path = std::env::temp_dir().join("crossmesh_cli_faults_test.json");
        let schedule = FaultSchedule::new(0).with_event(FaultEvent::HostCrash { host: 0, at: 0.0 });
        std::fs::write(&path, schedule.to_json()).unwrap();
        // RS1R: every slice replicated across both sender hosts, so the
        // crash of host 0 is recoverable.
        let json = run(toks(&format!(
            "reshard --src-spec RS1R --dst-spec S0RR --src-mesh 2x4 --dst-mesh 2x4 \
             --shape 64x64x8 --faults {} --json",
            path.display()
        )))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["faults"]["repaired"].as_bool(), Some(true));
        assert!(v["faults"]["failovers"].as_u64().unwrap() > 0);
        assert_eq!(v["faults"]["excluded_hosts"][0].as_u64(), Some(0));
        let text = run(toks(&format!(
            "reshard --src-spec RS1R --dst-spec S0RR --src-mesh 2x4 --dst-mesh 2x4 \
             --shape 64x64x8 --faults {}",
            path.display()
        )))
        .unwrap();
        assert!(text.contains("failed over"), "got: {text}");
        assert!(text.contains("h0"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reshard_with_faults_reports_data_loss() {
        use crossmesh_faults::FaultEvent;
        let path = std::env::temp_dir().join("crossmesh_cli_faults_loss_test.json");
        let schedule = FaultSchedule::new(0).with_event(FaultEvent::HostCrash { host: 0, at: 0.0 });
        std::fs::write(&path, schedule.to_json()).unwrap();
        // S0RR: host 0 holds the only replica of its slices.
        let err = run(toks(&format!(
            "reshard --src-spec S0RR --dst-spec S0RR --src-mesh 2x4 --dst-mesh 2x4 \
             --shape 64x64x8 --faults {}",
            path.display()
        )))
        .unwrap_err();
        assert!(err.to_string().contains("data loss"), "got: {err}");
        assert!(run(toks(
            "reshard --src-spec S0R --dst-spec S0R --src-mesh 1x2 \
             --dst-mesh 1x2 --shape 8x8 --faults /nonexistent/faults.json"
        ))
        .is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_out_exports_one_schema_on_both_backends() {
        let dir = std::env::temp_dir();
        let sim = dir.join("crossmesh_cli_obs_sim.json");
        let thr = dir.join("crossmesh_cli_obs_threads.json");
        for (backend, path) in [("sim", &sim), ("threads", &thr)] {
            run(toks(&format!(
                "reshard --src-spec S0R --dst-spec S1R --src-mesh 1x2 --dst-mesh 1x2 \
                 --shape 16x16 --backend {backend} --trace-out {}",
                path.display()
            )))
            .unwrap();
        }
        let each = run(toks(&format!(
            "validate-trace --trace {} --json",
            sim.display()
        )))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&each).unwrap();
        assert!(v["events"].as_u64().unwrap() > 0);
        assert_eq!(v["counter_tracks"][0].as_str(), Some("comm.inflight_flows"));
        let both = run(toks(&format!(
            "validate-trace --trace {} --against {}",
            sim.display(),
            thr.display()
        )))
        .unwrap();
        assert!(both.contains("schema matches"), "got: {both}");
        assert!(run(toks("validate-trace --trace /nonexistent.json")).is_err());
        let _ = std::fs::remove_file(&sim);
        let _ = std::fs::remove_file(&thr);
    }

    #[test]
    fn metrics_flag_appends_the_registry() {
        let out = run(toks(
            "reshard --src-spec RS0R --dst-spec S0RR --src-mesh 2x4 --dst-mesh 2x4 \
             --shape 64x64x8 --metrics",
        ))
        .unwrap();
        assert!(out.contains("== metrics =="), "got: {out}");
        assert!(out.contains("planner.greedy.plans"), "got: {out}");
        assert!(out.contains("netsim.events_processed"), "got: {out}");
    }

    #[test]
    fn sim_model_selects_the_contention_model() {
        let reshard = |model: &str| {
            let out = run(toks(&format!(
                "reshard --src-spec S0R --dst-spec RS1 --src-mesh 1x4 --dst-mesh 2x2 \
                 --shape 32x32 --sim-model {model} --json"
            )))
            .unwrap();
            let v: serde_json::Value = serde_json::from_str(&out).unwrap();
            v["simulated_seconds"].as_f64().unwrap()
        };
        let exact = reshard("exact");
        let aggregate = reshard("aggregate");
        // Uniform sharing never predicts a faster transfer than max-min.
        assert!(aggregate >= exact - 1e-9, "{aggregate} vs {exact}");
        assert!(run(toks(
            "reshard --src-spec S0R --dst-spec RS1 --src-mesh 1x4 --dst-mesh 2x2 \
             --shape 32x32 --sim-model bogus"
        ))
        .is_err());
    }

    #[test]
    fn log_level_parses_or_errors() {
        assert!(run(toks(
            "reshard --src-spec S0R --dst-spec S1R --src-mesh 1x2 --dst-mesh 1x2 \
             --shape 8x8 --log-level nope"
        ))
        .is_err());
        let out = run(toks(
            "reshard --src-spec S0R --dst-spec S1R --src-mesh 1x2 --dst-mesh 1x2 \
             --shape 8x8 --log-level error",
        ))
        .unwrap();
        assert!(out.contains("simulated:"));
    }

    #[test]
    fn seed_changes_are_deterministic() {
        let cmd = "reshard --src-spec RS0R --dst-spec S0RR --src-mesh 2x4 --dst-mesh 2x4 \
                   --shape 64x64x8 --planner greedy --seed 7 --json";
        let a = run(toks(cmd)).unwrap();
        let b = run(toks(cmd)).unwrap();
        let va: serde_json::Value = serde_json::from_str(&a).unwrap();
        let vb: serde_json::Value = serde_json::from_str(&b).unwrap();
        assert_eq!(va["estimate_seconds"], vb["estimate_seconds"]);
        assert!(run(toks(
            "reshard --src-spec S0R --dst-spec S0R --src-mesh 1x2 \
                          --dst-mesh 1x2 --shape 8x8 --seed nope"
        ))
        .is_err());
    }
}
