//! A small dependency-free argument parser: `--key value` pairs plus flags.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Parsed command line: the subcommand, `--key value` options, and flags.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    /// First positional argument.
    pub command: Option<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// Argument errors with the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid arguments: {}", self.0)
    }
}

impl Error for ArgError {}

impl Args {
    /// Parses tokens (excluding the program name).
    ///
    /// Options take the next token as their value; `--json`-style flags
    /// are recognized from `flag_names`.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] for an option missing its value or an
    /// unexpected positional argument after the command.
    pub fn parse<I: IntoIterator<Item = String>>(
        tokens: I,
        flag_names: &[&str],
    ) -> Result<Self, ArgError> {
        let mut args = Args::default();
        let mut it = tokens.into_iter();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if flag_names.contains(&name) {
                    args.flags.push(name.to_string());
                } else {
                    let value = it
                        .next()
                        .ok_or_else(|| ArgError(format!("--{name} needs a value")))?;
                    args.options.insert(name.to_string(), value);
                }
            } else if args.command.is_none() {
                args.command = Some(tok);
            } else {
                return Err(ArgError(format!("unexpected argument {tok:?}")));
            }
        }
        Ok(args)
    }

    /// The string value of `--name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// The value of `--name` or a default.
    pub fn get_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.get(name).unwrap_or(default)
    }

    /// Parses `--name` as `T`, with a default when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when the value does not parse.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{name} {v:?} is not valid"))),
        }
    }

    /// True if the flag was passed.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

/// Parses `"2x4"` into `(2, 4)`.
///
/// # Errors
///
/// Returns [`ArgError`] for anything that is not `<rows>x<cols>`.
pub fn parse_mesh(s: &str) -> Result<(usize, usize), ArgError> {
    let (a, b) = s
        .split_once(['x', 'X'])
        .ok_or_else(|| ArgError(format!("mesh {s:?} must look like 2x4")))?;
    let rows = a
        .parse()
        .map_err(|_| ArgError(format!("bad mesh rows in {s:?}")))?;
    let cols = b
        .parse()
        .map_err(|_| ArgError(format!("bad mesh cols in {s:?}")))?;
    if rows == 0 || cols == 0 {
        return Err(ArgError(format!("mesh {s:?} must be non-empty")));
    }
    Ok((rows, cols))
}

/// Parses `"1024x1024x512"` into a shape vector.
///
/// # Errors
///
/// Returns [`ArgError`] for empty or non-numeric components.
pub fn parse_shape(s: &str) -> Result<Vec<u64>, ArgError> {
    s.split(['x', 'X'])
        .map(|p| {
            p.parse::<u64>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| ArgError(format!("bad shape component {p:?} in {s:?}")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = Args::parse(
            toks("reshard --src-spec S0RR --shape 8x8 --json"),
            &["json"],
        )
        .unwrap();
        assert_eq!(a.command.as_deref(), Some("reshard"));
        assert_eq!(a.get("src-spec"), Some("S0RR"));
        assert!(a.has_flag("json"));
        assert_eq!(a.get_or("dst-spec", "RRR"), "RRR");
    }

    #[test]
    fn missing_value_is_an_error() {
        let e = Args::parse(toks("reshard --src-spec"), &[]).unwrap_err();
        assert!(e.to_string().contains("src-spec"));
    }

    #[test]
    fn extra_positional_is_an_error() {
        assert!(Args::parse(toks("reshard oops"), &[]).is_err());
    }

    #[test]
    fn parsed_values_with_defaults() {
        let a = Args::parse(toks("x --n 7"), &[]).unwrap();
        assert_eq!(a.get_parsed("n", 3usize).unwrap(), 7);
        assert_eq!(a.get_parsed("m", 3usize).unwrap(), 3);
        assert!(a.get_parsed::<usize>("n", 0).is_ok());
        let bad = Args::parse(toks("x --n seven"), &[]).unwrap();
        assert!(bad.get_parsed::<usize>("n", 0).is_err());
    }

    #[test]
    fn mesh_and_shape_parsing() {
        assert_eq!(parse_mesh("2x4").unwrap(), (2, 4));
        assert_eq!(parse_mesh("3X2").unwrap(), (3, 2));
        assert!(parse_mesh("2").is_err());
        assert!(parse_mesh("0x4").is_err());
        assert_eq!(parse_shape("8x4x2").unwrap(), vec![8, 4, 2]);
        assert!(parse_shape("8x0").is_err());
        assert!(parse_shape("8xq").is_err());
    }
}
