//! Sharding-spec search for stage-boundary tensors.
//!
//! The paper's U-Transformer evaluation uses an `(auto, auto, 2)` parallel
//! configuration: Alpa *searches* for the intra-operator sharding of each
//! stage, and cross-mesh resharding handles whatever layouts the search
//! picks. This crate provides that missing half for boundary tensors: it
//! enumerates every valid GSPMD-style spec for a tensor rank
//! ([`enumerate_specs`]) and picks the `(source, destination)` pair whose
//! cross-mesh resharding cost — estimated through the same planner the
//! runtime uses — is minimal ([`search`]), subject to an optional
//! per-device memory cap.
//!
//! # Example
//!
//! ```
//! use crossmesh_autoshard::{search, AutoShardProblem};
//! use crossmesh_mesh::DeviceMesh;
//! use crossmesh_netsim::{ClusterSpec, LinkParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cluster = ClusterSpec::homogeneous(4, 4, LinkParams::new(100e9, 1.25e9));
//! let problem = AutoShardProblem::new(
//!     DeviceMesh::from_cluster(&cluster, 0, (2, 4), "src")?,
//!     DeviceMesh::from_cluster(&cluster, 2, (2, 4), "dst")?,
//!     vec![1024, 1024, 64],
//!     4,
//! );
//! let best = search(&problem, &Default::default())?;
//! // Fully sharded layouts beat replication: less data crosses the NICs.
//! assert!(!best.src_spec.is_fully_replicated());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use crossmesh_core::{CostParams, LoadBalancePlanner, Planner, PlannerConfig, ReshardingTask};
use crossmesh_mesh::{DeviceMesh, DimSharding, Layout, MeshError, ShardingSpec};
use serde::{Deserialize, Serialize};

/// Enumerates every valid spec of the given tensor rank over a 2-D mesh:
/// each mesh axis shards at most one dimension; when both axes shard the
/// same dimension, both orders (`S^{01}`, `S^{10}`) are produced.
///
/// The count is `(rank+1)² + rank` (5 for rank 1, 11 for rank 2, 19 for
/// rank 3).
pub fn enumerate_specs(rank: usize) -> Vec<ShardingSpec> {
    let mut out = Vec::new();
    let choices = |_axis: usize| std::iter::once(None).chain((0..rank).map(Some));
    for a0 in choices(0) {
        for a1 in choices(1) {
            let mut dims = vec![DimSharding::Replicated; rank];
            match (a0, a1) {
                (Some(d0), Some(d1)) if d0 == d1 => {
                    for axes in [vec![0, 1], vec![1, 0]] {
                        let mut dims = dims.clone();
                        dims[d0] = DimSharding::Sharded(axes);
                        out.push(ShardingSpec::new(dims).expect("valid by construction"));
                    }
                    continue;
                }
                (a0, a1) => {
                    if let Some(d) = a0 {
                        dims[d] = DimSharding::Sharded(vec![0]);
                    }
                    if let Some(d) = a1 {
                        dims[d] = DimSharding::Sharded(vec![1]);
                    }
                }
            }
            out.push(ShardingSpec::new(dims).expect("valid by construction"));
        }
    }
    out
}

/// A boundary tensor whose specs should be chosen.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoShardProblem {
    /// Producer stage mesh.
    pub src_mesh: DeviceMesh,
    /// Consumer stage mesh.
    pub dst_mesh: DeviceMesh,
    /// Tensor shape.
    pub shape: Vec<u64>,
    /// Bytes per element.
    pub elem_bytes: u64,
    /// Pin the producer-side spec (e.g. dictated by the producing op).
    pub fixed_src: Option<ShardingSpec>,
    /// Pin the consumer-side spec.
    pub fixed_dst: Option<ShardingSpec>,
    /// Reject specs whose largest per-device tile exceeds this many bytes.
    pub max_bytes_per_device: Option<u64>,
}

impl AutoShardProblem {
    /// An unconstrained problem.
    pub fn new(
        src_mesh: DeviceMesh,
        dst_mesh: DeviceMesh,
        shape: Vec<u64>,
        elem_bytes: u64,
    ) -> Self {
        AutoShardProblem {
            src_mesh,
            dst_mesh,
            shape,
            elem_bytes,
            fixed_src: None,
            fixed_dst: None,
            max_bytes_per_device: None,
        }
    }

    /// Returns a copy with the producer spec pinned.
    #[must_use]
    pub fn with_fixed_src(mut self, spec: ShardingSpec) -> Self {
        self.fixed_src = Some(spec);
        self
    }

    /// Returns a copy with the consumer spec pinned.
    #[must_use]
    pub fn with_fixed_dst(mut self, spec: ShardingSpec) -> Self {
        self.fixed_dst = Some(spec);
        self
    }

    /// Returns a copy with a per-device memory cap.
    #[must_use]
    pub fn with_memory_cap(mut self, bytes: u64) -> Self {
        self.max_bytes_per_device = Some(bytes);
        self
    }
}

/// The best pair found, with its estimated resharding time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoShardResult {
    /// Chosen producer-side spec.
    pub src_spec: ShardingSpec,
    /// Chosen consumer-side spec.
    pub dst_spec: ShardingSpec,
    /// Estimated resharding makespan of the winning pair, seconds.
    pub estimated_seconds: f64,
    /// Number of candidate pairs evaluated.
    pub candidates_evaluated: usize,
}

/// Largest per-device tile of `spec` on `mesh`, in bytes.
fn peak_tile_bytes(
    mesh: &DeviceMesh,
    spec: &ShardingSpec,
    shape: &[u64],
    elem_bytes: u64,
) -> Result<u64, MeshError> {
    let layout = Layout::new(mesh, spec, shape)?;
    Ok(layout
        .iter()
        .map(|(_, t)| t.volume() * elem_bytes)
        .max()
        .unwrap_or(0))
}

/// Searches the spec pair minimizing the estimated cross-mesh resharding
/// cost. Ties break toward specs that use more mesh axes (less
/// replication — cheaper for whoever produces/consumes the tensor), then
/// lexicographic spec text for determinism.
///
/// # Errors
///
/// Returns [`MeshError`] if the meshes overlap, the shape is empty, or
/// every candidate violates the memory cap.
pub fn search(
    problem: &AutoShardProblem,
    params: &CostParams,
) -> Result<AutoShardResult, MeshError> {
    let rank = problem.shape.len();
    let src_candidates = match &problem.fixed_src {
        Some(s) => vec![s.clone()],
        None => enumerate_specs(rank),
    };
    let dst_candidates = match &problem.fixed_dst {
        Some(s) => vec![s.clone()],
        None => enumerate_specs(rank),
    };
    let planner = LoadBalancePlanner::new(PlannerConfig::new(*params));

    let mut best: Option<AutoShardResult> = None;
    let mut evaluated = 0usize;
    for src_spec in &src_candidates {
        if let Some(cap) = problem.max_bytes_per_device {
            if peak_tile_bytes(
                &problem.src_mesh,
                src_spec,
                &problem.shape,
                problem.elem_bytes,
            )? > cap
            {
                continue;
            }
        }
        for dst_spec in &dst_candidates {
            if let Some(cap) = problem.max_bytes_per_device {
                if peak_tile_bytes(
                    &problem.dst_mesh,
                    dst_spec,
                    &problem.shape,
                    problem.elem_bytes,
                )? > cap
                {
                    continue;
                }
            }
            let task = ReshardingTask::new(
                problem.src_mesh.clone(),
                src_spec.clone(),
                problem.dst_mesh.clone(),
                dst_spec.clone(),
                &problem.shape,
                problem.elem_bytes,
            )?;
            let estimate = planner.plan(&task).estimate();
            evaluated += 1;
            let replication = |a: &ShardingSpec, b: &ShardingSpec| {
                a.replicated_axes().len() + b.replicated_axes().len()
            };
            let better = match &best {
                None => true,
                Some(b) => {
                    let tie = (estimate - b.estimated_seconds).abs() <= 1e-12;
                    estimate < b.estimated_seconds - 1e-12
                        || (tie
                            && (
                                replication(src_spec, dst_spec),
                                src_spec.to_string(),
                                dst_spec.to_string(),
                            ) < (
                                replication(&b.src_spec, &b.dst_spec),
                                b.src_spec.to_string(),
                                b.dst_spec.to_string(),
                            ))
                }
            };
            if better {
                best = Some(AutoShardResult {
                    src_spec: src_spec.clone(),
                    dst_spec: dst_spec.clone(),
                    estimated_seconds: estimate,
                    candidates_evaluated: 0,
                });
            }
        }
    }
    let mut result = best.ok_or_else(|| MeshError::Unsatisfiable {
        what: "every candidate spec pair violates the memory cap".to_string(),
    })?;
    result.candidates_evaluated = evaluated;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossmesh_netsim::{ClusterSpec, LinkParams};

    fn params() -> CostParams {
        CostParams {
            inter_bw: 1.0,
            intra_bw: 100.0,
            inter_latency: 0.0,
            intra_latency: 0.0,
        }
    }

    fn meshes() -> (DeviceMesh, DeviceMesh) {
        let c = ClusterSpec::homogeneous(4, 4, LinkParams::new(100.0, 1.0));
        (
            DeviceMesh::from_cluster(&c, 0, (2, 4), "src").unwrap(),
            DeviceMesh::from_cluster(&c, 2, (2, 4), "dst").unwrap(),
        )
    }

    #[test]
    fn enumeration_counts() {
        assert_eq!(enumerate_specs(1).len(), 5);
        assert_eq!(enumerate_specs(2).len(), 11);
        assert_eq!(enumerate_specs(3).len(), 19);
        // All enumerated specs are distinct.
        for rank in 1..=3 {
            let specs = enumerate_specs(rank);
            let mut texts: Vec<String> = specs.iter().map(|s| s.to_string()).collect();
            texts.sort();
            texts.dedup();
            assert_eq!(texts.len(), specs.len());
        }
    }

    #[test]
    fn search_avoids_full_replication() {
        let (src, dst) = meshes();
        let best = search(&AutoShardProblem::new(src, dst, vec![64, 64], 1), &params()).unwrap();
        assert!(!best.src_spec.is_fully_replicated());
        assert!(!best.dst_spec.is_fully_replicated());
        // The winner cannot be worse than the all-replicated baseline.
        let (src, dst) = meshes();
        let rr = ReshardingTask::new(
            src,
            ShardingSpec::replicated(2),
            dst,
            ShardingSpec::replicated(2),
            &[64, 64],
            1,
        )
        .unwrap();
        let rr_cost = LoadBalancePlanner::new(PlannerConfig::new(params()))
            .plan(&rr)
            .estimate();
        assert!(best.estimated_seconds <= rr_cost);
    }

    #[test]
    fn fixed_sides_are_respected() {
        let (src, dst) = meshes();
        let pinned: ShardingSpec = "S0R".parse().unwrap();
        let best = search(
            &AutoShardProblem::new(src, dst, vec![64, 64], 1).with_fixed_src(pinned.clone()),
            &params(),
        )
        .unwrap();
        assert_eq!(best.src_spec, pinned);
        assert_eq!(best.candidates_evaluated, 11);
    }

    #[test]
    fn memory_cap_prunes_replication() {
        let (src, dst) = meshes();
        // 64x64 bytes = 4096; cap of 1024 forces >= 4-way sharding.
        let best = search(
            &AutoShardProblem::new(src, dst, vec![64, 64], 1).with_memory_cap(1024),
            &params(),
        )
        .unwrap();
        for (mesh, spec) in [(&meshes().0, &best.src_spec), (&meshes().1, &best.dst_spec)] {
            assert!(peak_tile_bytes(mesh, spec, &[64, 64], 1).unwrap() <= 1024);
        }
    }

    #[test]
    fn impossible_cap_is_an_error() {
        let (src, dst) = meshes();
        let r = search(
            &AutoShardProblem::new(src, dst, vec![64, 64], 1).with_memory_cap(1),
            &params(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn search_is_deterministic() {
        let (src, dst) = meshes();
        let p = AutoShardProblem::new(src, dst, vec![32, 32, 4], 2);
        let a = search(&p, &params()).unwrap();
        let b = search(&p, &params()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn matched_shardings_beat_mismatched_ones() {
        // The optimum found should be at least as good as an arbitrary
        // mismatched pair.
        let (src, dst) = meshes();
        let best = search(
            &AutoShardProblem::new(src.clone(), dst.clone(), vec![64, 64], 1),
            &params(),
        )
        .unwrap();
        let mismatched = ReshardingTask::new(
            src,
            "S1R".parse().unwrap(),
            dst,
            "RS0".parse().unwrap(),
            &[64, 64],
            1,
        )
        .unwrap();
        let mismatched_cost = LoadBalancePlanner::new(PlannerConfig::new(params()))
            .plan(&mismatched)
            .estimate();
        assert!(best.estimated_seconds <= mismatched_cost + 1e-12);
    }
}
