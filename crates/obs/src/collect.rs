//! Collectors: the pluggable sinks behind the facade, plus a few stock
//! implementations (stderr logger, counting, in-memory timeline, fan-out).

use crate::{Event, Field, Level, SpanId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// A sink for spans and events. Implementations must be passive observers:
/// they may record, count, and print, but must never influence the control
/// flow of the instrumented code (the determinism contract depends on it).
pub trait Collector: Send + Sync {
    /// Level/target filter; the facade skips records the collector
    /// declines, so hot paths pay nothing for filtered-out verbosity.
    fn wants(&self, _level: Level, _target: &str) -> bool {
        true
    }

    /// A free-standing structured event.
    fn on_event(&self, event: &Event<'_>);

    /// A span opened; `id` is process-unique and reused at close.
    fn on_span_open(&self, _id: SpanId, _span: &Event<'_>) {}

    /// Fields recorded inside an open span.
    fn on_span_record(&self, _id: SpanId, _fields: &[Field]) {}

    /// A span closed (dropped).
    fn on_span_close(&self, _id: SpanId, _target: &'static str, _name: &'static str) {}
}

/// Serialises tests that install the process-wide collector. Exposed so
/// integration tests in other crates can share the discipline within one
/// test binary.
pub fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn render_fields(fields: &[Field]) -> String {
    let mut out = String::new();
    for f in fields {
        out.push(' ');
        out.push_str(f.key);
        out.push('=');
        out.push_str(&f.value.to_string());
    }
    out
}

/// Prints events and span open/close lines to stderr, filtered by a
/// maximum level. Span close lines include the wall-clock duration.
pub struct StderrLogger {
    max_level: Level,
    epoch: Instant,
    open: Mutex<HashMap<u64, Instant>>,
}

impl StderrLogger {
    pub fn new(max_level: Level) -> StderrLogger {
        StderrLogger {
            max_level,
            epoch: Instant::now(),
            open: Mutex::new(HashMap::new()),
        }
    }

    fn stamp(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e3
    }
}

impl Collector for StderrLogger {
    fn wants(&self, level: Level, _target: &str) -> bool {
        level <= self.max_level
    }

    fn on_event(&self, event: &Event<'_>) {
        eprintln!(
            "[{:10.3}ms {:5} {}] {}{}",
            self.stamp(),
            event.level,
            event.target,
            event.name,
            render_fields(event.fields)
        );
    }

    fn on_span_open(&self, id: SpanId, span: &Event<'_>) {
        self.open
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id.0, Instant::now());
        eprintln!(
            "[{:10.3}ms {:5} {}] {}: begin{}",
            self.stamp(),
            span.level,
            span.target,
            span.name,
            render_fields(span.fields)
        );
    }

    fn on_span_close(&self, id: SpanId, target: &'static str, name: &'static str) {
        let elapsed = self
            .open
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&id.0)
            .map(|t0| t0.elapsed().as_secs_f64() * 1e3);
        match elapsed {
            Some(ms) => eprintln!(
                "[{:10.3}ms       {}] {}: end ({ms:.3} ms)",
                self.stamp(),
                target,
                name
            ),
            None => eprintln!("[{:10.3}ms       {}] {}: end", self.stamp(), target, name),
        }
    }
}

/// Counts records without storing them — the cheapest possible enabled
/// collector, used by the overhead bench and the determinism proptest.
#[derive(Default)]
pub struct CountingCollector {
    events: AtomicU64,
    spans: AtomicU64,
    closed: AtomicU64,
}

impl CountingCollector {
    pub fn new() -> CountingCollector {
        CountingCollector::default()
    }

    pub fn events(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    pub fn spans(&self) -> u64 {
        self.spans.load(Ordering::Relaxed)
    }

    pub fn closed(&self) -> u64 {
        self.closed.load(Ordering::Relaxed)
    }

    /// Total records seen (events + span opens).
    pub fn total(&self) -> u64 {
        self.events() + self.spans()
    }
}

impl Collector for CountingCollector {
    fn on_event(&self, _event: &Event<'_>) {
        self.events.fetch_add(1, Ordering::Relaxed);
    }

    fn on_span_open(&self, _id: SpanId, _span: &Event<'_>) {
        self.spans.fetch_add(1, Ordering::Relaxed);
    }

    fn on_span_close(&self, _id: SpanId, _target: &'static str, _name: &'static str) {
        self.closed.fetch_add(1, Ordering::Relaxed);
    }
}

/// One record captured by [`TimelineCollector`].
#[derive(Debug, Clone)]
pub struct Sample {
    pub level: Level,
    pub target: String,
    pub name: String,
    pub fields: Vec<Field>,
}

impl Sample {
    /// The value of field `key` as `f64`, if present and numeric.
    pub fn field_f64(&self, key: &str) -> Option<f64> {
        self.fields.iter().find(|f| f.key == key).and_then(|f| {
            use crate::Value::*;
            match &f.value {
                U64(v) => Some(*v as f64),
                I64(v) => Some(*v as f64),
                F64(v) => Some(*v),
                _ => None,
            }
        })
    }
}

/// Records events in memory (capped) so the CLI can fold runtime queue
/// depths and per-flow instants into the exported timeline.
pub struct TimelineCollector {
    samples: Mutex<Vec<Sample>>,
    dropped: AtomicU64,
    cap: usize,
}

impl Default for TimelineCollector {
    fn default() -> Self {
        TimelineCollector::new()
    }
}

impl TimelineCollector {
    /// A collector keeping at most 100k samples (first-come, first-kept).
    pub fn new() -> TimelineCollector {
        TimelineCollector::with_capacity(100_000)
    }

    pub fn with_capacity(cap: usize) -> TimelineCollector {
        TimelineCollector {
            samples: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            cap,
        }
    }

    /// Drains the captured samples.
    pub fn take(&self) -> Vec<Sample> {
        std::mem::take(&mut *self.samples.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Samples dropped once the capacity was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Collector for TimelineCollector {
    fn on_event(&self, event: &Event<'_>) {
        let mut samples = self.samples.lock().unwrap_or_else(|e| e.into_inner());
        if samples.len() >= self.cap {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        samples.push(Sample {
            level: event.level,
            target: event.target.to_string(),
            name: event.name.to_string(),
            fields: event.fields.to_vec(),
        });
    }
}

/// Forwards every record to each child collector. A record is delivered to
/// a child only if that child wants it; the fan-out itself wants a record
/// if any child does.
pub struct Fanout {
    children: Vec<Arc<dyn Collector>>,
}

impl Fanout {
    pub fn new(children: Vec<Arc<dyn Collector>>) -> Fanout {
        Fanout { children }
    }
}

impl Collector for Fanout {
    fn wants(&self, level: Level, target: &str) -> bool {
        self.children.iter().any(|c| c.wants(level, target))
    }

    fn on_event(&self, event: &Event<'_>) {
        for c in &self.children {
            if c.wants(event.level, event.target) {
                c.on_event(event);
            }
        }
    }

    fn on_span_open(&self, id: SpanId, span: &Event<'_>) {
        for c in &self.children {
            if c.wants(span.level, span.target) {
                c.on_span_open(id, span);
            }
        }
    }

    fn on_span_record(&self, id: SpanId, fields: &[Field]) {
        for c in &self.children {
            c.on_span_record(id, fields);
        }
    }

    fn on_span_close(&self, id: SpanId, target: &'static str, name: &'static str) {
        for c in &self.children {
            c.on_span_close(id, target, name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_collector_counts() {
        let c = CountingCollector::new();
        c.on_event(&Event {
            level: Level::Info,
            target: "t",
            name: "e",
            fields: &[],
        });
        c.on_span_open(
            SpanId(1),
            &Event {
                level: Level::Info,
                target: "t",
                name: "s",
                fields: &[],
            },
        );
        c.on_span_close(SpanId(1), "t", "s");
        assert_eq!((c.events(), c.spans(), c.closed()), (1, 1, 1));
        assert_eq!(c.total(), 2);
    }

    #[test]
    fn timeline_collector_caps_and_reads_fields() {
        let c = TimelineCollector::with_capacity(2);
        for i in 0..3u64 {
            c.on_event(&Event {
                level: Level::Debug,
                target: "runtime.queue",
                name: "depth",
                fields: &[Field::u64("depth", i), Field::str("host", "h0")],
            });
        }
        let samples = c.take();
        assert_eq!(samples.len(), 2);
        assert_eq!(c.dropped(), 1);
        assert_eq!(samples[1].field_f64("depth"), Some(1.0));
        assert_eq!(samples[1].field_f64("host"), None);
    }

    #[test]
    fn fanout_delivers_per_child_filters() {
        struct OnlyErrors(CountingCollector);
        impl Collector for OnlyErrors {
            fn wants(&self, level: Level, _t: &str) -> bool {
                level == Level::Error
            }
            fn on_event(&self, e: &Event<'_>) {
                self.0.on_event(e);
            }
        }
        let all = Arc::new(CountingCollector::new());
        let errs = Arc::new(OnlyErrors(CountingCollector::new()));
        let fan = Fanout::new(vec![all.clone(), errs.clone()]);
        assert!(fan.wants(Level::Debug, "x"));
        fan.on_event(&Event {
            level: Level::Debug,
            target: "x",
            name: "d",
            fields: &[],
        });
        fan.on_event(&Event {
            level: Level::Error,
            target: "x",
            name: "e",
            fields: &[],
        });
        assert_eq!(all.events(), 2);
        assert_eq!(errs.0.events(), 1);
    }
}
