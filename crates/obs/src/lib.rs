//! # crossmesh-obs
//!
//! Structured observability for the crossmesh workspace: a dependency-free
//! `tracing`-style facade (spans + events with key/value fields behind a
//! pluggable [`Collector`]), a [`metrics`] registry (named counters, gauges,
//! and fixed-bucket histograms, sharded across worker threads and merged
//! deterministically at drain), and a unified Chrome/Perfetto [`export`]
//! module that renders both simulator traces and real runtime timelines
//! into one JSON schema.
//!
//! ## Zero overhead when disabled
//!
//! No collector is installed by default. The disabled fast path is a single
//! relaxed atomic load: [`event`] returns immediately and [`Span::enter`]
//! hands back [`Span::disabled`] (a `None` that does nothing on drop), so
//! instrumented hot loops — planner branch search, the runtime frame pumps —
//! cost nothing measurable without an observer. Metric counters are always
//! live (they are plain sharded atomics), but every instrumentation site
//! batches hot-loop increments locally and flushes once per unit of work.
//!
//! ## Determinism contract
//!
//! Observers are passive: collectors and metrics must never perturb planner
//! search order, so planner output stays byte-identical at any rayon pool
//! width whether or not a collector is installed (locked by the
//! enabled-vs-disabled proptest in `tests/obs_overhead.rs`). Simulator-backend
//! traces carry virtual timestamps and are reproducible run-to-run; only the
//! wall-clock metrics (span durations, runtime timelines) vary.

pub mod collect;
pub mod export;
pub mod metrics;
pub mod recorder;
pub mod simstats;
pub mod slo;
mod span;

pub use collect::{Collector, CountingCollector, Fanout, StderrLogger, TimelineCollector};
pub use metrics::{
    metrics, Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot, SlidingWindowHistogram,
};
pub use recorder::FlightRecorder;
pub use simstats::sync_netsim_metrics;
pub use slo::{SloBreach, SloMonitor, SloRule};
pub use span::{Span, SpanId};

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Severity / verbosity of an event or span, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    Error,
    Warn,
    Info,
    Debug,
    Trace,
}

impl Level {
    /// Parses a `--log-level` style name (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    /// The canonical lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

/// One key/value field attached to an event or span.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    pub key: &'static str,
    pub value: Value,
}

impl Field {
    pub fn u64(key: &'static str, value: u64) -> Field {
        Field {
            key,
            value: Value::U64(value),
        }
    }

    pub fn i64(key: &'static str, value: i64) -> Field {
        Field {
            key,
            value: Value::I64(value),
        }
    }

    pub fn f64(key: &'static str, value: f64) -> Field {
        Field {
            key,
            value: Value::F64(value),
        }
    }

    pub fn bool(key: &'static str, value: bool) -> Field {
        Field {
            key,
            value: Value::Bool(value),
        }
    }

    pub fn str(key: &'static str, value: impl Into<String>) -> Field {
        Field {
            key,
            value: Value::Str(value.into()),
        }
    }
}

/// A structured event (or the opening record of a span): a level, a dotted
/// subsystem target (`"planner.dfs"`, `"runtime.flow"`), a short name, and
/// borrowed key/value fields.
#[derive(Debug, Clone)]
pub struct Event<'a> {
    pub level: Level,
    pub target: &'static str,
    pub name: &'static str,
    pub fields: &'a [Field],
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static COLLECTOR: Mutex<Option<Arc<dyn Collector>>> = Mutex::new(None);

/// Whether any collector is installed — the one-load fast path every
/// instrumentation site checks first.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The installed collector, if any.
pub fn collector() -> Option<Arc<dyn Collector>> {
    if !enabled() {
        return None;
    }
    COLLECTOR.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Replaces the process-wide collector, returning the previous one.
/// Passing `None` disables collection entirely.
pub fn set_collector(c: Option<Arc<dyn Collector>>) -> Option<Arc<dyn Collector>> {
    let mut guard = COLLECTOR.lock().unwrap_or_else(|e| e.into_inner());
    let prev = std::mem::replace(&mut *guard, c);
    ENABLED.store(guard.is_some(), Ordering::SeqCst);
    prev
}

/// Installs `c` for the lifetime of the returned guard; the previous
/// collector (possibly none) is restored on drop. Used by the CLI and by
/// tests that must not leak an observer into their neighbours.
pub fn install(c: Arc<dyn Collector>) -> CollectorGuard {
    CollectorGuard {
        prev: Some(set_collector(Some(c))),
    }
}

/// Restores the previously installed collector on drop. See [`install`].
pub struct CollectorGuard {
    prev: Option<Option<Arc<dyn Collector>>>,
}

impl Drop for CollectorGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            set_collector(prev);
        }
    }
}

/// Emits a structured event to the installed collector, if any wants it.
///
/// The disabled fast path is one relaxed load; hot loops may still prefer
/// to accumulate locally and emit a single summary event.
#[inline]
pub fn event(level: Level, target: &'static str, name: &'static str, fields: &[Field]) {
    if !enabled() {
        return;
    }
    event_slow(level, target, name, fields);
}

#[cold]
fn event_slow(level: Level, target: &'static str, name: &'static str, fields: &[Field]) {
    if let Some(c) = collector() {
        if c.wants(level, target) {
            c.on_event(&Event {
                level,
                target,
                name,
                fields,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_guard_restores() {
        // Serialise against other tests in this binary that install.
        let _lock = collect::test_lock();
        assert!(!enabled());
        let counting = Arc::new(CountingCollector::new());
        {
            let _g = install(counting.clone());
            assert!(enabled());
            event(Level::Info, "test", "ping", &[Field::u64("n", 1)]);
            let inner = Arc::new(CountingCollector::new());
            {
                let _g2 = install(inner.clone());
                event(Level::Info, "test", "ping", &[]);
            }
            // Outer collector restored after the inner guard drops.
            event(Level::Info, "test", "ping", &[]);
            assert_eq!(inner.events(), 1);
        }
        assert!(!enabled());
        assert_eq!(counting.events(), 2);
    }

    #[test]
    fn level_parse_round_trips() {
        for l in [
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
            Level::Trace,
        ] {
            assert_eq!(Level::parse(l.as_str()), Some(l));
        }
        assert_eq!(Level::parse("WARNING"), Some(Level::Warn));
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn field_constructors_carry_values() {
        assert_eq!(Field::u64("a", 3).value, Value::U64(3));
        assert_eq!(Field::str("b", "x").value, Value::Str("x".into()));
        assert_eq!(format!("{}", Value::F64(1.5)), "1.5");
    }
}
