//! SLO monitoring: threshold and burn-rate rules over rolling windows.
//!
//! A [`SloMonitor`] owns a set of rules and is evaluated at whatever
//! cadence the host chooses (the serve daemon evaluates after each
//! completed job and on every `Telemetry` request). Each evaluation
//! publishes `obs.slo.*` counters into the registry it is handed;
//! breaches are returned to the caller, which typically fires a flight
//! recorder dump — the monitor itself never blocks or perturbs the
//! instrumented path (same passivity contract as collectors).
//!
//! Two rule shapes:
//!
//! * **Quantile threshold** — a [`SlidingWindowHistogram`] quantile (say
//!   exec-latency p99 over the last minute) must stay at or under a
//!   bound.
//! * **Burn rate** — the ratio of a *bad* counter's growth to a *total*
//!   counter's growth between evaluations (say shed / admitted) must
//!   stay at or under a bound.
//!
//! Per-rule cooldowns keep a sustained breach from re-firing on every
//! evaluation: after a breach the rule is silenced for the cooldown,
//! then fires again if the condition still holds.

use crate::metrics::{Counter, MetricsRegistry, SlidingWindowHistogram};
use std::sync::Mutex;

/// One SLO rule. Construct via [`SloRule::quantile`] or
/// [`SloRule::burn_rate`].
#[derive(Clone)]
pub struct SloRule {
    /// Dotted rule name, used in `obs.slo.breach.<name>` counters.
    pub name: String,
    kind: RuleKind,
}

#[derive(Clone)]
enum RuleKind {
    Quantile {
        window: SlidingWindowHistogram,
        q: f64,
        max_value: f64,
        /// Quantiles over a near-empty window are noise; the rule stays
        /// quiet below this sample count.
        min_count: u64,
    },
    BurnRate {
        bad: Counter,
        total: Counter,
        max_ratio: f64,
        /// Ratios over a handful of requests are noise; the rule stays
        /// quiet until this many total events land between evaluations.
        min_events: u64,
    },
}

impl std::fmt::Debug for SloRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.kind {
            RuleKind::Quantile { q, max_value, .. } => format!("p{q} <= {max_value}"),
            RuleKind::BurnRate { max_ratio, .. } => format!("burn <= {max_ratio}"),
        };
        f.debug_struct("SloRule")
            .field("name", &self.name)
            .field("kind", &kind)
            .finish()
    }
}

impl SloRule {
    /// `window`'s `q`-quantile must stay `<= max_value` once at least
    /// `min_count` samples are in the window.
    pub fn quantile(
        name: impl Into<String>,
        window: SlidingWindowHistogram,
        q: f64,
        max_value: f64,
        min_count: u64,
    ) -> SloRule {
        SloRule {
            name: name.into(),
            kind: RuleKind::Quantile {
                window,
                q,
                max_value,
                min_count,
            },
        }
    }

    /// `bad`'s growth divided by `total`'s growth between evaluations
    /// must stay `<= max_ratio`, once at least `min_events` total events
    /// arrive in the evaluation interval.
    pub fn burn_rate(
        name: impl Into<String>,
        bad: Counter,
        total: Counter,
        max_ratio: f64,
        min_events: u64,
    ) -> SloRule {
        SloRule {
            name: name.into(),
            kind: RuleKind::BurnRate {
                bad,
                total,
                max_ratio,
                min_events,
            },
        }
    }
}

/// One rule violation found by [`SloMonitor::evaluate`].
#[derive(Debug, Clone, PartialEq)]
pub struct SloBreach {
    /// The violated rule's name.
    pub rule: String,
    /// The observed value (quantile, or burn ratio).
    pub value: f64,
    /// The configured bound it exceeded.
    pub threshold: f64,
}

#[derive(Debug, Clone, Copy, Default)]
struct RuleState {
    last_bad: u64,
    last_total: u64,
    /// Breaches are silenced until this time (monitor clock, seconds).
    cooldown_until: f64,
}

/// Evaluates a rule set against its windows and counters. See the
/// module docs.
pub struct SloMonitor {
    rules: Vec<SloRule>,
    state: Mutex<Vec<RuleState>>,
    cooldown_secs: f64,
}

impl std::fmt::Debug for SloMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloMonitor")
            .field("rules", &self.rules)
            .field("cooldown_secs", &self.cooldown_secs)
            .finish()
    }
}

impl SloMonitor {
    /// An empty monitor whose rules re-fire at most once per
    /// `cooldown_secs` while a breach persists.
    pub fn new(cooldown_secs: f64) -> SloMonitor {
        SloMonitor {
            rules: Vec::new(),
            state: Mutex::new(Vec::new()),
            cooldown_secs,
        }
    }

    /// Adds a rule.
    pub fn add_rule(&mut self, rule: SloRule) {
        self.rules.push(rule);
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(RuleState::default());
    }

    /// The configured rules.
    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    /// Evaluates every rule at time `now_s` (caller's clock), publishing
    /// `obs.slo.evaluations`, `obs.slo.breaches`, and per-rule
    /// `obs.slo.breach.<name>` counters into `registry`, and returning
    /// the breaches that fired (post-cooldown).
    pub fn evaluate(&self, now_s: f64, registry: &MetricsRegistry) -> Vec<SloBreach> {
        registry.counter("obs.slo.evaluations").inc();
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut breaches = Vec::new();
        for (rule, st) in self.rules.iter().zip(state.iter_mut()) {
            let violation = match &rule.kind {
                RuleKind::Quantile {
                    window,
                    q,
                    max_value,
                    min_count,
                } => {
                    if window.count(now_s) < *min_count {
                        None
                    } else {
                        window
                            .quantile(now_s, *q)
                            .filter(|v| v > max_value)
                            .map(|v| (v, *max_value))
                    }
                }
                RuleKind::BurnRate {
                    bad,
                    total,
                    max_ratio,
                    min_events,
                } => {
                    let (bad_now, total_now) = (bad.get(), total.get());
                    let d_bad = bad_now.saturating_sub(st.last_bad);
                    let d_total = total_now.saturating_sub(st.last_total);
                    st.last_bad = bad_now;
                    st.last_total = total_now;
                    if d_total < *min_events {
                        None
                    } else {
                        let ratio = d_bad as f64 / d_total as f64;
                        (ratio > *max_ratio).then_some((ratio, *max_ratio))
                    }
                }
            };
            if let Some((value, threshold)) = violation {
                if now_s >= st.cooldown_until {
                    st.cooldown_until = now_s + self.cooldown_secs;
                    registry.counter("obs.slo.breaches").inc();
                    registry
                        .counter(&format!("obs.slo.breach.{}", rule.name))
                        .inc();
                    breaches.push(SloBreach {
                        rule: rule.name.clone(),
                        value,
                        threshold,
                    });
                }
            }
        }
        breaches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_rule_fires_only_past_threshold_and_min_count() {
        let w = SlidingWindowHistogram::new(1.0, 60);
        let reg = MetricsRegistry::new();
        let mut mon = SloMonitor::new(10.0);
        mon.add_rule(SloRule::quantile("exec_p99", w.clone(), 0.99, 50.0, 5));

        // Below min_count: quiet even though the values are terrible.
        w.observe(0.0, 500.0);
        assert!(mon.evaluate(0.0, &reg).is_empty());

        for _ in 0..10 {
            w.observe(0.0, 10.0);
        }
        // p99 picks up the 500 ms outlier -> breach.
        let breaches = mon.evaluate(1.0, &reg);
        assert_eq!(breaches.len(), 1);
        assert_eq!(breaches[0].rule, "exec_p99");
        assert!(breaches[0].value > 50.0);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("obs.slo.breaches"), 1);
        assert_eq!(snap.counter("obs.slo.breach.exec_p99"), 1);
        assert_eq!(snap.counter("obs.slo.evaluations"), 2);
    }

    #[test]
    fn cooldown_silences_then_refires() {
        let w = SlidingWindowHistogram::new(1.0, 600);
        for _ in 0..10 {
            w.observe(0.0, 100.0);
        }
        let reg = MetricsRegistry::new();
        let mut mon = SloMonitor::new(30.0);
        mon.add_rule(SloRule::quantile("p50", w, 0.5, 1.0, 1));
        assert_eq!(mon.evaluate(0.0, &reg).len(), 1);
        // Still breaching, but inside the cooldown.
        assert!(mon.evaluate(10.0, &reg).is_empty());
        // Past the cooldown the sustained breach fires again.
        assert_eq!(mon.evaluate(31.0, &reg).len(), 1);
        assert_eq!(reg.snapshot().counter("obs.slo.breach.p50"), 2);
    }

    #[test]
    fn burn_rate_tracks_counter_growth_between_evaluations() {
        let reg = MetricsRegistry::new();
        let bad = reg.counter("serve.shed");
        let total = reg.counter("serve.requests");
        let mut mon = SloMonitor::new(0.0);
        mon.add_rule(SloRule::burn_rate(
            "shed_rate",
            bad.clone(),
            total.clone(),
            0.1,
            10,
        ));

        total.add(100);
        bad.add(5);
        // 5% < 10%: fine.
        assert!(mon.evaluate(1.0, &reg).is_empty());

        total.add(20);
        bad.add(19);
        // The *delta* is 19/20, not the lifetime 24/120.
        let breaches = mon.evaluate(2.0, &reg);
        assert_eq!(breaches.len(), 1);
        assert!((breaches[0].value - 0.95).abs() < 1e-9);

        // Too few events in the interval: quiet.
        total.add(3);
        bad.add(3);
        assert!(mon.evaluate(3.0, &reg).is_empty());
    }
}
