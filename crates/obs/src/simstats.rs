//! Bridge from the netsim engine's performance counters into a
//! [`MetricsRegistry`](crate::MetricsRegistry).
//!
//! `crossmesh-netsim` cannot depend on this crate (the dependency points
//! the other way: the export module renders netsim traces), so the engine
//! tallies its counters into process-wide atomics
//! ([`crossmesh_netsim::stats::cumulative`]) and consumers that hold a
//! registry — the CLI's `--metrics` dump, `bench`, the serve daemon — call
//! [`sync_netsim_metrics`] at report time to publish them as `netsim.*`
//! metrics.

use crate::metrics::MetricsRegistry;
use crossmesh_netsim::stats::cumulative;
use crossmesh_netsim::SimStats;
use std::sync::Mutex;

/// Last netsim totals already folded into a registry, keyed per process.
/// Counters are monotonic, so each sync publishes only the delta since the
/// previous one; repeated syncs are idempotent when no runs happened.
static PUBLISHED: Mutex<SimStats> = Mutex::new(SimStats {
    events_processed: 0,
    events_stale: 0,
    rate_recomputes: 0,
    flows_resolved: 0,
    frontier_size: 0,
    peak_active_flows: 0,
});

/// Publishes the engine's cumulative counters into `registry` as
/// `netsim.events_processed`, `netsim.events_stale`,
/// `netsim.rate_recomputes`, and `netsim.flows_resolved` counters plus
/// `netsim.frontier_size` / `netsim.peak_active_flows` gauges (process-wide
/// maxima). Returns the snapshot that was synced.
///
/// The delta cursor is process-wide: syncing into two different registries
/// splits the totals between them. Use the global [`metrics()`] registry
/// (or one registry per process) for faithful totals.
///
/// [`metrics()`]: crate::metrics()
pub fn sync_netsim_metrics(registry: &MetricsRegistry) -> SimStats {
    let now = cumulative();
    let mut last = PUBLISHED.lock().unwrap_or_else(|e| e.into_inner());
    registry
        .counter("netsim.events_processed")
        .add(now.events_processed - last.events_processed);
    registry
        .counter("netsim.events_stale")
        .add(now.events_stale - last.events_stale);
    registry
        .counter("netsim.rate_recomputes")
        .add(now.rate_recomputes - last.rate_recomputes);
    registry
        .counter("netsim.flows_resolved")
        .add(now.flows_resolved - last.flows_resolved);
    registry
        .gauge("netsim.frontier_size")
        .set(now.frontier_size as f64);
    registry
        .gauge("netsim.peak_active_flows")
        .set(now.peak_active_flows as f64);
    *last = now;
    now
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossmesh_netsim::{ClusterSpec, Engine, LinkParams, TaskGraph, Work};

    /// The delta cursor is process-wide; tests that sync must not run
    /// concurrently with each other or they steal each other's deltas.
    static SYNC_TESTS: Mutex<()> = Mutex::new(());

    #[test]
    fn sync_publishes_engine_counters_once() {
        let _serial = SYNC_TESTS.lock().unwrap_or_else(|e| e.into_inner());
        let c = ClusterSpec::homogeneous(2, 1, LinkParams::new(10.0, 1.0));
        let mut g = TaskGraph::new();
        g.add(Work::flow(c.device(0, 0), c.device(1, 0), 4.0), []);
        Engine::new(&c).run(&g).unwrap();

        let reg = MetricsRegistry::new();
        sync_netsim_metrics(&reg);
        let snap = reg.snapshot();
        assert!(snap.counter("netsim.events_processed") >= 2);
        assert!(snap.counter("netsim.rate_recomputes") >= 1);
        assert!(snap.gauges["netsim.peak_active_flows"] >= 1.0);

        // No new runs: a second sync must not inflate the counters.
        let before = reg.snapshot().counter("netsim.events_processed");
        sync_netsim_metrics(&reg);
        assert_eq!(reg.snapshot().counter("netsim.events_processed"), before);
    }

    #[test]
    fn concurrent_syncs_never_double_count_or_lose_deltas() {
        let _serial = SYNC_TESTS.lock().unwrap_or_else(|e| e.into_inner());
        // Zero the process-wide cursor into a throwaway registry so this
        // test's window starts clean, then capture the cumulative base.
        sync_netsim_metrics(&MetricsRegistry::new());
        let base = cumulative();

        // Generate a known amount of engine work.
        let c = ClusterSpec::homogeneous(2, 1, LinkParams::new(10.0, 1.0));
        let before_runs = cumulative();
        for _ in 0..8 {
            let mut g = TaskGraph::new();
            g.add(Work::flow(c.device(0, 0), c.device(1, 0), 4.0), []);
            Engine::new(&c).run(&g).unwrap();
        }
        let produced = cumulative().events_processed - before_runs.events_processed;
        assert!(produced > 0, "the engine must tally events");

        // Hammer the delta cursor from two threads into one registry.
        let reg = MetricsRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..2 {
                let reg = &reg;
                s.spawn(move || {
                    for _ in 0..50 {
                        sync_netsim_metrics(reg);
                    }
                });
            }
        });
        sync_netsim_metrics(&reg);
        let end = cumulative();

        // Every delta this window produced must land exactly once: at
        // least this test's own events (no loss), and no more than the
        // whole process-wide window (no double counting, even if other
        // tests ran engines concurrently).
        let synced = reg.snapshot().counter("netsim.events_processed");
        assert!(
            synced >= produced,
            "lost deltas: synced {synced} < produced {produced}"
        );
        let window = end.events_processed - base.events_processed;
        assert!(
            synced <= window,
            "double-counted deltas: synced {synced} > window {window}"
        );
    }
}
