//! Spans: scoped regions of work reported to the collector on entry and
//! exit, with a zero-cost disabled representation.

use crate::{Collector, Event, Field, Level};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-unique span identifier, allocated by the facade so that fan-out
/// collectors all see the same id for one span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// A scoped region of work. Construct with [`Span::enter`]; the collector
/// is notified again when the span is dropped.
///
/// When no collector is installed (or the collector declines the
/// level/target), the span is [`Span::disabled`]: a `None` whose drop does
/// nothing, so instrumenting a function costs one relaxed atomic load.
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    collector: Arc<dyn Collector>,
    id: SpanId,
    target: &'static str,
    name: &'static str,
}

impl Span {
    /// Opens a span if a collector is installed and wants `(level, target)`.
    #[inline]
    pub fn enter(level: Level, target: &'static str, name: &'static str, fields: &[Field]) -> Span {
        if !crate::enabled() {
            return Span::disabled();
        }
        Span::enter_slow(level, target, name, fields)
    }

    #[cold]
    fn enter_slow(
        level: Level,
        target: &'static str,
        name: &'static str,
        fields: &[Field],
    ) -> Span {
        match crate::collector() {
            Some(c) if c.wants(level, target) => {
                let id = SpanId(NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed));
                c.on_span_open(
                    id,
                    &Event {
                        level,
                        target,
                        name,
                        fields,
                    },
                );
                Span {
                    inner: Some(SpanInner {
                        collector: c,
                        id,
                        target,
                        name,
                    }),
                }
            }
            _ => Span::disabled(),
        }
    }

    /// The no-op span: nothing is reported on construction or drop.
    #[inline]
    pub const fn disabled() -> Span {
        Span { inner: None }
    }

    /// Whether this span is actually being observed.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Attaches follow-up fields to an open span (no-op when disabled).
    pub fn record(&self, fields: &[Field]) {
        if let Some(inner) = &self.inner {
            inner.collector.on_span_record(inner.id, fields);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            inner
                .collector
                .on_span_close(inner.id, inner.target, inner.name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{collect, CountingCollector};

    #[test]
    fn disabled_span_reports_nothing() {
        let s = Span::disabled();
        assert!(!s.is_enabled());
        s.record(&[Field::u64("ignored", 1)]);
    }

    #[test]
    fn enabled_span_opens_and_closes() {
        let _lock = collect::test_lock();
        let c = Arc::new(CountingCollector::new());
        {
            let _g = crate::install(c.clone());
            let span = Span::enter(Level::Debug, "test", "region", &[Field::u64("n", 2)]);
            assert!(span.is_enabled());
            span.record(&[Field::bool("mid", true)]);
        }
        assert_eq!(c.spans(), 1);
        assert_eq!(c.closed(), 1);
    }

    #[test]
    fn span_ids_are_unique() {
        let _lock = collect::test_lock();
        let c = Arc::new(crate::collect::TimelineCollector::new());
        let _g = crate::install(c.clone());
        let a = Span::enter(Level::Info, "test", "a", &[]);
        let b = Span::enter(Level::Info, "test", "b", &[]);
        let (ia, ib) = (a.inner.as_ref().unwrap().id, b.inner.as_ref().unwrap().id);
        assert_ne!(ia, ib);
    }
}
