//! Metrics registry: named counters, gauges, and fixed-bucket histograms.
//!
//! Counters are sharded across a small fixed set of cache-line-aligned
//! atomic cells; each worker thread is pinned to one shard on first use, so
//! concurrent increments from the rayon-shim pool rarely contend. Draining
//! (`get` / `snapshot`) merges shards by unsigned addition — commutative,
//! so the merged value is deterministic regardless of which thread
//! incremented which shard.
//!
//! The process-wide registry behind [`metrics()`] is what the CLI's
//! `--metrics` flag dumps; instrumented crates may also hold private
//! [`MetricsRegistry`] instances (the `PlanCache` keeps one per cache so
//! per-cache statistics stay isolated).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Number of counter shards. A small power of two: enough to keep the
/// rayon-shim pool (≤ 16 workers) off each other's cache lines.
const SHARDS: usize = 16;

/// A cache-line-aligned atomic cell, so neighbouring shards don't
/// false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedAtomic(AtomicU64);

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's shard index, assigned round-robin on first use.
    static SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

#[inline]
fn shard_index() -> usize {
    SHARD.with(|s| *s)
}

#[derive(Default)]
struct CounterCells {
    shards: [PaddedAtomic; SHARDS],
}

/// A monotonically increasing counter, cheap to clone (an `Arc` to the
/// shared cells) and cheap to bump from any thread.
#[derive(Clone)]
pub struct Counter {
    cells: Arc<CounterCells>,
}

impl Counter {
    fn new() -> Counter {
        Counter {
            cells: Arc::new(CounterCells::default()),
        }
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.cells.shards[shard_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Deterministic merge of all shards.
    pub fn get(&self) -> u64 {
        self.cells
            .shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }

    fn reset(&self) {
        for s in &self.cells.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A last-write-wins `f64` gauge.
#[derive(Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    fn new() -> Gauge {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }

    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A histogram with fixed upper-bound buckets plus an overflow bucket.
/// Bucket counts are plain atomic adds, so the drained counts merge
/// deterministically; the running sum is a CAS-add of `f64` bits and is
/// deterministic only up to floating-point reassociation.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramCells>,
}

struct HistogramCells {
    /// Inclusive upper bounds, strictly increasing.
    bounds: Vec<f64>,
    /// One count per bound, plus the overflow bucket.
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            inner: Arc::new(HistogramCells {
                bounds: bounds.to_vec(),
                counts,
                sum_bits: AtomicU64::new(0f64.to_bits()),
            }),
        }
    }

    pub fn observe(&self, value: f64) {
        let idx = self
            .inner
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.inner.bounds.len());
        self.inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        let mut cur = self.inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match self.inner.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .inner
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            bounds: self.inner.bounds.clone(),
            count: counts.iter().sum(),
            sum: f64::from_bits(self.inner.sum_bits.load(Ordering::Relaxed)),
            counts,
        }
    }

    fn reset(&self) {
        for c in &self.inner.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.inner.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// A drained histogram: bucket bounds, per-bucket counts (the final entry
/// is the overflow bucket), total count, and the (approximate) sum.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub bounds: Vec<f64>,
    pub counts: Vec<u64>,
    pub count: u64,
    pub sum: f64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named-metric registry. `counter` / `gauge` / `histogram` get-or-create
/// by name; handles are cheap clones, so call sites should cache them
/// (e.g. in a `OnceLock`) rather than re-looking-up in hot loops.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    pub const fn new() -> MetricsRegistry {
        MetricsRegistry {
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Gets or creates the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} is not a counter"),
        }
    }

    /// Gets or creates the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} is not a gauge"),
        }
    }

    /// Gets or creates the histogram `name` with the given bucket bounds
    /// (ignored if the histogram already exists).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind,
    /// or if `bounds` is not strictly increasing.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let mut metrics = self.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds)))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    /// Drains every metric into a deterministic, name-ordered snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.lock();
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }

    /// Zeroes every registered metric (registrations and handles survive).
    pub fn reset(&self) {
        let metrics = self.lock();
        for metric in metrics.values() {
            match metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.set(0.0),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }

    /// Renders the registry as an aligned plain-text dump (the `--metrics`
    /// output), one metric per line in name order.
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }
}

/// A point-in-time, name-ordered copy of a registry's values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The counter's value, or 0 if absent (makes delta code total).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("# counters\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("{name} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("# gauges\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("{name} {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("# histograms\n");
            for (name, h) in &self.histograms {
                out.push_str(&format!("{name} count={} mean={:.6}", h.count, h.mean()));
                for (i, c) in h.counts.iter().enumerate() {
                    match h.bounds.get(i) {
                        Some(b) => out.push_str(&format!(" le{b}={c}")),
                        None => out.push_str(&format!(" inf={c}")),
                    }
                }
                out.push('\n');
            }
        }
        out
    }

    /// Renders the snapshot as Prometheus-style text exposition: `# TYPE`
    /// comments, sanitised names, cumulative `_bucket{le=...}` series plus
    /// `_sum`/`_count` for histograms. Deterministic (name order).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let name = prometheus_name(name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let name = prometheus_name(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let name = prometheus_name(name);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for (i, c) in h.counts.iter().enumerate() {
                cumulative += c;
                match h.bounds.get(i) {
                    Some(b) => {
                        out.push_str(&format!("{name}_bucket{{le=\"{b}\"}} {cumulative}\n"));
                    }
                    None => {
                        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
                    }
                }
            }
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}_count {}\n", h.count));
        }
        out
    }
}

/// A sliding-window histogram for rolling-tail latency (p50/p99/p999).
///
/// Samples land in fixed-width time slots keyed by an externally supplied
/// clock (`now_s`), so the window is deterministic for callers that feed a
/// virtual clock; slots older than the window are pruned on every touch.
/// Quantiles are exact over the retained samples (each slot keeps raw
/// values up to a per-slot cap, counting overflow as dropped).
#[derive(Clone)]
pub struct SlidingWindowHistogram {
    inner: Arc<Mutex<WindowInner>>,
}

struct WindowInner {
    slot_secs: f64,
    slots: usize,
    per_slot_cap: usize,
    buckets: BTreeMap<i64, Vec<f64>>,
    dropped: u64,
}

impl std::fmt::Debug for SlidingWindowHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("SlidingWindowHistogram")
            .field("slot_secs", &inner.slot_secs)
            .field("slots", &inner.slots)
            .field("live_slots", &inner.buckets.len())
            .finish()
    }
}

impl SlidingWindowHistogram {
    /// A window of `slots` slots, each `slot_secs` wide (so the rolling
    /// window spans `slots * slot_secs` seconds). Each slot retains at
    /// most 65 536 raw samples.
    pub fn new(slot_secs: f64, slots: usize) -> SlidingWindowHistogram {
        assert!(slot_secs > 0.0, "slot width must be positive");
        assert!(slots > 0, "need at least one slot");
        SlidingWindowHistogram {
            inner: Arc::new(Mutex::new(WindowInner {
                slot_secs,
                slots,
                per_slot_cap: 65_536,
                buckets: BTreeMap::new(),
                dropped: 0,
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WindowInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The rolling window's span in seconds.
    pub fn window_secs(&self) -> f64 {
        let inner = self.lock();
        inner.slot_secs * inner.slots as f64
    }

    /// Records `value` at time `now_s` (seconds on the caller's clock).
    pub fn observe(&self, now_s: f64, value: f64) {
        let mut inner = self.lock();
        let slot = (now_s / inner.slot_secs).floor() as i64;
        prune(&mut inner, slot);
        let cap = inner.per_slot_cap;
        let bucket = inner.buckets.entry(slot).or_default();
        if bucket.len() >= cap {
            inner.dropped += 1;
        } else {
            bucket.push(value);
        }
    }

    /// Samples currently inside the window as of `now_s`.
    pub fn count(&self, now_s: f64) -> u64 {
        let mut inner = self.lock();
        let slot = (now_s / inner.slot_secs).floor() as i64;
        prune(&mut inner, slot);
        inner.buckets.values().map(|b| b.len() as u64).sum()
    }

    /// Samples discarded because a slot hit its cap.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) over the samples inside the
    /// window as of `now_s`, or `None` when the window is empty.
    pub fn quantile(&self, now_s: f64, q: f64) -> Option<f64> {
        let mut inner = self.lock();
        let slot = (now_s / inner.slot_secs).floor() as i64;
        prune(&mut inner, slot);
        let mut all: Vec<f64> = inner.buckets.values().flatten().copied().collect();
        if all.is_empty() {
            return None;
        }
        all.sort_by(f64::total_cmp);
        let idx = (q.clamp(0.0, 1.0) * (all.len() - 1) as f64).round() as usize;
        Some(all[idx.min(all.len() - 1)])
    }

    /// Renders Prometheus-style summary lines (`quantile` labels for
    /// p50/p99/p999 plus `_count`) for this window under `name`.
    pub fn render_prometheus(&self, name: &str, now_s: f64) -> String {
        let name = prometheus_name(name);
        let mut out = format!("# TYPE {name} summary\n");
        for (label, q) in [("0.5", 0.5), ("0.99", 0.99), ("0.999", 0.999)] {
            let v = self.quantile(now_s, q).unwrap_or(0.0);
            out.push_str(&format!("{name}{{quantile=\"{label}\"}} {v}\n"));
        }
        out.push_str(&format!("{name}_count {}\n", self.count(now_s)));
        out
    }
}

fn prune(inner: &mut WindowInner, now_slot: i64) {
    let oldest = now_slot - inner.slots as i64 + 1;
    inner.buckets.retain(|&slot, _| slot >= oldest);
}

/// Maps a dotted metric name onto the Prometheus charset
/// (`[a-zA-Z0-9_:]`); anything else becomes `_`.
pub fn prometheus_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

static GLOBAL: MetricsRegistry = MetricsRegistry::new();

/// The process-wide registry every instrumented crate reports into.
pub fn metrics() -> &'static MetricsRegistry {
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_merges_across_threads() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("t.count");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(reg.snapshot().counter("t.count"), 4000);
        reg.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn same_name_returns_same_counter() {
        let reg = MetricsRegistry::new();
        reg.counter("a").add(2);
        reg.counter("a").add(3);
        assert_eq!(reg.counter("a").get(), 5);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn histogram_buckets_values() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", &[1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 50.0, 500.0, 7.0] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![1, 2, 1, 1]);
        assert_eq!(snap.count, 5);
        assert!((snap.sum - 562.5).abs() < 1e-9);
        assert!((snap.mean() - 112.5).abs() < 1e-9);
    }

    #[test]
    fn gauge_last_write_wins() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        g.set(3.5);
        g.set(-1.25);
        assert_eq!(g.get(), -1.25);
    }

    #[test]
    fn sliding_window_quantiles_roll_off_old_samples() {
        let w = SlidingWindowHistogram::new(1.0, 10);
        for i in 0..100 {
            w.observe(0.5, i as f64);
        }
        assert_eq!(w.count(0.5), 100);
        let p50 = w.quantile(0.5, 0.5).unwrap();
        assert!((49.0..=51.0).contains(&p50), "p50 {p50}");
        let p99 = w.quantile(0.5, 0.99).unwrap();
        assert!((97.0..=99.0).contains(&p99), "p99 {p99}");
        assert_eq!(w.quantile(0.5, 0.999).unwrap(), 99.0);
        // Nine seconds later the slot is still inside the 10 s window...
        assert_eq!(w.count(9.2), 100);
        // ...but after the window passes the samples are gone.
        assert_eq!(w.count(30.0), 0);
        assert!(w.quantile(30.0, 0.5).is_none());
    }

    #[test]
    fn sliding_window_caps_each_slot() {
        let w = SlidingWindowHistogram::new(1.0, 4);
        {
            let mut inner = w.lock();
            inner.per_slot_cap = 8;
        }
        for i in 0..20 {
            w.observe(0.0, i as f64);
        }
        assert_eq!(w.count(0.0), 8);
        assert_eq!(w.dropped(), 12);
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let reg = MetricsRegistry::new();
        reg.counter("serve.requests").add(7);
        reg.gauge("serve.queue_depth").set(2.0);
        let h = reg.histogram("serve.exec_ms", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(50.0);
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("# TYPE serve_requests counter\nserve_requests 7\n"));
        assert!(text.contains("# TYPE serve_queue_depth gauge\nserve_queue_depth 2\n"));
        assert!(text.contains("serve_exec_ms_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("serve_exec_ms_bucket{le=\"10\"} 2\n"));
        assert!(text.contains("serve_exec_ms_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("serve_exec_ms_count 3\n"));
        // No raw dots survive into metric names.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split([' ', '{']).next().unwrap();
            assert!(!name.contains('.'), "unsanitised name in {line:?}");
        }
    }

    #[test]
    fn prometheus_names_are_sanitised() {
        assert_eq!(prometheus_name("a.b-c"), "a_b_c");
        assert_eq!(prometheus_name("9lives"), "_9lives");
        assert_eq!(prometheus_name("ok_name:x"), "ok_name:x");
    }

    #[test]
    fn window_summary_lines_render() {
        let w = SlidingWindowHistogram::new(1.0, 60);
        for i in 1..=100 {
            w.observe(0.0, i as f64);
        }
        let text = w.render_prometheus("serve.exec_ms.window", 0.0);
        assert!(text.contains("# TYPE serve_exec_ms_window summary"));
        assert!(text.contains("serve_exec_ms_window{quantile=\"0.5\"}"));
        assert!(text.contains("serve_exec_ms_window{quantile=\"0.999\"} 100\n"));
        assert!(text.contains("serve_exec_ms_window_count 100\n"));
    }

    #[test]
    fn render_text_is_name_ordered() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last").inc();
        reg.counter("a.first").add(2);
        reg.gauge("m.mid").set(1.5);
        reg.histogram("h.one", &[1.0]).observe(0.5);
        let text = reg.render_text();
        let a = text.find("a.first 2").unwrap();
        let z = text.find("z.last 1").unwrap();
        assert!(a < z);
        assert!(text.contains("m.mid 1.5"));
        assert!(text.contains("h.one count=1"));
    }
}
