//! Metrics registry: named counters, gauges, and fixed-bucket histograms.
//!
//! Counters are sharded across a small fixed set of cache-line-aligned
//! atomic cells; each worker thread is pinned to one shard on first use, so
//! concurrent increments from the rayon-shim pool rarely contend. Draining
//! (`get` / `snapshot`) merges shards by unsigned addition — commutative,
//! so the merged value is deterministic regardless of which thread
//! incremented which shard.
//!
//! The process-wide registry behind [`metrics()`] is what the CLI's
//! `--metrics` flag dumps; instrumented crates may also hold private
//! [`MetricsRegistry`] instances (the `PlanCache` keeps one per cache so
//! per-cache statistics stay isolated).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Number of counter shards. A small power of two: enough to keep the
/// rayon-shim pool (≤ 16 workers) off each other's cache lines.
const SHARDS: usize = 16;

/// A cache-line-aligned atomic cell, so neighbouring shards don't
/// false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedAtomic(AtomicU64);

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's shard index, assigned round-robin on first use.
    static SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

#[inline]
fn shard_index() -> usize {
    SHARD.with(|s| *s)
}

#[derive(Default)]
struct CounterCells {
    shards: [PaddedAtomic; SHARDS],
}

/// A monotonically increasing counter, cheap to clone (an `Arc` to the
/// shared cells) and cheap to bump from any thread.
#[derive(Clone)]
pub struct Counter {
    cells: Arc<CounterCells>,
}

impl Counter {
    fn new() -> Counter {
        Counter {
            cells: Arc::new(CounterCells::default()),
        }
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.cells.shards[shard_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Deterministic merge of all shards.
    pub fn get(&self) -> u64 {
        self.cells
            .shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }

    fn reset(&self) {
        for s in &self.cells.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A last-write-wins `f64` gauge.
#[derive(Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    fn new() -> Gauge {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }

    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A histogram with fixed upper-bound buckets plus an overflow bucket.
/// Bucket counts are plain atomic adds, so the drained counts merge
/// deterministically; the running sum is a CAS-add of `f64` bits and is
/// deterministic only up to floating-point reassociation.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramCells>,
}

struct HistogramCells {
    /// Inclusive upper bounds, strictly increasing.
    bounds: Vec<f64>,
    /// One count per bound, plus the overflow bucket.
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            inner: Arc::new(HistogramCells {
                bounds: bounds.to_vec(),
                counts,
                sum_bits: AtomicU64::new(0f64.to_bits()),
            }),
        }
    }

    pub fn observe(&self, value: f64) {
        let idx = self
            .inner
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.inner.bounds.len());
        self.inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        let mut cur = self.inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match self.inner.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .inner
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            bounds: self.inner.bounds.clone(),
            count: counts.iter().sum(),
            sum: f64::from_bits(self.inner.sum_bits.load(Ordering::Relaxed)),
            counts,
        }
    }

    fn reset(&self) {
        for c in &self.inner.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.inner.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// A drained histogram: bucket bounds, per-bucket counts (the final entry
/// is the overflow bucket), total count, and the (approximate) sum.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub bounds: Vec<f64>,
    pub counts: Vec<u64>,
    pub count: u64,
    pub sum: f64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named-metric registry. `counter` / `gauge` / `histogram` get-or-create
/// by name; handles are cheap clones, so call sites should cache them
/// (e.g. in a `OnceLock`) rather than re-looking-up in hot loops.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    pub const fn new() -> MetricsRegistry {
        MetricsRegistry {
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Gets or creates the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} is not a counter"),
        }
    }

    /// Gets or creates the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} is not a gauge"),
        }
    }

    /// Gets or creates the histogram `name` with the given bucket bounds
    /// (ignored if the histogram already exists).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind,
    /// or if `bounds` is not strictly increasing.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let mut metrics = self.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds)))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    /// Drains every metric into a deterministic, name-ordered snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.lock();
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }

    /// Zeroes every registered metric (registrations and handles survive).
    pub fn reset(&self) {
        let metrics = self.lock();
        for metric in metrics.values() {
            match metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.set(0.0),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }

    /// Renders the registry as an aligned plain-text dump (the `--metrics`
    /// output), one metric per line in name order.
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }
}

/// A point-in-time, name-ordered copy of a registry's values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The counter's value, or 0 if absent (makes delta code total).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("# counters\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("{name} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("# gauges\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("{name} {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("# histograms\n");
            for (name, h) in &self.histograms {
                out.push_str(&format!("{name} count={} mean={:.6}", h.count, h.mean()));
                for (i, c) in h.counts.iter().enumerate() {
                    match h.bounds.get(i) {
                        Some(b) => out.push_str(&format!(" le{b}={c}")),
                        None => out.push_str(&format!(" inf={c}")),
                    }
                }
                out.push('\n');
            }
        }
        out
    }
}

static GLOBAL: MetricsRegistry = MetricsRegistry::new();

/// The process-wide registry every instrumented crate reports into.
pub fn metrics() -> &'static MetricsRegistry {
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_merges_across_threads() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("t.count");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(reg.snapshot().counter("t.count"), 4000);
        reg.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn same_name_returns_same_counter() {
        let reg = MetricsRegistry::new();
        reg.counter("a").add(2);
        reg.counter("a").add(3);
        assert_eq!(reg.counter("a").get(), 5);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn histogram_buckets_values() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", &[1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 50.0, 500.0, 7.0] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![1, 2, 1, 1]);
        assert_eq!(snap.count, 5);
        assert!((snap.sum - 562.5).abs() < 1e-9);
        assert!((snap.mean() - 112.5).abs() < 1e-9);
    }

    #[test]
    fn gauge_last_write_wins() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        g.set(3.5);
        g.set(-1.25);
        assert_eq!(g.get(), -1.25);
    }

    #[test]
    fn render_text_is_name_ordered() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last").inc();
        reg.counter("a.first").add(2);
        reg.gauge("m.mid").set(1.5);
        reg.histogram("h.one", &[1.0]).observe(0.5);
        let text = reg.render_text();
        let a = text.find("a.first 2").unwrap();
        let z = text.find("z.last 1").unwrap();
        assert!(a < z);
        assert!(text.contains("m.mid 1.5"));
        assert!(text.contains("h.one count=1"));
    }
}
