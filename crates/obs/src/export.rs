//! Unified Chrome/Perfetto timeline export.
//!
//! Both execution backends produce a [`TaskGraph`] + [`Trace`] pair — the
//! simulator with virtual timestamps, the threaded runtime with monotonic
//! wall-clock timestamps — and this module renders either into one JSON
//! schema that loads directly into `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev):
//!
//! * one *process* row per host, one *thread* row per device (named via
//!   `ph: "M"` metadata events);
//! * compute tasks and flows as complete events (`ph: "X"`) under the
//!   `compute` / `comm` categories (`recovery` for repaired re-runs);
//! * markers and runtime flow acks as instant events (`ph: "i"`);
//! * metric series (plan-cache counters, runtime queue depths) as counter
//!   tracks (`ph: "C"`) on a dedicated `metrics` process row.
//!
//! Rendering is hand-rolled rather than serde-derived so field order, and
//! therefore the byte-level output, is stable — the golden-file test in
//! `tests/obs_overhead.rs` relies on it.

use crossmesh_netsim::{ClusterSpec, TaskGraph, Trace, Work};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// How a run's events are categorised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunKind {
    /// Normal execution: `compute` / `comm` categories.
    Primary,
    /// A repaired re-execution after a fault: everything under `recovery`.
    Recovery,
}

#[derive(Debug, Clone)]
struct CompleteEvent {
    name: String,
    cat: &'static str,
    ts_us: f64,
    dur_us: f64,
    pid: u32,
    tid: u32,
}

#[derive(Debug, Clone)]
struct InstantEvent {
    name: String,
    cat: &'static str,
    ts_us: f64,
    pid: u32,
    tid: u32,
}

/// Builder for the unified timeline JSON.
#[derive(Debug, Default)]
pub struct TraceExport {
    /// (pid, name) process rows, deduped.
    processes: BTreeMap<u32, String>,
    /// ((pid, tid), name) thread rows, deduped.
    threads: BTreeMap<(u32, u32), String>,
    complete: Vec<CompleteEvent>,
    instants: Vec<InstantEvent>,
    /// name → samples of (ts_us, value), rendered in name order.
    counters: BTreeMap<String, Vec<(f64, f64)>>,
}

impl TraceExport {
    pub fn new() -> TraceExport {
        TraceExport::default()
    }

    /// Appends one executed run. `offset_us` shifts every timestamp, so a
    /// recovery re-run can be laid out after the failed attempt it repairs.
    pub fn push_run(
        &mut self,
        graph: &TaskGraph,
        trace: &Trace,
        cluster: &ClusterSpec,
        kind: RunKind,
        offset_us: f64,
    ) {
        for h in 0..cluster.num_hosts() {
            self.processes
                .entry(h)
                .or_insert_with(|| format!("host {h}"));
            for d in cluster.devices_on(crossmesh_netsim::HostId(h)) {
                self.threads
                    .entry((h, d.0))
                    .or_insert_with(|| format!("device {}", d.0));
            }
        }
        for (id, task) in graph.iter() {
            let interval = trace.interval(id);
            let ts_us = interval.start * 1e6 + offset_us;
            let (device, cat, default_name) = match task.work {
                Work::Compute { device, .. } | Work::ComputeFlops { device, .. } => {
                    (device, "compute", format!("compute {id}"))
                }
                Work::Flow { src, dst, bytes } => {
                    (src, "comm", format!("flow {id} -> {dst} ({bytes:.0} B)"))
                }
                Work::Marker => {
                    // Markers are instantaneous bookkeeping: instant events
                    // pinned to the first device row.
                    self.instants.push(InstantEvent {
                        name: task.label.clone().unwrap_or_else(|| format!("marker {id}")),
                        cat: "marker",
                        ts_us,
                        pid: 0,
                        tid: 0,
                    });
                    continue;
                }
            };
            let cat = match kind {
                RunKind::Primary => cat,
                RunKind::Recovery => "recovery",
            };
            self.complete.push(CompleteEvent {
                name: task.label.clone().unwrap_or(default_name),
                cat,
                ts_us,
                dur_us: (interval.finish - interval.start).max(0.0) * 1e6,
                pid: cluster.host_of(device).0,
                tid: device.0,
            });
        }
    }

    /// Names a process row explicitly (used by exporters that are not
    /// backed by a [`TaskGraph`] run, like the flight recorder).
    pub fn add_process(&mut self, pid: u32, name: impl Into<String>) {
        self.processes.insert(pid, name.into());
    }

    /// Names a thread row explicitly.
    pub fn add_thread(&mut self, pid: u32, tid: u32, name: impl Into<String>) {
        self.threads.insert((pid, tid), name.into());
    }

    /// Adds one complete (`ph: "X"`) event on an explicit row. Durations
    /// are clamped non-negative so the document always validates.
    pub fn add_complete(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        ts_us: f64,
        dur_us: f64,
        pid: u32,
        tid: u32,
    ) {
        self.complete.push(CompleteEvent {
            name: name.into(),
            cat,
            ts_us,
            dur_us: dur_us.max(0.0),
            pid,
            tid,
        });
    }

    /// Adds an instant event on an explicit device row (used for runtime
    /// flow ack marks).
    pub fn add_instant(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        ts_us: f64,
        pid: u32,
        tid: u32,
    ) {
        self.instants.push(InstantEvent {
            name: name.into(),
            cat,
            ts_us,
            pid,
            tid,
        });
    }

    /// Adds samples to the counter track `name`. Samples render in the
    /// order given; repeated calls append.
    pub fn add_counter(&mut self, name: impl Into<String>, samples: &[(f64, f64)]) {
        self.counters
            .entry(name.into())
            .or_default()
            .extend_from_slice(samples);
    }

    /// The pid used for the synthetic `metrics` process row: one past the
    /// largest host pid (or 0 if no runs were pushed).
    fn metrics_pid(&self) -> u32 {
        self.processes.keys().max().map_or(0, |&p| p + 1)
    }

    /// Renders the deterministic JSON document.
    pub fn render(&self) -> String {
        let mut events: Vec<String> = Vec::new();
        for (&pid, name) in &self.processes {
            events.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":{}}}}}",
                json_str(name)
            ));
        }
        if !self.counters.is_empty() {
            let pid = self.metrics_pid();
            events.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"metrics\"}}}}"
            ));
        }
        for (&(pid, tid), name) in &self.threads {
            events.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":{}}}}}",
                json_str(name)
            ));
        }
        for e in &self.complete {
            events.push(format!(
                "{{\"name\":{},\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}}}",
                json_str(&e.name),
                e.cat,
                num(e.ts_us),
                num(e.dur_us),
                e.pid,
                e.tid
            ));
        }
        for e in &self.instants {
            events.push(format!(
                "{{\"name\":{},\"cat\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":{},\"tid\":{},\"s\":\"t\"}}",
                json_str(&e.name),
                e.cat,
                num(e.ts_us),
                e.pid,
                e.tid
            ));
        }
        let metrics_pid = self.metrics_pid();
        for (name, samples) in &self.counters {
            for &(ts_us, value) in samples {
                events.push(format!(
                    "{{\"name\":{},\"cat\":\"metric\",\"ph\":\"C\",\"ts\":{},\"pid\":{metrics_pid},\"tid\":0,\"args\":{{\"value\":{}}}}}",
                    json_str(name),
                    num(ts_us),
                    num(value)
                ));
            }
        }
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(e);
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Formats a finite number without scientific notation surprises: plain
/// `Display` for `f64` is shortest-round-trip and deterministic.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Escapes `s` as a JSON string literal (with quotes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A structural summary of an exported timeline, used to check that two
/// exports (e.g. sim-backend vs threads-backend) share one schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total events, all phases.
    pub events: usize,
    /// Categories seen on `X`/`i` events.
    pub categories: BTreeSet<String>,
    /// Event phases seen (`M`, `X`, `i`, `C`, ...).
    pub phases: BTreeSet<String>,
    /// Distinct (pid, tid) device rows carrying `X` events.
    pub device_rows: BTreeSet<(u64, u64)>,
    /// Names of counter tracks.
    pub counter_tracks: BTreeSet<String>,
    /// JSON object keys used by each phase.
    pub keys_by_phase: BTreeMap<String, BTreeSet<String>>,
}

impl TraceSummary {
    /// Two exports share a schema when every phase present in both uses
    /// the same JSON keys, and both carry the load-bearing phases: row
    /// metadata (`M`), complete events (`X`), and counter tracks (`C`).
    pub fn schema_matches(&self, other: &TraceSummary) -> bool {
        for required in ["M", "X", "C"] {
            if !self.phases.contains(required) || !other.phases.contains(required) {
                return false;
            }
        }
        for (ph, keys) in &self.keys_by_phase {
            if let Some(other_keys) = other.keys_by_phase.get(ph) {
                if keys != other_keys {
                    return false;
                }
            }
        }
        true
    }
}

/// Parses and structurally validates an exported timeline.
///
/// Checks: top-level object with a `traceEvents` array; every event is an
/// object with `name` and `ph`; `X` events carry `cat`/`ts`/`dur`/`pid`/`tid`
/// with a non-negative finite duration; `i` events carry a scope; `C`
/// events carry a numeric `args.value`.
pub fn validate(json: &str) -> Result<TraceSummary, String> {
    let value: serde_json::Value =
        serde_json::from_str(json).map_err(|e| format!("invalid JSON: {e:?}"))?;
    let top = value.as_object().ok_or("top level must be an object")?;
    let events = top
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or("missing traceEvents array")?;

    let mut summary = TraceSummary {
        events: events.len(),
        categories: BTreeSet::new(),
        phases: BTreeSet::new(),
        device_rows: BTreeSet::new(),
        counter_tracks: BTreeSet::new(),
        keys_by_phase: BTreeMap::new(),
    };

    for (i, event) in events.iter().enumerate() {
        let obj = event
            .as_object()
            .ok_or_else(|| format!("event {i} is not an object"))?;
        let ph = obj
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i} has no ph"))?
            .to_string();
        let name = obj
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i} has no name"))?;
        summary
            .keys_by_phase
            .entry(ph.clone())
            .or_default()
            .extend(obj.keys().cloned());
        if let Some(cat) = obj.get("cat").and_then(|v| v.as_str()) {
            if ph == "X" || ph == "i" {
                summary.categories.insert(cat.to_string());
            }
        }
        match ph.as_str() {
            "X" => {
                let dur = obj
                    .get("dur")
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| format!("X event {i} ({name}) has no dur"))?;
                if !dur.is_finite() || dur < 0.0 {
                    return Err(format!("X event {i} ({name}) has bad dur {dur}"));
                }
                let ts = obj
                    .get("ts")
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| format!("X event {i} ({name}) has no ts"))?;
                if !ts.is_finite() {
                    return Err(format!("X event {i} ({name}) has bad ts"));
                }
                let pid = obj
                    .get("pid")
                    .and_then(|v| v.as_u64())
                    .ok_or_else(|| format!("X event {i} ({name}) has no pid"))?;
                let tid = obj
                    .get("tid")
                    .and_then(|v| v.as_u64())
                    .ok_or_else(|| format!("X event {i} ({name}) has no tid"))?;
                summary.device_rows.insert((pid, tid));
            }
            "i" => {
                obj.get("s")
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| format!("instant event {i} ({name}) has no scope"))?;
            }
            "C" => {
                obj.get("args")
                    .and_then(|v| v.get("value"))
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| format!("counter event {i} ({name}) has no args.value"))?;
                summary.counter_tracks.insert(name.to_string());
            }
            _ => {}
        }
        summary.phases.insert(ph);
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossmesh_netsim::{Engine, LinkParams};

    fn run() -> (ClusterSpec, TaskGraph, Trace) {
        let c = ClusterSpec::homogeneous(2, 2, LinkParams::new(10.0, 1.0));
        let mut g = TaskGraph::new();
        let f = g.add_labeled(
            Work::flow(c.device(0, 0), c.device(1, 0), 5.0),
            [],
            Some("payload"),
        );
        g.add(Work::compute(c.device(1, 0), 1.0), [f]);
        g.add_labeled(Work::Marker, [], Some("epoch"));
        let trace = Engine::new(&c).run(&g).unwrap();
        (c, g, trace)
    }

    #[test]
    fn export_validates_and_carries_all_row_kinds() {
        let (c, g, trace) = run();
        let mut export = TraceExport::new();
        export.push_run(&g, &trace, &c, RunKind::Primary, 0.0);
        export.add_counter("plan_cache.hits", &[(0.0, 0.0), (1e6, 3.0)]);
        let json = export.render();
        let summary = validate(&json).expect("export validates");
        assert!(summary.phases.contains("M"));
        assert!(summary.phases.contains("X"));
        assert!(summary.phases.contains("i"));
        assert!(summary.phases.contains("C"));
        assert!(summary.categories.contains("comm"));
        assert!(summary.categories.contains("compute"));
        assert!(summary.categories.contains("marker"));
        assert_eq!(
            summary.counter_tracks.iter().collect::<Vec<_>>(),
            vec!["plan_cache.hits"]
        );
        // Two hosts of two devices each named; flow on (h0, d0),
        // compute on (h1, d2).
        assert!(summary.device_rows.contains(&(0, 0)));
        assert!(summary.device_rows.contains(&(1, 2)));
        assert!(json.contains("\"name\":\"epoch\""));
    }

    #[test]
    fn recovery_runs_use_the_recovery_category() {
        let (c, g, trace) = run();
        let mut export = TraceExport::new();
        export.push_run(&g, &trace, &c, RunKind::Primary, 0.0);
        export.push_run(&g, &trace, &c, RunKind::Recovery, 2e6);
        let summary = validate(&export.render()).unwrap();
        assert!(summary.categories.contains("recovery"));
        assert!(summary.categories.contains("compute"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let (c, g, trace) = run();
        let build = || {
            let mut export = TraceExport::new();
            export.push_run(&g, &trace, &c, RunKind::Primary, 0.0);
            export.add_counter("q", &[(0.0, 1.0)]);
            export.render()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn sim_and_synthetic_threads_exports_share_schema() {
        let (c, g, trace) = run();
        let mut a = TraceExport::new();
        a.push_run(&g, &trace, &c, RunKind::Primary, 0.0);
        a.add_counter("x", &[(0.0, 1.0)]);
        let mut b = TraceExport::new();
        b.push_run(&g, &trace, &c, RunKind::Primary, 10.0);
        b.add_counter("y", &[(0.0, 2.0), (5.0, 3.0)]);
        b.add_instant("ack", "comm", 3.0, 0, 0);
        let sa = validate(&a.render()).unwrap();
        let sb = validate(&b.render()).unwrap();
        assert!(sa.schema_matches(&sb));
        assert!(sb.schema_matches(&sa));
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate("[]").is_err());
        assert!(validate("{\"traceEvents\":3}").is_err());
        assert!(validate("{\"traceEvents\":[{\"name\":\"x\"}]}").is_err());
        assert!(validate(
            "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\",\"ts\":0,\"pid\":0,\"tid\":0}]}"
        )
        .is_err());
    }

    #[test]
    fn explicit_rows_and_completes_validate_without_a_run() {
        let mut export = TraceExport::new();
        export.add_process(0, "flight-recorder");
        export.add_thread(0, 3, "shard 3");
        export.add_complete("plan", "flightrec", 10.0, -4.0, 0, 3);
        export.add_instant("dump: slo-breach", "flightrec", 20.0, 0, 0);
        export.add_counter("flightrec.dropped", &[(20.0, 0.0)]);
        let json = export.render();
        let summary = validate(&json).expect("validates");
        assert!(summary.phases.contains("M"));
        assert!(summary.phases.contains("X"));
        assert!(summary.phases.contains("C"));
        assert!(summary.device_rows.contains(&(0, 3)));
        // The negative duration was clamped, not emitted.
        assert!(json.contains("\"dur\":0"));
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
