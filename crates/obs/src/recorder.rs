//! Flight recorder: an always-on, per-thread-sharded bounded ring buffer
//! retaining the last N spans, events, and metric deltas, dumped to a
//! Perfetto-compatible JSON file when something goes wrong.
//!
//! The recorder implements [`Collector`], so it rides the facade's
//! relaxed-atomic fast path: with no recorder (or no collector) installed
//! every instrumentation site costs one load. When installed, each record
//! is one uncontended mutex acquire — records land in the shard pinned to
//! the recording thread, so threads never contend for a ring except
//! against [`FlightRecorder::dump`] itself.
//!
//! Dumps are triggered, not periodic: check convictions, fault repairs,
//! serve shed spikes, SLO breaches, and panics (via
//! [`install_panic_hook`]) each snapshot the rings into a
//! `flightrec-<trigger>-<n>.json` rendered through [`crate::export`], so
//! `crossmesh validate-trace` accepts the dump unchanged and
//! [Perfetto](https://ui.perfetto.dev) opens it directly.

use crate::collect::Collector;
use crate::export::TraceExport;
use crate::{Event, Level, SpanId};
use crossmesh_hb as hb;
use parking_lot::Mutex as ShardMutex;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Ring shards. Mirrors the metrics registry's shard count: enough that
/// the worker pool's threads land on distinct rings.
const SHARDS: usize = 16;

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's ring shard, assigned round-robin on first record.
    static SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

#[inline]
fn shard_index() -> usize {
    SHARD.with(|s| *s)
}

#[derive(Debug, Clone)]
enum RecordKind {
    Event {
        level: Level,
        target: &'static str,
        name: &'static str,
    },
    SpanOpen {
        id: u64,
        target: &'static str,
        name: &'static str,
    },
    SpanClose {
        id: u64,
        name: &'static str,
    },
    Metric {
        name: String,
        value: f64,
    },
}

#[derive(Debug, Clone)]
struct Record {
    seq: u64,
    ts_us: f64,
    kind: RecordKind,
}

#[derive(Debug, Default)]
struct Ring {
    records: VecDeque<Record>,
    dropped: u64,
}

/// The per-thread-sharded bounded ring buffer. See the module docs.
///
/// The shard locks are the instrumented `parking_lot` shim and each ring
/// is a declared `check::race` access point, so the race detector audits
/// the push/dump protocol along with the rest of the concurrent core.
#[derive(Debug)]
pub struct FlightRecorder {
    shards: Vec<ShardMutex<Ring>>,
    cap_per_shard: usize,
    epoch: Instant,
    seq: AtomicU64,
    dumps: AtomicU64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// A recorder retaining the last ~16 384 records.
    pub fn new() -> FlightRecorder {
        FlightRecorder::with_capacity(16_384)
    }

    /// A recorder retaining roughly the last `capacity` records (split
    /// evenly across the thread shards).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            shards: (0..SHARDS)
                .map(|_| ShardMutex::new(Ring::default()))
                .collect(),
            cap_per_shard: (capacity / SHARDS).max(1),
            epoch: Instant::now(),
            seq: AtomicU64::new(0),
            dumps: AtomicU64::new(0),
        }
    }

    fn push(&self, kind: RecordKind) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let ts_us = self.epoch.elapsed().as_secs_f64() * 1e6;
        let shard = &self.shards[shard_index()];
        let mut ring = shard.lock();
        hb::write(hb::object_id(shard));
        if ring.records.len() >= self.cap_per_shard {
            ring.records.pop_front();
            ring.dropped += 1;
        }
        ring.records.push_back(Record { seq, ts_us, kind });
    }

    /// Records a metric delta (`name`, `value`) into the ring, so counter
    /// movements show up as `C` tracks in the dump alongside spans.
    pub fn record_metric(&self, name: &str, value: f64) {
        self.push(RecordKind::Metric {
            name: name.to_string(),
            value,
        });
    }

    /// Total records ever pushed (retained or since evicted).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Records evicted from full rings.
    pub fn dropped(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                let ring = s.lock();
                hb::read(hb::object_id(s));
                ring.dropped
            })
            .sum()
    }

    /// Dumps performed so far (also the sequence number in dump filenames).
    pub fn dumps(&self) -> u64 {
        self.dumps.load(Ordering::Relaxed)
    }

    /// Renders the retained records as a Perfetto-compatible timeline:
    /// matched span open/close pairs become complete (`X`) events on
    /// their shard's thread row, free-standing events become instants,
    /// metric deltas become counter tracks, and the trigger itself is
    /// marked with a `dump: <trigger>` instant. The rings are snapshotted,
    /// not cleared — overlapping triggers each get the full recent window.
    pub fn dump(&self, trigger: &str) -> String {
        let mut records: Vec<(usize, Record)> = Vec::new();
        let mut dropped = 0u64;
        for (shard, ring_lock) in self.shards.iter().enumerate() {
            let ring = ring_lock.lock();
            hb::read(hb::object_id(ring_lock));
            dropped += ring.dropped;
            records.extend(ring.records.iter().map(|r| (shard, r.clone())));
        }
        records.sort_by_key(|(_, r)| r.seq);

        let mut export = TraceExport::new();
        export.add_process(0, "flight-recorder");
        for shard in 0..SHARDS as u32 {
            export.add_thread(0, shard, format!("shard {shard}"));
        }

        let mut open: HashMap<u64, (f64, &'static str, &'static str, usize)> = HashMap::new();
        let now_us = self.epoch.elapsed().as_secs_f64() * 1e6;
        for (shard, record) in &records {
            match &record.kind {
                RecordKind::Event {
                    level,
                    target,
                    name,
                } => {
                    export.add_instant(
                        format!("[{}] {target}: {name}", level.as_str()),
                        "flightrec",
                        record.ts_us,
                        0,
                        *shard as u32,
                    );
                }
                RecordKind::SpanOpen { id, target, name } => {
                    open.insert(*id, (record.ts_us, target, name, *shard));
                }
                RecordKind::SpanClose { id, name } => match open.remove(id) {
                    Some((ts_us, target, _open_name, open_shard)) => {
                        export.add_complete(
                            format!("{target}: {name}"),
                            "flightrec",
                            ts_us,
                            record.ts_us - ts_us,
                            0,
                            open_shard as u32,
                        );
                    }
                    None => {
                        // The open scrolled out of the ring; keep the
                        // close visible as an instant.
                        export.add_instant(
                            format!("close: {name}"),
                            "flightrec",
                            record.ts_us,
                            0,
                            *shard as u32,
                        );
                    }
                },
                RecordKind::Metric { name, value } => {
                    export.add_counter(name.clone(), &[(record.ts_us, *value)]);
                }
            }
        }
        // Spans still open when the dump fired extend to the dump edge.
        for (ts_us, target, name, shard) in open.into_values() {
            export.add_complete(
                format!("{target}: {name} (open)"),
                "flightrec",
                ts_us,
                now_us - ts_us,
                0,
                shard as u32,
            );
        }
        export.add_instant(format!("dump: {trigger}"), "flightrec", now_us, 0, 0);
        export.add_counter("flightrec.dropped", &[(now_us, dropped as f64)]);
        export.render()
    }

    /// Dumps into `dir` as `flightrec-<trigger>-<n>.json` (creating the
    /// directory), returning the written path. The trigger is sanitised
    /// into the filename; `n` increments per dump from this recorder.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and write failures.
    pub fn dump_to_dir(&self, dir: &Path, trigger: &str) -> io::Result<PathBuf> {
        let n = self.dumps.fetch_add(1, Ordering::Relaxed) + 1;
        let slug: String = trigger
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("flightrec-{slug}-{n:04}.json"));
        std::fs::write(&path, self.dump(trigger))?;
        Ok(path)
    }
}

impl Collector for FlightRecorder {
    fn on_event(&self, event: &Event<'_>) {
        self.push(RecordKind::Event {
            level: event.level,
            target: event.target,
            name: event.name,
        });
    }

    fn on_span_open(&self, id: SpanId, span: &Event<'_>) {
        self.push(RecordKind::SpanOpen {
            id: id.0,
            target: span.target,
            name: span.name,
        });
    }

    fn on_span_close(&self, id: SpanId, _target: &'static str, name: &'static str) {
        self.push(RecordKind::SpanClose { id: id.0, name });
    }
}

static GLOBAL: Mutex<Option<Arc<FlightRecorder>>> = Mutex::new(None);

/// Replaces the process-wide recorder dump triggers target, returning the
/// previous one. The global recorder is *not* automatically installed as
/// the facade collector — callers compose it (usually via
/// [`Fanout`](crate::Fanout)) with whatever collector is already active.
pub fn set_global(rec: Option<Arc<FlightRecorder>>) -> Option<Arc<FlightRecorder>> {
    std::mem::replace(&mut *GLOBAL.lock().unwrap_or_else(|e| e.into_inner()), rec)
}

/// The process-wide recorder, if one is set.
pub fn global() -> Option<Arc<FlightRecorder>> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Best-effort trigger: dumps the global recorder (if any) into `dir`,
/// bumping `obs.recorder.dumps` and `obs.recorder.dump.<trigger>` in the
/// global metrics registry. Returns the written path, or `None` when no
/// recorder is set or the write failed (a failing dump must never take
/// down the process it is trying to explain).
pub fn dump_global(dir: &Path, trigger: &str) -> Option<PathBuf> {
    let rec = global()?;
    let path = rec.dump_to_dir(dir, trigger).ok()?;
    crate::metrics().counter("obs.recorder.dumps").inc();
    crate::metrics()
        .counter(&format!("obs.recorder.dump.{trigger}"))
        .inc();
    Some(path)
}

static PANIC_HOOK: AtomicBool = AtomicBool::new(false);

/// Chains a panic hook that dumps the global flight recorder into `dir`
/// (trigger `panic`) before delegating to the previous hook. Idempotent:
/// only the first call installs.
pub fn install_panic_hook(dir: PathBuf) {
    if PANIC_HOOK.swap(true, Ordering::SeqCst) {
        return;
    }
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let _ = dump_global(&dir, "panic");
        prev(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{collect, export, Field};

    #[test]
    fn records_spans_events_and_metrics_into_a_valid_dump() {
        let rec = Arc::new(FlightRecorder::new());
        let _lock = collect::test_lock();
        {
            let _g = crate::install(rec.clone());
            let span = crate::Span::enter(Level::Info, "planner", "search", &[]);
            crate::event(Level::Debug, "runtime", "tick", &[Field::u64("n", 1)]);
            drop(span);
        }
        rec.record_metric("serve.queue_depth", 3.0);
        assert!(rec.recorded() >= 3);

        let json = rec.dump("unit-test");
        let summary = export::validate(&json).expect("dump validates");
        assert!(summary.phases.contains("M"));
        assert!(summary.phases.contains("X"), "span pair becomes X");
        assert!(summary.phases.contains("i"));
        assert!(summary.phases.contains("C"));
        assert!(summary.counter_tracks.contains("serve.queue_depth"));
        assert!(json.contains("planner: search"));
        assert!(json.contains("dump: unit-test"));
    }

    #[test]
    fn ring_is_bounded_and_keeps_the_newest_records() {
        let rec = FlightRecorder::with_capacity(SHARDS * 4);
        for i in 0..100u64 {
            rec.record_metric("m", i as f64);
        }
        // This thread writes one shard, so exactly cap_per_shard survive.
        assert_eq!(rec.recorded(), 100);
        assert_eq!(rec.dropped(), 100 - 4);
        let json = rec.dump("bounded");
        assert!(json.contains("\"value\":99"), "newest record retained");
        assert!(!json.contains("\"value\":5,"), "oldest records evicted");
    }

    #[test]
    fn concurrent_recording_never_loses_more_than_the_cap() {
        let rec = Arc::new(FlightRecorder::with_capacity(100_000));
        std::thread::scope(|s| {
            for t in 0..4 {
                let rec = Arc::clone(&rec);
                s.spawn(move || {
                    for i in 0..1000 {
                        rec.record_metric("thread", (t * 1000 + i) as f64);
                    }
                });
            }
        });
        assert_eq!(rec.recorded(), 4000);
        assert_eq!(rec.dropped(), 0);
        export::validate(&rec.dump("threads")).expect("valid dump under concurrency");
    }

    #[test]
    fn dump_to_dir_names_and_numbers_files() {
        let dir = std::env::temp_dir().join(format!("flightrec-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rec = FlightRecorder::new();
        rec.record_metric("x", 1.0);
        let p1 = rec.dump_to_dir(&dir, "slo breach!").unwrap();
        let p2 = rec.dump_to_dir(&dir, "slo breach!").unwrap();
        assert!(p1.file_name().unwrap().to_str().unwrap() == "flightrec-slo-breach--0001.json");
        assert!(p2.to_str().unwrap().ends_with("0002.json"));
        export::validate(&std::fs::read_to_string(&p1).unwrap()).expect("file validates");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn global_recorder_round_trips() {
        let _lock = collect::test_lock();
        let prev = set_global(Some(Arc::new(FlightRecorder::new())));
        assert!(global().is_some());
        set_global(prev);
    }
}
