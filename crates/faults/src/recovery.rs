//! Fault-tolerant execution: run a plan, and on sender failure repair it
//! around the crashed hosts and re-run.
//!
//! [`execute_with_repair`] is the recovery loop: execute under the
//! injected schedule; if the run fails, exclude every crashed host, ask
//! [`Plan::repair`] for a failover plan (surviving replicas take over the
//! orphaned unit tasks), and re-execute under the post-failover schedule
//! ([`FaultSchedule::without_crashes`]). Receiver-host crashes are out of
//! scope — the destination mesh must survive; only senders fail over.

use crate::backend::FaultInjectable;
use crate::schedule::FaultSchedule;
use crossmesh_core::{ExecutionReport, Plan, PlanCache, RepairError, SenderExclusions};
use crossmesh_netsim::{ClusterSpec, FailureKind, HostId, SimError, TaskGraph, Trace};
use crossmesh_obs as obs;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::OnceLock;

/// Registry handles for the recovery loop, resolved once.
struct RecoveryMetrics {
    runs: obs::Counter,
    rounds: obs::Counter,
    repairs: obs::Counter,
    failovers: obs::Counter,
    degraded_makespan: obs::Gauge,
}

fn recovery_metrics() -> &'static RecoveryMetrics {
    static METRICS: OnceLock<RecoveryMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let m = obs::metrics();
        RecoveryMetrics {
            runs: m.counter("recovery.runs"),
            rounds: m.counter("recovery.rounds"),
            repairs: m.counter("recovery.repairs"),
            failovers: m.counter("recovery.failovers"),
            degraded_makespan: m.gauge("recovery.degraded_makespan_s"),
        }
    })
}

/// Why fault-tolerant execution gave up.
#[derive(Debug)]
pub enum RecoveryError {
    /// The backend failed in a way failover cannot route around (for
    /// example a drop storm past the retry budget with no crashed host to
    /// exclude, or a failure that persisted after repair).
    Sim(SimError),
    /// The plan could not be repaired: some slice lost every replica.
    Repair(RepairError),
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Sim(e) => write!(f, "unrecoverable execution failure: {e}"),
            RecoveryError::Repair(e) => write!(f, "unrepairable plan: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoveryError::Sim(e) => Some(e),
            RecoveryError::Repair(e) => Some(e),
        }
    }
}

impl From<SimError> for RecoveryError {
    fn from(e: SimError) -> Self {
        RecoveryError::Sim(e)
    }
}

impl From<RepairError> for RecoveryError {
    fn from(e: RepairError) -> Self {
        RecoveryError::Repair(e)
    }
}

/// The outcome of a fault-tolerant execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// The report of the run that delivered the tensor (the repaired run
    /// if failover happened).
    pub report: ExecutionReport,
    /// True if the first attempt failed and a repaired plan was executed.
    pub repaired: bool,
    /// Unit tasks whose sender changed between the original and the
    /// repaired plan.
    pub failovers: usize,
    /// Hosts excluded from sending after the first attempt failed.
    pub excluded_hosts: Vec<HostId>,
    /// End-to-end completion time including the wasted first attempt,
    /// seconds; `None` when the first attempt was clean and undegraded.
    pub degraded_makespan: Option<f64>,
    /// Flow re-transmissions absorbed across both attempts.
    pub retries: u64,
    /// Repair plans served from the plan cache (0 without a cache).
    pub plan_cache_hits: u64,
    /// Repair plans that had to run the repair logic (0 without a cache,
    /// even though the repair then runs uncached).
    pub plan_cache_misses: u64,
}

/// Converts a trace with failed tasks into the error
/// [`FaultyBackend`](crate::FaultyBackend) would raise, so trace-style
/// (simulator) and abort-style (runtime) backends report failures
/// identically here.
fn failed_trace_error(
    backend: &'static str,
    schedule: &FaultSchedule,
    trace: &Trace,
    graph_len: usize,
) -> SimError {
    let task = *trace
        .failed_tasks()
        .first()
        .expect("caller checked failed_tasks is non-empty");
    let kind = if schedule.crashed_hosts().is_empty() {
        FailureKind::RetriesExhausted
    } else {
        FailureKind::HostCrash
    };
    SimError::TaskFailed {
        backend,
        task,
        kind,
        detail: format!(
            "{} of {} tasks failed under the injected schedule",
            trace.failed_tasks().len(),
            graph_len
        ),
    }
}

/// Executes `plan` under `schedule`; on failure, repairs the plan around
/// the schedule's crashed hosts and re-runs it with the crashes removed.
///
/// The returned [`RecoveryReport`] describes the run that delivered the
/// tensor, plus the degradation accounting: how many unit tasks failed
/// over, how many flow retries were absorbed, and the end-to-end
/// makespan including the wasted first attempt.
///
/// # Errors
///
/// * [`RecoveryError::Repair`] if some slice lost every replica holder
///   (data loss — failover is impossible);
/// * [`RecoveryError::Sim`] if the failure is not attributable to a
///   crashed host (nothing to exclude), if the repaired run fails again,
///   or on any non-fault backend error.
pub fn execute_with_repair<B: FaultInjectable>(
    plan: &Plan<'_>,
    cluster: &ClusterSpec,
    backend: &B,
    schedule: &FaultSchedule,
) -> Result<RecoveryReport, RecoveryError> {
    execute_with_repair_cached(plan, cluster, backend, schedule, None)
}

/// [`execute_with_repair`], with the repair step served from a
/// [`PlanCache`] when one is supplied: a repeated (plan, crashed-hosts)
/// pair replays the previously computed failover plan instead of
/// re-running `Plan::repair`. The exclusions are part of the cache key, so
/// a cached entry can never assign an excluded sender; the cache re-checks
/// that invariant on every hit anyway. The report's
/// [`plan_cache_hits`](RecoveryReport::plan_cache_hits) /
/// [`plan_cache_misses`](RecoveryReport::plan_cache_misses) are the
/// deltas this call contributed to the cache's counters.
///
/// # Errors
///
/// Same as [`execute_with_repair`].
pub fn execute_with_repair_cached<B: FaultInjectable>(
    plan: &Plan<'_>,
    cluster: &ClusterSpec,
    backend: &B,
    schedule: &FaultSchedule,
    cache: Option<&PlanCache>,
) -> Result<RecoveryReport, RecoveryError> {
    let span = obs::Span::enter(
        obs::Level::Debug,
        "faults.recovery",
        "execute_with_repair",
        &[
            obs::Field::str("backend", backend.name()),
            obs::Field::bool("cached", cache.is_some()),
        ],
    );
    let metrics = recovery_metrics();
    metrics.runs.inc();
    metrics.rounds.inc();
    let stats_before = cache.map(|c| c.stats()).unwrap_or_default();
    let cache_delta = |c: Option<&PlanCache>| {
        let after = c.map(|c| c.stats()).unwrap_or_default();
        (
            after.hits - stats_before.hits,
            after.misses - stats_before.misses,
        )
    };
    let mut graph = TaskGraph::new();
    let lowered = plan.lower(&mut graph, &[]);
    let (wasted, mut retries, failure) =
        match backend.execute_with_faults(cluster, &graph, schedule) {
            Ok(trace) if trace.failed_tasks().is_empty() => {
                let stats = trace.fault_stats();
                span.record(&[obs::Field::bool("repaired", false)]);
                return Ok(RecoveryReport {
                    report: ExecutionReport {
                        simulated_seconds: trace.interval(lowered.done).finish,
                        cross_host_bytes: trace.usage().total_cross_host_bytes(),
                        tasks_lowered: graph.len(),
                    },
                    repaired: false,
                    failovers: 0,
                    excluded_hosts: Vec::new(),
                    degraded_makespan: stats.degraded_makespan,
                    retries: stats.retries,
                    plan_cache_hits: 0,
                    plan_cache_misses: 0,
                });
            }
            // The simulator completes a faulted run and reports failed
            // tasks in the trace; its partial makespan is wasted time.
            Ok(trace) => {
                let failure = failed_trace_error(backend.name(), schedule, &trace, graph.len());
                (trace.makespan(), trace.fault_stats().retries, failure)
            }
            // The runtime aborts on the first failure; no usable clock.
            Err(e @ SimError::TaskFailed { .. }) => (0.0, 0, e),
            Err(e) => return Err(RecoveryError::Sim(e)),
        };

    let excluded_hosts = schedule.crashed_hosts();
    if excluded_hosts.is_empty() {
        // Failover routes around crashed hosts. A failure with no crash in
        // the schedule (a drop storm past the retry budget) would recur on
        // any repaired plan, so report it instead of looping.
        return Err(RecoveryError::Sim(failure));
    }
    let exclusions = SenderExclusions::for_hosts(excluded_hosts.iter().copied());
    metrics.repairs.inc();
    metrics.rounds.inc();
    if obs::enabled() {
        obs::event(
            obs::Level::Info,
            "faults.recovery",
            "repair",
            &[obs::Field::u64(
                "excluded_hosts",
                excluded_hosts.len() as u64,
            )],
        );
    }
    let repaired = match cache {
        Some(c) => c.repair(plan, &exclusions)?,
        None => plan.repair(&exclusions)?,
    };
    // Statically verify the repaired plan before committing the cluster to
    // re-execution: every unit still covered, nothing routed through a
    // crashed host, rings still well-formed.
    let diags = repaired.verify(Some(cluster), &|d, h| exclusions.excludes(d, h));
    if crossmesh_check::has_errors(&diags) {
        return Err(RecoveryError::Sim(SimError::Backend {
            backend: "check",
            message: format!(
                "repaired plan failed static verification:\n{}",
                crossmesh_check::render_text(&diags)
            ),
        }));
    }

    let mut graph = TaskGraph::new();
    let lowered = repaired.lower(&mut graph, &[]);
    let retry_schedule = schedule.without_crashes();
    let trace = backend.execute_with_faults(cluster, &graph, &retry_schedule)?;
    if !trace.failed_tasks().is_empty() {
        return Err(RecoveryError::Sim(failed_trace_error(
            backend.name(),
            &retry_schedule,
            &trace,
            graph.len(),
        )));
    }
    retries += trace.fault_stats().retries;

    let original: BTreeMap<usize, _> = plan
        .assignments()
        .iter()
        .map(|a| (a.unit, a.sender))
        .collect();
    let failovers = repaired
        .assignments()
        .iter()
        .filter(|a| original.get(&a.unit) != Some(&a.sender))
        .count();
    let finish = trace.interval(lowered.done).finish;
    let (plan_cache_hits, plan_cache_misses) = cache_delta(cache);
    metrics.failovers.add(failovers as u64);
    metrics.degraded_makespan.set(wasted + finish);
    span.record(&[
        obs::Field::bool("repaired", true),
        obs::Field::u64("failovers", failovers as u64),
        obs::Field::f64("degraded_makespan_s", wasted + finish),
    ]);
    Ok(RecoveryReport {
        report: ExecutionReport {
            simulated_seconds: finish,
            cross_host_bytes: trace.usage().total_cross_host_bytes(),
            tasks_lowered: graph.len(),
        },
        repaired: true,
        failovers,
        excluded_hosts,
        degraded_makespan: Some(wasted + finish),
        retries,
        plan_cache_hits,
        plan_cache_misses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::FaultEvent;
    use crossmesh_core::{
        CostParams, DeviceMesh, EnsemblePlanner, Planner, PlannerConfig, ReshardingTask,
    };
    use crossmesh_netsim::{LinkParams, SimBackend};
    use crossmesh_runtime::ThreadedBackend;

    fn cluster() -> ClusterSpec {
        ClusterSpec::homogeneous(5, 4, LinkParams::new(100.0, 1.0).with_latencies(0.0, 0.0))
    }

    /// A task whose every slice is replicated across both sender hosts, so
    /// one sender-host crash is always recoverable.
    fn replicated_task(c: &ClusterSpec) -> ReshardingTask {
        let a = DeviceMesh::from_cluster(c, 0, (2, 4), "A").unwrap();
        let b = DeviceMesh::from_cluster(c, 2, (2, 4), "B").unwrap();
        ReshardingTask::new(
            a,
            "RS1R".parse().unwrap(),
            b,
            "S0RR".parse().unwrap(),
            &[8, 8, 8],
            1,
        )
        .unwrap()
    }

    /// A task where each slice lives on exactly one sender host.
    fn unreplicated_task(c: &ClusterSpec) -> ReshardingTask {
        let a = DeviceMesh::from_cluster(c, 0, (2, 4), "A").unwrap();
        let b = DeviceMesh::from_cluster(c, 2, (2, 4), "B").unwrap();
        ReshardingTask::new(
            a,
            "S0RR".parse().unwrap(),
            b,
            "S0RR".parse().unwrap(),
            &[8, 8, 8],
            1,
        )
        .unwrap()
    }

    fn config() -> PlannerConfig {
        PlannerConfig::new(CostParams {
            inter_bw: 1.0,
            intra_bw: 100.0,
            inter_latency: 0.0,
            intra_latency: 0.0,
        })
    }

    #[test]
    fn a_clean_run_is_not_repaired() {
        let c = cluster();
        let t = replicated_task(&c);
        let plan = EnsemblePlanner::new(config()).plan(&t);
        let r = execute_with_repair(&plan, &c, &SimBackend, &FaultSchedule::new(0)).unwrap();
        assert!(!r.repaired);
        assert_eq!(r.failovers, 0);
        assert_eq!(r.retries, 0);
        assert!(r.degraded_makespan.is_none());
        assert!(r.report.simulated_seconds > 0.0);
    }

    #[test]
    fn a_crashed_sender_fails_over_on_the_simulator() {
        let c = cluster();
        let t = replicated_task(&c);
        let plan = EnsemblePlanner::new(config()).plan(&t);
        let schedule = FaultSchedule::new(0).with_event(FaultEvent::HostCrash { host: 0, at: 0.0 });
        let r = execute_with_repair(&plan, &c, &SimBackend, &schedule).unwrap();
        assert!(r.repaired);
        assert_eq!(r.excluded_hosts, vec![HostId(0)]);
        assert!(r.failovers > 0);
        let degraded = r.degraded_makespan.unwrap();
        assert!(degraded >= r.report.simulated_seconds);
    }

    #[test]
    fn a_crashed_sender_fails_over_on_the_runtime() {
        let c = cluster();
        let t = replicated_task(&c);
        let plan = EnsemblePlanner::new(config()).plan(&t);
        let schedule = FaultSchedule::new(0)
            .with_retry_policy(1, 1e-4)
            .with_event(FaultEvent::HostCrash { host: 0, at: 0.0 });
        let r = execute_with_repair(&plan, &c, &ThreadedBackend::threads(), &schedule).unwrap();
        assert!(r.repaired);
        assert_eq!(r.excluded_hosts, vec![HostId(0)]);
        assert!(r.failovers > 0);
    }

    #[test]
    fn a_cached_repair_matches_the_uncached_one_and_avoids_the_crash() {
        let c = cluster();
        let t = replicated_task(&c);
        let plan = EnsemblePlanner::new(config()).plan(&t);
        let schedule = FaultSchedule::new(0).with_event(FaultEvent::HostCrash { host: 0, at: 0.0 });
        let cache = crossmesh_core::PlanCache::new();

        let uncached = execute_with_repair(&plan, &c, &SimBackend, &schedule).unwrap();
        let cold =
            execute_with_repair_cached(&plan, &c, &SimBackend, &schedule, Some(&cache)).unwrap();
        assert_eq!((cold.plan_cache_hits, cold.plan_cache_misses), (0, 1));
        assert_eq!(cold.report, uncached.report);
        assert_eq!(cold.failovers, uncached.failovers);

        // The second identical failure replays the repair from the cache
        // and the served plan still routes around the crashed host.
        let warm =
            execute_with_repair_cached(&plan, &c, &SimBackend, &schedule, Some(&cache)).unwrap();
        assert_eq!((warm.plan_cache_hits, warm.plan_cache_misses), (1, 0));
        assert_eq!(warm.report, cold.report);
        assert_eq!(warm.excluded_hosts, vec![HostId(0)]);
        assert_eq!(warm.failovers, cold.failovers);
    }

    #[test]
    fn losing_every_replica_is_data_loss() {
        let c = cluster();
        let t = unreplicated_task(&c);
        let plan = EnsemblePlanner::new(config()).plan(&t);
        let schedule = FaultSchedule::new(0).with_event(FaultEvent::HostCrash { host: 0, at: 0.0 });
        let err = execute_with_repair(&plan, &c, &SimBackend, &schedule).unwrap_err();
        assert!(matches!(
            err,
            RecoveryError::Repair(RepairError::DataLoss { .. })
        ));
        assert!(err.to_string().contains("data loss"));
    }

    #[test]
    fn a_drop_storm_past_the_retry_budget_is_unrecoverable() {
        let c = cluster();
        let t = replicated_task(&c);
        let plan = EnsemblePlanner::new(config()).plan(&t);
        // p = 0.99 with a zero-retry budget: some flow's first attempt is
        // dropped (deterministically, given the seed) and there is no
        // crashed host to fail over from.
        let schedule = FaultSchedule::new(1)
            .with_retry_policy(0, 1e-4)
            .with_event(FaultEvent::FlowDrop { prob: 0.99 });
        let err = execute_with_repair(&plan, &c, &SimBackend, &schedule).unwrap_err();
        assert!(matches!(
            err,
            RecoveryError::Sim(SimError::TaskFailed {
                kind: FailureKind::RetriesExhausted,
                ..
            })
        ));
    }

    #[test]
    fn retries_within_budget_are_absorbed_and_counted() {
        let c = cluster();
        let t = replicated_task(&c);
        let plan = EnsemblePlanner::new(config()).plan(&t);
        let schedule = FaultSchedule::new(1)
            .with_retry_policy(8, 1e-6)
            .with_event(FaultEvent::FlowDrop { prob: 0.2 });
        let r = execute_with_repair(&plan, &c, &SimBackend, &schedule).unwrap();
        assert!(!r.repaired);
        assert!(r.retries > 0);
    }
}
