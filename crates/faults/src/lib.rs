//! Deterministic fault injection and fault-tolerant recovery for
//! cross-mesh resharding.
//!
//! One seeded [`FaultSchedule`] — host crashes, NIC degradation windows,
//! compute stragglers, probabilistic flow drops — drives every backend
//! through the [`FaultInjectable`] seam: the flow-level simulator realizes
//! it as engine events, the threaded/TCP runtime as injected wall-clock
//! delays, drops, and dead hosts. All randomness is resolved once, per
//! `(seed, task id)`, when the schedule is compiled against a task graph,
//! so the same schedule yields the same outcome on every backend.
//!
//! On top of injection, [`execute_with_repair`] closes the loop: execute a
//! plan under faults, and when senders crash, repair the plan onto
//! surviving replicas (`Plan::repair` in `crossmesh-core`) and re-run,
//! reporting failovers, absorbed retries, and the degraded makespan.

#![warn(missing_docs)]

mod backend;
mod recovery;
mod schedule;

pub use backend::{FaultInjectable, FaultyBackend};
pub use recovery::{
    execute_with_repair, execute_with_repair_cached, RecoveryError, RecoveryReport,
};
pub use schedule::{FaultEvent, FaultSchedule};
