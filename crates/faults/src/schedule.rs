//! Seeded fault schedules: the *policy* half of fault injection.
//!
//! A [`FaultSchedule`] is the user-facing description of what goes wrong:
//! host crashes at points in simulated time, NIC degradation windows,
//! compute stragglers, and a probabilistic flow-drop rate. It is the only
//! place randomness lives — [`FaultSchedule::to_disruptions`] rolls every
//! probabilistic event into exact per-task drop counts with a generator
//! seeded from `(schedule seed, task id)`, so the same schedule applied
//! to the same graph always yields the same mechanical
//! [`Disruptions`] / [`InjectedFaults`], and therefore the same outcome,
//! on every backend.

use crossmesh_netsim::{DeviceId, Disruptions, HostId, NicScalePeriod, TaskGraph, Work};
use crossmesh_runtime::InjectedFaults;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Host `host` crashes at simulated time `at` (seconds). Every task
    /// on, or flowing through, the host fails from then on.
    HostCrash {
        /// The crashing host.
        host: u32,
        /// Simulated crash time, seconds.
        at: f64,
    },
    /// Host `host`'s NIC runs at `factor`× capacity during
    /// `[from, until]` (seconds).
    LinkDegrade {
        /// The degraded host.
        host: u32,
        /// Capacity multiplier in `(0, 1]`.
        factor: f64,
        /// Degradation start, seconds.
        from: f64,
        /// Recovery time, seconds.
        until: f64,
    },
    /// Device `device` computes `slowdown`× slower for the whole run.
    Straggler {
        /// The straggling device.
        device: u32,
        /// Slowdown factor, `>= 1` to slow down.
        slowdown: f64,
    },
    /// Every flow transmission attempt is lost with probability `prob`,
    /// rolled independently per attempt and per flow task from the
    /// schedule seed.
    FlowDrop {
        /// Per-attempt drop probability in `[0, 1)`.
        prob: f64,
    },
}

/// A seeded, serializable fault schedule.
///
/// Build one programmatically with the `with_*` builders or load one from
/// JSON (see [`FaultSchedule::from_json`]); then compile it against a
/// lowered task graph with [`to_disruptions`](FaultSchedule::to_disruptions)
/// (simulator) or [`to_injected`](FaultSchedule::to_injected) (threaded
/// runtime). One schedule drives both backends.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// Seed for every probabilistic roll in the schedule.
    pub seed: u64,
    /// The injected faults.
    pub events: Vec<FaultEvent>,
    /// Re-transmissions allowed per flow before it fails.
    pub max_retries: u32,
    /// Base backoff before the first re-transmission, seconds; attempt
    /// `k` waits `retry_backoff * 2^k`.
    pub retry_backoff: f64,
}

impl Default for FaultSchedule {
    fn default() -> Self {
        FaultSchedule::new(0)
    }
}

impl FaultSchedule {
    /// An empty schedule with the given seed and default retry policy
    /// (3 retries, 1 ms base backoff).
    pub fn new(seed: u64) -> Self {
        FaultSchedule {
            seed,
            events: Vec::new(),
            max_retries: 3,
            retry_backoff: 1e-3,
        }
    }

    /// Returns a copy with `event` appended.
    #[must_use]
    pub fn with_event(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Returns a copy with the retry policy replaced.
    #[must_use]
    pub fn with_retry_policy(mut self, max_retries: u32, retry_backoff: f64) -> Self {
        self.max_retries = max_retries;
        self.retry_backoff = retry_backoff;
        self
    }

    /// True if the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid event: negative or
    /// non-finite times, factors outside `(0, 1]`, slowdowns below 1, or
    /// drop probabilities outside `[0, 1)`.
    pub fn validate(&self) -> Result<(), String> {
        for e in &self.events {
            match *e {
                FaultEvent::HostCrash { host, at } => {
                    if !at.is_finite() || at < 0.0 {
                        return Err(format!("h{host} crash time {at} must be >= 0 and finite"));
                    }
                }
                FaultEvent::LinkDegrade {
                    host,
                    factor,
                    from,
                    until,
                } => {
                    if !(factor > 0.0 && factor <= 1.0) {
                        return Err(format!("h{host} degrade factor {factor} must be in (0, 1]"));
                    }
                    if !from.is_finite() || !until.is_finite() || from < 0.0 || until < from {
                        return Err(format!(
                            "h{host} degrade period [{from}, {until}] is invalid"
                        ));
                    }
                }
                FaultEvent::Straggler { device, slowdown } => {
                    if !(slowdown >= 1.0 && slowdown.is_finite()) {
                        return Err(format!(
                            "d{device} straggler slowdown {slowdown} must be >= 1 and finite"
                        ));
                    }
                }
                FaultEvent::FlowDrop { prob } => {
                    if !(0.0..1.0).contains(&prob) {
                        return Err(format!("flow drop probability {prob} must be in [0, 1)"));
                    }
                }
            }
        }
        if !(self.retry_backoff >= 0.0 && self.retry_backoff.is_finite()) {
            return Err(format!(
                "retry backoff {} must be >= 0 and finite",
                self.retry_backoff
            ));
        }
        Ok(())
    }

    /// The hosts crashed by this schedule, ascending and deduplicated.
    pub fn crashed_hosts(&self) -> Vec<HostId> {
        let hosts: BTreeSet<u32> = self
            .events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::HostCrash { host, .. } => Some(*host),
                _ => None,
            })
            .collect();
        hosts.into_iter().map(HostId).collect()
    }

    /// Returns a copy with every [`FaultEvent::HostCrash`] removed — the
    /// schedule of the world *after* failover, where the dead host is
    /// simply avoided instead of crashing mid-run.
    #[must_use]
    pub fn without_crashes(&self) -> FaultSchedule {
        let mut s = self.clone();
        s.events
            .retain(|e| !matches!(e, FaultEvent::HostCrash { .. }));
        s
    }

    /// Per-attempt drop probability combined across every
    /// [`FaultEvent::FlowDrop`] event (independent drops).
    fn drop_probability(&self) -> f64 {
        let keep: f64 = self
            .events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::FlowDrop { prob } => Some(1.0 - prob),
                _ => None,
            })
            .product();
        1.0 - keep
    }

    /// Rolls the drop count for every flow task in `graph`: attempt `k`
    /// of a flow is dropped while the per-flow generator (seeded from the
    /// schedule seed and the task id) rolls below the combined drop
    /// probability, capped at one past the retry budget (enough to
    /// exhaust it). Deterministic per `(seed, graph)`.
    fn roll_drops(&self, graph: &TaskGraph) -> BTreeMap<u32, u32> {
        let prob = self.drop_probability();
        let mut drops = BTreeMap::new();
        if prob <= 0.0 {
            return drops;
        }
        for (id, task) in graph.iter() {
            if !matches!(task.work, Work::Flow { .. }) {
                continue;
            }
            let mut rng = SmallRng::seed_from_u64(self.seed ^ (0x9e37_79b9 + u64::from(id.0)));
            let mut count = 0u32;
            while count <= self.max_retries && rng.gen_f64() < prob {
                count += 1;
            }
            if count > 0 {
                drops.insert(id.0, count);
            }
        }
        drops
    }

    /// Compiles the schedule to the simulator's mechanical
    /// [`Disruptions`] for `graph`.
    pub fn to_disruptions(&self, graph: &TaskGraph) -> Disruptions {
        let mut d = Disruptions {
            retry_backoff: self.retry_backoff,
            max_retries: self.max_retries,
            ..Disruptions::none()
        };
        for e in &self.events {
            match *e {
                FaultEvent::HostCrash { host, at } => d.host_down.push((HostId(host), at)),
                FaultEvent::LinkDegrade {
                    host,
                    factor,
                    from,
                    until,
                } => d.nic_scale.push(NicScalePeriod {
                    host: HostId(host),
                    factor,
                    from,
                    until,
                }),
                FaultEvent::Straggler { device, slowdown } => {
                    d.compute_slowdown.push((DeviceId(device), slowdown));
                }
                FaultEvent::FlowDrop { .. } => {}
            }
        }
        d.flow_drops = self.roll_drops(graph);
        d
    }

    /// Compiles the schedule to the threaded runtime's wall-clock
    /// [`InjectedFaults`] for `graph`. Crash times collapse to whole-run
    /// death (the runtime has no simulated clock to crash at); a link
    /// degradation becomes a per-frame delay of
    /// `retry_backoff * (1/factor - 1)` wall seconds, so halving the
    /// capacity roughly doubles per-frame cost.
    pub fn to_injected(&self, graph: &TaskGraph) -> InjectedFaults {
        let mut f = InjectedFaults {
            max_retries: self.max_retries,
            backoff: Duration::from_secs_f64(self.retry_backoff.max(0.0)),
            ..InjectedFaults::default()
        };
        for e in &self.events {
            match *e {
                FaultEvent::HostCrash { host, .. } => {
                    if !f.dead_hosts.contains(&host) {
                        f.dead_hosts.push(host);
                    }
                }
                FaultEvent::LinkDegrade { host, factor, .. } => {
                    let extra = self.retry_backoff.max(0.0) * (1.0 / factor - 1.0);
                    f.frame_delay.push((host, Duration::from_secs_f64(extra)));
                }
                FaultEvent::Straggler { device, slowdown } => {
                    f.compute_slowdown.push((device, slowdown));
                }
                FaultEvent::FlowDrop { .. } => {}
            }
        }
        f.flow_drops = self.roll_drops(graph);
        f
    }

    /// Parses a schedule from its JSON form, then validates it.
    ///
    /// # Errors
    ///
    /// Returns the parse or validation error as a string.
    pub fn from_json(json: &str) -> Result<FaultSchedule, String> {
        let schedule: FaultSchedule = serde_json::from_str(json).map_err(|e| e.to_string())?;
        schedule.validate()?;
        Ok(schedule)
    }

    /// Serializes the schedule to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("fault schedules serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossmesh_netsim::{ClusterSpec, LinkParams};

    fn graph_with_flows(n: u32) -> TaskGraph {
        let c = ClusterSpec::homogeneous(2, 2, LinkParams::new(100.0, 1.0));
        let mut g = TaskGraph::new();
        for i in 0..n {
            g.add(Work::flow(c.device(0, 0), c.device(1, i % 2), 64.0), []);
        }
        g
    }

    #[test]
    fn validation_catches_each_event_kind() {
        let bad = [
            FaultEvent::HostCrash { host: 0, at: -1.0 },
            FaultEvent::LinkDegrade {
                host: 0,
                factor: 0.0,
                from: 0.0,
                until: 1.0,
            },
            FaultEvent::LinkDegrade {
                host: 0,
                factor: 0.5,
                from: 2.0,
                until: 1.0,
            },
            FaultEvent::Straggler {
                device: 0,
                slowdown: 0.5,
            },
            FaultEvent::FlowDrop { prob: 1.0 },
        ];
        for e in bad {
            assert!(FaultSchedule::new(0).with_event(e).validate().is_err());
        }
        assert!(FaultSchedule::new(0).validate().is_ok());
    }

    #[test]
    fn crashed_hosts_dedup_and_sort() {
        let s = FaultSchedule::new(0)
            .with_event(FaultEvent::HostCrash { host: 2, at: 1.0 })
            .with_event(FaultEvent::HostCrash { host: 0, at: 2.0 })
            .with_event(FaultEvent::HostCrash { host: 2, at: 3.0 });
        assert_eq!(s.crashed_hosts(), vec![HostId(0), HostId(2)]);
        assert!(s.without_crashes().is_empty());
    }

    #[test]
    fn drop_rolls_are_deterministic_and_seed_sensitive() {
        let g = graph_with_flows(64);
        let s = FaultSchedule::new(7).with_event(FaultEvent::FlowDrop { prob: 0.3 });
        assert_eq!(s.roll_drops(&g), s.roll_drops(&g));
        let other = FaultSchedule::new(8).with_event(FaultEvent::FlowDrop { prob: 0.3 });
        assert_ne!(s.roll_drops(&g), other.roll_drops(&g));
        // Some flow must be dropped at p=0.3 over 64 flows; none at p=0.
        assert!(!s.roll_drops(&g).is_empty());
        assert!(FaultSchedule::new(7).roll_drops(&g).is_empty());
    }

    #[test]
    fn drop_counts_are_capped_past_the_retry_budget() {
        let g = graph_with_flows(32);
        let s = FaultSchedule::new(1)
            .with_retry_policy(2, 1e-4)
            .with_event(FaultEvent::FlowDrop { prob: 0.99 });
        for (_, &count) in s.roll_drops(&g).iter() {
            assert!(count <= 3, "count {count} exceeds max_retries + 1");
        }
    }

    #[test]
    fn compiles_to_both_backends() {
        let g = graph_with_flows(4);
        let s = FaultSchedule::new(3)
            .with_event(FaultEvent::HostCrash { host: 1, at: 0.5 })
            .with_event(FaultEvent::LinkDegrade {
                host: 0,
                factor: 0.5,
                from: 0.0,
                until: 2.0,
            })
            .with_event(FaultEvent::Straggler {
                device: 2,
                slowdown: 3.0,
            });
        let d = s.to_disruptions(&g);
        assert_eq!(d.host_down, vec![(HostId(1), 0.5)]);
        assert_eq!(d.nic_scale.len(), 1);
        assert_eq!(d.compute_slowdown, vec![(DeviceId(2), 3.0)]);
        assert!(d.validate().is_ok());
        let f = s.to_injected(&g);
        assert_eq!(f.dead_hosts, vec![1]);
        assert_eq!(f.compute_slowdown, vec![(2, 3.0)]);
        assert_eq!(f.frame_delay.len(), 1);
    }

    #[test]
    fn json_round_trips() {
        let s = FaultSchedule::new(42)
            .with_event(FaultEvent::HostCrash { host: 1, at: 0.25 })
            .with_event(FaultEvent::FlowDrop { prob: 0.1 });
        let parsed = FaultSchedule::from_json(&s.to_json()).unwrap();
        assert_eq!(parsed, s);
        assert!(FaultSchedule::from_json("{not json").is_err());
        let invalid = FaultSchedule::new(0).with_event(FaultEvent::FlowDrop { prob: 2.0 });
        assert!(FaultSchedule::from_json(&invalid.to_json()).is_err());
    }
}
