//! Fault-injecting execution: one [`FaultSchedule`] drives any backend.
//!
//! [`FaultInjectable`] is the seam: the simulator realizes a schedule as
//! first-class engine events ([`Disruptions`](crossmesh_netsim::Disruptions)),
//! the threaded runtime as injected wall-clock delays, drops, and dead
//! hosts ([`InjectedFaults`](crossmesh_runtime::InjectedFaults)).
//! [`FaultyBackend`] then packages a backend plus a schedule back into a
//! plain [`Backend`], so everything written against that trait (plan
//! execution, benches, the CLI) runs under faults unchanged.

use crate::schedule::FaultSchedule;
use crossmesh_netsim::{
    AggregateSimBackend, Backend, ClusterSpec, Engine, FailureKind, SimBackend, SimError, SimModel,
    TaskGraph, Trace,
};
use crossmesh_runtime::ThreadedBackend;

/// A backend that can execute a task graph under a fault schedule.
pub trait FaultInjectable: Backend {
    /// Executes `graph` with `schedule` injected.
    ///
    /// Backends differ in how failures surface: the simulator completes
    /// the run and reports failed tasks via
    /// [`Trace::failed_tasks`](crossmesh_netsim::Trace::failed_tasks)
    /// (with the partial timeline intact), while the threaded runtime
    /// aborts on the first failure with [`SimError::TaskFailed`]. Use
    /// [`FaultyBackend`] for a uniform fail-with-error view.
    ///
    /// # Errors
    ///
    /// Backend errors, plus [`SimError::Backend`] if the schedule fails
    /// [`FaultSchedule::validate`].
    fn execute_with_faults(
        &self,
        cluster: &ClusterSpec,
        graph: &TaskGraph,
        schedule: &FaultSchedule,
    ) -> Result<Trace, SimError>;
}

fn check_schedule(backend: &'static str, schedule: &FaultSchedule) -> Result<(), SimError> {
    schedule.validate().map_err(|message| SimError::Backend {
        backend,
        message: format!("invalid fault schedule: {message}"),
    })
}

impl FaultInjectable for SimBackend {
    fn execute_with_faults(
        &self,
        cluster: &ClusterSpec,
        graph: &TaskGraph,
        schedule: &FaultSchedule,
    ) -> Result<Trace, SimError> {
        check_schedule(self.name(), schedule)?;
        Engine::new(cluster).run_with_disruptions(graph, &schedule.to_disruptions(graph))
    }
}

impl FaultInjectable for AggregateSimBackend {
    fn execute_with_faults(
        &self,
        cluster: &ClusterSpec,
        graph: &TaskGraph,
        schedule: &FaultSchedule,
    ) -> Result<Trace, SimError> {
        check_schedule(self.name(), schedule)?;
        Engine::with_model(cluster, SimModel::Aggregate)
            .run_with_disruptions(graph, &schedule.to_disruptions(graph))
    }
}

impl FaultInjectable for ThreadedBackend {
    fn execute_with_faults(
        &self,
        cluster: &ClusterSpec,
        graph: &TaskGraph,
        schedule: &FaultSchedule,
    ) -> Result<Trace, SimError> {
        check_schedule(self.name(), schedule)?;
        self.clone()
            .with_faults(schedule.to_injected(graph))
            .execute(cluster, graph)
    }
}

/// A [`Backend`] decorator that injects a fault schedule into every run.
///
/// Failures become errors on every backend: if the inner backend reports
/// failed tasks in its trace (the simulator's style), the first one is
/// converted to [`SimError::TaskFailed`], matching the threaded
/// runtime's abort-on-failure behavior.
#[derive(Debug, Clone)]
pub struct FaultyBackend<B> {
    inner: B,
    schedule: FaultSchedule,
}

impl<B: FaultInjectable> FaultyBackend<B> {
    /// Wraps `inner` so every execution runs under `schedule`.
    pub fn new(inner: B, schedule: FaultSchedule) -> Self {
        FaultyBackend { inner, schedule }
    }

    /// The injected schedule.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }
}

impl<B: FaultInjectable> Backend for FaultyBackend<B> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn execute(&self, cluster: &ClusterSpec, graph: &TaskGraph) -> Result<Trace, SimError> {
        let trace = self
            .inner
            .execute_with_faults(cluster, graph, &self.schedule)?;
        if let Some(&task) = trace.failed_tasks().first() {
            let kind = if self.schedule.crashed_hosts().is_empty() {
                FailureKind::RetriesExhausted
            } else {
                FailureKind::HostCrash
            };
            return Err(SimError::TaskFailed {
                backend: self.inner.name(),
                task,
                kind,
                detail: format!(
                    "{} of {} tasks failed under the injected schedule",
                    trace.failed_tasks().len(),
                    graph.len()
                ),
            });
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::FaultEvent;
    use crossmesh_netsim::{LinkParams, Work};

    fn cluster() -> ClusterSpec {
        ClusterSpec::homogeneous(2, 2, LinkParams::new(100.0, 1.0).with_latencies(0.0, 0.0))
    }

    fn flow_graph(c: &ClusterSpec) -> TaskGraph {
        let mut g = TaskGraph::new();
        let f = g.add(Work::flow(c.device(0, 0), c.device(1, 0), 4.0), []);
        g.add(Work::compute(c.device(1, 0), 0.5), [f]);
        g
    }

    #[test]
    fn an_empty_schedule_changes_nothing() {
        let c = cluster();
        let g = flow_graph(&c);
        let plain = SimBackend.execute(&c, &g).unwrap();
        let wrapped = FaultyBackend::new(SimBackend, FaultSchedule::new(0));
        let faulty = wrapped.execute(&c, &g).unwrap();
        assert_eq!(plain.makespan(), faulty.makespan());
        assert_eq!(wrapped.name(), "sim");
    }

    #[test]
    fn a_crash_surfaces_as_task_failed_on_the_simulator() {
        let c = cluster();
        let g = flow_graph(&c);
        let schedule = FaultSchedule::new(0).with_event(FaultEvent::HostCrash { host: 1, at: 0.0 });
        let err = FaultyBackend::new(SimBackend, schedule)
            .execute(&c, &g)
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::TaskFailed {
                backend: "sim",
                kind: FailureKind::HostCrash,
                ..
            }
        ));
    }

    #[test]
    fn a_crash_surfaces_as_task_failed_on_the_runtime() {
        let c = cluster();
        let g = flow_graph(&c);
        let schedule = FaultSchedule::new(0)
            .with_retry_policy(1, 1e-4)
            .with_event(FaultEvent::HostCrash { host: 1, at: 0.0 });
        let err = FaultyBackend::new(ThreadedBackend::threads(), schedule)
            .execute(&c, &g)
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::TaskFailed {
                backend: "threads",
                kind: FailureKind::HostCrash,
                ..
            }
        ));
    }

    #[test]
    fn an_invalid_schedule_is_rejected_not_panicked() {
        let c = cluster();
        let g = flow_graph(&c);
        let schedule = FaultSchedule::new(0).with_event(FaultEvent::FlowDrop { prob: 2.0 });
        let err = SimBackend
            .execute_with_faults(&c, &g, &schedule)
            .unwrap_err();
        assert!(matches!(err, SimError::Backend { backend: "sim", .. }));
    }

    #[test]
    fn degradation_slows_the_sim_without_failing_it() {
        let c = cluster();
        let g = flow_graph(&c);
        let plain = SimBackend.execute(&c, &g).unwrap();
        let schedule = FaultSchedule::new(0).with_event(FaultEvent::LinkDegrade {
            host: 0,
            factor: 0.25,
            from: 0.0,
            until: 100.0,
        });
        let degraded = FaultyBackend::new(SimBackend, schedule)
            .execute(&c, &g)
            .unwrap();
        assert!(degraded.makespan() > plain.makespan());
        assert!(degraded.failed_tasks().is_empty());
    }
}
