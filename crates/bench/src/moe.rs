//! MoE all-to-all strategy sweep: multi-rail spraying vs pairwise
//! send/recv vs broadcast ring, across fabric models and gate skews.
//!
//! Not a paper figure — the paper's collectives are resharding-shaped;
//! this extension measures the *data-dependent* all-to-all of an MoE
//! layer (see `crossmesh-moe`) on the typed multi-tier fabrics of
//! `crossmesh-netsim`. The reproduction target is the RailS shape: on a
//! rail-optimized fabric, spraying each expert shard across all rails
//! beats both baselines, and the margin grows with gate skew because a
//! hot expert's inbound burst is exactly what the spray spreads out.
//!
//! Every swept plan must pass the static verifier (`plan.*` rules) *and*
//! the all-to-all rules (`plan.a2a.*`) with zero convictions — the sweep
//! doubles as an end-to-end proof that the MoE path is check-clean.

use crate::hostenv::HostEnv;
use crate::table_fmt;
use crossmesh_core::{LoadBalancePlanner, Planner, PlannerConfig, Strategy, StrategyChoice};
use crossmesh_mesh::DeviceMesh;
use crossmesh_models::moe::GptMoeConfig;
use crossmesh_moe::{A2aTask, RoutingConfig};
use crossmesh_netsim::{ClusterSpec, FabricModel, LinkParams};
use serde::{Deserialize, Serialize};

/// Hosts in the swept cluster (half tokens, half experts).
const HOSTS: u32 = 8;
/// Devices (and rails, on the rail fabric) per host.
const DEVICES_PER_HOST: u32 = 4;
/// Gate skews swept (Zipf exponents).
pub const SKEWS: [f64; 3] = [0.0, 1.0, 2.0];

/// One measured (topology, skew, strategy) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Fabric model name.
    pub topology: &'static str,
    /// Gate skew (Zipf exponent of expert popularity).
    pub skew: f64,
    /// Strategy label.
    pub strategy: &'static str,
    /// Simulated all-to-all completion time, seconds.
    pub makespan_seconds: f64,
    /// Bytes that crossed host boundaries.
    pub cross_host_bytes: u64,
    /// Error-severity diagnostics from `verify_plan` + `verify_a2a`
    /// (must be zero).
    pub convictions: usize,
}

/// Speedup of multi-rail over each baseline on the rail fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RailSpeedup {
    /// Gate skew.
    pub skew: f64,
    /// `send_recv / multi_rail` makespan ratio.
    pub vs_send_recv: f64,
    /// `broadcast / multi_rail` makespan ratio.
    pub vs_broadcast: f64,
}

/// The whole sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// The measuring host.
    pub env: HostEnv,
    /// Every measured cell.
    pub rows: Vec<Row>,
    /// Multi-rail's margin on the rail-optimized fabric, per skew.
    pub rail_speedups: Vec<RailSpeedup>,
}

/// The swept fabric models over the common host/NIC geometry.
fn topologies() -> Vec<(&'static str, FabricModel)> {
    let nic = 1.25e9;
    vec![
        (
            "rails",
            FabricModel::RailOptimized {
                rails: DEVICES_PER_HOST,
                spine_capacity: nic,
            },
        ),
        (
            "flat",
            FabricModel::Flat {
                capacity: Some(f64::from(HOSTS) * nic / 2.0),
            },
        ),
        (
            "fat-tree",
            FabricModel::FatTree {
                pod_hosts: HOSTS / 2,
                oversubscription: 4.0,
            },
        ),
        (
            "torus",
            FabricModel::Torus2D {
                rows: 2,
                cols: HOSTS / 2,
                link_capacity: nic,
            },
        ),
    ]
}

/// The swept strategies.
fn strategies() -> Vec<(&'static str, Strategy)> {
    vec![
        // One chunk per rail: an a2a already has per-pair parallelism, so
        // extra chunking only multiplies per-hop latency.
        (
            "multi_rail",
            Strategy::MultiRail {
                rails: DEVICES_PER_HOST,
                chunks: DEVICES_PER_HOST,
            },
        ),
        ("send_recv", Strategy::SendRecv),
        ("broadcast", Strategy::broadcast()),
    ]
}

/// The cluster for one fabric model.
fn cluster(fabric: FabricModel) -> ClusterSpec {
    ClusterSpec::homogeneous(
        HOSTS,
        DEVICES_PER_HOST,
        LinkParams::new(100e9, 1.25e9).with_latencies(5e-6, 25e-6),
    )
    .with_fabric(fabric)
}

/// The seeded routing draw at one skew: the GPT-MoE case-1 gate geometry
/// scaled down so a sweep cell simulates in milliseconds.
fn routing(skew: f64, smoke: bool) -> RoutingConfig {
    let model = GptMoeConfig::case1().with_skew(skew).with_seed(17);
    RoutingConfig {
        tokens_per_device: if smoke { 64 } else { 256 },
        ..model.routing()
    }
}

/// Builds the dispatch all-to-all for one skew on `cluster`.
fn dispatch(c: &ClusterSpec, skew: f64, smoke: bool) -> A2aTask {
    let half = (HOSTS / 2) as usize;
    let per = DEVICES_PER_HOST as usize;
    let tokens = DeviceMesh::from_cluster(c, 0, (half, per), "moe-tokens").expect("mesh fits");
    let experts = DeviceMesh::from_cluster(c, half, (half, per), "moe-experts").expect("mesh fits");
    let senders = half * per;
    let bytes = routing(skew, smoke).bytes_matrix(senders, senders);
    A2aTask::dispatch(&tokens, &experts, &bytes)
}

/// Measures one cell: plan with the fixed strategy, verify (generic +
/// a2a rules), simulate.
///
/// # Panics
///
/// Panics if the simulation itself fails (harness bug) — verifier
/// convictions are *reported*, not panicked, so the JSON shows them.
pub fn measure(c: &ClusterSpec, a2a: &A2aTask, strategy: Strategy) -> (f64, u64, usize) {
    let planner = LoadBalancePlanner::new(
        PlannerConfig::default().with_strategy(StrategyChoice::Fixed(strategy)),
    );
    let plan = planner.plan(a2a.task());
    let mut diags = plan.verify(Some(c), &|_, _| false);
    let views: Vec<_> = plan
        .assignments()
        .iter()
        .map(crossmesh_core::Assignment::as_view)
        .collect();
    diags.extend(crossmesh_check::verify::verify_a2a(
        a2a.pairs(),
        a2a.task().units(),
        a2a.task().elem_bytes(),
        &views,
        Some(c),
    ));
    let convictions = diags
        .iter()
        .filter(|d| d.severity == crossmesh_check::Severity::Error)
        .count();
    let report = plan.execute(c).expect("simulation succeeds");
    (
        report.simulated_seconds,
        report.cross_host_bytes as u64,
        convictions,
    )
}

/// Runs the sweep. `smoke` trims it to the rail fabric at one skew with a
/// smaller routing draw for CI.
pub fn run(smoke: bool) -> Report {
    let topos = topologies();
    let topos = if smoke { &topos[..1] } else { &topos[..] };
    let skews: &[f64] = if smoke { &SKEWS[1..2] } else { &SKEWS };

    let mut rows = Vec::new();
    for (topo_name, fabric) in topos {
        let c = cluster(*fabric);
        for &skew in skews {
            let a2a = dispatch(&c, skew, smoke);
            for (strat_name, strategy) in strategies() {
                let (makespan, cross, convictions) = measure(&c, &a2a, strategy);
                rows.push(Row {
                    topology: topo_name,
                    skew,
                    strategy: strat_name,
                    makespan_seconds: makespan,
                    cross_host_bytes: cross,
                    convictions,
                });
            }
        }
    }

    let cell = |topo: &str, skew: f64, strat: &str| {
        rows.iter()
            .find(|r| r.topology == topo && r.skew == skew && r.strategy == strat)
            .map(|r| r.makespan_seconds)
    };
    let rail_speedups = skews
        .iter()
        .filter_map(|&skew| {
            let mr = cell("rails", skew, "multi_rail")?;
            Some(RailSpeedup {
                skew,
                vs_send_recv: cell("rails", skew, "send_recv")? / mr,
                vs_broadcast: cell("rails", skew, "broadcast")? / mr,
            })
        })
        .collect();

    Report {
        env: HostEnv::detect().with_smoke(smoke),
        rows,
        rail_speedups,
    }
}

/// Renders the sweep and the rail-speedup summary.
pub fn render(report: &Report) -> String {
    let mut table = vec![vec![
        "topology".to_string(),
        "skew".to_string(),
        "strategy".to_string(),
        "makespan".to_string(),
        "cross-host".to_string(),
        "convictions".to_string(),
    ]];
    for r in &report.rows {
        table.push(vec![
            r.topology.to_string(),
            format!("{:.1}", r.skew),
            r.strategy.to_string(),
            table_fmt::secs(r.makespan_seconds),
            format!("{:.1} MB", r.cross_host_bytes as f64 / 1e6),
            r.convictions.to_string(),
        ]);
    }
    let mut out = format!(
        "MoE all-to-all — strategy × fabric × gate skew\n{}",
        table_fmt::render(&table)
    );
    if !report.rail_speedups.is_empty() {
        let mut summary = vec![vec![
            "skew".to_string(),
            "vs send_recv".to_string(),
            "vs broadcast".to_string(),
        ]];
        for s in &report.rail_speedups {
            summary.push(vec![
                format!("{:.1}", s.skew),
                table_fmt::speedup(s.vs_send_recv),
                table_fmt::speedup(s.vs_broadcast),
            ]);
        }
        out.push_str(&format!(
            "\nMulti-rail speedup on the rail-optimized fabric\n{}",
            table_fmt::render(&summary)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_is_check_clean_and_rails_win() {
        let report = run(true);
        assert!(!report.rows.is_empty());
        for r in &report.rows {
            assert_eq!(
                r.convictions, 0,
                "{}/{}/{}: verifier convicted the plan",
                r.topology, r.skew, r.strategy
            );
            assert!(r.makespan_seconds > 0.0 && r.makespan_seconds.is_finite());
        }
        for s in &report.rail_speedups {
            assert!(
                s.vs_send_recv > 1.0 && s.vs_broadcast > 1.0,
                "multi-rail must win on rails at skew {}: {s:?}",
                s.skew
            );
        }
        assert!(render(&report).contains("multi_rail"));
    }
}
