//! Static-verifier overhead sweep: wall-clock per `verify_plan` call
//! across plan sizes, next to the planning time it guards.
//!
//! Not a paper figure — this measures `crossmesh-check` itself, answering
//! "what does verify-before-execute cost?" The verifier runs on every
//! `Plan::execute*` call and every plan-cache hit, so its cost must stay
//! negligible against planning. Cases reuse the planner sweep's problems
//! (8 / 64 / 256 unit tasks) with the ensemble planner's output.

use crate::hostenv::HostEnv;
use crate::planner::case;
use crossmesh_core::{EnsemblePlanner, Plan, PlannerConfig};
use crossmesh_models::presets;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Unit-task counts swept by the full run.
pub const UNIT_COUNTS: [usize; 3] = [8, 64, 256];

/// One timed case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Unit tasks in the resharding case.
    pub units: usize,
    /// Assignments in the verified plan (== `units`).
    pub assignments: usize,
    /// Best-of-N wall-clock microseconds for one `verify` call (coverage,
    /// sender, ring, and capacity rules against the case's cluster).
    pub verify_micros: f64,
    /// Wall-clock milliseconds for the one `plan()` call that produced the
    /// verified plan — the cost the verifier is amortized against.
    pub plan_millis: f64,
    /// `verify` cost as a fraction of planning cost.
    pub overhead_ratio: f64,
}

/// The whole sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// The measuring host (parallelism, env overrides, build profile).
    pub env: HostEnv,
    /// The per-size rows.
    pub rows: Vec<Row>,
}

/// Times `f` as the best (minimum) of `reps` runs, in seconds.
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Runs the sweep. `smoke` trims it to the 8-unit case with a single rep
/// for CI; the full sweep is best-of-20 over all sizes.
///
/// # Panics
///
/// Panics if any swept plan fails verification — the soundness property
/// `tests/plan_verifier.rs` proves must also hold here.
pub fn run(smoke: bool) -> Report {
    let unit_counts: &[usize] = if smoke {
        &UNIT_COUNTS[..1]
    } else {
        &UNIT_COUNTS
    };
    let reps = if smoke { 1 } else { 20 };
    let planner = EnsemblePlanner::new(PlannerConfig::new(presets::p3_cost_params()));

    let mut rows = Vec::new();
    for &units in unit_counts {
        let (cluster, task) = case(units);
        let t0 = Instant::now();
        let plan: Plan<'_> = crossmesh_core::Planner::plan(&planner, &task);
        let plan_millis = t0.elapsed().as_secs_f64() * 1e3;

        let verify_secs = best_of(reps, || {
            let diags = plan.verify(Some(&cluster), &|_, _| false);
            assert!(
                !crossmesh_check::has_errors(&diags),
                "{units}u case failed verify: {diags:?}"
            );
        });
        let verify_micros = verify_secs * 1e6;
        rows.push(Row {
            units,
            assignments: plan.assignments().len(),
            verify_micros,
            plan_millis,
            overhead_ratio: verify_secs / (plan_millis / 1e3).max(f64::MIN_POSITIVE),
        });
    }
    Report {
        env: HostEnv::detect().with_smoke(smoke),
        rows,
    }
}

/// Renders the sweep table.
pub fn render(report: &Report) -> String {
    let mut table = vec![vec![
        "units".to_string(),
        "verify (µs)".to_string(),
        "plan (ms)".to_string(),
        "overhead".to_string(),
    ]];
    for row in &report.rows {
        table.push(vec![
            row.units.to_string(),
            format!("{:.1}", row.verify_micros),
            format!("{:.3}", row.plan_millis),
            format!("{:.3}%", row.overhead_ratio * 100.0),
        ]);
    }
    format!(
        "Static verifier overhead — verify_plan vs the planning it guards\n{}",
        crate::table_fmt::render(&table)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_verifies_and_reports() {
        let report = run(true);
        assert_eq!(report.rows.len(), 1);
        let row = &report.rows[0];
        assert_eq!(row.units, 8);
        assert_eq!(row.assignments, 8);
        assert!(row.verify_micros >= 0.0 && row.verify_micros.is_finite());
        assert!(render(&report).contains("verify"));
    }
}
