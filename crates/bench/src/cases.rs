//! Table 2: the nine multi-device-to-multi-device microbenchmark cases.

use crossmesh_core::ReshardingTask;
use crossmesh_mesh::{DeviceMesh, MeshError};
use crossmesh_models::presets;
use crossmesh_models::Precision;
use crossmesh_netsim::ClusterSpec;
use serde::{Deserialize, Serialize};

/// The tensor shape of §5.1.2 (padded as needed by uneven cases).
pub const TENSOR_SHAPE: [u64; 3] = [1024, 1024, 512];

/// Bytes per element (fp32).
pub const ELEM_BYTES: u64 = 4;

/// One row of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Case {
    /// Case name as in the paper ("case1" … "case9").
    pub name: &'static str,
    /// Sender sharding spec.
    pub send_spec: &'static str,
    /// Receiver sharding spec.
    pub recv_spec: &'static str,
    /// Sender mesh shape (hosts, devices per host).
    pub send_mesh: (usize, usize),
    /// Receiver mesh shape.
    pub recv_mesh: (usize, usize),
}

/// Table 2 verbatim. (Case 5's receiver spec is printed `S_0RR` in the
/// paper — a typeset variant of `S^0RR`.)
pub const TABLE2: [Case; 9] = [
    Case {
        name: "case1",
        send_spec: "S0RR",
        recv_spec: "S0RR",
        send_mesh: (2, 4),
        recv_mesh: (2, 4),
    },
    Case {
        name: "case2",
        send_spec: "RRR",
        recv_spec: "S0RR",
        send_mesh: (2, 4),
        recv_mesh: (2, 4),
    },
    Case {
        name: "case3",
        send_spec: "RS0R",
        recv_spec: "S0RR",
        send_mesh: (2, 4),
        recv_mesh: (2, 4),
    },
    Case {
        name: "case4",
        send_spec: "RS01R",
        recv_spec: "S01RR",
        send_mesh: (2, 4),
        recv_mesh: (2, 4),
    },
    Case {
        name: "case5",
        send_spec: "S1RR",
        recv_spec: "S0RR",
        send_mesh: (2, 4),
        recv_mesh: (2, 4),
    },
    Case {
        name: "case6",
        send_spec: "S0RR",
        recv_spec: "S0RR",
        send_mesh: (2, 4),
        recv_mesh: (3, 4),
    },
    Case {
        name: "case7",
        send_spec: "S1RR",
        recv_spec: "RRR",
        send_mesh: (1, 4),
        recv_mesh: (2, 4),
    },
    Case {
        name: "case8",
        send_spec: "RRR",
        recv_spec: "RRR",
        send_mesh: (2, 3),
        recv_mesh: (3, 2),
    },
    Case {
        name: "case9",
        send_spec: "RS0R",
        recv_spec: "RRS0",
        send_mesh: (2, 4),
        recv_mesh: (2, 4),
    },
];

impl Case {
    /// Instantiates this case: a p3-class cluster with the sender hosts
    /// first and the receiver hosts after, and the resharding task between
    /// the two meshes.
    ///
    /// # Errors
    ///
    /// Propagates mesh/layout errors (none occur for the Table 2 rows).
    pub fn build(&self) -> Result<(ClusterSpec, ReshardingTask), MeshError> {
        let hosts = (self.send_mesh.0 + self.recv_mesh.0) as u32;
        let cluster = presets::aws_p3_8xlarge(hosts, Precision::Fp32);
        let src = DeviceMesh::from_cluster(&cluster, 0, self.send_mesh, "send")?;
        let dst = DeviceMesh::from_cluster(&cluster, self.send_mesh.0, self.recv_mesh, "recv")?;
        let task = ReshardingTask::new(
            src,
            self.send_spec.parse()?,
            dst,
            self.recv_spec.parse()?,
            &TENSOR_SHAPE,
            ELEM_BYTES,
        )?;
        Ok((cluster, task))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cases_build() {
        for case in TABLE2 {
            let (cluster, task) = case.build().unwrap_or_else(|e| {
                panic!("{} failed to build: {e}", case.name);
            });
            assert!(!task.units().is_empty(), "{} has no unit tasks", case.name);
            assert!(cluster.num_hosts() >= 3, "{}", case.name);
            // Unique slices cover the tensor exactly.
            let total: u64 = task.units().iter().map(|u| u.bytes).sum();
            assert_eq!(
                total,
                TENSOR_SHAPE.iter().product::<u64>() * ELEM_BYTES,
                "{} does not conserve bytes",
                case.name
            );
        }
    }

    #[test]
    fn case4_has_64_unit_tasks() {
        let (_, task) = TABLE2[3].build().unwrap();
        assert_eq!(task.units().len(), 64);
    }

    #[test]
    fn case8_is_a_single_multicast() {
        let (_, task) = TABLE2[7].build().unwrap();
        assert_eq!(task.units().len(), 1, "RRR -> RRR is one broadcast");
        assert_eq!(task.units()[0].receivers.len(), 6);
    }
}
