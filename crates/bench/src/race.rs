//! Race-detector overhead microbench: wall-clock of the MoE all-to-all
//! dataplane with the happens-before seam disarmed vs. armed with the
//! FastTrack engine, plus the conviction/cleanliness statistics the
//! acceptance criteria pin.
//!
//! Not a paper figure — this guards crossmesh-hb's "zero cost disarmed"
//! claim (disarmed is one relaxed atomic load per site, measured here
//! directly as `disarmed_site_ns`) and bounds the armed tax at 5% on the
//! real concurrent workload. The same run re-checks the detector's two
//! ends: the clean suite and the armed workload must produce zero
//! findings, and every seeded defect class must convict on every seed.

use crate::hostenv::HostEnv;
use crossmesh_check::race::{run_clean, run_defect, Defect, RaceDetector};
use crossmesh_hb as hb;
use crossmesh_mesh::DeviceMesh;
use crossmesh_moe::{execute_reference, execute_threaded, A2aTask, RoutingConfig};
use crossmesh_netsim::{ClusterSpec, LinkParams};
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// The overhead measurement plus the detector's accuracy statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// The measuring host (parallelism, env overrides, build profile).
    pub env: HostEnv,
    /// Worker-pool width of the timed all-to-all workload.
    pub pool: usize,
    /// Timed `execute_threaded` calls per arm.
    pub iters: usize,
    /// Nanoseconds per disarmed seam call, measured on a tight loop of
    /// `hb::read` — the whole cost of shipping the instrumentation: one
    /// relaxed atomic load and an untaken branch.
    pub disarmed_site_ns: f64,
    /// Best-round mean milliseconds per all-to-all with the seam off.
    pub disarmed_ms: f64,
    /// Best-round mean milliseconds with the FastTrack detector
    /// installed and every edge flowing through the vector-clock engine.
    pub armed_ms: f64,
    /// `(armed / disarmed - 1) * 100`. The regression gate holds this at
    /// or under 5% on the full run.
    pub armed_overhead_pct: f64,
    /// Seam events the detector processed across the armed rounds.
    pub events: u64,
    /// Race findings across the armed workload rounds *and* a clean-suite
    /// sample at pool widths 1, 4, and 8 — must be zero.
    pub clean_findings: usize,
    /// Whether every armed all-to-all stayed byte-identical to the
    /// sequential reference.
    pub identical_outputs: bool,
    /// Seeded defect classes swept ([`Defect::all`]).
    pub defect_classes: usize,
    /// Perturbation seeds per defect class.
    pub seeds_per_class: usize,
    /// Fraction of (defect, seed) runs convicted under the defect's
    /// expected rule — the gate pins this at 1.0.
    pub convicted_fraction: f64,
}

/// The timed workload: a skewed 4-host MoE dispatch big enough that the
/// memcpy work dominates the per-piece edge events.
fn workload() -> A2aTask {
    let c = ClusterSpec::homogeneous(4, 2, LinkParams::new(100.0, 1.0));
    let tokens = DeviceMesh::from_cluster(&c, 0, (2, 2), "tokens").expect("tokens mesh");
    let experts = DeviceMesh::from_cluster(&c, 2, (2, 2), "experts").expect("experts mesh");
    let cfg = RoutingConfig {
        tokens_per_device: 64,
        token_bytes: 256,
        skew: 1.5,
        seed: 11,
        ..RoutingConfig::default()
    };
    A2aTask::dispatch(&tokens, &experts, &cfg.bytes_matrix(4, 4))
}

/// Runs the measurement. `smoke` trims it (3 rounds of 2, 4 seeds per
/// defect class) for CI; the full run uses 10 rounds of 4 with the
/// acceptance-grade 32-seed sweep.
///
/// The two arms are *interleaved round-robin* and each arm's time is the
/// minimum of its per-round means, the same layout `obs_overhead` uses:
/// scheduler noise only ever adds time, so the fastest round is the
/// least contaminated estimate, and interleaving gives both arms the
/// same shot at the quiet windows. Armed rounds serialize on the seam's
/// test lock; the disarmed rounds deliberately do not arm anything, so
/// their seam cost is exactly the shipped fast path.
pub fn run(smoke: bool) -> Report {
    let pool = 4;
    let rounds = if smoke { 3 } else { 10 };
    let per_round = if smoke { 2 } else { 4 };
    let seeds_per_class = if smoke { 4 } else { 32 };
    let a2a = workload();
    let reference = execute_reference(&a2a).expect("reference executes");

    // Warm-up so allocator state and lazy statics don't bias round one.
    let _ = execute_threaded(&a2a, pool).expect("warm-up executes");

    // The disarmed per-site cost, measured directly: the claim is "one
    // relaxed load", and this number is the evidence.
    let site_iters: u64 = if smoke { 200_000 } else { 2_000_000 };
    let probe = hb::fresh_id();
    let t0 = Instant::now();
    for i in 0..site_iters {
        hb::read(black_box(probe ^ (i & 1)));
    }
    let disarmed_site_ns = t0.elapsed().as_secs_f64() * 1e9 / site_iters as f64;

    let detector = Arc::new(RaceDetector::new());
    let mut identical_outputs = true;
    let mut round_ms = [Vec::new(), Vec::new()];
    for _ in 0..rounds {
        for (arm, times) in round_ms.iter_mut().enumerate() {
            // Armed sections share the process-global seam: hold the
            // test lock so a concurrently running `#[test]` cannot
            // interleave its own armed section with ours.
            let serial = (arm == 1).then(hb::test_lock);
            let installed = (arm == 1).then(|| hb::install(detector.clone()));
            let t0 = Instant::now();
            for _ in 0..per_round {
                let out = execute_threaded(&a2a, pool).expect("timed run executes");
                identical_outputs &= out == reference;
            }
            times.push(t0.elapsed().as_secs_f64() * 1e3 / per_round as f64);
            drop(installed);
            drop(serial);
        }
    }
    let best = |times: &[f64]| times.iter().copied().fold(f64::MAX, f64::min);
    let disarmed_ms = best(&round_ms[0]);
    let armed_ms = best(&round_ms[1]);

    let events = detector.events();
    let mut clean_findings = detector.drain_diagnostics().len();
    // Clean-suite sample at the acceptance widths.
    for width in [1usize, 4, 8] {
        for seed in 0..seeds_per_class as u64 {
            clean_findings += run_clean(width, seed).len();
        }
    }

    // The conviction sweep: every defect class, every seed, must convict
    // under its expected rule.
    let mut convicted = 0usize;
    let mut total = 0usize;
    for defect in Defect::all() {
        for seed in 0..seeds_per_class as u64 {
            total += 1;
            let diags = run_defect(defect, seed);
            if diags
                .iter()
                .any(|d| defect.expected_rules().contains(&d.rule))
            {
                convicted += 1;
            }
        }
    }

    Report {
        env: HostEnv::detect().with_smoke(smoke),
        pool,
        iters: rounds * per_round,
        disarmed_site_ns,
        disarmed_ms,
        armed_ms,
        armed_overhead_pct: (armed_ms / disarmed_ms - 1.0) * 100.0,
        events,
        clean_findings,
        identical_outputs,
        defect_classes: Defect::all().len(),
        seeds_per_class,
        convicted_fraction: convicted as f64 / total as f64,
    }
}

/// Renders the measurement as a one-cell summary.
pub fn render(r: &Report) -> String {
    format!(
        "Race-detector overhead — MoE all-to-all, pool {}, {} runs/arm: \
         disarmed {:.3} ms ({:.2} ns/site), armed {:.3} ms ({:+.1}%), \
         {} events, {} findings on clean code, outputs {}; \
         defect sweep {}x{} seeds convicted {:.0}%\n",
        r.pool,
        r.iters,
        r.disarmed_ms,
        r.disarmed_site_ns,
        r.armed_ms,
        r.armed_overhead_pct,
        r.events,
        r.clean_findings,
        if r.identical_outputs {
            "byte-identical"
        } else {
            "DIVERGED"
        },
        r.defect_classes,
        r.seeds_per_class,
        r.convicted_fraction * 100.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_convicts_every_defect_and_stays_clean() {
        let r = run(true);
        assert!(r.disarmed_ms > 0.0 && r.armed_ms > 0.0);
        assert!(r.disarmed_site_ns > 0.0);
        assert!(r.events > 0, "the armed arm must reach the detector");
        assert_eq!(r.clean_findings, 0, "clean code must stay silent");
        assert!(r.identical_outputs, "arming changed the dataplane output");
        assert_eq!(
            r.convicted_fraction, 1.0,
            "every (defect, seed) run must convict"
        );
        assert!(render(&r).contains("byte-identical"));
    }
}
