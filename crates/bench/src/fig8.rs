//! Figure 8: load-balance/scheduling ablation on the Table 2 cases.
//!
//! All three variants lower unit tasks with the broadcast strategy; they
//! differ only in the §3.2 algorithm: `naive` (lowest-index sender,
//! arbitrary order), `load_balance` (LPT greedy), and `ours` (ensemble of
//! DFS-with-pruning and randomized greedy).

use crate::cases::{Case, TABLE2};
use crate::table_fmt;
use crossmesh_core::{
    DfsPlanner, EnsemblePlanner, LoadBalancePlanner, NaivePlanner, Planner, PlannerConfig,
    RandomizedGreedyPlanner,
};
use crossmesh_models::presets;
use serde::{Deserialize, Serialize};

/// One row of Figure 8.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Table 2 case name.
    pub case: &'static str,
    /// Naive sender choice and order.
    pub naive: f64,
    /// Eq. 4 LPT greedy.
    pub load_balance: f64,
    /// DFS + randomized greedy ensemble.
    pub ours: f64,
}

fn planner_config() -> PlannerConfig {
    PlannerConfig::new(presets::p3_cost_params())
}

/// Measures one case under one planner.
///
/// # Panics
///
/// Panics if the case fails to build or simulate (harness bug).
pub fn measure(case: &Case, planner: &dyn Planner) -> f64 {
    let (cluster, task) = case.build().expect("table 2 cases build");
    planner
        .plan(&task)
        .execute(&cluster)
        .expect("simulation succeeds")
        .simulated_seconds
}

/// Regenerates Figure 8.
pub fn run() -> Vec<Row> {
    let naive = NaivePlanner::new(planner_config());
    let lpt = LoadBalancePlanner::new(planner_config());
    let ours = EnsemblePlanner::new(planner_config())
        .with_dfs(DfsPlanner::new(planner_config()))
        .with_greedy(RandomizedGreedyPlanner::new(planner_config()).with_permutations(32));
    TABLE2
        .iter()
        .map(|case| Row {
            case: case.name,
            naive: measure(case, &naive),
            load_balance: measure(case, &lpt),
            ours: measure(case, &ours),
        })
        .collect()
}

/// Renders the ablation table.
pub fn render(rows: &[Row]) -> String {
    let mut table = vec![vec![
        "case".to_string(),
        "naive".to_string(),
        "load_balance".to_string(),
        "ours".to_string(),
        "vs naive".to_string(),
    ]];
    for row in rows {
        table.push(vec![
            row.case.to_string(),
            table_fmt::secs(row.naive),
            table_fmt::secs(row.load_balance),
            table_fmt::secs(row.ours),
            table_fmt::speedup(row.naive / row.ours),
        ]);
    }
    format!(
        "Figure 8 — load balance & schedule ablation (broadcast lowering)\n{}",
        table_fmt::render(&table)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8_shapes_hold() {
        let rows = run();
        let get = |name: &str| rows.iter().find(|r| r.case == name).unwrap();

        // Ours never loses to the ablated variants.
        for r in &rows {
            assert!(
                r.ours <= r.naive * 1.05 && r.ours <= r.load_balance * 1.05,
                "{}: ours {} naive {} lpt {}",
                r.case,
                r.ours,
                r.naive,
                r.load_balance
            );
        }

        // Cases 1 and 8 have no scheduling freedom: all variants tie.
        for name in ["case1", "case8"] {
            let r = get(name);
            assert!(
                r.naive / r.ours < 1.1 && r.load_balance / r.ours < 1.1,
                "{name} should be a tie: {r:?}"
            );
        }

        // Case 2 (replicated source): naive congests the first node.
        let r = get("case2");
        assert!(
            r.naive / r.ours > 1.3,
            "case2 naive should congest, got {:.2}x",
            r.naive / r.ours
        );

        // Case 3/4/9: ordering matters; ours beats load-balance-only
        // somewhere in this family.
        let improved = ["case3", "case4", "case9"]
            .iter()
            .any(|name| get(name).load_balance / get(name).ours > 1.2);
        assert!(improved, "ordering should matter in cases 3/4/9: {rows:?}");
    }
}
