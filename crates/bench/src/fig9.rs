//! Figure 9: ablation of the overlap-friendly schedule on the
//! U-Transformer, at a small and a large microbatch count (the paper uses
//! two batch sizes with the microbatch size fixed).

use crate::table_fmt;
use crossmesh_core::{EnsemblePlanner, PlannerConfig};
use crossmesh_models::utransformer::UTransformerConfig;
use crossmesh_models::{presets, Precision};
use crossmesh_pipeline::{simulate, CommMode, PipelineConfig, ScheduleKind, WeightDelay};
use serde::{Deserialize, Serialize};

/// The schedule variants of §5.3.2 (all use broadcast + load balance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScheduleVariant {
    /// Synchronous 1F1B: broadcast-based resharding only.
    Broadcast,
    /// 1F1B with asynchronous communication, no schedule change.
    Overlap,
    /// The eager-1F1B schedule with overlapped communication.
    Eager1F1B,
    /// The 1-byte-signal upper bound (reference line).
    Signal,
}

impl ScheduleVariant {
    /// All variants in figure order.
    pub fn all() -> [ScheduleVariant; 4] {
        [
            ScheduleVariant::Broadcast,
            ScheduleVariant::Overlap,
            ScheduleVariant::Eager1F1B,
            ScheduleVariant::Signal,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ScheduleVariant::Broadcast => "broadcast",
            ScheduleVariant::Overlap => "overlap",
            ScheduleVariant::Eager1F1B => "eager-1f1b",
            ScheduleVariant::Signal => "signal",
        }
    }

    fn pipeline_config(&self) -> PipelineConfig {
        let (schedule, comm) = match self {
            ScheduleVariant::Broadcast => (ScheduleKind::OneFOneB, CommMode::Synchronous),
            ScheduleVariant::Overlap => (ScheduleKind::OneFOneB, CommMode::Overlapped),
            ScheduleVariant::Eager1F1B => (ScheduleKind::Eager1F1B, CommMode::Overlapped),
            ScheduleVariant::Signal => (ScheduleKind::OneFOneB, CommMode::Signal),
        };
        PipelineConfig {
            schedule,
            comm,
            weight_delay: WeightDelay::None,
        }
    }
}

/// One bar of Figure 9.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Number of microbatches (batch = 64 × microbatches).
    pub microbatches: usize,
    /// Variant name.
    pub variant: &'static str,
    /// Simulated iteration time.
    pub iteration_seconds: f64,
    /// Aggregate throughput, TFLOPS.
    pub tflops: f64,
}

/// Builds the U-Transformer with the given microbatch count (microbatch
/// size held at 64 sequences, as the paper holds microbatch size fixed).
pub fn workload(microbatches: usize) -> UTransformerConfig {
    UTransformerConfig {
        global_batch: 64 * microbatches as u64,
        num_microbatches: microbatches,
        ..UTransformerConfig::case1()
    }
}

/// Measures one variant at one microbatch count.
///
/// # Panics
///
/// Panics if the workload fails to build or simulate (harness bug).
pub fn measure(microbatches: usize, variant: ScheduleVariant) -> Row {
    let cluster = presets::aws_p3_8xlarge(2, Precision::Fp32);
    let job = workload(microbatches)
        .build(&cluster)
        .expect("utrans builds");
    let planner = EnsemblePlanner::new(PlannerConfig::new(presets::p3_cost_params()));
    let report = simulate(&job.graph, &cluster, &planner, &variant.pipeline_config())
        .expect("pipeline simulates");
    Row {
        microbatches,
        variant: variant.name(),
        iteration_seconds: report.iteration_seconds,
        tflops: job.aggregate_tflops(report.iteration_seconds),
    }
}

/// Regenerates Figure 9: a small (4) and a typical (32) microbatch count.
pub fn run() -> Vec<Row> {
    let mut rows = Vec::new();
    for m in [4usize, 32] {
        for v in ScheduleVariant::all() {
            rows.push(measure(m, v));
        }
    }
    rows
}

/// Renders the ablation table.
pub fn render(rows: &[Row]) -> String {
    let mut table = vec![vec![
        "microbatches".to_string(),
        "variant".to_string(),
        "iteration".to_string(),
        "TFLOPS".to_string(),
    ]];
    for row in rows {
        table.push(vec![
            row.microbatches.to_string(),
            row.variant.to_string(),
            table_fmt::secs(row.iteration_seconds),
            format!("{:.1}", row.tflops),
        ]);
    }
    format!(
        "Figure 9 — overlap-friendly schedule ablation (U-Transformer)\n{}",
        table_fmt::render(&table)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_run(m: usize) -> Vec<Row> {
        // Scaled-down image keeps the debug-build test quick while
        // preserving the comm/compute balance class.
        let cluster = presets::aws_p3_8xlarge(2, Precision::Fp32);
        let cfg = UTransformerConfig {
            image_size: 32,
            levels: 3,
            global_batch: 64 * m as u64,
            num_microbatches: m,
            ..UTransformerConfig::case1()
        };
        let job = cfg.build(&cluster).expect("builds");
        let planner = EnsemblePlanner::new(PlannerConfig::new(presets::p3_cost_params()));
        ScheduleVariant::all()
            .into_iter()
            .map(|v| {
                let report =
                    simulate(&job.graph, &cluster, &planner, &v.pipeline_config()).unwrap();
                Row {
                    microbatches: m,
                    variant: v.name(),
                    iteration_seconds: report.iteration_seconds,
                    tflops: job.aggregate_tflops(report.iteration_seconds),
                }
            })
            .collect()
    }

    #[test]
    fn overlap_ordering_holds() {
        let rows = small_run(8);
        let t = |v: &str| {
            rows.iter()
                .find(|r| r.variant == v)
                .unwrap()
                .iteration_seconds
        };
        assert!(t("signal") <= t("eager-1f1b") * 1.001);
        assert!(t("eager-1f1b") <= t("overlap") * 1.001);
        assert!(t("overlap") <= t("broadcast") * 1.001);
        assert!(
            t("broadcast") > t("eager-1f1b") * 1.1,
            "overlap should matter: broadcast {} vs eager {}",
            t("broadcast"),
            t("eager-1f1b")
        );
    }

    #[test]
    fn small_microbatch_counts_shrink_the_gap() {
        // With very few microbatches there is no steady state, so overlap
        // and eager-1f1b are close (paper: ~3%).
        let rows = small_run(2);
        let t = |v: &str| {
            rows.iter()
                .find(|r| r.variant == v)
                .unwrap()
                .iteration_seconds
        };
        let gap = t("overlap") / t("eager-1f1b");
        assert!(gap < 1.25, "gap too large for 2 microbatches: {gap}");
    }
}
