//! Runs the trace-driven serve load harness; prints the table, writes
//! `BENCH_serve.json`, and with `--json` dumps the report to stdout.
//! `--smoke` trims the traces for CI; `--out PATH` overrides the JSON
//! path; `--addr HOST:PORT` targets an already-running daemon (the CI
//! smoke step starts the real `crossmesh serve` binary and points the
//! harness at it) instead of per-scenario in-process daemons.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_serve.json", String::as_str);
    let addr = args
        .iter()
        .position(|a| a == "--addr")
        .and_then(|i| args.get(i + 1));

    let report = match addr {
        Some(a) => {
            let addr = a.parse().unwrap_or_else(|_| panic!("bad --addr {a:?}"));
            crossmesh_bench::serve::run_against(addr, smoke)
                .unwrap_or_else(|e| panic!("load run against {a} failed: {e}"))
        }
        None => crossmesh_bench::serve::run(smoke),
    };
    for s in &report.scenarios {
        assert_eq!(
            s.verifier_convictions, 0,
            "{}: verifier convicted a served plan",
            s.name
        );
    }
    let pretty = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write(out, &pretty).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    if json {
        println!("{pretty}");
    } else {
        println!("{}", crossmesh_bench::serve::render(&report));
        println!("wrote {out}");
    }
}
