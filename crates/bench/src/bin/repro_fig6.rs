//! Regenerates the paper's fig6 artifact; prints the rows/series and, with
//! `--json`, a machine-readable dump.

use crossmesh_bench::fig6;

fn main() {
    crossmesh_bench::repro_main("fig6", fig6::run, |r| fig6::render(r));
}
