//! Regenerates the paper's fig8 artifact; prints the rows/series and, with
//! `--json`, a machine-readable dump.

use crossmesh_bench::fig8;

fn main() {
    crossmesh_bench::repro_main("fig8", fig8::run, |r| fig8::render(r));
}
