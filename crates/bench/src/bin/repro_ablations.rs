//! Runs the design-choice ablation sweeps (chunk count, DFS budget,
//! greedy permutations, weight delay, receiver-host scaling).

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let a = crossmesh_bench::ablations::run();
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&a).expect("serializable")
        );
    } else {
        println!("{}", crossmesh_bench::ablations::render(&a));
    }
}
