//! Runs the design-choice ablation sweeps (chunk count, DFS budget,
//! greedy permutations, weight delay, receiver-host scaling).

use crossmesh_bench::ablations;

fn main() {
    crossmesh_bench::repro_main("ablations", ablations::run, ablations::render);
}
