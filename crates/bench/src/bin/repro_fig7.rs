//! Regenerates the paper's fig7 artifact; prints the rows/series and, with
//! `--json`, a machine-readable dump.

use crossmesh_bench::fig7;

fn main() {
    crossmesh_bench::repro_main("fig7", fig7::run, |r| fig7::render(r));
}
