//! The benchmark regression gate.
//!
//! Full mode diffs fresh `BENCH_*.json` reports against a committed
//! baseline set under the default manifests and exits non-zero on any
//! regression:
//!
//! ```text
//! repro_regress --baseline-dir <dir> [--fresh-dir <dir>] [--json]
//! ```
//!
//! `--smoke` instead self-tests the detector on the committed baselines:
//! every report must pass against itself, and a synthetic slowdown 20%
//! beyond each rule's tolerance must convict every ratio rule — proving
//! the gate would actually fire before CI trusts it to stay green.

use crossmesh_bench::regress::{self, Check, Options, Outcome, Verdict};
use serde_json::Value;
use std::path::Path;
use std::process::ExitCode;

fn read_doc(path: &Path) -> Option<Value> {
    let text = std::fs::read_to_string(path).ok()?;
    match serde_json::from_str(&text) {
        Ok(v) => Some(v),
        Err(e) => {
            eprintln!("warning: {} does not parse: {e:?}", path.display());
            None
        }
    }
}

fn self_test() -> ExitCode {
    let opts = Options {
        live: crossmesh_bench::hostenv::HostEnv::detect(),
        // A 1-core CI runner must still prove the detector fires.
        force_wallclock: true,
    };
    let mut convicted = 0usize;
    let mut checked = 0usize;
    for manifest in regress::default_manifests() {
        let Some(base) = read_doc(Path::new(&manifest.file)) else {
            println!("regress self-test: {} absent, skipped", manifest.file);
            continue;
        };
        let identity = regress::compare(&manifest, &base, &base, &opts);
        if regress::has_regressions(&identity) {
            eprintln!(
                "regress self-test FAILED: {} regresses against itself\n{}",
                manifest.file,
                regress::render(&identity)
            );
            return ExitCode::FAILURE;
        }
        let mut slow = base.clone();
        regress::inject_slowdown(&mut slow, &manifest, 0.2);
        let injected = regress::compare(&manifest, &base, &slow, &opts);
        for o in &injected {
            let is_ratio = manifest
                .rules
                .iter()
                .find(|r| r.path == o.path)
                .is_some_and(|r| matches!(r.check, Check::Ratio { .. }));
            if !is_ratio || o.verdict == Verdict::Skipped {
                continue;
            }
            checked += 1;
            if o.verdict == Verdict::Regressed {
                convicted += 1;
            } else {
                eprintln!(
                    "regress self-test FAILED: injected slowdown in {} {} \
                     went unconvicted ({})",
                    o.file, o.path, o.detail
                );
                return ExitCode::FAILURE;
            }
        }
        println!("regress self-test: {} ok", manifest.file);
    }
    if checked == 0 {
        eprintln!("regress self-test FAILED: no committed baseline had a ratio rule to test");
        return ExitCode::FAILURE;
    }
    println!("regress self-test: {convicted}/{checked} injected slowdowns convicted");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    if args.iter().any(|a| a == "--smoke") {
        return self_test();
    }
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let baseline_dir = get("--baseline-dir").unwrap_or_else(|| ".".into());
    let fresh_dir = get("--fresh-dir").unwrap_or_else(|| ".".into());

    let opts = Options::detect();
    let mut outcomes: Vec<Outcome> = Vec::new();
    for manifest in regress::default_manifests() {
        let base = read_doc(&Path::new(&baseline_dir).join(&manifest.file));
        let fresh = read_doc(&Path::new(&fresh_dir).join(&manifest.file));
        match (base, fresh) {
            (Some(b), Some(f)) => outcomes.extend(regress::compare(&manifest, &b, &f, &opts)),
            (b, f) => outcomes.push(Outcome {
                file: manifest.file.clone(),
                path: "*".into(),
                verdict: Verdict::Skipped,
                ratio: None,
                detail: format!(
                    "report missing ({} baseline, {} fresh)",
                    if b.is_some() { "have" } else { "no" },
                    if f.is_some() { "have" } else { "no" },
                ),
            }),
        }
    }
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&outcomes).expect("outcomes serialize")
        );
    } else {
        print!("{}", regress::render(&outcomes));
    }
    if regress::has_regressions(&outcomes) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
