//! Regenerates the fault-degradation sweep; prints the rows and, with
//! `--json`, a machine-readable dump.

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let rows = crossmesh_bench::faults::run();
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&rows).expect("serializable")
        );
    } else {
        println!("{}", crossmesh_bench::faults::render(&rows));
    }
}
