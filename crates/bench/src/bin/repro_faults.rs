//! Regenerates the fault-degradation sweep; prints the rows and, with
//! `--json`, a machine-readable dump.

use crossmesh_bench::faults;

fn main() {
    crossmesh_bench::repro_main("faults", faults::run, |r| faults::render(r));
}
