//! Regenerates the paper's fig5 artifact; prints the rows/series and, with
//! `--json`, a machine-readable dump.

use crossmesh_bench::fig5;

fn main() {
    crossmesh_bench::repro_main("fig5", fig5::run, |r| fig5::render(r));
}
