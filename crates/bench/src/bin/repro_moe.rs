//! Runs the MoE all-to-all strategy sweep; prints the table, writes
//! `BENCH_moe.json`, and with `--json` dumps the report to stdout.
//! `--smoke` trims the grid for CI; `--out PATH` overrides the JSON path.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_moe.json", String::as_str);

    let report = crossmesh_bench::moe::run(smoke);
    for r in &report.rows {
        assert_eq!(
            r.convictions, 0,
            "{}/{}/{}: verifier convicted an all-to-all plan",
            r.topology, r.skew, r.strategy
        );
    }
    for s in &report.rail_speedups {
        assert!(
            s.vs_send_recv > 1.0 && s.vs_broadcast > 1.0,
            "multi-rail must beat both baselines on the rail fabric at skew {}: {s:?}",
            s.skew
        );
    }
    let pretty = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write(out, &pretty).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    if json {
        println!("{pretty}");
    } else {
        println!("{}", crossmesh_bench::moe::render(&report));
        println!("wrote {out}");
    }
}
