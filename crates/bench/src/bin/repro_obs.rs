//! Measures observability overhead: planner wall-clock with collectors
//! disabled vs. a counting collector installed. `--smoke` trims the run
//! for CI; `--json` dumps the report.

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    crossmesh_bench::repro_main(
        "obs_overhead",
        || crossmesh_bench::obs_overhead::run(smoke),
        crossmesh_bench::obs_overhead::render,
    );
}
