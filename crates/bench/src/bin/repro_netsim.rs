//! Regenerates the netsim engine-scaling harness (incremental engine vs
//! frozen reference + 10k-host GPT sweep); prints the tables, writes
//! `BENCH_netsim.json`, and with `--json` dumps the report to stdout.
//! `--smoke` trims cluster sizes for CI; `--out PATH` overrides the JSON
//! path.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_netsim.json", String::as_str);

    let report = crossmesh_bench::netsim::run(smoke);
    let pretty = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write(out, &pretty).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    if json {
        println!("{pretty}");
    } else {
        println!("{}", crossmesh_bench::netsim::render(&report));
        println!("wrote {out}");
    }
}
