//! Runs every reproduction harness in sequence (Table 1, Figures 5-9).

fn main() {
    println!(
        "{}",
        crossmesh_bench::table1::render(&crossmesh_bench::table1::run())
    );
    println!(
        "{}",
        crossmesh_bench::fig5::render(&crossmesh_bench::fig5::run())
    );
    println!(
        "{}",
        crossmesh_bench::fig6::render(&crossmesh_bench::fig6::run())
    );
    println!(
        "{}",
        crossmesh_bench::fig7::render(&crossmesh_bench::fig7::run())
    );
    println!(
        "{}",
        crossmesh_bench::fig8::render(&crossmesh_bench::fig8::run())
    );
    println!(
        "{}",
        crossmesh_bench::fig9::render(&crossmesh_bench::fig9::run())
    );
}
