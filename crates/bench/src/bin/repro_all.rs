//! Runs every reproduction harness in sequence (Table 1, Figures 5-9).
//! With `--json`, emits one JSON object keyed by artifact name instead of
//! the rendered tables.

use crossmesh_bench::{fig5, fig6, fig7, fig8, fig9, section, table1};

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let sections = [
        section("table1", json, table1::run, table1::render),
        section("fig5", json, fig5::run, |r| fig5::render(r)),
        section("fig6", json, fig6::run, |r| fig6::render(r)),
        section("fig7", json, fig7::run, |r| fig7::render(r)),
        section("fig8", json, fig8::run, |r| fig8::render(r)),
        section("fig9", json, fig9::run, |r| fig9::render(r)),
    ];
    if json {
        println!("{{{}}}", sections.join(","));
    } else {
        for s in sections {
            println!("{s}");
        }
    }
}
