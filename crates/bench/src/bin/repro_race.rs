//! Measures race-detector overhead: the MoE all-to-all dataplane with
//! the happens-before seam disarmed vs. armed with the FastTrack engine,
//! plus the defect-conviction sweep and clean-suite silence check;
//! prints the summary, writes `BENCH_race.json`, and with `--json` dumps
//! the report to stdout. `--smoke` trims the run for CI; `--out PATH`
//! overrides the JSON path.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_race.json", String::as_str);

    let report = crossmesh_bench::race::run(smoke);
    let pretty = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write(out, &pretty).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    if json {
        println!("{pretty}");
    } else {
        println!("{}", crossmesh_bench::race::render(&report));
        println!("wrote {out}");
    }
}
