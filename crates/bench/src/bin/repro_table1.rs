//! Regenerates Table 1; prints the memory breakdown and, with `--json`, a
//! machine-readable dump.

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let m = crossmesh_bench::table1::run();
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&m).expect("serializable")
        );
    } else {
        println!("{}", crossmesh_bench::table1::render(&m));
    }
}
