//! Regenerates Table 1; prints the memory breakdown and, with `--json`, a
//! machine-readable dump.

use crossmesh_bench::table1;

fn main() {
    crossmesh_bench::repro_main("table1", table1::run, table1::render);
}
