//! Regenerates the paper's fig9 artifact; prints the rows/series and, with
//! `--json`, a machine-readable dump.

use crossmesh_bench::fig9;

fn main() {
    crossmesh_bench::repro_main("fig9", fig9::run, |r| fig9::render(r));
}
