//! Regenerates the paper's fig9 artifact; prints the rows/series and, with
//! `--json`, a machine-readable dump.

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let rows = crossmesh_bench::fig9::run();
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&rows).expect("serializable")
        );
    } else {
        println!("{}", crossmesh_bench::fig9::render(&rows));
    }
}
