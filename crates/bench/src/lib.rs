//! Reproduction harnesses for every table and figure in the paper's
//! evaluation (§5). Each `figN`/`tableN` module exposes a `run()` that
//! regenerates the corresponding rows/series on the flow-level simulator;
//! the `repro_*` binaries print them, and the Criterion benches in
//! `benches/` time them.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`table1`] | Table 1 — GPT-3 layer memory breakdown |
//! | [`fig5`] | Figure 5 — single-device → multi-device microbenchmark |
//! | [`fig6`] | Figure 6 (+ Table 2) — multi-device → multi-device cases |
//! | [`fig7`] | Figure 7 (+ Table 3) — end-to-end GPT / U-Transformer |
//! | [`fig8`] | Figure 8 — load-balance ablation |
//! | [`fig9`] | Figure 9 — overlap-friendly schedule ablation |
//! | [`faults`] | extension — throughput vs injected fault rate (not in the paper) |
//! | [`planner`] | extension — planner wall-clock vs pool width + plan cache (not in the paper) |
//! | [`obs_overhead`] | extension — observability overhead with collectors on/off (not in the paper) |
//! | [`moe`] | extension — MoE all-to-all strategies across fabrics and gate skews (not in the paper) |
//! | [`netsim`] | extension — incremental engine vs frozen reference + 10k-host GPT sweep (not in the paper) |
//! | [`serve`] | extension — multi-tenant daemon throughput/latency under trace-driven load (not in the paper) |
//! | [`race`] | extension — happens-before race-detector overhead, conviction sweep, clean-suite silence (not in the paper) |
//! | [`regress`] | extension — noise-aware regression gate over the committed `BENCH_*.json` baselines |
//!
//! Simulated numbers are not the paper's wall-clock numbers — the substrate
//! is a simulator, not the authors' AWS cluster — but the *shapes* (who
//! wins, by what factor, where the crossovers sit) are the reproduction
//! targets, recorded in `EXPERIMENTS.md`.

pub mod ablations;
pub mod cases;
pub mod check_overhead;
pub mod faults;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod hostenv;
pub mod moe;
pub mod netsim;
pub mod obs_overhead;
pub mod planner;
pub mod race;
pub mod regress;
pub mod repro;
pub mod serve;
pub mod table1;
pub mod table_fmt;

pub use repro::{repro_main, section};
