//! Trace-driven load harness for the resharding daemon.
//!
//! Not a paper figure — this measures `crossmesh-serve` itself. A seeded
//! workload generator produces two open-loop arrival traces over a pool
//! of distinct task shapes shared across several tenants:
//!
//! * **poisson** — exponential inter-arrivals at a sustainable aggregate
//!   rate under a generous admission config: measures steady-state
//!   throughput and latency, and the cross-tenant cache hit rate (every
//!   tenant draws from the same shape pool, so tenant B's first request
//!   for a shape tenant A already planned is a shared-cache hit);
//! * **bursty** — synchronized bursts several times the token-bucket
//!   capacity under a tight admission config: measures graceful
//!   degradation. The bucket sheds the burst overflow *by construction*
//!   (burst size ≥ 3× capacity), so a positive shed rate is a
//!   deterministic outcome, not a timing accident.
//!
//! Each scenario runs against its own in-process daemon (or, with
//! [`run_against`], an external one — used by the CI smoke step). Senders
//! are open-loop: a shed or slow request never delays the next arrival,
//! so the daemon sees the offered load, not a closed-loop echo of its own
//! latency. Every request is answered (`Done`, `Rejected`, or `Error`),
//! and the harness asserts nothing was dropped.

use crate::hostenv::HostEnv;
use crossmesh_serve::proto::{self, Request, RequestBody, ReshardRequest, Response};
use crossmesh_serve::{AdmissionConfig, BackendKind, ServeConfig, Server};
use parking_lot::Mutex;
use rand::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Base RNG seed; each scenario and tenant derives its own stream.
const SEED: u64 = 0x5EEDED_C0FFEE;

/// One arrival in a tenant's schedule.
struct Arrival {
    /// Offset from the scenario start.
    at: Duration,
    req: ReshardRequest,
}

/// Scenario shape: name, arrival process, and the admission config its
/// in-process daemon runs with.
struct Scenario {
    name: &'static str,
    admission: AdmissionConfig,
    /// Per-tenant arrival schedules, keyed by tenant name.
    schedules: Vec<(String, Vec<Arrival>)>,
    distinct_shapes: usize,
}

/// Aggregated results of one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// `poisson` or `bursty`.
    pub name: String,
    /// Tenants that sent traffic.
    pub tenants: usize,
    /// Requests offered across all tenants.
    pub requests: usize,
    /// Distinct task shapes in the workload pool.
    pub distinct_shapes: usize,
    /// Wall-clock from first send to last reply, seconds.
    pub duration_seconds: f64,
    /// Completed requests per second of wall-clock.
    pub sustained_rps: f64,
    /// Median completion latency (send → `Done`), milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile completion latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile completion latency, milliseconds.
    pub p999_ms: f64,
    /// Requests answered `Done`.
    pub completed: u64,
    /// Requests shed by admission control.
    pub rejected: u64,
    /// Admitted requests that failed (must be 0).
    pub failed: u64,
    /// `rejected / requests`.
    pub shed_rate: f64,
    /// Cross-tenant shared-cache hit rate over completed requests.
    pub cache_hit_rate: f64,
    /// Verifier convictions observed by the daemon (must be 0).
    pub verifier_convictions: u64,
}

/// The whole harness run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// The measuring host (parallelism, env overrides, build profile).
    pub env: HostEnv,
    /// Worker-pool width the daemon ran with.
    pub workers: usize,
    /// One entry per scenario.
    pub scenarios: Vec<ScenarioReport>,
}

/// Builds the shared shape pool: `n` distinct (spec-pair, mesh, shape)
/// problems, all small enough that one request costs a few milliseconds.
fn shape_pool(n: usize) -> Vec<ReshardRequest> {
    let spec_pairs = [
        ("RS0R", "S0RR"),
        ("S0RR", "RS0R"),
        ("RRS0", "S0RR"),
        ("RS0R", "RRS0"),
    ];
    let meshes = [("2x4", "2x4"), ("2x2", "2x4"), ("2x4", "2x2")];
    (0..n)
        .map(|i| {
            let (src_spec, dst_spec) = spec_pairs[i % spec_pairs.len()];
            let (src_mesh, dst_mesh) = meshes[(i / spec_pairs.len()) % meshes.len()];
            // Vary two dims so every index is a distinct tensor shape.
            let a = 16 * (1 + (i % 8) as u64);
            let b = 8 * (1 + ((i / 8) % 8) as u64);
            let c = 4 * (1 + (i / 64) as u64);
            ReshardRequest {
                src_spec: src_spec.into(),
                dst_spec: dst_spec.into(),
                src_mesh: src_mesh.into(),
                dst_mesh: dst_mesh.into(),
                shape: format!("{a}x{b}x{c}"),
                elem_bytes: 4,
                planner: "ours".into(),
                seed: None,
                faults: None,
            }
        })
        .collect()
}

/// Tenant names: `tenant-0`, `tenant-1`, ...
fn tenant_names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("tenant-{i}")).collect()
}

/// Poisson scenario: exponential inter-arrivals per tenant, generous
/// admission (rate far above offered load) so shedding stays incidental.
fn poisson_scenario(smoke: bool, pool: &[ReshardRequest]) -> Scenario {
    let tenants = if smoke { 3 } else { 5 };
    let per_tenant = if smoke { 80 } else { 400 };
    // Offered load per tenant, requests/second.
    let rate = if smoke { 150.0 } else { 200.0 };
    let schedules = tenant_names(tenants)
        .into_iter()
        .enumerate()
        .map(|(t, name)| {
            let mut rng = SmallRng::seed_from_u64(SEED ^ (t as u64) << 8);
            let mut at = Duration::ZERO;
            let arrivals = (0..per_tenant)
                .map(|_| {
                    // Exponential inter-arrival: -ln(U)/rate.
                    let u = rng.gen_f64().max(1e-12);
                    at += Duration::from_secs_f64(-u.ln() / rate);
                    Arrival {
                        at,
                        req: pool[rng.gen_range_u64(pool.len() as u64) as usize].clone(),
                    }
                })
                .collect();
            (name, arrivals)
        })
        .collect();
    Scenario {
        name: "poisson",
        admission: AdmissionConfig {
            rate: 2000.0,
            burst: 200.0,
            queue_depth: 1024,
        },
        schedules,
        distinct_shapes: pool.len(),
    }
}

/// Bursty overload scenario: every tenant fires synchronized bursts of
/// `3.5×` the bucket capacity, so the bucket *must* shed the overflow no
/// matter how fast the workers drain.
fn bursty_scenario(smoke: bool, pool: &[ReshardRequest]) -> Scenario {
    let tenants = if smoke { 3 } else { 5 };
    let bursts = if smoke { 3 } else { 6 };
    let admission = AdmissionConfig {
        rate: 50.0,
        burst: 10.0,
        queue_depth: 64,
    };
    // 3.5× the bucket capacity per burst; the gap refills at most
    // gap × rate = 15 tokens, so every burst overflows deterministically.
    let burst_size = (admission.burst * 3.5) as usize;
    let gap = Duration::from_millis(300);
    let schedules = tenant_names(tenants)
        .into_iter()
        .enumerate()
        .map(|(t, name)| {
            let mut rng = SmallRng::seed_from_u64(SEED ^ 0xB00 ^ (t as u64) << 8);
            let mut arrivals = Vec::new();
            for b in 0..bursts {
                let at = gap * b as u32;
                for _ in 0..burst_size {
                    arrivals.push(Arrival {
                        at,
                        req: pool[rng.gen_range_u64(pool.len() as u64) as usize].clone(),
                    });
                }
            }
            (name, arrivals)
        })
        .collect();
    Scenario {
        name: "bursty",
        admission,
        schedules,
        distinct_shapes: pool.len(),
    }
}

/// Per-tenant raw results collected by the receiver thread.
#[derive(Default)]
struct TenantOutcome {
    latencies_ms: Vec<f64>,
    completed: u64,
    rejected: u64,
    failed: u64,
    cache_hits: u64,
}

/// Drives one tenant's schedule against the daemon: an open-loop sender
/// thread paced by the schedule, and a receiver loop (this thread)
/// reading replies until every request is answered.
fn drive_tenant(
    addr: SocketAddr,
    tenant: String,
    arrivals: Vec<Arrival>,
    start: Instant,
) -> std::io::Result<TenantOutcome> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let sent_at: Arc<Mutex<HashMap<u64, Instant>>> = Arc::new(Mutex::new(HashMap::new()));
    let expected = arrivals.len();

    let sender = {
        let sent_at = Arc::clone(&sent_at);
        thread::spawn(move || -> std::io::Result<()> {
            for (i, arrival) in arrivals.into_iter().enumerate() {
                let due = start + arrival.at;
                let now = Instant::now();
                if due > now {
                    thread::sleep(due - now);
                }
                let id = i as u64 + 1;
                sent_at.lock().insert(id, Instant::now());
                proto::write_frame(
                    &mut writer,
                    &Request {
                        id,
                        tenant: tenant.clone(),
                        body: RequestBody::Reshard(arrival.req),
                    },
                )?;
            }
            Ok(())
        })
    };

    let mut out = TenantOutcome::default();
    let mut reader = stream;
    for _ in 0..expected {
        let resp: Response = match proto::read_frame(&mut reader)? {
            Some(r) => r,
            None => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "daemon closed the connection mid-run",
                ))
            }
        };
        let sent = sent_at.lock().remove(&resp.id());
        match resp {
            Response::Done(d) => {
                out.completed += 1;
                if d.cache_hit {
                    out.cache_hits += 1;
                }
                if let Some(t) = sent {
                    out.latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
                }
            }
            Response::Rejected(_) => out.rejected += 1,
            Response::Error(_) => out.failed += 1,
            other => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unexpected reply: {other:?}"),
                ))
            }
        }
    }
    sender
        .join()
        .map_err(|_| std::io::Error::other("sender thread panicked"))??;
    Ok(out)
}

/// Sorted-percentile helper (nearest-rank).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Runs one scenario against the daemon at `addr`, reading conviction
/// counts from the daemon's `Stats` endpoint before and after.
fn run_scenario_against(addr: SocketAddr, scenario: Scenario) -> std::io::Result<ScenarioReport> {
    let mut control = crossmesh_serve::Client::connect(addr)?;
    let before = control.stats()?;

    let tenants = scenario.schedules.len();
    let requests: usize = scenario.schedules.iter().map(|(_, a)| a.len()).sum();
    let start = Instant::now() + Duration::from_millis(50);
    let handles: Vec<_> = scenario
        .schedules
        .into_iter()
        .map(|(tenant, arrivals)| {
            thread::spawn(move || drive_tenant(addr, tenant, arrivals, start))
        })
        .collect();
    let mut outcome = TenantOutcome::default();
    for h in handles {
        let t = h
            .join()
            .map_err(|_| std::io::Error::other("tenant thread panicked"))??;
        outcome.latencies_ms.extend(t.latencies_ms);
        outcome.completed += t.completed;
        outcome.rejected += t.rejected;
        outcome.failed += t.failed;
        outcome.cache_hits += t.cache_hits;
    }
    let duration = start.elapsed().as_secs_f64();
    let after = control.stats()?;

    let answered = outcome.completed + outcome.rejected + outcome.failed;
    assert_eq!(
        answered as usize, requests,
        "every offered request must be answered"
    );
    outcome
        .latencies_ms
        .sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    Ok(ScenarioReport {
        name: scenario.name.to_string(),
        tenants,
        requests,
        distinct_shapes: scenario.distinct_shapes,
        duration_seconds: duration,
        sustained_rps: outcome.completed as f64 / duration.max(1e-9),
        p50_ms: percentile(&outcome.latencies_ms, 0.50),
        p99_ms: percentile(&outcome.latencies_ms, 0.99),
        p999_ms: percentile(&outcome.latencies_ms, 0.999),
        completed: outcome.completed,
        rejected: outcome.rejected,
        failed: outcome.failed,
        shed_rate: outcome.rejected as f64 / requests.max(1) as f64,
        cache_hit_rate: outcome.cache_hits as f64 / outcome.completed.max(1) as f64,
        verifier_convictions: after
            .verifier_convictions
            .saturating_sub(before.verifier_convictions),
    })
}

/// Workers used by the in-process daemons (and recorded in the report).
pub fn default_workers() -> usize {
    4
}

/// Runs both scenarios, each against its own in-process daemon with the
/// scenario's admission config. `smoke` trims the trace for CI. `workers`
/// sets the daemon worker-pool width.
///
/// # Panics
///
/// Panics if the daemon fails to start, a connection breaks mid-run, or a
/// request goes unanswered — all harness-level failures.
pub fn run_with_workers(smoke: bool, workers: usize) -> Report {
    let pool = shape_pool(if smoke { 40 } else { 240 });
    let scenarios = vec![
        poisson_scenario(smoke, &pool),
        bursty_scenario(smoke, &pool),
    ];
    let mut out = Vec::new();
    for scenario in scenarios {
        let server = Server::start(ServeConfig {
            workers,
            admission: scenario.admission,
            backend: BackendKind::Sim,
            default_planner: "ours".into(),
            allow_remote_shutdown: false,
            metrics_out: None,
            trace_out: None,
            flightrec_dir: None,
            slo_exec_p99_ms: None,
        })
        .expect("daemon starts");
        let report = run_scenario_against(server.addr(), scenario).expect("scenario completes");
        let summary = server.shutdown();
        assert_eq!(
            summary.verifier_convictions, 0,
            "verifier convicted a served plan"
        );
        out.push(report);
    }
    Report {
        env: HostEnv::detect().with_smoke(smoke),
        workers,
        scenarios: out,
    }
}

/// [`run_with_workers`] at the default width.
pub fn run(smoke: bool) -> Report {
    run_with_workers(smoke, default_workers())
}

/// Runs both scenario *traces* against an already-running external
/// daemon (the CI smoke step drives the real `crossmesh serve` binary
/// this way). Shed behaviour then depends on the daemon's own admission
/// flags rather than the per-scenario configs.
///
/// # Errors
///
/// Propagates connection and protocol errors.
pub fn run_against(addr: SocketAddr, smoke: bool) -> std::io::Result<Report> {
    let pool = shape_pool(if smoke { 40 } else { 240 });
    let scenarios = vec![
        poisson_scenario(smoke, &pool),
        bursty_scenario(smoke, &pool),
    ];
    let mut out = Vec::new();
    for scenario in scenarios {
        out.push(run_scenario_against(addr, scenario)?);
    }
    Ok(Report {
        env: HostEnv::detect().with_smoke(smoke),
        workers: 0, // unknown: the external daemon owns the pool
        scenarios: out,
    })
}

/// Renders the report as a table.
pub fn render(report: &Report) -> String {
    let mut table = vec![vec![
        "scenario".to_string(),
        "tenants".to_string(),
        "requests".to_string(),
        "rps".to_string(),
        "p50 ms".to_string(),
        "p99 ms".to_string(),
        "p999 ms".to_string(),
        "shed".to_string(),
        "cache hit".to_string(),
    ]];
    for s in &report.scenarios {
        table.push(vec![
            s.name.clone(),
            s.tenants.to_string(),
            s.requests.to_string(),
            format!("{:.0}", s.sustained_rps),
            format!("{:.2}", s.p50_ms),
            format!("{:.2}", s.p99_ms),
            format!("{:.2}", s.p999_ms),
            format!("{:.0}%", s.shed_rate * 100.0),
            format!("{:.0}%", s.cache_hit_rate * 100.0),
        ]);
    }
    format!(
        "Serve load harness — {} workers, host has {} threads\n{}",
        report.workers,
        report.env.host_threads,
        crate::table_fmt::render(&table),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 0.999), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn shape_pool_is_distinct() {
        let pool = shape_pool(240);
        let mut seen = std::collections::BTreeSet::new();
        for r in &pool {
            seen.insert(format!(
                "{}|{}|{}|{}|{}",
                r.src_spec, r.dst_spec, r.src_mesh, r.dst_mesh, r.shape
            ));
        }
        assert_eq!(seen.len(), 240, "pool entries must be distinct problems");
    }

    #[test]
    fn schedules_are_deterministic_under_the_fixed_seed() {
        let pool = shape_pool(40);
        let a = poisson_scenario(true, &pool);
        let b = poisson_scenario(true, &pool);
        for ((_, xs), (_, ys)) in a.schedules.iter().zip(&b.schedules) {
            assert_eq!(xs.len(), ys.len());
            for (x, y) in xs.iter().zip(ys) {
                assert_eq!(x.at, y.at);
                assert_eq!(x.req, y.req);
            }
        }
    }

    #[test]
    fn bursts_exceed_bucket_capacity_by_construction() {
        let pool = shape_pool(40);
        let s = bursty_scenario(true, &pool);
        // First burst size vs the bucket: capacity 10, burst 35.
        let (_, arrivals) = &s.schedules[0];
        let first_burst = arrivals.iter().filter(|a| a.at == Duration::ZERO).count();
        assert!(
            first_burst as f64 >= 3.0 * s.admission.burst,
            "burst {first_burst} must overwhelm capacity {}",
            s.admission.burst
        );
    }
}
