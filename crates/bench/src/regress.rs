//! Noise-aware benchmark regression gate.
//!
//! Diffs a freshly generated `BENCH_*.json` against the committed
//! baseline under a per-metric manifest: each rule names a JSON path
//! (`rows[*].millis`, `cache.speedup`), a direction, and a tolerance.
//! Ratio rules compare the *median* of the per-cell fresh/baseline
//! ratios — one noisy outlier cell cannot convict a run — and bound
//! rules hold an absolute floor/ceiling on the fresh document alone
//! (convictions stay zero, the recorder tax stays under its budget).
//!
//! The gate is host-env-aware: wall-clock rules are skipped — never
//! silently passed — when the fresh run cannot vouch for its timings
//! (debug build, different platform or core count than the baseline,
//! or an oversubscribed host). Simulated seconds, hit rates, and
//! conviction counts are deterministic and are checked everywhere.
//!
//! Shape mismatches (a `--smoke` run diffed against a full baseline)
//! are reported as [`Verdict::Skipped`], not failures: the gate only
//! ever convicts on evidence it actually holds. For the same reason,
//! wall-clock Max/Min pins are skipped when the fresh report is itself
//! a smoke run (`env.smoke`): a handful of iterations cannot support a
//! single-digit-percent bound, and convicting on that jitter would
//! train people to ignore the gate. Ratio rules are likewise skipped
//! when one report is a smoke run and the other is not — a smoke run
//! measures a smaller workload, so scalar figures like `cache.speedup`
//! compare different experiments across modes. The tight pins and
//! drift checks bind on full runs — exactly the runs that produce
//! committed baselines; deterministic invariant pins (conviction
//! counts, byte-identity) hold in every mode and are always checked.

use crate::hostenv::HostEnv;
use serde::{Deserialize, Serialize};
use serde_json::Value;

/// Which way "better" points for a ratio rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Smaller is better (latencies, makespans, overheads).
    Lower,
    /// Larger is better (speedups, hit rates, throughput).
    Higher,
}

/// What a rule checks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Check {
    /// Median per-cell fresh-vs-baseline ratio must not drift more than
    /// `tolerance` (fractional) in the bad direction.
    Ratio {
        /// Which drift direction is a regression.
        direction: Direction,
        /// Allowed fractional drift, e.g. `0.5` = 50% worse.
        tolerance: f64,
    },
    /// Every fresh value must be `<= ceiling` (baseline not consulted).
    Max {
        /// The inclusive ceiling.
        ceiling: f64,
    },
    /// Every fresh value must be `>= floor` (baseline not consulted).
    Min {
        /// The inclusive floor.
        floor: f64,
    },
}

/// One metric the gate watches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// JSON path into the report: dot-separated members, `[*]` fans out
    /// over an array, `[N]` indexes one element. Booleans read as 0/1.
    pub path: String,
    /// What to check at that path.
    pub check: Check,
    /// Whether the metric measures wall-clock time — subject to the
    /// host-env skip logic; deterministic metrics set `false`.
    pub wallclock: bool,
}

impl Rule {
    /// A wall-clock ratio rule (skipped on untrustworthy hosts).
    pub fn wallclock(path: &str, direction: Direction, tolerance: f64) -> Rule {
        Rule {
            path: path.into(),
            check: Check::Ratio {
                direction,
                tolerance,
            },
            wallclock: true,
        }
    }

    /// A deterministic ratio rule (checked on every host).
    pub fn deterministic(path: &str, direction: Direction, tolerance: f64) -> Rule {
        Rule {
            path: path.into(),
            check: Check::Ratio {
                direction,
                tolerance,
            },
            wallclock: false,
        }
    }

    /// An absolute ceiling on the fresh document.
    pub fn max(path: &str, ceiling: f64, wallclock: bool) -> Rule {
        Rule {
            path: path.into(),
            check: Check::Max { ceiling },
            wallclock,
        }
    }

    /// An absolute floor on the fresh document.
    pub fn min(path: &str, floor: f64, wallclock: bool) -> Rule {
        Rule {
            path: path.into(),
            check: Check::Min { floor },
            wallclock,
        }
    }
}

/// The rules for one `BENCH_*.json` report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// The report file name, e.g. `BENCH_planner.json`.
    pub file: String,
    /// The metrics the gate watches in it.
    pub rules: Vec<Rule>,
}

/// A rule's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Within tolerance.
    Ok,
    /// Out of tolerance — the gate fails.
    Regressed,
    /// Not comparable here (shape mismatch, missing file, or an
    /// untrustworthy host for a wall-clock metric); never a failure.
    Skipped,
}

/// One evaluated rule: the verdict plus the evidence behind it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Outcome {
    /// The report file the rule came from.
    pub file: String,
    /// The rule's JSON path.
    pub path: String,
    /// Pass / fail / not-comparable.
    pub verdict: Verdict,
    /// Median fresh-vs-baseline ratio for ratio rules.
    pub ratio: Option<f64>,
    /// Human-readable evidence ("median ratio 1.03 <= 1.50", skip reason).
    pub detail: String,
}

/// Comparison knobs.
#[derive(Debug, Clone)]
pub struct Options {
    /// The host running the comparison (used for the oversubscription
    /// skip); [`HostEnv::detect`] outside tests.
    pub live: HostEnv,
    /// Check wall-clock rules even when the env says not to — the
    /// injected-slowdown self-test uses this so a 1-core CI runner
    /// still proves the detector fires.
    pub force_wallclock: bool,
}

impl Options {
    /// Production options for the current host.
    pub fn detect() -> Options {
        Options {
            live: HostEnv::detect(),
            force_wallclock: false,
        }
    }
}

/// Extracts every numeric leaf at `path` ([`Rule::path`] syntax).
/// Booleans map to 0/1; missing members and nulls produce no values.
pub fn extract(doc: &Value, path: &str) -> Vec<f64> {
    let mut frontier = vec![doc];
    for seg in path.split('.') {
        let (member, index) = match seg.find('[') {
            Some(i) => (&seg[..i], Some(&seg[i..])),
            None => (seg, None),
        };
        let mut next = Vec::new();
        for v in frontier {
            let v = if member.is_empty() {
                Some(v)
            } else {
                v.get(member)
            };
            let Some(v) = v else { continue };
            match index {
                None => next.push(v),
                Some("[*]") => {
                    if let Some(arr) = v.as_array() {
                        next.extend(arr.iter());
                    }
                }
                Some(ix) => {
                    if let Some(e) = ix
                        .strip_prefix('[')
                        .and_then(|s| s.strip_suffix(']'))
                        .and_then(|s| s.parse::<usize>().ok())
                        .and_then(|n| v.as_array().and_then(|a| a.get(n)))
                    {
                        next.push(e);
                    }
                }
            }
        }
        frontier = next;
    }
    frontier
        .into_iter()
        .filter_map(|v| match v {
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            other => other.as_f64(),
        })
        .collect()
}

/// Applies `f` to every numeric leaf at `path` — the injection hook the
/// self-test uses to worsen a report in place.
pub fn map_leaves(doc: &mut Value, path: &str, f: &mut dyn FnMut(f64) -> f64) {
    fn walk(v: &mut Value, segs: &[&str], f: &mut dyn FnMut(f64) -> f64) {
        let Some(seg) = segs.first() else {
            if let Some(n) = v.as_f64() {
                *v = Value::F64(f(n));
            }
            return;
        };
        let (member, index) = match seg.find('[') {
            Some(i) => (&seg[..i], Some(&seg[i..])),
            None => (*seg, None),
        };
        let v = if member.is_empty() {
            Some(v)
        } else {
            v.get_mut(member)
        };
        let Some(v) = v else { return };
        match index {
            None => walk(v, &segs[1..], f),
            Some("[*]") => {
                if let Some(arr) = v.as_array_mut() {
                    for e in arr {
                        walk(e, &segs[1..], f);
                    }
                }
            }
            Some(ix) => {
                if let Some(e) = ix
                    .strip_prefix('[')
                    .and_then(|s| s.strip_suffix(']'))
                    .and_then(|s| s.parse::<usize>().ok())
                    .and_then(|n| v.as_array_mut().and_then(|a| a.get_mut(n)))
                {
                    walk(e, &segs[1..], f);
                }
            }
        }
    }
    let segs: Vec<&str> = path.split('.').collect();
    walk(doc, &segs, f);
}

/// The `env` object a report embeds, if any.
fn doc_env(doc: &Value) -> Option<HostEnv> {
    doc.get("env")
        .cloned()
        .and_then(|v| serde_json::from_value(v).ok())
}

/// Why wall-clock rules cannot be trusted for this (baseline, fresh)
/// pair, or `None` when they can.
pub fn wallclock_skip_reason(base: &Value, fresh: &Value, opts: &Options) -> Option<String> {
    if opts.force_wallclock {
        return None;
    }
    let fresh_env = match doc_env(fresh) {
        Some(e) => e,
        None => return Some("fresh report embeds no host env".into()),
    };
    let base_env = match doc_env(base) {
        Some(e) => e,
        None => return Some("baseline report embeds no host env".into()),
    };
    if fresh_env.profile != "release" {
        return Some(format!("fresh profile is {}", fresh_env.profile));
    }
    if base_env.platform != fresh_env.platform || base_env.host_threads != fresh_env.host_threads {
        return Some(format!(
            "host mismatch: baseline {}x{} vs fresh {}x{}",
            base_env.host_threads, base_env.platform, fresh_env.host_threads, fresh_env.platform
        ));
    }
    if opts.live.host_threads < fresh_env.host_threads {
        return Some(format!(
            "oversubscribed: report claims {} threads, live host has {}",
            fresh_env.host_threads, opts.live.host_threads
        ));
    }
    None
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Evaluates one manifest against a (baseline, fresh) report pair.
pub fn compare(manifest: &Manifest, base: &Value, fresh: &Value, opts: &Options) -> Vec<Outcome> {
    let skip_wallclock = wallclock_skip_reason(base, fresh, opts);
    // A trimmed smoke run validates plumbing, not timings: its handful
    // of iterations swings far too much for a tight absolute pin, so
    // wall-clock Max/Min bounds are skipped — never noise-convicted —
    // on smoke reports. And a smoke report measures a *smaller
    // workload* than a full one, so diffing one against a full
    // baseline compares different experiments: ratio rules are skipped
    // whenever the two reports' modes differ (the scalar cousin of the
    // shape-mismatch skip — `cache.speedup` on an 8-unit smoke case
    // can never match the committed 20-unit figure). Both are
    // precision properties of the measurement, not host trust, so
    // `force_wallclock` does not override them; deterministic Max/Min
    // invariant pins (conviction counts, byte-identity) hold in every
    // mode and are always checked.
    let fresh_is_smoke = doc_env(fresh).map(|e| e.is_smoke()).unwrap_or(false);
    let base_is_smoke = doc_env(base).map(|e| e.is_smoke()).unwrap_or(false);
    let mode_mismatch = fresh_is_smoke != base_is_smoke;
    let mut out = Vec::new();
    for rule in &manifest.rules {
        let outcome = |verdict, ratio, detail: String| Outcome {
            file: manifest.file.clone(),
            path: rule.path.clone(),
            verdict,
            ratio,
            detail,
        };
        if rule.wallclock {
            if let Some(reason) = &skip_wallclock {
                out.push(outcome(Verdict::Skipped, None, reason.clone()));
                continue;
            }
            if fresh_is_smoke && matches!(rule.check, Check::Max { .. } | Check::Min { .. }) {
                out.push(outcome(
                    Verdict::Skipped,
                    None,
                    "smoke run: too few iterations for a wall-clock bound".into(),
                ));
                continue;
            }
        }
        if mode_mismatch && matches!(rule.check, Check::Ratio { .. }) {
            out.push(outcome(
                Verdict::Skipped,
                None,
                "measurement mode mismatch: smoke vs full run".into(),
            ));
            continue;
        }
        let fresh_vals = extract(fresh, &rule.path);
        if fresh_vals.is_empty() {
            out.push(outcome(
                Verdict::Skipped,
                None,
                "path missing in fresh report".into(),
            ));
            continue;
        }
        match rule.check {
            Check::Ratio {
                direction,
                tolerance,
            } => {
                let base_vals = extract(base, &rule.path);
                if base_vals.len() != fresh_vals.len() {
                    out.push(outcome(
                        Verdict::Skipped,
                        None,
                        format!(
                            "shape mismatch: {} baseline vs {} fresh cells",
                            base_vals.len(),
                            fresh_vals.len()
                        ),
                    ));
                    continue;
                }
                let ratios: Vec<f64> = base_vals
                    .iter()
                    .zip(&fresh_vals)
                    .filter(|(b, f)| {
                        // A zero denominator carries no ratio information.
                        match direction {
                            Direction::Lower => **b > 0.0,
                            Direction::Higher => **f > 0.0,
                        }
                    })
                    .map(|(b, f)| match direction {
                        Direction::Lower => f / b,
                        Direction::Higher => b / f,
                    })
                    .collect();
                if ratios.is_empty() {
                    out.push(outcome(
                        Verdict::Skipped,
                        None,
                        "no comparable cells".into(),
                    ));
                    continue;
                }
                let m = median(ratios);
                let limit = 1.0 + tolerance;
                let verdict = if m > limit {
                    Verdict::Regressed
                } else {
                    Verdict::Ok
                };
                out.push(outcome(
                    verdict,
                    Some(m),
                    format!("median drift ratio {m:.3} vs limit {limit:.3}"),
                ));
            }
            Check::Max { ceiling } => {
                let worst = fresh_vals.iter().cloned().fold(f64::MIN, f64::max);
                let verdict = if worst <= ceiling {
                    Verdict::Ok
                } else {
                    Verdict::Regressed
                };
                out.push(outcome(
                    verdict,
                    None,
                    format!("max {worst:.4} vs ceiling {ceiling:.4}"),
                ));
            }
            Check::Min { floor } => {
                let worst = fresh_vals.iter().cloned().fold(f64::MAX, f64::min);
                let verdict = if worst >= floor {
                    Verdict::Ok
                } else {
                    Verdict::Regressed
                };
                out.push(outcome(
                    verdict,
                    None,
                    format!("min {worst:.4} vs floor {floor:.4}"),
                ));
            }
        }
    }
    out
}

/// Worsens every ratio-rule metric in `doc` by `margin` *beyond* its
/// tolerance (`Lower` metrics inflate, `Higher` metrics deflate) — the
/// self-test's synthetic regression. Bound rules are left alone.
pub fn inject_slowdown(doc: &mut Value, manifest: &Manifest, margin: f64) {
    for rule in &manifest.rules {
        if let Check::Ratio {
            direction,
            tolerance,
        } = rule.check
        {
            let factor = (1.0 + tolerance) * (1.0 + margin);
            map_leaves(doc, &rule.path, &mut |x| match direction {
                Direction::Lower => x * factor,
                Direction::Higher => x / factor,
            });
        }
    }
}

/// The committed reports and the metrics the gate holds them to.
pub fn default_manifests() -> Vec<Manifest> {
    vec![
        Manifest {
            file: "BENCH_planner.json".into(),
            rules: vec![
                Rule::wallclock("rows[*].millis", Direction::Lower, 0.5),
                Rule::wallclock("cache.speedup", Direction::Higher, 0.6),
                Rule::deterministic("cache.hit_rate", Direction::Higher, 0.05),
            ],
        },
        Manifest {
            file: "BENCH_check.json".into(),
            rules: vec![
                Rule::wallclock("rows[*].verify_micros", Direction::Lower, 0.6),
                Rule::wallclock("rows[*].overhead_ratio", Direction::Lower, 0.6),
            ],
        },
        Manifest {
            file: "BENCH_serve.json".into(),
            rules: vec![
                Rule::wallclock("scenarios[*].p99_ms", Direction::Lower, 0.5),
                Rule::wallclock("scenarios[*].sustained_rps", Direction::Higher, 0.4),
                Rule::max("scenarios[*].verifier_convictions", 0.0, false),
                Rule::max("scenarios[*].failed", 0.0, false),
            ],
        },
        Manifest {
            file: "BENCH_moe.json".into(),
            rules: vec![
                // Simulated seconds are deterministic: a tight leash.
                Rule::deterministic("rows[*].makespan_seconds", Direction::Lower, 0.1),
                Rule::deterministic("rail_speedups[*].vs_send_recv", Direction::Higher, 0.2),
                Rule::max("rows[*].convictions", 0.0, false),
            ],
        },
        Manifest {
            file: "BENCH_netsim.json".into(),
            rules: vec![
                Rule::wallclock("engine[*].speedup", Direction::Higher, 0.5),
                Rule::max("engine[*].makespan_rel_err", 1e-6, false),
                Rule::max("convictions", 0.0, false),
            ],
        },
        Manifest {
            file: "BENCH_race.json".into(),
            rules: vec![
                // The acceptance pin: the armed FastTrack engine may tax
                // the all-to-all at most 5%; disarmed cost is measured
                // per-site and drift-checked, both host-env-gated.
                Rule::max("armed_overhead_pct", 5.0, true),
                Rule::wallclock("armed_ms", Direction::Lower, 0.5),
                // Detector accuracy is deterministic: checked everywhere.
                Rule::min("convicted_fraction", 1.0, false),
                Rule::max("clean_findings", 0.0, false),
                Rule::min("identical_outputs", 1.0, false),
            ],
        },
        Manifest {
            file: "BENCH_obs.json".into(),
            rules: vec![
                // The acceptance budget: an armed flight recorder may tax
                // the planner at most 2%. Wall-clock-gated, so it binds
                // on full runs and is skipped on smoke reports, whose
                // 9-iteration measurement swings by double digits.
                Rule::max("recorder_overhead_pct", 2.0, true),
                Rule::max("overhead_pct", 50.0, true),
                Rule::min("identical_estimates", 1.0, false),
                Rule::wallclock("recorder_ms", Direction::Lower, 0.5),
            ],
        },
    ]
}

/// Renders outcomes as an aligned table.
pub fn render(outcomes: &[Outcome]) -> String {
    let mut s = String::from("regression gate:\n");
    for o in outcomes {
        let v = match o.verdict {
            Verdict::Ok => "ok       ",
            Verdict::Regressed => "REGRESSED",
            Verdict::Skipped => "skipped  ",
        };
        s.push_str(&format!(
            "  {v}  {:<18} {:<34} {}\n",
            o.file, o.path, o.detail
        ));
    }
    let (ok, bad, skipped) = outcomes
        .iter()
        .fold((0, 0, 0), |(a, b, c), o| match o.verdict {
            Verdict::Ok => (a + 1, b, c),
            Verdict::Regressed => (a, b + 1, c),
            Verdict::Skipped => (a, b, c + 1),
        });
    s.push_str(&format!("  {ok} ok, {bad} regressed, {skipped} skipped\n"));
    s
}

/// Whether any rule convicted.
pub fn has_regressions(outcomes: &[Outcome]) -> bool {
    outcomes.iter().any(|o| o.verdict == Verdict::Regressed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn test_env() -> Value {
        json!({
            "host_threads": 4,
            "crossmesh_threads": json!(null),
            "profile": "release",
            "platform": "test/x",
        })
    }

    fn opts() -> Options {
        Options {
            live: HostEnv {
                host_threads: 8,
                crossmesh_threads: None,
                profile: "release".into(),
                platform: "test/x".into(),
                smoke: None,
            },
            force_wallclock: false,
        }
    }

    #[test]
    fn extract_handles_members_wildcards_and_bools() {
        let doc = json!({
            "a": json!({"b": 1.5}),
            "rows": json!([
                json!({"x": 1.0, "ok": true}),
                json!({"x": 2.0, "ok": false})
            ]),
        });
        assert_eq!(extract(&doc, "a.b"), vec![1.5]);
        assert_eq!(extract(&doc, "rows[*].x"), vec![1.0, 2.0]);
        assert_eq!(extract(&doc, "rows[1].x"), vec![2.0]);
        assert_eq!(extract(&doc, "rows[*].ok"), vec![1.0, 0.0]);
        assert!(extract(&doc, "missing.path").is_empty());
    }

    fn timing_doc(ms: &[f64]) -> Value {
        let rows: Vec<Value> = ms.iter().map(|&v| json!({"ms": v})).collect();
        json!({"env": test_env(), "rows": rows})
    }

    #[test]
    fn smoke_reports_skip_wallclock_bounds_only() {
        let manifest = Manifest {
            file: "BENCH_t.json".into(),
            rules: vec![
                Rule::max("overhead_pct", 2.0, true),
                Rule::min("convictions_ok", 1.0, false),
                Rule::wallclock("rows[*].ms", Direction::Lower, 0.5),
            ],
        };
        let mut smoke_env = test_env();
        smoke_env["smoke"] = json!(true);
        let base = json!({
            "env": test_env(),
            "rows": json!([json!({"ms": 1.0})]),
            "overhead_pct": 1.0,
            "convictions_ok": true,
        });
        // Way past the pin — but smoke jitter, not evidence.
        let fresh = json!({
            "env": smoke_env,
            "rows": json!([json!({"ms": 1.1})]),
            "overhead_pct": 50.0,
            "convictions_ok": false,
        });
        // Even under force_wallclock: the skip is about measurement
        // precision, not host trust.
        let mut o = opts();
        o.force_wallclock = true;
        let outcomes = compare(&manifest, &base, &fresh, &o);
        assert_eq!(outcomes[0].verdict, Verdict::Skipped, "{outcomes:?}");
        assert!(outcomes[0].detail.contains("smoke"), "{outcomes:?}");
        // Deterministic pins still run on smoke reports.
        assert_eq!(outcomes[1].verdict, Verdict::Regressed, "{outcomes:?}");
        // Smoke-vs-full ratio drift compares different workloads: skipped.
        assert_eq!(outcomes[2].verdict, Verdict::Skipped, "{outcomes:?}");
        assert!(outcomes[2].detail.contains("mode mismatch"), "{outcomes:?}");
        // Smoke-vs-smoke ratio drift is comparable and checked.
        let mut smoke_base = base.clone();
        smoke_base["env"] = fresh["env"].clone();
        let outcomes = compare(&manifest, &smoke_base, &fresh, &o);
        assert_eq!(outcomes[2].verdict, Verdict::Ok, "{outcomes:?}");
        // A full-run report with the same values convicts the pin.
        let mut full = fresh.clone();
        full["env"] = test_env();
        let outcomes = compare(&manifest, &base, &full, &o);
        assert_eq!(outcomes[0].verdict, Verdict::Regressed, "{outcomes:?}");
        assert_eq!(outcomes[2].verdict, Verdict::Ok, "{outcomes:?}");
    }

    #[test]
    fn median_ratio_shrugs_off_one_noisy_cell() {
        let base = timing_doc(&[1.0, 1.0, 1.0, 1.0, 1.0]);
        // One cell 5x slower (noise), the rest dead on.
        let fresh = timing_doc(&[5.0, 1.0, 1.01, 0.99, 1.0]);
        let m = Manifest {
            file: "t.json".into(),
            rules: vec![Rule::wallclock("rows[*].ms", Direction::Lower, 0.3)],
        };
        let out = compare(&m, &base, &fresh, &opts());
        assert_eq!(out[0].verdict, Verdict::Ok, "{}", out[0].detail);
        // But a board-wide slowdown convicts.
        let slow = timing_doc(&[1.4, 1.5, 1.4, 1.5, 1.4]);
        let out = compare(&m, &base, &slow, &opts());
        assert_eq!(out[0].verdict, Verdict::Regressed, "{}", out[0].detail);
        assert!(has_regressions(&out));
    }

    #[test]
    fn higher_is_better_checks_the_inverse_ratio() {
        let base = json!({"env": test_env(), "speedup": 4.0});
        let worse = json!({"env": test_env(), "speedup": 2.0});
        let m = Manifest {
            file: "t.json".into(),
            rules: vec![Rule::wallclock("speedup", Direction::Higher, 0.5)],
        };
        assert_eq!(
            compare(&m, &base, &worse, &opts())[0].verdict,
            Verdict::Regressed
        );
        let better = json!({"env": test_env(), "speedup": 8.0});
        assert_eq!(compare(&m, &base, &better, &opts())[0].verdict, Verdict::Ok);
    }

    #[test]
    fn bounds_check_the_fresh_document_alone() {
        let base = json!({});
        let fresh = json!({
            "rows": json!([json!({"convictions": 0.0}), json!({"convictions": 2.0})]),
            "flag": true,
        });
        let m = Manifest {
            file: "t.json".into(),
            rules: vec![
                Rule::max("rows[*].convictions", 0.0, false),
                Rule::min("flag", 1.0, false),
            ],
        };
        let out = compare(&m, &base, &fresh, &opts());
        assert_eq!(out[0].verdict, Verdict::Regressed);
        assert_eq!(out[1].verdict, Verdict::Ok);
    }

    #[test]
    fn wallclock_rules_skip_on_untrustworthy_hosts() {
        let m = Manifest {
            file: "t.json".into(),
            rules: vec![Rule::wallclock("ms", Direction::Lower, 0.1)],
        };
        let base = json!({"env": test_env(), "ms": 1.0});
        // 10x slower, but measured on a debug build: skipped, not failed.
        let mut env = test_env();
        env["profile"] = json!("debug");
        let fresh = json!({"env": env, "ms": 10.0});
        let out = compare(&m, &base, &fresh, &opts());
        assert_eq!(out[0].verdict, Verdict::Skipped);
        assert!(out[0].detail.contains("debug"), "{}", out[0].detail);
        // Core-count mismatch between baseline and fresh: skipped.
        let mut env = test_env();
        env["host_threads"] = json!(64);
        let fresh = json!({"env": env, "ms": 10.0});
        assert_eq!(
            compare(&m, &base, &fresh, &opts())[0].verdict,
            Verdict::Skipped
        );
        // A live host with fewer cores than the report claims: skipped.
        let fresh = json!({"env": test_env(), "ms": 10.0});
        let mut o = opts();
        o.live.host_threads = 1;
        assert_eq!(compare(&m, &base, &fresh, &o)[0].verdict, Verdict::Skipped);
        // force_wallclock overrides every skip.
        o.force_wallclock = true;
        assert_eq!(
            compare(&m, &base, &fresh, &o)[0].verdict,
            Verdict::Regressed
        );
    }

    #[test]
    fn shape_mismatch_is_skipped_not_failed() {
        let m = Manifest {
            file: "t.json".into(),
            rules: vec![Rule::deterministic("rows[*].ms", Direction::Lower, 0.1)],
        };
        let base = json!({"rows": json!([json!({"ms": 1.0}), json!({"ms": 1.0})])});
        let fresh = json!({"rows": json!([json!({"ms": 99.0})])});
        let out = compare(&m, &base, &fresh, &opts());
        assert_eq!(out[0].verdict, Verdict::Skipped);
        assert!(out[0].detail.contains("shape mismatch"));
        assert!(!has_regressions(&out));
    }

    #[test]
    fn injected_slowdown_convicts_every_ratio_rule() {
        for manifest in default_manifests() {
            let Ok(text) = std::fs::read_to_string(format!(
                "{}/../../{}",
                env!("CARGO_MANIFEST_DIR"),
                manifest.file
            )) else {
                continue; // baseline not committed yet
            };
            let base: Value = serde_json::from_str(&text).expect("baseline parses");
            // Identity first: a report never regresses against itself.
            let o = Options {
                live: HostEnv::detect(),
                force_wallclock: true,
            };
            let out = compare(&manifest, &base, &base, &o);
            assert!(!has_regressions(&out), "{}", render(&out));
            // Then the synthetic 20%-beyond-tolerance slowdown convicts
            // every ratio rule the report has cells for.
            let mut slow = base.clone();
            inject_slowdown(&mut slow, &manifest, 0.2);
            let out = compare(&manifest, &base, &slow, &o);
            for oc in &out {
                if matches!(
                    manifest
                        .rules
                        .iter()
                        .find(|r| r.path == oc.path)
                        .map(|r| r.check),
                    Some(Check::Ratio { .. })
                ) && oc.verdict != Verdict::Skipped
                {
                    assert_eq!(
                        oc.verdict,
                        Verdict::Regressed,
                        "{} {} survived injection: {}",
                        oc.file,
                        oc.path,
                        oc.detail
                    );
                }
            }
        }
    }

    #[test]
    fn render_summarizes_verdicts() {
        let out = vec![Outcome {
            file: "f".into(),
            path: "p".into(),
            verdict: Verdict::Ok,
            ratio: Some(1.01),
            detail: "fine".into(),
        }];
        let s = render(&out);
        assert!(s.contains("1 ok, 0 regressed, 0 skipped"));
    }
}
