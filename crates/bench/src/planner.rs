//! Planner scaling sweep: wall-clock per planner across problem sizes and
//! rayon pool widths, plus the plan-cache cold/warm comparison.
//!
//! Not a paper figure — this measures the parallel planner engine itself.
//! Each case reshards a fully replicated source (`RRR`, so every unit task
//! has the full sender candidate set and load balancing is non-trivial)
//! onto a `S01RR` destination mesh whose size sets the unit count. Every
//! (planner, units) pair is timed under pools of 1, 2, 4, and 8 threads;
//! the sweep asserts the plan estimate is byte-identical across pool
//! widths (the determinism contract) and reports the speedup over the
//! 1-thread pool. Speedups track `host_threads` — on a single-core host
//! they flatten to ~1x by construction.

use crate::hostenv::HostEnv;
use crate::table_fmt;
use crossmesh_core::{
    DeviceMesh, DfsPlanner, EnsemblePlanner, PlanCache, Planner, PlannerConfig,
    RandomizedGreedyPlanner, ReshardingTask,
};
use crossmesh_models::presets;
use crossmesh_netsim::{ClusterSpec, LinkParams};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Unit-task counts swept by the full run (destination mesh `hosts ×
/// devices` products).
pub const UNIT_COUNTS: [usize; 4] = [8, 20, 64, 256];

/// Rayon pool widths swept by the full run.
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// DFS node budget for the sweep: large enough to exercise the branch
/// fan-out, small enough that the 256-unit case stays sub-second.
const DFS_BUDGET: usize = 5_000;

/// Greedy restarts for the sweep: enough independent seeds to occupy an
/// 8-wide pool.
const GREEDY_RESTARTS: usize = 8;

/// One timed (case, planner, pool width) point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Unit tasks in the resharding case.
    pub units: usize,
    /// Planner name ("dfs", "greedy", "ensemble").
    pub planner: String,
    /// Rayon pool width the planner ran under.
    pub threads: usize,
    /// Best-of-N wall-clock milliseconds for one `plan()` call.
    pub millis: f64,
    /// This row's 1-thread time divided by this row's time, or `None`
    /// when the pool width oversubscribes the host (see
    /// [`HostEnv::reliable_speedup`]) — the raw ratio would measure
    /// scheduler interleaving, not parallel speedup, so the report
    /// refuses to publish it.
    pub speedup_vs_1: Option<f64>,
    /// True exactly when `speedup_vs_1` was withheld because the host
    /// could not genuinely run this pool width in parallel.
    pub speedup_unreliable: bool,
    /// The plan's estimated makespan — identical across `threads` by the
    /// determinism contract (asserted by [`run`]).
    pub estimate: f64,
}

/// The plan-cache cold/warm measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheBench {
    /// Unit tasks in the measured case.
    pub units: usize,
    /// Milliseconds for the cold (planning) call.
    pub cold_millis: f64,
    /// Milliseconds per warm (cache-hit) call.
    pub warm_millis: f64,
    /// Hit rate over the whole cold+warm sequence.
    pub hit_rate: f64,
    /// `cold_millis / warm_millis`.
    pub speedup: f64,
}

/// The whole sweep: scaling rows plus the cache measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// `std::thread::available_parallelism()` on the measuring host —
    /// the ceiling for any honest `speedup_vs_1`.
    pub host_threads: usize,
    /// Full host description (parallelism, env overrides, build profile).
    pub env: HostEnv,
    /// Oversubscription warnings: one per swept pool width that exceeds
    /// the host's real parallelism (also printed to stderr by the
    /// harness). Timings at those widths measure interleaving.
    pub warnings: Vec<String>,
    /// The (units × planner × threads) scaling grid.
    pub rows: Vec<Row>,
    /// Cold-vs-warm plan-cache timing.
    pub cache: CacheBench,
}

/// Builds the `units`-unit benchmark case: `RRR` on a 2-host source mesh,
/// `S01RR` on a destination mesh sized so `hosts × devices == units`.
///
/// # Panics
///
/// Panics if `units` is not one of [`UNIT_COUNTS`] (harness bug).
pub fn case(units: usize) -> (ClusterSpec, ReshardingTask) {
    // (dst hosts, dst devices per host); source always spans 2 hosts.
    let (h, d): (usize, usize) = match units {
        8 => (2, 4),
        20 => (4, 5),
        64 => (8, 8),
        256 => (16, 16),
        _ => panic!("unknown case size {units}"),
    };
    let cluster = ClusterSpec::homogeneous((h + 2) as u32, d as u32, LinkParams::new(100.0, 1.0));
    let src = DeviceMesh::from_cluster(&cluster, 0, (2, d), "A").expect("src mesh fits");
    let dst = DeviceMesh::from_cluster(&cluster, 2, (h, d), "B").expect("dst mesh fits");
    let task = ReshardingTask::new(
        src,
        "RRR".parse().expect("valid spec"),
        dst,
        "S01RR".parse().expect("valid spec"),
        &[1024, 64, 64],
        4,
    )
    .expect("case builds");
    (cluster, task)
}

fn planner_config() -> PlannerConfig {
    PlannerConfig::new(presets::p3_cost_params())
}

/// The three swept planners, bench-tuned (fixed DFS budget, 8 greedy
/// restarts) so the workload per case is identical at every pool width.
pub fn planners() -> Vec<(String, Box<dyn Planner>)> {
    let config = planner_config();
    vec![
        (
            "dfs".to_string(),
            Box::new(DfsPlanner::new(config).with_node_budget(DFS_BUDGET)) as Box<dyn Planner>,
        ),
        (
            "greedy".to_string(),
            Box::new(RandomizedGreedyPlanner::new(config).with_restarts(GREEDY_RESTARTS)),
        ),
        (
            "ensemble".to_string(),
            Box::new(EnsemblePlanner::new(config).with_greedy(
                RandomizedGreedyPlanner::new(planner_config()).with_restarts(GREEDY_RESTARTS),
            )),
        ),
    ]
}

/// Times `f` as the best (minimum) of `reps` runs, in milliseconds.
fn best_of<F: FnMut() -> f64>(reps: usize, mut f: F) -> (f64, f64) {
    let mut best = f64::INFINITY;
    let mut estimate = f64::NAN;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        estimate = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (best, estimate)
}

/// Runs the sweep. `smoke` trims it (units ≤ 20, pools {1, 4}, single
/// rep) for CI; the full sweep is best-of-3 over the whole grid.
///
/// # Panics
///
/// Panics if any planner's estimate differs across pool widths — that
/// would break the determinism contract the parallel engine guarantees.
pub fn run(smoke: bool) -> Report {
    let unit_counts: &[usize] = if smoke {
        &UNIT_COUNTS[..2]
    } else {
        &UNIT_COUNTS
    };
    let thread_counts: &[usize] = if smoke { &[1, 4] } else { &THREAD_COUNTS };
    let reps = if smoke { 1 } else { 3 };

    let env = HostEnv::detect().with_smoke(smoke);
    let warnings: Vec<String> = thread_counts
        .iter()
        .filter_map(|&t| env.oversubscription_warning(t))
        .collect();
    for w in &warnings {
        eprintln!("warning: {w}");
    }

    let mut rows = Vec::new();
    for &units in unit_counts {
        let (_cluster, task) = case(units);
        assert_eq!(task.units().len(), units, "case size mismatch");
        for (name, planner) in planners() {
            let mut baseline = f64::NAN;
            let mut baseline_est = f64::NAN;
            for &threads in thread_counts {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .expect("pool builds");
                let (millis, estimate) =
                    best_of(reps, || pool.install(|| planner.plan(&task).estimate()));
                if threads == 1 {
                    baseline = millis;
                    baseline_est = estimate;
                } else {
                    assert_eq!(
                        estimate.to_bits(),
                        baseline_est.to_bits(),
                        "{name}/{units}u: estimate changed between 1 and {threads} threads"
                    );
                }
                let speedup_vs_1 = env.reliable_speedup(threads, baseline / millis);
                rows.push(Row {
                    units,
                    planner: name.clone(),
                    threads,
                    millis,
                    speedup_vs_1,
                    speedup_unreliable: speedup_vs_1.is_none(),
                    estimate,
                });
            }
        }
    }

    Report {
        host_threads: env.host_threads,
        env,
        warnings,
        rows,
        cache: cache_bench(if smoke { 8 } else { 20 }, if smoke { 10 } else { 100 }),
    }
}

/// Times one cold plan against `warm_calls` cache hits on the
/// `units`-unit case under the ensemble planner.
fn cache_bench(units: usize, warm_calls: usize) -> CacheBench {
    let (_cluster, task) = case(units);
    let planner = EnsemblePlanner::new(planner_config());
    let cache = PlanCache::new();

    let t0 = Instant::now();
    let cold_plan = cache.plan(&planner, &task);
    let cold_millis = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    for _ in 0..warm_calls {
        let warm = cache.plan(&planner, &task);
        assert_eq!(
            warm.assignments(),
            cold_plan.assignments(),
            "warm hit differs"
        );
    }
    let warm_millis = t0.elapsed().as_secs_f64() * 1e3 / warm_calls.max(1) as f64;

    CacheBench {
        units,
        cold_millis,
        warm_millis,
        hit_rate: cache.stats().hit_rate(),
        speedup: cold_millis / warm_millis,
    }
}

/// Renders the sweep tables.
pub fn render(report: &Report) -> String {
    let mut table = vec![vec![
        "units".to_string(),
        "planner".to_string(),
        "threads".to_string(),
        "millis".to_string(),
        "vs 1 thread".to_string(),
    ]];
    for row in &report.rows {
        table.push(vec![
            row.units.to_string(),
            row.planner.clone(),
            row.threads.to_string(),
            format!("{:.3}", row.millis),
            row.speedup_vs_1
                .map_or_else(|| "n/a (oversubscribed)".to_string(), table_fmt::speedup),
        ]);
    }
    let c = &report.cache;
    let warnings = if report.warnings.is_empty() {
        String::new()
    } else {
        format!("warning: {}\n", report.warnings.join("\nwarning: "))
    };
    format!(
        "{warnings}Planner scaling — wall-clock per plan() across pool widths (host has {} threads)\n{}\n\
         Plan cache — {}-unit ensemble: cold {:.3} ms, warm {:.4} ms/plan \
         ({} hit rate, {})\n",
        report.host_threads,
        table_fmt::render(&table),
        c.units,
        c.cold_millis,
        c.warm_millis,
        format_args!("{:.0}%", c.hit_rate * 100.0),
        table_fmt::speedup(c.speedup),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_holds_the_contracts() {
        let report = run(true);
        // units {8, 20} × planners {dfs, greedy, ensemble} × pools {1, 4}.
        assert_eq!(report.rows.len(), 2 * 3 * 2);
        for row in &report.rows {
            assert!(row.millis >= 0.0 && row.millis.is_finite());
            assert!(row.estimate.is_finite() && row.estimate > 0.0);
            // A speedup figure is published exactly when the host could
            // genuinely run the pool width in parallel; oversubscribed
            // widths get the explicit refusal flag instead.
            assert_eq!(row.speedup_unreliable, row.speedup_vs_1.is_none());
            assert_eq!(
                row.speedup_unreliable,
                report.env.oversubscribed(row.threads),
                "unreliable flag must track host oversubscription"
            );
            if let Some(s) = row.speedup_vs_1 {
                assert!(s.is_finite() && s > 0.0);
            }
        }
        // run() itself asserts cross-pool estimate identity; re-check one
        // planner here so the contract is visible in a test name.
        let est: Vec<f64> = report
            .rows
            .iter()
            .filter(|r| r.planner == "ensemble" && r.units == 20)
            .map(|r| r.estimate)
            .collect();
        assert!(est.windows(2).all(|w| w[0].to_bits() == w[1].to_bits()));
        assert!(report.cache.hit_rate > 0.5, "warm calls must hit");
        assert!(
            report.cache.warm_millis <= report.cache.cold_millis,
            "a cache hit must not cost more than planning"
        );
    }

    #[test]
    fn every_case_size_builds_with_the_advertised_unit_count() {
        for units in UNIT_COUNTS {
            let (_c, task) = case(units);
            assert_eq!(task.units().len(), units);
        }
    }
}
