//! Engine-scaling harness: the incremental netsim engine vs the frozen
//! pre-refactor reference, and a 10k-host GPT sweep (extension; not in the
//! paper).
//!
//! The workload is a GPT-style data+pipeline-parallel iteration built
//! straight as a [`TaskGraph`]: `lanes = hosts / stages` independent
//! pipeline lanes each run `microbatches` microbatches through `stages`
//! stages (per-stage compute + stage-boundary activation flows), then every
//! contiguous group of `ring_group` hosts runs a ring all-reduce over the
//! gradients (reduce-scatter + all-gather, `2·(g−1)` barriered steps).
//! Contention components stay small (a lane's boundary flows, a ring
//! group), which is exactly the structure the incremental solver exploits —
//! the reference engine re-solves *every* active flow on *every* event.
//!
//! Reported per cluster size: wall time and events/sec for both engines in
//! the exact model (they must agree on the makespan to 1e-6 relative),
//! plus engine counters (rate re-solves, flows per re-solve, saturation
//! frontier, peak active flows). The sweep rows then push the incremental
//! engine alone to 10k hosts in both the exact and aggregate models.
//! A planner zero-conviction gate (a Table 2 resharding case planned,
//! statically verified, and executed under both models) pins the engines
//! into the same harness the rest of the workspace uses.

use crate::hostenv::HostEnv;
use crate::table_fmt;
use crossmesh_netsim::reference::ReferenceEngine;
use crossmesh_netsim::{
    ClusterSpec, Engine, LinkParams, SimModel, SimStats, TaskGraph, TaskId, Work,
};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One GPT iteration's shape on an `hosts`-host cluster.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Workload {
    /// Cluster size; one device per host at this scale.
    pub hosts: u32,
    /// Pipeline stages; `hosts / stages` independent data-parallel lanes.
    pub stages: u32,
    /// Microbatches pushed through every lane.
    pub microbatches: u32,
    /// Hosts per gradient all-reduce ring.
    pub ring_group: u32,
}

/// Per-stage forward compute, seconds.
const STAGE_SECONDS: f64 = 4e-3;
/// Stage-boundary activation transfer, bytes.
const ACTIVATION_BYTES: f64 = 40e6;
/// Per-host gradient shard all-reduced after the last microbatch, bytes.
const GRAD_BYTES: f64 = 64e6;

/// Deterministic per-index size jitter in [1, 1.5): real layers are not
/// all the same size, and the stagger keeps completions from collapsing
/// into one simultaneous batch — the degenerate best case of the seed
/// engine's per-event global re-solve.
fn jitter(i: u32) -> f64 {
    1.0 + (f64::from(i) * 0.618_033_988_749_894_9).fract() * 0.5
}

/// A p3-class cluster shape: fast intra-host links, 10 GB/s NICs.
fn cluster(hosts: u32) -> ClusterSpec {
    ClusterSpec::homogeneous(
        hosts,
        1,
        LinkParams::new(100e9, 10e9).with_latencies(1e-6, 5e-6),
    )
}

/// Builds the iteration graph. Deterministic: pure arithmetic over the
/// workload shape, no RNG.
pub fn build_workload(w: Workload) -> TaskGraph {
    let lanes = w.hosts / w.stages;
    assert!(lanes > 0, "need at least one host per stage");
    let device = |host: u32| crossmesh_netsim::DeviceId(host);
    let host_of = |stage: u32, lane: u32| stage * lanes + lane;

    let pipeline_tasks = (lanes * w.microbatches * (2 * w.stages - 1)) as usize;
    let groups = w.hosts / w.ring_group;
    let ring_tasks = (groups * w.ring_group * 2 * (w.ring_group - 1)) as usize;
    let mut g = TaskGraph::with_capacity(pipeline_tasks + ring_tasks);

    // Pipeline phase: every lane is an independent chain of per-microbatch
    // stage computes joined by activation flows.
    let mut last_compute = vec![None::<TaskId>; w.hosts as usize];
    for lane in 0..lanes {
        let mut boundary: Vec<Option<TaskId>> = vec![None; w.stages as usize];
        for _mb in 0..w.microbatches {
            for stage in 0..w.stages {
                let host = host_of(stage, lane);
                let mut deps: Vec<TaskId> = Vec::with_capacity(2);
                // The activation from the previous stage for this mb...
                if stage > 0 {
                    if let Some(f) = boundary[stage as usize - 1] {
                        deps.push(f);
                    }
                }
                // ...and this device's previous microbatch (FIFO order).
                if let Some(c) = last_compute[host as usize] {
                    deps.push(c);
                }
                let c = g.add(
                    Work::compute(device(host), STAGE_SECONDS * jitter(host)),
                    deps,
                );
                last_compute[host as usize] = Some(c);
                if stage + 1 < w.stages {
                    let f = g.add(
                        Work::flow(
                            device(host),
                            device(host_of(stage + 1, lane)),
                            ACTIVATION_BYTES * jitter(lane),
                        ),
                        [c],
                    );
                    boundary[stage as usize] = Some(f);
                }
            }
        }
    }

    // All-reduce phase: ring over each contiguous group of `ring_group`
    // hosts, 2·(g−1) steps, each step barriered on the previous one.
    let gsize = w.ring_group;
    for group in 0..groups {
        let base = group * gsize;
        let mut prev_step: Vec<TaskId> = Vec::new();
        for step in 0..2 * (gsize - 1) {
            let mut this_step = Vec::with_capacity(gsize as usize);
            for i in 0..gsize {
                let src = base + i;
                let dst = base + (i + 1) % gsize;
                let mut deps = prev_step.clone();
                if step == 0 {
                    if let Some(c) = last_compute[src as usize] {
                        deps.push(c);
                    }
                }
                this_step.push(g.add(
                    Work::flow(
                        device(src),
                        device(dst),
                        GRAD_BYTES / f64::from(gsize) * jitter(src),
                    ),
                    deps,
                ));
            }
            prev_step = this_step;
        }
    }
    g
}

/// One engine-vs-reference comparison row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineRow {
    pub hosts: u32,
    /// Tasks in the generated iteration graph.
    pub tasks: usize,
    /// Heap events the incremental engine processed.
    pub events: u64,
    pub reference_millis: f64,
    pub incremental_millis: f64,
    /// `reference_millis / incremental_millis`.
    pub speedup: f64,
    /// Events/sec through the seed (reference) engine.
    pub reference_events_per_sec: f64,
    /// Events/sec through the incremental engine.
    pub incremental_events_per_sec: f64,
    /// Relative makespan disagreement between the engines (must be ≤1e-6).
    pub makespan_rel_err: f64,
    pub rate_recomputes: u64,
    /// Mean flows re-rated per re-solve — the incremental win: stays O(1)
    /// as the cluster grows.
    pub flows_per_recompute: f64,
    pub frontier_size: usize,
    pub peak_active_flows: usize,
}

/// One large-cluster sweep row (incremental engine only).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepRow {
    pub hosts: u32,
    pub model: String,
    pub tasks: usize,
    pub events: u64,
    pub wall_millis: f64,
    pub events_per_sec: f64,
    pub makespan_seconds: f64,
    pub peak_active_flows: usize,
}

/// The full harness output written to `BENCH_netsim.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Report {
    pub env: HostEnv,
    pub smoke: bool,
    /// Error-severity diagnostics from the planner zero-conviction gate.
    pub convictions: usize,
    /// Makespan of the gate case under the exact / aggregate models; the
    /// aggregate one can never be smaller.
    pub gate_exact_seconds: f64,
    pub gate_aggregate_seconds: f64,
    pub engine: Vec<EngineRow>,
    pub sweep: Vec<SweepRow>,
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

fn workload_for(hosts: u32, smoke: bool) -> Workload {
    Workload {
        hosts,
        stages: 8.min(hosts / 2).max(1),
        microbatches: if smoke { 2 } else { 4 },
        ring_group: 8.min(hosts),
    }
}

/// Measures one comparison row: the same graph through the reference and
/// the incremental engine (exact model), checking they agree.
///
/// # Panics
///
/// Panics if either engine fails the run (harness bug).
pub fn compare(hosts: u32, smoke: bool) -> EngineRow {
    let w = workload_for(hosts, smoke);
    let c = cluster(w.hosts);
    let g = build_workload(w);
    let (reference, reference_millis) =
        timed(|| ReferenceEngine::new(&c).run(&g).expect("reference runs"));
    let ((incremental, stats), incremental_millis) =
        timed(|| Engine::new(&c).run_stats(&g).expect("incremental runs"));
    let makespan_rel_err = (reference.makespan() - incremental.makespan()).abs()
        / reference.makespan().max(f64::MIN_POSITIVE);
    let events = stats.events_processed;
    EngineRow {
        hosts,
        tasks: g.len(),
        events,
        reference_millis,
        incremental_millis,
        speedup: reference_millis / incremental_millis.max(1e-6),
        reference_events_per_sec: events as f64 / (reference_millis / 1e3).max(1e-9),
        incremental_events_per_sec: events as f64 / (incremental_millis / 1e3).max(1e-9),
        makespan_rel_err,
        rate_recomputes: stats.rate_recomputes,
        flows_per_recompute: stats.flows_resolved as f64 / stats.rate_recomputes.max(1) as f64,
        frontier_size: stats.frontier_size,
        peak_active_flows: stats.peak_active_flows,
    }
}

/// Measures one sweep row: the incremental engine alone at `hosts` under
/// `model`.
///
/// # Panics
///
/// Panics if the engine fails the run (harness bug).
pub fn sweep(hosts: u32, model: SimModel, smoke: bool) -> SweepRow {
    let w = workload_for(hosts, smoke);
    let c = cluster(w.hosts);
    let g = build_workload(w);
    let ((trace, stats), wall_millis): ((_, SimStats), f64) = timed(|| {
        Engine::with_model(&c, model)
            .run_stats(&g)
            .expect("sweep runs")
    });
    SweepRow {
        hosts,
        model: model.name().to_string(),
        tasks: g.len(),
        events: stats.events_processed,
        wall_millis,
        events_per_sec: stats.events_processed as f64 / (wall_millis / 1e3).max(1e-9),
        makespan_seconds: trace.makespan(),
        peak_active_flows: stats.peak_active_flows,
    }
}

/// The planner zero-conviction gate: plan a Table 2 resharding case,
/// statically verify it (no error-severity diagnostics allowed), and
/// execute it under both contention models.
///
/// # Panics
///
/// Panics if the case fails to build or the simulation fails.
fn conviction_gate() -> (usize, f64, f64) {
    use crossmesh_core::{EnsemblePlanner, Planner, PlannerConfig};
    use crossmesh_models::presets;

    let case = &crate::cases::TABLE2[0];
    let (cluster, task) = case.build().expect("table 2 case builds");
    let planner = EnsemblePlanner::new(PlannerConfig::new(presets::p3_cost_params()));
    let plan = planner.plan(&task);
    let convictions = plan
        .verify(Some(&cluster), &|_, _| false)
        .iter()
        .filter(|d| d.severity == crossmesh_check::Severity::Error)
        .count();
    let exact = plan
        .execute_with(&crossmesh_netsim::SimBackend, &cluster)
        .expect("exact gate runs");
    let aggregate = plan
        .execute_with(&crossmesh_netsim::AggregateSimBackend, &cluster)
        .expect("aggregate gate runs");
    (
        convictions,
        exact.simulated_seconds,
        aggregate.simulated_seconds,
    )
}

/// Cluster sizes for the comparison rows (both engines run).
const COMPARE_HOSTS: [u32; 3] = [64, 256, 1024];
const COMPARE_HOSTS_SMOKE: [u32; 2] = [16, 64];
/// Cluster sizes for the incremental-only sweep.
const SWEEP_HOSTS: u32 = 10_240;
const SWEEP_HOSTS_SMOKE: u32 = 512;

/// Runs the harness. `smoke` trims cluster sizes and microbatch counts
/// for CI.
pub fn run(smoke: bool) -> Report {
    let compare_hosts: &[u32] = if smoke {
        &COMPARE_HOSTS_SMOKE
    } else {
        &COMPARE_HOSTS
    };
    let engine: Vec<EngineRow> = compare_hosts.iter().map(|&h| compare(h, smoke)).collect();
    let sweep_hosts = if smoke {
        SWEEP_HOSTS_SMOKE
    } else {
        SWEEP_HOSTS
    };
    let sweep_rows = vec![
        sweep(sweep_hosts, SimModel::Exact, smoke),
        sweep(sweep_hosts, SimModel::Aggregate, smoke),
    ];
    let (convictions, gate_exact_seconds, gate_aggregate_seconds) = conviction_gate();
    Report {
        env: HostEnv::detect().with_smoke(smoke),
        smoke,
        convictions,
        gate_exact_seconds,
        gate_aggregate_seconds,
        engine,
        sweep: sweep_rows,
    }
}

/// Renders the report as text tables.
pub fn render(report: &Report) -> String {
    let mut rows = vec![vec![
        "hosts".to_string(),
        "tasks".to_string(),
        "events".to_string(),
        "reference".to_string(),
        "incremental".to_string(),
        "speedup".to_string(),
        "events/s (inc)".to_string(),
        "flows/resolve".to_string(),
        "peak flows".to_string(),
    ]];
    for r in &report.engine {
        rows.push(vec![
            r.hosts.to_string(),
            r.tasks.to_string(),
            r.events.to_string(),
            format!("{:.1}ms", r.reference_millis),
            format!("{:.1}ms", r.incremental_millis),
            table_fmt::speedup(r.speedup),
            format!("{:.0}", r.incremental_events_per_sec),
            format!("{:.1}", r.flows_per_recompute),
            r.peak_active_flows.to_string(),
        ]);
    }
    let mut out = String::from("== engine vs frozen reference (exact model) ==\n");
    out.push_str(&table_fmt::render(&rows));

    let mut rows = vec![vec![
        "hosts".to_string(),
        "model".to_string(),
        "tasks".to_string(),
        "events".to_string(),
        "wall".to_string(),
        "events/s".to_string(),
        "makespan".to_string(),
    ]];
    for r in &report.sweep {
        rows.push(vec![
            r.hosts.to_string(),
            r.model.clone(),
            r.tasks.to_string(),
            r.events.to_string(),
            format!("{:.1}ms", r.wall_millis),
            format!("{:.0}", r.events_per_sec),
            table_fmt::secs(r.makespan_seconds),
        ]);
    }
    out.push_str("\n== large-cluster sweep (incremental engine) ==\n");
    out.push_str(&table_fmt::render(&rows));
    out.push_str(&format!(
        "\nzero-conviction gate: {} convictions; exact {} vs aggregate {}\n",
        report.convictions,
        table_fmt::secs(report.gate_exact_seconds),
        table_fmt::secs(report.gate_aggregate_seconds),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_is_consistent() {
        let report = run(true);
        assert_eq!(report.convictions, 0, "the plan verifier must be clean");
        assert!(report.gate_aggregate_seconds >= report.gate_exact_seconds - 1e-9);
        for r in &report.engine {
            assert!(
                r.makespan_rel_err <= 1e-6,
                "engines disagree at {} hosts: {}",
                r.hosts,
                r.makespan_rel_err
            );
            assert!(r.events > 0 && r.tasks > 0);
        }
        for s in &report.sweep {
            assert!(s.makespan_seconds > 0.0 && s.events > 0);
        }
        // The aggregate model never predicts a faster iteration.
        assert!(report.sweep[1].makespan_seconds >= report.sweep[0].makespan_seconds - 1e-9);
        let text = render(&report);
        assert!(
            text.contains("zero-conviction gate: 0 convictions"),
            "{text}"
        );
    }

    #[test]
    fn workload_is_deterministic_and_sized() {
        let w = workload_for(64, true);
        let g1 = build_workload(w);
        let g2 = build_workload(w);
        assert_eq!(g1, g2);
        assert!(g1.len() > 64, "a real workload, not a toy: {}", g1.len());
    }
}
