//! Degradation sweep: resharding throughput vs injected fault rate.
//!
//! Not a paper figure — this is the evaluation of the fault-tolerance
//! extension. The Table 2 `case2` microbenchmark (fully replicated source,
//! so every failure is recoverable) runs under increasing flow-drop rates
//! and under a sender-host crash, through
//! [`execute_with_repair`]: retries absorb transient drops, and the crash
//! triggers failover onto the surviving replica host. Naive-with-repair
//! vs Ensemble-with-repair shows that load balancing keeps paying off
//! under degradation.

use crate::cases::TABLE2;
use crate::table_fmt;
use crossmesh_core::{EnsemblePlanner, NaivePlanner, Planner, PlannerConfig};
use crossmesh_faults::{execute_with_repair, FaultEvent, FaultSchedule, RecoveryReport};
use crossmesh_models::presets;
use crossmesh_netsim::SimBackend;
use serde::{Deserialize, Serialize};

/// Per-attempt flow-drop probabilities swept by [`run`].
pub const DROP_RATES: [f64; 5] = [0.0, 0.05, 0.1, 0.2, 0.4];

/// One row of the degradation sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Injected scenario ("drop 10%", "crash h0").
    pub scenario: String,
    /// End-to-end seconds, naive planner + repair.
    pub naive_seconds: f64,
    /// End-to-end seconds, ensemble planner + repair.
    pub ours_seconds: f64,
    /// Flow retries absorbed by the ensemble run.
    pub ours_retries: u64,
    /// Unit tasks failed over by the ensemble run.
    pub ours_failovers: usize,
}

fn planner_config() -> PlannerConfig {
    PlannerConfig::new(presets::p3_cost_params())
}

/// The end-to-end completion time a user observes: the degraded makespan
/// when faults bit, the plain makespan otherwise.
fn seconds(r: &RecoveryReport) -> f64 {
    r.degraded_makespan.unwrap_or(r.report.simulated_seconds)
}

/// The schedule for one sweep point: a generous retry budget so transient
/// drops degrade throughput instead of killing the run.
pub fn drop_schedule(rate: f64) -> FaultSchedule {
    let mut s = FaultSchedule::new(7).with_retry_policy(12, 1e-3);
    if rate > 0.0 {
        s = s.with_event(FaultEvent::FlowDrop { prob: rate });
    }
    s
}

/// The sender-host-crash scenario.
pub fn crash_schedule() -> FaultSchedule {
    FaultSchedule::new(7).with_event(FaultEvent::HostCrash { host: 0, at: 0.0 })
}

/// Runs `case2` under `schedule` with `planner` + repair.
///
/// # Panics
///
/// Panics if the scenario is unrecoverable (harness bug — `case2` has a
/// fully replicated source).
pub fn measure(planner: &dyn Planner, schedule: &FaultSchedule) -> RecoveryReport {
    let case = &TABLE2[1];
    let (cluster, task) = case.build().expect("case2 builds");
    let plan = planner.plan(&task);
    execute_with_repair(&plan, &cluster, &SimBackend, schedule).expect("scenario is recoverable")
}

/// Regenerates the degradation sweep.
pub fn run() -> Vec<Row> {
    let naive = NaivePlanner::new(planner_config());
    let ours = EnsemblePlanner::new(planner_config());
    let mut rows = Vec::new();
    for rate in DROP_RATES {
        let schedule = drop_schedule(rate);
        let n = measure(&naive, &schedule);
        let o = measure(&ours, &schedule);
        rows.push(Row {
            scenario: format!("drop {:.0}%", rate * 100.0),
            naive_seconds: seconds(&n),
            ours_seconds: seconds(&o),
            ours_retries: o.retries,
            ours_failovers: o.failovers,
        });
    }
    let schedule = crash_schedule();
    let n = measure(&naive, &schedule);
    let o = measure(&ours, &schedule);
    rows.push(Row {
        scenario: "crash h0".to_string(),
        naive_seconds: seconds(&n),
        ours_seconds: seconds(&o),
        ours_retries: o.retries,
        ours_failovers: o.failovers,
    });
    rows
}

/// Renders the sweep table.
pub fn render(rows: &[Row]) -> String {
    let mut table = vec![vec![
        "scenario".to_string(),
        "naive+repair".to_string(),
        "ours+repair".to_string(),
        "vs naive".to_string(),
        "retries".to_string(),
        "failovers".to_string(),
    ]];
    for row in rows {
        table.push(vec![
            row.scenario.clone(),
            table_fmt::secs(row.naive_seconds),
            table_fmt::secs(row.ours_seconds),
            table_fmt::speedup(row.naive_seconds / row.ours_seconds),
            row.ours_retries.to_string(),
            row.ours_failovers.to_string(),
        ]);
    }
    format!(
        "Fault degradation — case2 resharding under injected faults (sender failover + retry)\n{}",
        table_fmt::render(&table)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degradation_sweep_shapes_hold() {
        let rows = run();
        assert_eq!(rows.len(), DROP_RATES.len() + 1);

        // Load balancing keeps winning (or tying) across the drop sweep.
        // (The crash row is exempt: failover patches the plan around the
        // dead host, which can undo the balanced sender assignment.)
        for r in &rows[..DROP_RATES.len()] {
            assert!(
                r.ours_seconds <= r.naive_seconds * 1.05,
                "{}: ours {} vs naive {}",
                r.scenario,
                r.ours_seconds,
                r.naive_seconds
            );
        }

        // More drops -> more retries -> slower, monotonically across the
        // sweep endpoints.
        let clean = &rows[0];
        let worst = &rows[DROP_RATES.len() - 1];
        assert_eq!(clean.ours_retries, 0);
        assert!(worst.ours_retries > 0, "40% drops must cause retries");
        assert!(
            worst.ours_seconds > clean.ours_seconds,
            "worst {} vs clean {}",
            worst.ours_seconds,
            clean.ours_seconds
        );

        // The crash row failed over and still delivered.
        let crash = rows.last().unwrap();
        assert!(crash.ours_failovers > 0, "crash must force failover");
        assert!(crash.ours_seconds.is_finite() && crash.ours_seconds > 0.0);
    }
}
