//! Figure 7 (+ Table 3): end-to-end training throughput of GPT-2.6B and
//! U-Transformer-2.1B under five communication configurations.

use crate::table_fmt;
use crossmesh_core::{
    EnsemblePlanner, LoadBalancePlanner, Planner, PlannerConfig, Strategy, StrategyChoice,
};
use crossmesh_models::gpt::GptConfig;
use crossmesh_models::utransformer::UTransformerConfig;
use crossmesh_models::{presets, ModelJob, Precision};
use crossmesh_pipeline::{simulate, CommMode, PipelineConfig, ScheduleKind, WeightDelay};
use serde::{Deserialize, Serialize};

/// The five configurations of §5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Variant {
    /// P2P resharding, synchronous, 1F1B.
    SendRecv,
    /// All-gather resharding (Alpa), synchronous, 1F1B.
    Alpa,
    /// Broadcast resharding with load balance but no overlap (the
    /// CoCoNet-style single-task optimization), synchronous, 1F1B.
    Broadcast,
    /// The full system: broadcast + ensemble planner + eager-1F1B with
    /// overlapped communication.
    Ours,
    /// The hypothetical upper bound: 1-byte signals.
    Signal,
}

impl Variant {
    /// All variants in figure order.
    pub fn all() -> [Variant; 5] {
        [
            Variant::SendRecv,
            Variant::Alpa,
            Variant::Broadcast,
            Variant::Ours,
            Variant::Signal,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Variant::SendRecv => "send_recv",
            Variant::Alpa => "alpa",
            Variant::Broadcast => "broadcast",
            Variant::Ours => "ours",
            Variant::Signal => "signal",
        }
    }

    fn pipeline_config(&self) -> PipelineConfig {
        let (schedule, comm) = match self {
            Variant::Ours => (ScheduleKind::Eager1F1B, CommMode::Overlapped),
            Variant::Signal => (ScheduleKind::OneFOneB, CommMode::Signal),
            _ => (ScheduleKind::OneFOneB, CommMode::Synchronous),
        };
        PipelineConfig {
            schedule,
            comm,
            weight_delay: WeightDelay::None,
        }
    }

    fn planner(&self) -> Box<dyn Planner> {
        let base = PlannerConfig::new(presets::p3_cost_params());
        match self {
            Variant::SendRecv => Box::new(LoadBalancePlanner::new(
                base.with_strategy(StrategyChoice::Fixed(Strategy::SendRecv)),
            )),
            Variant::Alpa => Box::new(LoadBalancePlanner::new(
                base.with_strategy(StrategyChoice::AlpaAuto),
            )),
            _ => Box::new(EnsemblePlanner::new(base)),
        }
    }
}

/// One bar of Figure 7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Model name as in Table 3.
    pub model: &'static str,
    /// Variant name.
    pub variant: &'static str,
    /// Simulated iteration time.
    pub iteration_seconds: f64,
    /// Aggregate cluster throughput, TFLOPS.
    pub tflops: f64,
}

/// Builds the Table 3 workloads on their 2-host p3 clusters.
///
/// # Panics
///
/// Panics if a workload fails to build (harness bug).
pub fn workloads() -> Vec<(&'static str, ModelJob, crossmesh_netsim::ClusterSpec)> {
    let fp16 = presets::aws_p3_8xlarge(2, Precision::Fp16);
    let fp32 = presets::aws_p3_8xlarge(2, Precision::Fp32);
    vec![
        (
            "GPT case1 (2,2,2)",
            GptConfig::case1().build(&fp16).expect("gpt case1 builds"),
            fp16.clone(),
        ),
        (
            "GPT case2 (4,1,2)",
            GptConfig::case2().build(&fp16).expect("gpt case2 builds"),
            fp16,
        ),
        (
            "U-Trans case1",
            UTransformerConfig::case1()
                .build(&fp32)
                .expect("utransformer builds"),
            fp32,
        ),
    ]
}

/// Measures one workload under one variant.
///
/// # Panics
///
/// Panics if the simulation fails (harness bug).
pub fn measure(job: &ModelJob, cluster: &crossmesh_netsim::ClusterSpec, variant: Variant) -> Row {
    let planner = variant.planner();
    let report = simulate(
        &job.graph,
        cluster,
        planner.as_ref(),
        &variant.pipeline_config(),
    )
    .expect("pipeline simulates");
    Row {
        model: "",
        variant: variant.name(),
        iteration_seconds: report.iteration_seconds,
        tflops: job.aggregate_tflops(report.iteration_seconds),
    }
}

/// Regenerates Figure 7 (15 bars).
pub fn run() -> Vec<Row> {
    let mut rows = Vec::new();
    for (model, job, cluster) in workloads() {
        for variant in Variant::all() {
            let mut row = measure(&job, &cluster, variant);
            row.model = model;
            rows.push(row);
        }
    }
    rows
}

/// Renders Figure 7 with Table 3's configuration header.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::from(
        "Table 3 — models in end-to-end evaluation\n\
         GPT case1: batch 1024, 2.6B params, FP16, parallel (2, 2, 2)\n\
         GPT case2: batch 1024, 2.6B params, FP16, parallel (4, 1, 2)\n\
         U-Trans case1: batch 2048, 2.1B params, FP32, parallel (auto, auto, 2)\n\n\
         Figure 7 — end-to-end training throughput (aggregate TFLOPS)\n",
    );
    let mut table = vec![vec![
        "model".to_string(),
        "variant".to_string(),
        "iteration".to_string(),
        "TFLOPS".to_string(),
        "% of signal".to_string(),
    ]];
    for row in rows {
        let signal = rows
            .iter()
            .find(|r| r.model == row.model && r.variant == "signal")
            .map(|r| r.tflops)
            .unwrap_or(row.tflops);
        table.push(vec![
            row.model.to_string(),
            row.variant.to_string(),
            table_fmt::secs(row.iteration_seconds),
            format!("{:.1}", row.tflops),
            format!("{:.1}%", 100.0 * row.tflops / signal),
        ]);
    }
    out.push_str(&table_fmt::render(&table));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end shape check on a scaled-down GPT so the debug-build test
    /// stays fast; the full Figure 7 runs in the bench harness.
    #[test]
    fn small_gpt_ordering_holds() {
        let cluster = presets::aws_p3_8xlarge(2, Precision::Fp16);
        // Keep case1's compute/communication ratio class: 8 layers per
        // stage and 16-sequence microbatches leave the boundary transfer
        // smaller than a stage's forward compute, as in the real config.
        let cfg = GptConfig {
            num_layers: 16,
            global_batch: 128,
            num_microbatches: 8,
            ..GptConfig::case1()
        };
        let job = cfg.build(&cluster).expect("builds");
        let t = |v: Variant| measure(&job, &cluster, v).iteration_seconds;
        let signal = t(Variant::Signal);
        let ours = t(Variant::Ours);
        let broadcast = t(Variant::Broadcast);
        let send_recv = t(Variant::SendRecv);
        assert!(signal <= ours * 1.001, "signal {signal} vs ours {ours}");
        assert!(
            ours <= broadcast * 1.001,
            "ours {ours} vs broadcast {broadcast}"
        );
        assert!(
            broadcast <= send_recv * 1.001,
            "broadcast {broadcast} vs send_recv {send_recv}"
        );
        // Ours should land close to the upper bound (the paper reports
        // >= 97% on the real cluster; allow slack on the tiny config).
        assert!(
            ours <= signal * 1.35,
            "ours {ours} too far from signal {signal}"
        );
    }
}
