//! Minimal fixed-width text-table formatting for harness output.

/// Renders `rows` (first row is the header) as an aligned text table.
pub fn render(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (r, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(cell);
            if i + 1 < row.len() {
                for _ in cell.len()..widths[i] {
                    out.push(' ');
                }
            }
        }
        out.push('\n');
        if r == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
            out.extend(std::iter::repeat_n('-', total));
            out.push('\n');
        }
    }
    out
}

/// Formats seconds with millisecond precision.
pub fn secs(t: f64) -> String {
    format!("{:.3}s", t)
}

/// Formats a dimensionless speedup factor.
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let t = render(&[
            vec!["case".into(), "ours".into()],
            vec!["1".into(), "0.123s".into()],
            vec!["long-name".into(), "1.000s".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("case"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    fn empty_is_empty() {
        assert_eq!(render(&[]), "");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(1.23456), "1.235s");
        assert_eq!(speedup(2.5), "2.50x");
    }
}
