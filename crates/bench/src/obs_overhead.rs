//! Observability overhead microbench: wall-clock per `plan()` with no
//! collector installed vs. with a [`CountingCollector`] swallowing every
//! span and event.
//!
//! Not a paper figure — this guards crossmesh-obs's "zero overhead when
//! disabled" claim (disabled is a relaxed atomic load per site) and bounds
//! the enabled cost. It also re-checks the determinism contract from the
//! observability side: the planner's estimate must be byte-identical with
//! and without a collector watching.

use crate::hostenv::HostEnv;
use crate::planner;
use crossmesh_core::{EnsemblePlanner, Planner, PlannerConfig};
use crossmesh_models::presets;
use crossmesh_obs::{self as obs, CountingCollector};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// The overhead measurement: one (units, iters) cell, both sides timed on
/// the same task and planner instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// The measuring host (parallelism, env overrides, build profile).
    pub env: HostEnv,
    /// Unit tasks in the planning case (a [`planner::case`] size).
    pub units: usize,
    /// Timed `plan()` calls per side.
    pub iters: usize,
    /// Best-round mean milliseconds per plan with no collector installed.
    pub disabled_ms: f64,
    /// Best-round mean milliseconds per plan with a counting collector
    /// installed.
    pub enabled_ms: f64,
    /// `(enabled / disabled - 1) * 100`. Noisy on small cases; the
    /// contract is "no measurable regression with collectors disabled",
    /// which the CI smoke run checks only loosely.
    pub overhead_pct: f64,
    /// Spans + events the collector saw across the enabled side.
    pub observed: u64,
    /// Best-round mean milliseconds per plan with a
    /// [`obs::FlightRecorder`] installed — the always-on black-box
    /// configuration the serve daemon runs with.
    pub recorder_ms: f64,
    /// `(recorder / disabled - 1) * 100`: the price of keeping the
    /// flight recorder armed. The regression gate holds this at or
    /// under 2% on the full run.
    pub recorder_overhead_pct: f64,
    /// Spans + events + metric deltas the recorder retained (post-drop).
    pub recorder_records: u64,
    /// Whether the estimate was byte-identical across all sides — the
    /// observer-passivity half of the determinism contract.
    pub identical_estimates: bool,
}

/// Runs the measurement. `smoke` trims it (8 units, 3 rounds of 3) for
/// CI; the full run uses the 20-unit case over 12 rounds of 5 plans per
/// arm.
///
/// The three arms (no collector, counting collector, flight recorder)
/// are *interleaved round-robin* and each arm's time is the **minimum of
/// its per-round means**: scheduler noise on a shared host only ever
/// adds time, so the fastest round is the least contaminated estimate of
/// the true cost, and interleaving gives every arm the same shot at the
/// quiet windows. A block-per-arm layout was measured to swing ±40% run
/// to run on an oversubscribed container; this layout holds the recorder
/// arm within the gate's 2% budget.
///
/// Takes the global collector test lock for the duration, since it
/// installs a process-wide collector for two of the arms.
pub fn run(smoke: bool) -> Report {
    let _guard = obs::collect::test_lock();
    let units = if smoke { 8 } else { 20 };
    let rounds = if smoke { 3 } else { 12 };
    let per_round = if smoke { 3 } else { 5 };
    let (_cluster, task) = planner::case(units);
    let plnr = EnsemblePlanner::new(PlannerConfig::new(presets::p3_cost_params()));

    // Warm-up plans so lazy statics and allocator state don't bias the
    // first round.
    let warmup = plnr.plan(&task).estimate();
    let _ = plnr.plan(&task).estimate();

    let counting = Arc::new(CountingCollector::new());
    let recorder = Arc::new(obs::FlightRecorder::new());
    let mut disabled_est = warmup;
    let mut enabled_est = warmup;
    let mut recorder_est = warmup;
    let mut round_ms = [Vec::new(), Vec::new(), Vec::new()];
    for _ in 0..rounds {
        for (arm, times) in round_ms.iter_mut().enumerate() {
            let installed = match arm {
                1 => Some(obs::install(counting.clone())),
                // The bounded flight recorder: exactly what a serve daemon
                // keeps armed in production for dump-on-trigger debugging.
                2 => Some(obs::install(recorder.clone())),
                _ => None,
            };
            let est = match arm {
                1 => &mut enabled_est,
                2 => &mut recorder_est,
                _ => &mut disabled_est,
            };
            let t0 = Instant::now();
            for _ in 0..per_round {
                *est = plnr.plan(&task).estimate();
            }
            times.push(t0.elapsed().as_secs_f64() * 1e3 / per_round as f64);
            drop(installed);
        }
    }
    let best = |times: &[f64]| times.iter().copied().fold(f64::MAX, f64::min);
    let disabled_ms = best(&round_ms[0]);
    let enabled_ms = best(&round_ms[1]);
    let recorder_ms = best(&round_ms[2]);

    Report {
        env: HostEnv::detect().with_smoke(smoke),
        units,
        iters: rounds * per_round,
        disabled_ms,
        enabled_ms,
        overhead_pct: (enabled_ms / disabled_ms - 1.0) * 100.0,
        observed: counting.total(),
        recorder_ms,
        recorder_overhead_pct: (recorder_ms / disabled_ms - 1.0) * 100.0,
        recorder_records: recorder.recorded(),
        identical_estimates: disabled_est.to_bits() == enabled_est.to_bits()
            && disabled_est.to_bits() == recorder_est.to_bits()
            && disabled_est.to_bits() == warmup.to_bits(),
    }
}

/// Renders the measurement as a one-cell summary.
pub fn render(r: &Report) -> String {
    format!(
        "Obs overhead — {}-unit ensemble, {} plans/side: disabled {:.3} ms, \
         enabled {:.3} ms ({:+.1}%), recorder {:.3} ms ({:+.1}%, {} records), \
         {} spans+events observed, estimates {}\n",
        r.units,
        r.iters,
        r.disabled_ms,
        r.enabled_ms,
        r.overhead_pct,
        r.recorder_ms,
        r.recorder_overhead_pct,
        r.recorder_records,
        r.observed,
        if r.identical_estimates {
            "byte-identical"
        } else {
            "DIVERGED"
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_observes_work_and_stays_deterministic() {
        let r = run(true);
        assert!(r.disabled_ms > 0.0 && r.enabled_ms > 0.0);
        assert!(
            r.observed > 0,
            "the enabled side must reach the collector; saw nothing"
        );
        assert!(r.recorder_ms > 0.0);
        assert!(
            r.recorder_records > 0,
            "the recorder arm must retain records; saw nothing"
        );
        assert!(
            r.identical_estimates,
            "installing a collector changed the plan estimate"
        );
        assert!(render(&r).contains("byte-identical"));
    }
}
