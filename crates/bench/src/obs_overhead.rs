//! Observability overhead microbench: wall-clock per `plan()` with no
//! collector installed vs. with a [`CountingCollector`] swallowing every
//! span and event.
//!
//! Not a paper figure — this guards crossmesh-obs's "zero overhead when
//! disabled" claim (disabled is a relaxed atomic load per site) and bounds
//! the enabled cost. It also re-checks the determinism contract from the
//! observability side: the planner's estimate must be byte-identical with
//! and without a collector watching.

use crate::hostenv::HostEnv;
use crate::planner;
use crossmesh_core::{EnsemblePlanner, Planner, PlannerConfig};
use crossmesh_models::presets;
use crossmesh_obs::{self as obs, CountingCollector};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// The overhead measurement: one (units, iters) cell, both sides timed on
/// the same task and planner instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// The measuring host (parallelism, env overrides, build profile).
    pub env: HostEnv,
    /// Unit tasks in the planning case (a [`planner::case`] size).
    pub units: usize,
    /// Timed `plan()` calls per side.
    pub iters: usize,
    /// Mean milliseconds per plan with no collector installed.
    pub disabled_ms: f64,
    /// Mean milliseconds per plan with a counting collector installed.
    pub enabled_ms: f64,
    /// `(enabled / disabled - 1) * 100`. Noisy on small cases; the
    /// contract is "no measurable regression with collectors disabled",
    /// which the CI smoke run checks only loosely.
    pub overhead_pct: f64,
    /// Spans + events the collector saw across the enabled side.
    pub observed: u64,
    /// Whether the estimate was byte-identical across both sides — the
    /// observer-passivity half of the determinism contract.
    pub identical_estimates: bool,
}

/// Runs the measurement. `smoke` trims it (8 units, 5 iters) for CI; the
/// full run uses the 20-unit case over 30 iterations per side.
///
/// Takes the global collector test lock for the duration, since it
/// installs a process-wide collector for the enabled side.
pub fn run(smoke: bool) -> Report {
    let _guard = obs::collect::test_lock();
    let units = if smoke { 8 } else { 20 };
    let iters = if smoke { 5 } else { 30 };
    let (_cluster, task) = planner::case(units);
    let plnr = EnsemblePlanner::new(PlannerConfig::new(presets::p3_cost_params()));

    // One warm-up plan so lazy statics and allocator state don't bias
    // whichever side runs first.
    let warmup = plnr.plan(&task).estimate();

    let mut disabled_est = warmup;
    let t0 = Instant::now();
    for _ in 0..iters {
        disabled_est = plnr.plan(&task).estimate();
    }
    let disabled_ms = t0.elapsed().as_secs_f64() * 1e3 / iters.max(1) as f64;

    let counting = Arc::new(CountingCollector::new());
    let installed = obs::install(counting.clone());
    let mut enabled_est = warmup;
    let t0 = Instant::now();
    for _ in 0..iters {
        enabled_est = plnr.plan(&task).estimate();
    }
    let enabled_ms = t0.elapsed().as_secs_f64() * 1e3 / iters.max(1) as f64;
    drop(installed);

    Report {
        env: HostEnv::detect(),
        units,
        iters,
        disabled_ms,
        enabled_ms,
        overhead_pct: (enabled_ms / disabled_ms - 1.0) * 100.0,
        observed: counting.total(),
        identical_estimates: disabled_est.to_bits() == enabled_est.to_bits()
            && disabled_est.to_bits() == warmup.to_bits(),
    }
}

/// Renders the measurement as a one-cell summary.
pub fn render(r: &Report) -> String {
    format!(
        "Obs overhead — {}-unit ensemble, {} plans/side: disabled {:.3} ms, \
         enabled {:.3} ms ({:+.1}%), {} spans+events observed, estimates {}\n",
        r.units,
        r.iters,
        r.disabled_ms,
        r.enabled_ms,
        r.overhead_pct,
        r.observed,
        if r.identical_estimates {
            "byte-identical"
        } else {
            "DIVERGED"
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_observes_work_and_stays_deterministic() {
        let r = run(true);
        assert!(r.disabled_ms > 0.0 && r.enabled_ms > 0.0);
        assert!(
            r.observed > 0,
            "the enabled side must reach the collector; saw nothing"
        );
        assert!(
            r.identical_estimates,
            "installing a collector changed the plan estimate"
        );
        assert!(render(&r).contains("byte-identical"));
    }
}
