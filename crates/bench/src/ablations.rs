//! Ablations beyond the paper's figures: the design-choice sweeps
//! DESIGN.md calls out (broadcast chunk count, DFS node budget, randomized
//! greedy permutations, backward weight delay) plus a cluster-scale sweep.

use crate::cases::TABLE2;
use crate::table_fmt;
use crossmesh_core::{
    DfsPlanner, EnsemblePlanner, LoadBalancePlanner, Planner, PlannerConfig,
    RandomizedGreedyPlanner, ReshardingTask, Strategy, StrategyChoice,
};
use crossmesh_mesh::DeviceMesh;
use crossmesh_models::utransformer::UTransformerConfig;
use crossmesh_models::{presets, Precision};
use crossmesh_pipeline::{simulate, CommMode, PipelineConfig, ScheduleKind, WeightDelay};
use serde::{Deserialize, Serialize};

fn config() -> PlannerConfig {
    PlannerConfig::new(presets::p3_cost_params())
}

/// One point of a one-dimensional ablation sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The swept parameter's value.
    pub x: f64,
    /// Simulated seconds at that value.
    pub seconds: f64,
}

/// Broadcast chunk-count sweep on a 1 GB multicast to 4 hosts × 2 GPUs:
/// `T = t(1 + (A−1)/K)` — the paper picks `K ≈ 100`.
pub fn chunk_sweep() -> Vec<SweepPoint> {
    let cluster = presets::aws_p3_8xlarge(5, Precision::Fp32);
    let src = DeviceMesh::from_cluster(&cluster, 0, (1, 1), "src").expect("fits");
    let dst = DeviceMesh::from_cluster(&cluster, 1, (4, 2), "dst").expect("fits");
    let task = ReshardingTask::new(
        src,
        "RRR".parse().expect("valid"),
        dst,
        "RRR".parse().expect("valid"),
        &[1024, 1024, 256],
        4,
    )
    .expect("valid");
    [1u32, 2, 4, 8, 16, 32, 64, 128, 256]
        .into_iter()
        .map(|k| {
            let cfg =
                config().with_strategy(StrategyChoice::Fixed(Strategy::Broadcast { chunks: k }));
            let seconds = LoadBalancePlanner::new(cfg)
                .plan(&task)
                .execute(&cluster)
                .expect("simulates")
                .simulated_seconds;
            SweepPoint {
                x: k as f64,
                seconds,
            }
        })
        .collect()
}

/// DFS node-budget sweep on Table 2 case 4 (64 unit tasks): how much
/// search the exact algorithm needs before the ensemble stops helping.
pub fn dfs_budget_sweep() -> Vec<SweepPoint> {
    let (cluster, task) = TABLE2[3].build().expect("case4 builds");
    [1usize, 10, 100, 1_000, 10_000, 100_000]
        .into_iter()
        .map(|budget| {
            let planner = DfsPlanner::new(config()).with_node_budget(budget);
            let seconds = planner
                .plan(&task)
                .execute(&cluster)
                .expect("simulates")
                .simulated_seconds;
            SweepPoint {
                x: budget as f64,
                seconds,
            }
        })
        .collect()
}

/// Randomized-greedy permutation-count sweep on case 4.
pub fn permutation_sweep() -> Vec<SweepPoint> {
    let (cluster, task) = TABLE2[3].build().expect("case4 builds");
    [1usize, 2, 4, 8, 16, 32, 64]
        .into_iter()
        .map(|perms| {
            let planner = RandomizedGreedyPlanner::new(config()).with_permutations(perms);
            let seconds = planner
                .plan(&task)
                .execute(&cluster)
                .expect("simulates")
                .simulated_seconds;
            SweepPoint {
                x: perms as f64,
                seconds,
            }
        })
        .collect()
}

/// Backward weight-delay sweep on a backward-heavy U-Transformer: the §4
/// technique that trades activation memory for overlap window.
pub fn weight_delay_sweep() -> Vec<SweepPoint> {
    let cluster = presets::aws_p3_8xlarge(2, Precision::Fp32);
    let job = UTransformerConfig {
        num_microbatches: 16,
        global_batch: 1024,
        ..UTransformerConfig::case1()
    }
    .build(&cluster)
    .expect("builds");
    let planner = EnsemblePlanner::new(config());
    (0usize..=4)
        .map(|d| {
            let seconds = simulate(
                &job.graph,
                &cluster,
                &planner,
                &PipelineConfig {
                    schedule: ScheduleKind::Eager1F1B,
                    comm: CommMode::Overlapped,
                    weight_delay: if d == 0 {
                        WeightDelay::None
                    } else {
                        WeightDelay::Fixed(d)
                    },
                },
            )
            .expect("simulates")
            .iteration_seconds;
            SweepPoint {
                x: d as f64,
                seconds,
            }
        })
        .collect()
}

/// Cluster-scale sweep: broadcast vs. Alpa on a 1 GB multicast as the
/// receiver mesh grows from 2 to 10 hosts — the regime where broadcast's
/// flatness and all-gather's host-crossing cost diverge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalePoint {
    /// Number of receiver hosts.
    pub hosts: usize,
    /// Alpa (global all-gather) seconds.
    pub alpa: f64,
    /// Broadcast seconds.
    pub ours: f64,
}

/// Runs the scale sweep.
pub fn scale_sweep() -> Vec<ScalePoint> {
    (2usize..=10)
        .step_by(2)
        .map(|hosts| {
            let cluster = presets::aws_p3_8xlarge(1 + hosts as u32, Precision::Fp32);
            let src = DeviceMesh::from_cluster(&cluster, 0, (1, 1), "src").expect("fits");
            let dst = DeviceMesh::from_cluster(&cluster, 1, (hosts, 4), "dst").expect("fits");
            let task = ReshardingTask::new(
                src,
                "RRR".parse().expect("valid"),
                dst,
                "RRR".parse().expect("valid"),
                &[1024, 1024, 256],
                4,
            )
            .expect("valid");
            let run = |choice: StrategyChoice| {
                LoadBalancePlanner::new(config().with_strategy(choice))
                    .plan(&task)
                    .execute(&cluster)
                    .expect("simulates")
                    .simulated_seconds
            };
            ScalePoint {
                hosts,
                alpa: run(StrategyChoice::AlpaAuto),
                ours: run(StrategyChoice::Fixed(Strategy::broadcast())),
            }
        })
        .collect()
}

/// Ring vs. binary-tree broadcast as the receiver-host count grows: the
/// tree's log-depth does not help in the bandwidth-bound regime the paper
/// targets, while its doubled root bandwidth hurts ~2x.
pub fn ring_vs_tree_sweep() -> Vec<ScalePoint> {
    (2usize..=10)
        .step_by(2)
        .map(|hosts| {
            let cluster = presets::aws_p3_8xlarge(1 + hosts as u32, Precision::Fp32);
            let src = DeviceMesh::from_cluster(&cluster, 0, (1, 1), "src").expect("fits");
            let dst = DeviceMesh::from_cluster(&cluster, 1, (hosts, 4), "dst").expect("fits");
            let task = ReshardingTask::new(
                src,
                "RRR".parse().expect("valid"),
                dst,
                "RRR".parse().expect("valid"),
                &[1024, 1024, 256],
                4,
            )
            .expect("valid");
            let run = |s: Strategy| {
                LoadBalancePlanner::new(config().with_strategy(StrategyChoice::Fixed(s)))
                    .plan(&task)
                    .execute(&cluster)
                    .expect("simulates")
                    .simulated_seconds
            };
            ScalePoint {
                hosts,
                alpa: run(Strategy::TreeBroadcast { chunks: 64 }),
                ours: run(Strategy::broadcast()),
            }
        })
        .collect()
}

/// Oversubscription sweep (beyond the paper's full-bisection assumption):
/// Table 2 case 1 on a fabric whose aggregate capacity shrinks from full
/// bisection to a quarter of it. Broadcast remains the best strategy; its
/// absolute time degrades once the fabric, not the host NIC, bottlenecks.
pub fn oversubscription_sweep() -> Vec<ScalePoint> {
    let case = &TABLE2[0];
    [4.0f64, 2.0, 1.0, 0.5, 0.25]
        .into_iter()
        .map(|factor| {
            let (cluster, task) = case.build().expect("case1 builds");
            // Full bisection here = 2 sending NICs at 1.25 GB/s.
            let cluster = cluster.with_fabric_capacity(factor * 2.0 * 1.25e9);
            let run = |choice: StrategyChoice| {
                LoadBalancePlanner::new(config().with_strategy(choice))
                    .plan(&task)
                    .execute(&cluster)
                    .expect("simulates")
                    .simulated_seconds
            };
            ScalePoint {
                hosts: (factor * 100.0) as usize, // percent of full bisection
                alpa: run(StrategyChoice::AlpaAuto),
                ours: run(StrategyChoice::Fixed(Strategy::broadcast())),
            }
        })
        .collect()
}

/// All ablation results bundled for the repro binary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ablations {
    /// Broadcast chunk sweep.
    pub chunks: Vec<SweepPoint>,
    /// DFS budget sweep.
    pub dfs_budget: Vec<SweepPoint>,
    /// Greedy permutation sweep.
    pub permutations: Vec<SweepPoint>,
    /// Weight delay sweep.
    pub weight_delay: Vec<SweepPoint>,
    /// Receiver-host scale sweep.
    pub scale: Vec<ScalePoint>,
    /// Fabric oversubscription sweep (x = percent of full bisection).
    pub oversubscription: Vec<ScalePoint>,
    /// Ring vs binary-tree broadcast sweep (`alpa` column = tree).
    pub ring_vs_tree: Vec<ScalePoint>,
}

/// Runs every ablation.
pub fn run() -> Ablations {
    Ablations {
        chunks: chunk_sweep(),
        dfs_budget: dfs_budget_sweep(),
        permutations: permutation_sweep(),
        weight_delay: weight_delay_sweep(),
        scale: scale_sweep(),
        oversubscription: oversubscription_sweep(),
        ring_vs_tree: ring_vs_tree_sweep(),
    }
}

/// Renders all sweeps as text tables.
pub fn render(a: &Ablations) -> String {
    let sweep_table = |title: &str, xlabel: &str, points: &[SweepPoint]| {
        let mut rows = vec![vec![xlabel.to_string(), "seconds".to_string()]];
        for p in points {
            rows.push(vec![format!("{}", p.x), table_fmt::secs(p.seconds)]);
        }
        format!("{title}\n{}\n", table_fmt::render(&rows))
    };
    let mut out = String::new();
    out.push_str(&sweep_table(
        "Ablation — broadcast chunk count K (1 GB, 4 receiver hosts)",
        "K",
        &a.chunks,
    ));
    out.push_str(&sweep_table(
        "Ablation — DFS node budget (case 4, 64 unit tasks)",
        "budget",
        &a.dfs_budget,
    ));
    out.push_str(&sweep_table(
        "Ablation — randomized-greedy permutations per round (case 4)",
        "permutations",
        &a.permutations,
    ));
    out.push_str(&sweep_table(
        "Ablation — backward weight delay (U-Transformer, 16 microbatches)",
        "delay",
        &a.weight_delay,
    ));
    let mut rows = vec![vec![
        "receiver hosts".to_string(),
        "alpa".to_string(),
        "ours".to_string(),
        "speedup".to_string(),
    ]];
    for p in &a.scale {
        rows.push(vec![
            p.hosts.to_string(),
            table_fmt::secs(p.alpa),
            table_fmt::secs(p.ours),
            table_fmt::speedup(p.alpa / p.ours),
        ]);
    }
    out.push_str(&format!(
        "Ablation — receiver-host scaling (1 GB multicast)\n{}\n",
        table_fmt::render(&rows)
    ));
    let mut rows = vec![vec![
        "% of full bisection".to_string(),
        "alpa".to_string(),
        "ours".to_string(),
    ]];
    for p in &a.oversubscription {
        rows.push(vec![
            p.hosts.to_string(),
            table_fmt::secs(p.alpa),
            table_fmt::secs(p.ours),
        ]);
    }
    out.push_str(&format!(
        "Ablation — fabric oversubscription (Table 2 case 1)\n{}\n",
        table_fmt::render(&rows)
    ));
    let mut rows = vec![vec![
        "receiver hosts".to_string(),
        "tree".to_string(),
        "ring (ours)".to_string(),
        "ring speedup".to_string(),
    ]];
    for p in &a.ring_vs_tree {
        rows.push(vec![
            p.hosts.to_string(),
            table_fmt::secs(p.alpa),
            table_fmt::secs(p.ours),
            table_fmt::speedup(p.alpa / p.ours),
        ]);
    }
    out.push_str(&format!(
        "Ablation — ring vs binary-tree broadcast (1 GB multicast)\n{}",
        table_fmt::render(&rows)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_monotonically_improves() {
        let points = chunk_sweep();
        for w in points.windows(2) {
            assert!(
                w[1].seconds <= w[0].seconds + 1e-6,
                "more chunks should not hurt: {points:?}"
            );
        }
        // K=1 pays the full per-hop cost; large K approaches t.
        assert!(points[0].seconds > 2.0 * points.last().unwrap().seconds);
    }

    #[test]
    fn greedy_never_degrades_with_more_permutations() {
        let points = permutation_sweep();
        let best = points
            .iter()
            .map(|p| p.seconds)
            .fold(f64::INFINITY, f64::min);
        assert!(points.last().unwrap().seconds <= best * 1.05);
    }

    #[test]
    fn ring_dominates_tree_at_scale() {
        let points = ring_vs_tree_sweep();
        for p in &points {
            assert!(p.ours <= p.alpa * 1.05, "ring lost to tree: {points:?}");
        }
        // At 8+ hosts the tree pays roughly double bandwidth.
        let last = points.last().unwrap();
        assert!(last.alpa / last.ours > 1.5, "{points:?}");
    }

    #[test]
    fn oversubscription_degrades_gracefully() {
        let points = oversubscription_sweep();
        // Ours never loses to Alpa at any oversubscription level, and
        // shrinking the fabric never speeds anything up.
        for p in &points {
            assert!(p.ours <= p.alpa * 1.05, "{points:?}");
        }
        for w in points.windows(2) {
            assert!(w[1].ours >= w[0].ours - 1e-6, "{points:?}");
        }
    }

    #[test]
    fn scale_sweep_shows_broadcast_flatness() {
        let points = scale_sweep();
        let first = &points[0];
        let last = points.last().unwrap();
        assert!(
            last.ours < first.ours * 1.2,
            "broadcast should stay flat: {points:?}"
        );
        assert!(
            last.alpa / last.ours >= first.alpa / first.ours,
            "alpa's gap should not shrink with scale"
        );
    }
}
