//! Shared entry point for the `repro_*` binaries.
//!
//! Every reproduction binary does the same thing: run a harness, then
//! print either the human-readable rendering or (with `--json`) a
//! machine-readable dump. [`repro_main`] is that whole main function;
//! [`section`] is the same step returning a string so `repro_all` can
//! chain harnesses into one document.

use serde::Serialize;

/// Runs one reproduction harness end to end: calls `run`, then prints
/// `render(&rows)` — or, when `--json` appears on the command line, a
/// pretty-printed JSON dump of the rows instead.
///
/// `name` only appears in the panic message should the rows fail to
/// serialize (a harness bug).
pub fn repro_main<T, R, F>(name: &str, run: R, render: F)
where
    T: Serialize,
    R: FnOnce() -> T,
    F: FnOnce(&T) -> String,
{
    let json = std::env::args().any(|a| a == "--json");
    let rows = run();
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&rows)
                .unwrap_or_else(|e| panic!("{name}: rows must serialize: {e:?}"))
        );
    } else {
        println!("{}", render(&rows));
    }
}

/// One named section of a combined multi-harness document: the JSON
/// object member `"name":<rows>` when `json` is set, the rendered table
/// otherwise. `repro_all` joins JSON sections with `,` inside `{...}`
/// and text sections with newlines.
pub fn section<T, R, F>(name: &str, json: bool, run: R, render: F) -> String
where
    T: Serialize,
    R: FnOnce() -> T,
    F: FnOnce(&T) -> String,
{
    let rows = run();
    if json {
        format!(
            "{}:{}",
            serde_json::to_string(&name.to_string()).expect("strings serialize"),
            serde_json::to_string(&rows)
                .unwrap_or_else(|e| panic!("{name}: rows must serialize: {e:?}"))
        )
    } else {
        render(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_emits_a_json_member_or_the_rendering() {
        let member = section("t", true, || vec![1u32, 2], |_| unreachable!());
        assert_eq!(member, "\"t\":[1,2]");
        let text = section(
            "t",
            false,
            || vec![1u32, 2],
            |r| format!("{} rows", r.len()),
        );
        assert_eq!(text, "2 rows");
    }

    #[test]
    fn sections_join_into_parseable_json() {
        let doc = format!(
            "{{{}}}",
            [
                section("a", true, || 1u32, |_| String::new()),
                section("b", true, || vec!["x"], |_| String::new()),
            ]
            .join(",")
        );
        let v: serde_json::Value = serde_json::from_str(&doc).expect("valid JSON");
        assert_eq!(v["a"].as_f64(), Some(1.0));
        assert_eq!(v["b"][0], "x");
    }
}
