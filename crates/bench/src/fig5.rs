//! Figure 5: sending a 1 GB replicated tensor from a single device to a
//! growing receiver mesh.
//!
//! Group A fixes one receiver host and grows its GPU count 1→4; group B
//! fixes 2 GPUs per host and grows the host count 1→4. Strategies:
//! `send_recv` (P2P only), `alpa` (all-gather based, falls back on uneven
//! partitions), and `ours` (chunked ring broadcast).

use crossmesh_core::{
    EnsemblePlanner, LoadBalancePlanner, Planner, PlannerConfig, ReshardingTask, Strategy,
    StrategyChoice,
};
use crossmesh_mesh::{DeviceMesh, MeshError};
use crossmesh_models::{presets, Precision};
use crossmesh_netsim::ClusterSpec;
use serde::{Deserialize, Serialize};

/// 1 GB of fp32 elements.
pub const MESSAGE_SHAPE: [u64; 3] = [1024, 1024, 256];

/// One measured point of Figure 5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// "1 node, n GPUs" (group A) or "n nodes, 2 GPUs each" (group B).
    pub group: &'static str,
    /// The varying count (GPUs for group A, hosts for group B).
    pub n: usize,
    /// Strategy name.
    pub strategy: &'static str,
    /// Simulated completion time, seconds.
    pub seconds: f64,
}

/// The three strategy configurations the figure compares.
pub fn strategies() -> Vec<(&'static str, StrategyChoice, bool)> {
    vec![
        (
            "send_recv",
            StrategyChoice::Fixed(Strategy::SendRecv),
            false,
        ),
        ("alpa", StrategyChoice::AlpaAuto, false),
        ("ours", StrategyChoice::Fixed(Strategy::broadcast()), true),
    ]
}

fn build_task(receiver_shape: (usize, usize)) -> Result<(ClusterSpec, ReshardingTask), MeshError> {
    let hosts = 1 + receiver_shape.0 as u32;
    let cluster = presets::aws_p3_8xlarge(hosts, Precision::Fp32);
    let src = DeviceMesh::from_cluster(&cluster, 0, (1, 1), "send")?;
    let dst = DeviceMesh::from_cluster(&cluster, 1, receiver_shape, "recv")?;
    let task = ReshardingTask::new(src, "RRR".parse()?, dst, "RRR".parse()?, &MESSAGE_SHAPE, 4)?;
    Ok((cluster, task))
}

/// Runs one strategy on one receiver shape and returns simulated seconds.
///
/// # Panics
///
/// Panics if the configuration fails to build (a bug in the harness).
pub fn measure(receiver_shape: (usize, usize), choice: StrategyChoice, ours: bool) -> f64 {
    let (cluster, task) = build_task(receiver_shape).expect("figure 5 configs are valid");
    let config = PlannerConfig::new(presets::p3_cost_params()).with_strategy(choice);
    let plan = if ours {
        EnsemblePlanner::new(config).plan(&task)
    } else {
        LoadBalancePlanner::new(config).plan(&task)
    };
    plan.execute(&cluster)
        .expect("simulation succeeds")
        .simulated_seconds
}

/// Regenerates both series of Figure 5.
pub fn run() -> Vec<Point> {
    let mut out = Vec::new();
    for n in 1..=4 {
        for (name, choice, ours) in strategies() {
            out.push(Point {
                group: "1 node, n GPUs",
                n,
                strategy: name,
                seconds: measure((1, n), choice, ours),
            });
        }
    }
    for n in 1..=4 {
        for (name, choice, ours) in strategies() {
            out.push(Point {
                group: "n nodes, 2 GPUs each",
                n,
                strategy: name,
                seconds: measure((n, 2), choice, ours),
            });
        }
    }
    out
}

/// Renders the points as two grouped text tables.
pub fn render(points: &[Point]) -> String {
    use crate::table_fmt;
    let mut out = String::new();
    for group in ["1 node, n GPUs", "n nodes, 2 GPUs each"] {
        out.push_str(&format!("Figure 5 — {group} (1 GB message)\n"));
        let mut rows = vec![vec![
            "n".to_string(),
            "send_recv".to_string(),
            "alpa".to_string(),
            "ours".to_string(),
        ]];
        for n in 1..=4 {
            let mut row = vec![n.to_string()];
            for s in ["send_recv", "alpa", "ours"] {
                let p = points
                    .iter()
                    .find(|p| p.group == group && p.n == n && p.strategy == s)
                    .expect("point exists");
                row.push(table_fmt::secs(p.seconds));
            }
            rows.push(row);
        }
        out.push_str(&table_fmt::render(&rows));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(points: &[Point], group: &str, strategy: &str) -> Vec<f64> {
        (1..=4)
            .map(|n| {
                points
                    .iter()
                    .find(|p| p.group == group && p.n == n && p.strategy == strategy)
                    .unwrap()
                    .seconds
            })
            .collect()
    }

    #[test]
    fn figure5_shapes_hold() {
        let points = run();
        let ga = "1 node, n GPUs";
        let gb = "n nodes, 2 GPUs each";

        // Send/recv grows linearly with receiver count in both groups.
        let sr = series(&points, ga, "send_recv");
        assert!(sr[3] > 3.5 * sr[0], "send_recv not linear: {sr:?}");
        let srb = series(&points, gb, "send_recv");
        assert!(srb[3] > 3.5 * srb[0], "send_recv not linear: {srb:?}");

        // Ours is flat (< 10% growth across the sweep).
        for g in [ga, gb] {
            let ours = series(&points, g, "ours");
            let spread = ours.iter().cloned().fold(0.0, f64::max)
                / ours.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(spread < 1.10, "ours not flat in {g}: {ours:?}");
        }

        // Alpa is flat on one node except the uneven #gpu=3 point, where
        // it falls back and jumps.
        let alpa = series(&points, ga, "alpa");
        assert!(
            alpa[2] > 1.5 * alpa[1],
            "no uneven-partition jump: {alpa:?}"
        );
        assert!(
            alpa[3] < 1.3 * alpa[0],
            "alpa not flat at even points: {alpa:?}"
        );

        // Multi-node: Alpa's all-gather crosses nodes, ours stays near t.
        let alpa_b = series(&points, gb, "alpa");
        let ours_b = series(&points, gb, "ours");
        assert!(
            alpa_b[3] > 1.3 * ours_b[3],
            "ours should win multi-node: alpa {alpa_b:?} vs ours {ours_b:?}"
        );
    }

    #[test]
    fn render_contains_both_groups() {
        let points = run();
        let text = render(&points);
        assert!(text.contains("1 node"));
        assert!(text.contains("n nodes"));
    }
}
