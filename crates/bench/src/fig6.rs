//! Figure 6: the Table 2 multi-device-to-multi-device cases under
//! `send_recv`, `alpa`, and `ours`.

use crate::cases::{Case, TABLE2};
use crate::table_fmt;
use crossmesh_core::{
    EnsemblePlanner, LoadBalancePlanner, Planner, PlannerConfig, Strategy, StrategyChoice,
};
use crossmesh_models::presets;
use serde::{Deserialize, Serialize};

/// One row of Figure 6 (seconds per strategy, plus ours' speedup).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Table 2 case name.
    pub case: &'static str,
    /// P2P baseline.
    pub send_recv: f64,
    /// All-gather baseline (Alpa/Megatron style).
    pub alpa: f64,
    /// Broadcast + ensemble planner.
    pub ours: f64,
}

impl Row {
    /// Ours' speedup over the Alpa baseline.
    pub fn speedup_vs_alpa(&self) -> f64 {
        self.alpa / self.ours
    }
}

/// Measures one case under one baseline/ours configuration.
///
/// # Panics
///
/// Panics if the case fails to build or simulate (harness bug).
pub fn measure(case: &Case, choice: StrategyChoice, ours: bool) -> f64 {
    let (cluster, task) = case.build().expect("table 2 cases build");
    let config = PlannerConfig::new(presets::p3_cost_params()).with_strategy(choice);
    let plan = if ours {
        EnsemblePlanner::new(config).plan(&task)
    } else {
        // The paper's baselines load-balance greedily by lightest sender.
        LoadBalancePlanner::new(config).plan(&task)
    };
    plan.execute(&cluster)
        .expect("simulation succeeds")
        .simulated_seconds
}

/// Regenerates Figure 6.
pub fn run() -> Vec<Row> {
    TABLE2
        .iter()
        .map(|case| Row {
            case: case.name,
            send_recv: measure(case, StrategyChoice::Fixed(Strategy::SendRecv), false),
            alpa: measure(case, StrategyChoice::AlpaAuto, false),
            ours: measure(case, StrategyChoice::Fixed(Strategy::broadcast()), true),
        })
        .collect()
}

/// Renders the Table 2 configuration alongside the measured latencies.
pub fn render(rows: &[Row]) -> String {
    let mut table = vec![vec![
        "case".to_string(),
        "send spec".to_string(),
        "recv spec".to_string(),
        "send mesh".to_string(),
        "recv mesh".to_string(),
        "send_recv".to_string(),
        "alpa".to_string(),
        "ours".to_string(),
        "vs alpa".to_string(),
    ]];
    for (case, row) in TABLE2.iter().zip(rows) {
        table.push(vec![
            case.name.to_string(),
            case.send_spec.to_string(),
            case.recv_spec.to_string(),
            format!("({},{})", case.send_mesh.0, case.send_mesh.1),
            format!("({},{})", case.recv_mesh.0, case.recv_mesh.1),
            table_fmt::secs(row.send_recv),
            table_fmt::secs(row.alpa),
            table_fmt::secs(row.ours),
            table_fmt::speedup(row.speedup_vs_alpa()),
        ]);
    }
    format!(
        "Figure 6 — multi-device to multi-device microbenchmark (Table 2 cases)\n{}",
        table_fmt::render(&table)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline claims of §5.1.2, as orderings rather than absolute
    /// numbers.
    #[test]
    fn figure6_shapes_hold() {
        let rows = run();
        let get = |name: &str| rows.iter().find(|r| r.case == name).unwrap();

        // Ours never loses materially to either baseline.
        for r in &rows {
            assert!(
                r.ours <= r.alpa * 1.05 && r.ours <= r.send_recv * 1.05,
                "{}: ours {} vs alpa {} send_recv {}",
                r.case,
                r.ours,
                r.alpa,
                r.send_recv
            );
        }

        // Cases 1 and 5: ours and Alpa comparable (within 2x).
        for name in ["case1", "case5"] {
            let r = get(name);
            assert!(
                r.speedup_vs_alpa() < 2.0,
                "{name} should be near parity, got {:.2}x",
                r.speedup_vs_alpa()
            );
        }

        // Cases 3, 4, 9: ours substantially faster than Alpa.
        for name in ["case3", "case4", "case9"] {
            let r = get(name);
            assert!(
                r.speedup_vs_alpa() > 1.5,
                "{name} should show a large win, got {:.2}x",
                r.speedup_vs_alpa()
            );
        }

        // Case 4 (64 unit tasks) shows at least as large a win as case 3.
        assert!(get("case4").speedup_vs_alpa() >= get("case3").speedup_vs_alpa() * 0.8);
    }

    #[test]
    fn render_lists_all_cases() {
        let rows = run();
        let text = render(&rows);
        for c in TABLE2 {
            assert!(text.contains(c.name));
        }
    }
}
