//! Host environment detection for honest benchmark reports.
//!
//! Every `BENCH_*.json` embeds a [`HostEnv`] so a reader can tell a
//! flat speedup curve on a 1-core CI runner from a real scaling failure,
//! and so two reports are never compared across different hosts by
//! accident. [`HostEnv::oversubscription_warning`] produces the warning
//! harnesses print when a sweep requests more pool threads than the host
//! can actually run in parallel — the measurements still run (the grid
//! stays comparable across hosts), but the numbers for those widths
//! measure scheduler interleaving, not parallel speedup.

use serde::{Deserialize, Serialize};

/// The measuring host, as recorded in every benchmark report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostEnv {
    /// `std::thread::available_parallelism()` — the ceiling for any
    /// honest parallel speedup on this host.
    pub host_threads: usize,
    /// The `CROSSMESH_THREADS` override, when set (it caps the default
    /// rayon pool, so sweeps that do not build their own pools inherit it).
    pub crossmesh_threads: Option<String>,
    /// Build profile the harness ran under (`debug` timings are not
    /// comparable to `release` ones).
    pub profile: String,
    /// `os/arch`, e.g. `linux/x86_64`.
    pub platform: String,
    /// Whether this report came from a trimmed `--smoke` run. Smoke
    /// measurements validate plumbing, not timings: their few iterations
    /// swing far too much for tight wall-clock bounds, so the regression
    /// gate skips those pins on smoke reports. `None` means the report
    /// predates this field (committed full-run baselines), which the
    /// gate treats as a full run.
    pub smoke: Option<bool>,
}

impl HostEnv {
    /// Detects the current host.
    pub fn detect() -> HostEnv {
        HostEnv {
            host_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            crossmesh_threads: std::env::var("CROSSMESH_THREADS").ok(),
            profile: if cfg!(debug_assertions) {
                "debug".to_string()
            } else {
                "release".to_string()
            },
            platform: format!("{}/{}", std::env::consts::OS, std::env::consts::ARCH),
            smoke: None,
        }
    }

    /// Marks the report as coming from a trimmed smoke run (see the
    /// [`smoke`](HostEnv::smoke) field).
    #[must_use]
    pub fn with_smoke(mut self, smoke: bool) -> HostEnv {
        self.smoke = Some(smoke);
        self
    }

    /// Whether the report is a trimmed smoke run (absent field = full).
    pub fn is_smoke(&self) -> bool {
        self.smoke == Some(true)
    }

    /// Whether a requested pool width exceeds the host's real parallelism.
    pub fn oversubscribed(&self, requested: usize) -> bool {
        requested > self.host_threads
    }

    /// A speedup figure the host can actually vouch for: `Some(speedup)`
    /// when `requested` pool threads genuinely run in parallel here,
    /// `None` when the width is oversubscribed — in that regime the ratio
    /// measures scheduler interleaving, and reporting it as a speedup
    /// would let a 1-core CI runner publish fictional scaling numbers.
    pub fn reliable_speedup(&self, requested: usize, speedup: f64) -> Option<f64> {
        (!self.oversubscribed(requested)).then_some(speedup)
    }

    /// The warning to attach to a report (and print to stderr) when a
    /// sweep requests `requested` pool threads, or `None` if the host can
    /// genuinely run them in parallel.
    pub fn oversubscription_warning(&self, requested: usize) -> Option<String> {
        self.oversubscribed(requested).then(|| {
            format!(
                "requested pool width {requested} exceeds host parallelism \
                 {}; timings at this width measure interleaving, not speedup",
                self.host_threads
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_reports_at_least_one_thread() {
        let env = HostEnv::detect();
        assert!(env.host_threads >= 1);
        assert!(env.platform.contains('/'));
        assert!(env.profile == "debug" || env.profile == "release");
    }

    #[test]
    fn oversubscription_is_flagged_past_the_host_width() {
        let env = HostEnv {
            host_threads: 2,
            crossmesh_threads: None,
            profile: "debug".into(),
            platform: "test/test".into(),
            smoke: None,
        };
        assert!(!env.oversubscribed(1));
        assert!(!env.oversubscribed(2));
        assert!(env.oversubscribed(3));
        let warn = env.oversubscription_warning(8).expect("warns");
        assert!(warn.contains("8") && warn.contains("2"), "{warn}");
        assert!(env.oversubscription_warning(2).is_none());
    }

    #[test]
    fn reliable_speedup_refuses_oversubscribed_widths() {
        let env = HostEnv {
            host_threads: 2,
            crossmesh_threads: None,
            profile: "debug".into(),
            platform: "test/test".into(),
            smoke: None,
        };
        assert_eq!(env.reliable_speedup(2, 1.8), Some(1.8));
        assert_eq!(env.reliable_speedup(4, 3.5), None);
    }

    #[test]
    fn host_env_round_trips_through_json() {
        let env = HostEnv::detect();
        let text = serde_json::to_string(&env).expect("serializes");
        let back: HostEnv = serde_json::from_str(&text).expect("parses");
        assert_eq!(env, back);
    }
}
