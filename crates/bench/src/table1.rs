//! Table 1: per-GPU memory of one GPT-3 layer in mixed-precision training.

use crate::table_fmt;
use crossmesh_models::memory::{gpt3_layer_memory, MemoryBreakdown, GI, MI};

/// Table 1's setting: S=1024, H=12288, B=2, TMP=8.
pub fn run() -> MemoryBreakdown {
    gpt3_layer_memory(12288, 1024, 2, 8)
}

/// Renders the table with the paper's expressions and values.
pub fn render(m: &MemoryBreakdown) -> String {
    let rows = vec![
        vec![
            "quantity".to_string(),
            "expression".to_string(),
            "value".to_string(),
        ],
        vec![
            "#parameter".to_string(),
            "12H^2/TMP".to_string(),
            format!("{:.0}M", m.num_parameters / MI),
        ],
        vec![
            "#optimizer state parameters".to_string(),
            "24H^2/TMP".to_string(),
            format!("{:.0}M", m.optimizer_state_parameters / MI),
        ],
        vec![
            "#activation elements".to_string(),
            "BSH".to_string(),
            format!("{:.0}M", m.activation_elements / MI),
        ],
        vec![
            "Memory of weights and optimizer".to_string(),
            "168H^2/TMP".to_string(),
            format!("{:.2}GB", m.weights_and_optimizer_bytes / GI),
        ],
        vec![
            "Memory of activation".to_string(),
            "2BSH".to_string(),
            format!("{:.0}MB", m.activation_bytes / MI),
        ],
    ];
    format!(
        "Table 1 — GPT-3 layer memory per GPU (S=1024, H=12288, B=2, TMP=8)\n{}",
        table_fmt::render(&rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendered_values_match_paper() {
        let text = render(&run());
        assert!(text.contains("216M"));
        assert!(text.contains("432M"));
        assert!(text.contains("24M"));
        assert!(text.contains("2.95GB"));
        assert!(text.contains("48MB"));
    }
}
