//! Microbenchmarks of the planner algorithms and the simulator engine
//! themselves (planning cost, not simulated communication time).

use criterion::{criterion_group, criterion_main, Criterion};
use crossmesh_bench::cases::TABLE2;
use crossmesh_core::{
    DfsPlanner, EnsemblePlanner, LoadBalancePlanner, NaivePlanner, Planner, PlannerConfig,
    RandomizedGreedyPlanner,
};
use crossmesh_models::presets;

fn bench(c: &mut Criterion) {
    let config = || PlannerConfig::new(presets::p3_cost_params());
    // Case 4 has 64 unit tasks: the stress case for planning cost.
    let (_, task) = TABLE2[3].build().expect("case4 builds");
    let mut g = c.benchmark_group("planner");
    g.bench_function("naive/case4", |b| {
        let p = NaivePlanner::new(config());
        b.iter(|| p.plan(&task))
    });
    g.bench_function("load_balance/case4", |b| {
        let p = LoadBalancePlanner::new(config());
        b.iter(|| p.plan(&task))
    });
    g.bench_function("randomized_greedy/case4", |b| {
        let p = RandomizedGreedyPlanner::new(config());
        b.iter(|| p.plan(&task))
    });
    g.bench_function("dfs_budget_10k/case4", |b| {
        let p = DfsPlanner::new(config()).with_node_budget(10_000);
        b.iter(|| p.plan(&task))
    });
    g.bench_function("ensemble/case4", |b| {
        let p = EnsemblePlanner::new(config());
        b.iter(|| p.plan(&task))
    });
    g.bench_function("engine/case4_broadcast_execute", |b| {
        let p = EnsemblePlanner::new(config());
        let (cluster, task) = TABLE2[3].build().expect("case4 builds");
        let plan = p.plan(&task);
        b.iter(|| plan.execute(&cluster).expect("simulates"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
