//! Criterion bench regenerating Figure 9 (overlap-friendly schedule
//! ablation on the U-Transformer).

use criterion::{criterion_group, criterion_main, Criterion};
use crossmesh_bench::fig9::{measure, ScheduleVariant};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    for m in [4usize, 32] {
        for v in ScheduleVariant::all() {
            g.bench_function(format!("mb{m}/{}", v.name()), |b| b.iter(|| measure(m, v)));
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
