//! Criterion bench regenerating Figure 6 (Table 2 cases x strategies).

use criterion::{criterion_group, criterion_main, Criterion};
use crossmesh_bench::{cases::TABLE2, fig6};
use crossmesh_core::{Strategy, StrategyChoice};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    for case in TABLE2 {
        g.bench_function(format!("{}/send_recv", case.name), |b| {
            b.iter(|| fig6::measure(&case, StrategyChoice::Fixed(Strategy::SendRecv), false))
        });
        g.bench_function(format!("{}/alpa", case.name), |b| {
            b.iter(|| fig6::measure(&case, StrategyChoice::AlpaAuto, false))
        });
        g.bench_function(format!("{}/ours", case.name), |b| {
            b.iter(|| fig6::measure(&case, StrategyChoice::Fixed(Strategy::broadcast()), true))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
