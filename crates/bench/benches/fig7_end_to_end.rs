//! Criterion bench regenerating Figure 7 (end-to-end GPT / U-Transformer
//! throughput under the five communication configurations).

use criterion::{criterion_group, criterion_main, Criterion};
use crossmesh_bench::fig7::{measure, workloads, Variant};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    for (model, job, cluster) in workloads() {
        for variant in Variant::all() {
            g.bench_function(format!("{model}/{}", variant.name()), |b| {
                b.iter(|| measure(&job, &cluster, variant))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
