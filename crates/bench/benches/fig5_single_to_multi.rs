//! Criterion bench regenerating Figure 5's points (single device to a
//! growing receiver mesh, per strategy).

use criterion::{criterion_group, criterion_main, Criterion};
use crossmesh_bench::fig5;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    for (name, choice, ours) in fig5::strategies() {
        g.bench_function(format!("1node_4gpus/{name}"), |b| {
            b.iter(|| fig5::measure((1, 4), choice, ours))
        });
        g.bench_function(format!("4nodes_2gpus/{name}"), |b| {
            b.iter(|| fig5::measure((4, 2), choice, ours))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
