//! Criterion bench regenerating Figure 8 (load-balance ablation).

use criterion::{criterion_group, criterion_main, Criterion};
use crossmesh_bench::{cases::TABLE2, fig8};
use crossmesh_core::{
    DfsPlanner, EnsemblePlanner, LoadBalancePlanner, NaivePlanner, PlannerConfig,
};
use crossmesh_models::presets;

fn bench(c: &mut Criterion) {
    let config = || PlannerConfig::new(presets::p3_cost_params());
    let naive = NaivePlanner::new(config());
    let lpt = LoadBalancePlanner::new(config());
    let ours = EnsemblePlanner::new(config()).with_dfs(DfsPlanner::new(config()));
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    for case in TABLE2 {
        g.bench_function(format!("{}/naive", case.name), |b| {
            b.iter(|| fig8::measure(&case, &naive))
        });
        g.bench_function(format!("{}/load_balance", case.name), |b| {
            b.iter(|| fig8::measure(&case, &lpt))
        });
        g.bench_function(format!("{}/ours", case.name), |b| {
            b.iter(|| fig8::measure(&case, &ours))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
