//! Criterion bench for the Table 1 memory computation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("table1/gpt3_layer_memory", |b| {
        b.iter(|| {
            crossmesh_models::memory::gpt3_layer_memory(
                black_box(12288),
                black_box(1024),
                black_box(2),
                black_box(8),
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
