//! Criterion bench for the design-choice ablation sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use crossmesh_bench::ablations;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("chunk_sweep", |b| b.iter(ablations::chunk_sweep));
    g.bench_function("permutation_sweep", |b| {
        b.iter(ablations::permutation_sweep)
    });
    g.bench_function("scale_sweep", |b| b.iter(ablations::scale_sweep));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
