//! Criterion bench timing the fault-degradation sweep (repair loop under
//! injected flow drops and a sender-host crash).

use criterion::{criterion_group, criterion_main, Criterion};
use crossmesh_bench::faults;
use crossmesh_core::{EnsemblePlanner, NaivePlanner, PlannerConfig};
use crossmesh_models::presets;

fn bench(c: &mut Criterion) {
    let config = || PlannerConfig::new(presets::p3_cost_params());
    let naive = NaivePlanner::new(config());
    let ours = EnsemblePlanner::new(config());
    let mut g = c.benchmark_group("fault_degradation");
    g.sample_size(10);
    for rate in faults::DROP_RATES {
        let schedule = faults::drop_schedule(rate);
        g.bench_function(format!("drop{:.0}%/naive", rate * 100.0), |b| {
            b.iter(|| faults::measure(&naive, &schedule))
        });
        g.bench_function(format!("drop{:.0}%/ours", rate * 100.0), |b| {
            b.iter(|| faults::measure(&ours, &schedule))
        });
    }
    let crash = faults::crash_schedule();
    g.bench_function("crash_h0/ours", |b| {
        b.iter(|| faults::measure(&ours, &crash))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
