//! Wall-clock multi-threaded execution backend for `crossmesh`.
//!
//! The simulator (`crossmesh-netsim`) *predicts* what a lowered
//! [`TaskGraph`](crossmesh_netsim::TaskGraph) would cost; this crate *runs*
//! one. Every device of the cluster becomes a trio of OS threads (compute,
//! send, receive), every [`Work::Flow`](crossmesh_netsim::Work) becomes an
//! actual chunked byte transfer — over in-process bounded channels for
//! intra-host edges, and optionally over real TCP loopback sockets for
//! inter-host edges — and every compute task occupies its device thread for
//! a calibrated spin/sleep. Dependencies are released exactly as the graph
//! dictates, per-task start/finish timestamps are taken from one monotonic
//! clock, and the result comes back as the same
//! [`Trace`](crossmesh_netsim::Trace) type the simulator produces, so
//! planners, reports, and the Chrome-trace exporter work unchanged.
//!
//! Two entry points:
//!
//! * [`ThreadedBackend`] — implements
//!   [`Backend`](crossmesh_netsim::Backend) for any lowered task graph
//!   (timing-shaped execution with real message passing);
//! * [`execute_plan`] — runs a planner's [`Plan`](crossmesh_core::Plan)
//!   with *real tile payloads*, assembling destination buffers across
//!   threads and verifying byte-exact placement via
//!   [`crossmesh_core::dataplane::verify_destination`].
//!
//! # Example
//!
//! ```
//! use crossmesh_netsim::{Backend, ClusterSpec, LinkParams, TaskGraph, Work};
//! use crossmesh_runtime::ThreadedBackend;
//!
//! # fn main() -> Result<(), crossmesh_netsim::SimError> {
//! let cluster = ClusterSpec::homogeneous(2, 2, LinkParams::new(10e9, 1e9));
//! let mut graph = TaskGraph::new();
//! let f = graph.add(Work::flow(cluster.device(0, 0), cluster.device(1, 0), 1e6), []);
//! graph.add(Work::compute(cluster.device(1, 0), 0.01), [f]);
//! let trace = ThreadedBackend::threads().execute(&cluster, &graph)?;
//! assert!(trace.makespan() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backend;
mod dataflow;
pub mod net;

pub use backend::{InjectedFaults, ThreadedBackend, TransportKind};
pub use dataflow::{execute_plan, PlanDataError};
pub use net::{bind_ephemeral, bind_retry, PollListener};
