//! Threaded data-plane execution: run a [`Plan`] with real tile payloads.
//!
//! Where [`ThreadedBackend`](crate::ThreadedBackend) executes a lowered
//! [`TaskGraph`](crossmesh_netsim::TaskGraph) with timing-shaped dummy
//! bytes, [`execute_plan`] moves the *actual tensor contents*: every
//! source device materializes its layout tile on its own thread, every
//! assignment extracts and ships the pieces its receivers need over
//! channels, and every destination device assembles its tile concurrently.
//! The assembled buffers then pass through the exact same
//! [`verify_destination`] check as the in-process data plane in
//! `crossmesh-core`, so both execution paths assert byte-exact placement
//! against the same ground truth.

use crossmesh_core::dataplane::{
    verify_destination, DataPlaneError, DataPlaneReport, DestinationBuffer, TileBuffer,
};
use crossmesh_core::{Assignment, Plan};
use crossmesh_mesh::Layout;
use crossmesh_netsim::DeviceId;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::mpsc;
use std::thread;

/// Errors from threaded plan execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlanDataError {
    /// A placement defect — identical to what the in-process data plane
    /// reports for the same broken plan.
    Data(DataPlaneError),
    /// A thread or channel failed (worker panic, receiver hung up).
    Transport(String),
}

impl fmt::Display for PlanDataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanDataError::Data(e) => write!(f, "{e}"),
            PlanDataError::Transport(msg) => write!(f, "transport failure: {msg}"),
        }
    }
}

impl Error for PlanDataError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlanDataError::Data(e) => Some(e),
            PlanDataError::Transport(_) => None,
        }
    }
}

impl From<DataPlaneError> for PlanDataError {
    fn from(e: DataPlaneError) -> Self {
        PlanDataError::Data(e)
    }
}

/// Executes `plan` across threads with real payloads and verifies the
/// destination placement byte-for-byte.
///
/// One thread per participating source device extracts and sends its
/// assigned pieces (in plan order), one thread per destination device
/// assembles its tile from whatever arrives, and the final buffers are
/// verified against ground truth with
/// [`crossmesh_core::dataplane::verify_destination`]. The report matches
/// what [`crossmesh_core::dataplane::execute_and_verify`] produces for the
/// same plan.
///
/// # Errors
///
/// Returns [`PlanDataError::Data`] for any placement defect (missing
/// slice, uncovered or corrupted element, conflicting writes) and
/// [`PlanDataError::Transport`] if a worker thread fails.
pub fn execute_plan(plan: &Plan<'_>) -> Result<DataPlaneReport, PlanDataError> {
    let task = plan.task();
    let shape = task.shape();
    let elem_bytes = task.elem_bytes() as usize;
    let src_layout =
        Layout::new(task.src_mesh(), task.src_spec(), shape).expect("task validated at build");
    let dst_layout =
        Layout::new(task.dst_mesh(), task.dst_spec(), shape).expect("task validated at build");

    // Source tiles to materialize, and the per-sender work lists (plan
    // order preserved within each sender).
    let mut src_tiles = BTreeMap::new();
    for coord in task.src_mesh().coords() {
        src_tiles.insert(
            task.src_mesh().device(coord),
            src_layout.tile_at(coord).clone(),
        );
    }
    let mut sender_work: BTreeMap<DeviceId, Vec<&Assignment>> = BTreeMap::new();
    for a in plan.assignments() {
        sender_work.entry(a.sender).or_default().push(a);
    }

    // One inbound channel per destination device.
    let mut piece_tx = BTreeMap::new();
    let mut piece_rx = BTreeMap::new();
    for coord in task.dst_mesh().coords() {
        let device = task.dst_mesh().device(coord);
        let (tx, rx) = mpsc::sync_channel::<TileBuffer>(64);
        piece_tx.insert(device, tx);
        piece_rx.insert(device, (rx, dst_layout.tile_at(coord).clone()));
    }

    let (delivered, buffers) = thread::scope(|s| {
        let mut senders = Vec::new();
        for (device, work) in &sender_work {
            let device = *device;
            let tile = src_tiles
                .get(&device)
                .expect("plan validated sender membership");
            let piece_tx = piece_tx.clone();
            senders.push(s.spawn(move || -> Result<u64, PlanDataError> {
                let holder = TileBuffer::materialize(tile, shape, elem_bytes);
                let mut delivered = 0u64;
                for a in work {
                    let unit = &task.units()[a.unit];
                    if !holder.tile.contains(&unit.slice) {
                        return Err(DataPlaneError::SenderMissesSlice {
                            device,
                            slice: unit.slice.to_string(),
                        }
                        .into());
                    }
                    let slice_buf = holder.extract(&unit.slice);
                    for r in &unit.receivers {
                        let piece = slice_buf.extract(&r.needed);
                        delivered += piece.tile.volume() * elem_bytes as u64;
                        piece_tx
                            .get(&r.device)
                            .expect("receivers live on the destination mesh")
                            .send(piece)
                            .map_err(|_| {
                                PlanDataError::Transport(format!(
                                    "assembler for {} hung up",
                                    r.device
                                ))
                            })?;
                    }
                }
                Ok(delivered)
            }));
        }

        let mut assemblers = Vec::new();
        for (device, (rx, tile)) in piece_rx {
            assemblers.push(s.spawn(move || -> Result<_, PlanDataError> {
                let mut buf = DestinationBuffer::new(tile, elem_bytes);
                // The channel yields pieces until every sender thread has
                // dropped its clone of this device's transmitter.
                while let Ok(piece) = rx.recv() {
                    buf.write(&piece, device)?;
                }
                Ok((device, buf))
            }));
        }

        // Dropping the original transmitters leaves only the clones held
        // by sender threads; when those finish, assemblers see EOF.
        drop(piece_tx);

        let mut delivered = 0u64;
        let mut first_err: Option<PlanDataError> = None;
        for h in senders {
            match h.join() {
                Ok(Ok(n)) => delivered += n,
                Ok(Err(e)) => note(&mut first_err, e),
                Err(_) => note(
                    &mut first_err,
                    PlanDataError::Transport("sender thread panicked".into()),
                ),
            }
        }
        let mut buffers = Vec::new();
        for h in assemblers {
            match h.join() {
                Ok(Ok(pair)) => buffers.push(pair),
                Ok(Err(e)) => note(&mut first_err, e),
                Err(_) => note(
                    &mut first_err,
                    PlanDataError::Transport("assembler thread panicked".into()),
                ),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok((delivered, buffers)),
        }
    })?;

    let destination = verify_destination(shape, buffers)?;
    Ok(DataPlaneReport {
        delivered_bytes: delivered,
        destination,
    })
}

/// Keeps the first error, preferring a data-plane defect over a transport
/// failure (a sender erroring out makes downstream hang-ups inevitable).
fn note(slot: &mut Option<PlanDataError>, e: PlanDataError) {
    match (&slot, &e) {
        (None, _) => *slot = Some(e),
        (Some(PlanDataError::Transport(_)), PlanDataError::Data(_)) => *slot = Some(e),
        _ => {}
    }
}
