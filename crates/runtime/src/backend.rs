//! The threaded wall-clock executor behind [`Backend`].
//!
//! Execution model:
//!
//! * one **compute thread** per device runs `Compute`/`ComputeFlops` tasks
//!   serially (FIFO in ready order, like the simulator's device queues),
//!   occupying wall time with a calibrated sleep+spin;
//! * one **send thread** per device chunks each `Flow` into framed
//!   [`Bytes`] payloads and pushes them to the destination device —
//!   through a bounded in-process channel (intra-host, zero-copy) or a
//!   real TCP loopback socket (inter-host, when the transport is
//!   [`TransportKind::Tcp`]);
//! * one **receive thread** per device counts delivered bytes per flow and
//!   completes the flow task when its final frame arrives;
//! * `Marker` tasks complete inline, instantly, on whichever thread
//!   releases their last dependency.
//!
//! Dependency release is the happens-before edge: a task's finish
//! timestamp is stored **before** any dependent's pending count is
//! decremented, and timestamps come from a single monotonic clock, so
//! `finish(dep) <= start(task)` holds in the emitted [`Trace`] exactly as
//! it does in the simulator.
//!
//! Those edges are also *declared* to the `crossmesh-hb` seam so the
//! `check::race` vector-clock detector can audit them: every dispatch
//! channel send/recv, ack-counter decrement, and per-flow frame delivery
//! emits a release/acquire pair, and the per-task timestamp slots are
//! declared write access points (a double-dispatch convicts as
//! `race.write-write`). Disarmed, each emission is one relaxed atomic
//! load and a predicted branch.

use bytes::Bytes;
use crossmesh_hb as hb;
use crossmesh_netsim::{
    Backend, ClusterSpec, DeviceId, FailureKind, FaultStats, SimError, TaskGraph, TaskId, Trace,
    TraceBuilder, Work,
};
use crossmesh_obs as obs;
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, HashMap};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, OnceLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Registry handles for the threaded backend, resolved once. Counters are
/// sharded, so the per-frame cost is one relaxed atomic add.
struct RuntimeMetrics {
    flows: obs::Counter,
    frames: obs::Counter,
    queue_depth: obs::Histogram,
}

fn runtime_metrics() -> &'static RuntimeMetrics {
    static METRICS: OnceLock<RuntimeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let m = obs::metrics();
        RuntimeMetrics {
            flows: m.counter("runtime.flows"),
            frames: m.counter("runtime.frames"),
            queue_depth: m.histogram(
                "runtime.queue_depth",
                &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0],
            ),
        }
    })
}

/// How inter-host flows move their bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// Everything in-process: bounded channels for every edge.
    Channels,
    /// Inter-host flows cross real TCP loopback sockets (one connection
    /// per host pair on `127.0.0.1`); intra-host flows stay on channels,
    /// mirroring NVLink-vs-NIC locality.
    Tcp,
}

/// Faults injected into a threaded run, resolved to mechanical terms by
/// the `crossmesh-faults` crate (no randomness lives here).
///
/// The runtime interprets faults in wall-clock terms: dead hosts make
/// every contact fail fast after a bounded backoff (emulating per-flow
/// timeout → retry → failover), degraded hosts delay every frame they
/// send, stragglers stretch compute occupancy, and dropped flows re-send
/// their payload after an exponential backoff — tagged with an attempt
/// number so receivers discard the partial bytes of a dropped attempt.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InjectedFaults {
    /// Hosts considered crashed for the whole run.
    pub dead_hosts: Vec<u32>,
    /// Per-device compute slowdown factors (device id, factor).
    pub compute_slowdown: Vec<(u32, f64)>,
    /// Extra wall delay added to every frame sent by a device on the
    /// given host (host id, delay): link degradation.
    pub frame_delay: Vec<(u32, Duration)>,
    /// Per flow task id: how many transmission attempts are dropped.
    pub flow_drops: BTreeMap<u32, u32>,
    /// Re-transmissions allowed per flow before it fails.
    pub max_retries: u32,
    /// Base wall delay before the first re-transmission; attempt `k`
    /// waits `backoff * 2^k`.
    pub backoff: Duration,
}

impl InjectedFaults {
    /// True if this value injects nothing.
    pub fn is_empty(&self) -> bool {
        self.dead_hosts.is_empty()
            && self.compute_slowdown.is_empty()
            && self.frame_delay.is_empty()
            && self.flow_drops.is_empty()
    }
}

/// A [`Backend`] that executes task graphs for real on OS threads.
///
/// Construct with [`ThreadedBackend::threads`] or
/// [`ThreadedBackend::tcp`], then tune with the `with_*` builders.
#[derive(Debug, Clone)]
pub struct ThreadedBackend {
    transport: TransportKind,
    time_scale: f64,
    chunk_bytes: usize,
    channel_depth: usize,
    deadline: Duration,
    faults: Arc<InjectedFaults>,
}

impl ThreadedBackend {
    /// A channels-only backend (no sockets involved).
    pub fn threads() -> Self {
        ThreadedBackend {
            transport: TransportKind::Channels,
            time_scale: 1e-3,
            chunk_bytes: 1 << 20,
            channel_depth: 256,
            deadline: Duration::from_secs(120),
            faults: Arc::new(InjectedFaults::default()),
        }
    }

    /// A backend that carries inter-host flows over TCP loopback sockets.
    pub fn tcp() -> Self {
        ThreadedBackend {
            transport: TransportKind::Tcp,
            ..ThreadedBackend::threads()
        }
    }

    /// The transport this backend uses for inter-host flows.
    pub fn transport(&self) -> TransportKind {
        self.transport
    }

    /// Sets the wall seconds one *simulated* compute second occupies
    /// (default `1e-3`: a 2 s simulated kernel spins for 2 ms). Flows are
    /// unaffected — they take however long the bytes take to move.
    ///
    /// # Panics
    ///
    /// Panics unless `scale` is positive and finite.
    #[must_use]
    pub fn with_time_scale(mut self, scale: f64) -> Self {
        assert!(
            scale > 0.0 && scale.is_finite(),
            "time scale must be positive and finite"
        );
        self.time_scale = scale;
        self
    }

    /// Sets the maximum payload bytes per frame (default 1 MiB).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    #[must_use]
    pub fn with_chunk_bytes(mut self, bytes: usize) -> Self {
        assert!(bytes > 0, "chunk size must be positive");
        self.chunk_bytes = bytes;
        self
    }

    /// Sets the per-device inbound frame queue depth (default 256).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    #[must_use]
    pub fn with_channel_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "channel depth must be positive");
        self.channel_depth = depth;
        self
    }

    /// Sets the wall-clock deadline after which a run is aborted with a
    /// [`SimError::Backend`] error (default 120 s).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Injects the given faults into every run of this backend.
    ///
    /// # Panics
    ///
    /// Panics if a slowdown factor is not positive and finite.
    #[must_use]
    pub fn with_faults(mut self, faults: InjectedFaults) -> Self {
        for &(device, factor) in &faults.compute_slowdown {
            assert!(
                factor > 0.0 && factor.is_finite(),
                "slowdown factor {factor} for d{device} must be positive and finite"
            );
        }
        self.faults = Arc::new(faults);
        self
    }

    /// The faults currently injected into runs of this backend.
    pub fn faults(&self) -> &InjectedFaults {
        &self.faults
    }
}

impl Backend for ThreadedBackend {
    fn name(&self) -> &'static str {
        match self.transport {
            TransportKind::Channels => "threads",
            TransportKind::Tcp => "tcp",
        }
    }

    fn execute(&self, cluster: &ClusterSpec, graph: &TaskGraph) -> Result<Trace, SimError> {
        // The same up-front validation the simulator performs.
        for (id, task) in graph.iter() {
            let bad = match task.work {
                Work::Compute { device, .. } | Work::ComputeFlops { device, .. } => {
                    (!cluster.contains(device)).then_some(device)
                }
                Work::Flow { src, dst, .. } => {
                    [src, dst].into_iter().find(|&d| !cluster.contains(d))
                }
                Work::Marker => None,
            };
            if let Some(device) = bad {
                return Err(SimError::UnknownDevice { task: id, device });
            }
        }
        if graph.is_empty() {
            return Ok(TraceBuilder::with_capacity(0).build());
        }

        let (start_ns, finish_ns, retries) =
            run(self, cluster, graph).map_err(|failure| failure.into_sim_error(self.name()))?;

        let mut tb = TraceBuilder::with_capacity(graph.len());
        for (id, task) in graph.iter() {
            let start = start_ns[id.0 as usize].load(Ordering::Acquire);
            let finish = finish_ns[id.0 as usize].load(Ordering::Acquire);
            tb.record_interval(id, start as f64 / 1e9, finish as f64 / 1e9);
            if let Work::Flow { src, dst, bytes } = task.work {
                tb.record_flow(cluster.host_of(src), cluster.host_of(dst), bytes);
            }
        }
        if retries > 0 {
            tb.record_fault_stats(FaultStats {
                retries,
                ..FaultStats::default()
            });
        }
        Ok(tb.build())
    }
}

/// Commands for compute and send threads.
enum Cmd {
    Run(u32),
    Quit,
}

/// Messages on a device's inbound frame queue.
enum Inbound {
    Data {
        flow: u32,
        payload: Bytes,
        last: bool,
        attempt: u8,
    },
    Quit,
}

/// What a task does, resolved against the cluster.
#[derive(Clone, Copy)]
enum Kind {
    Compute { wall: Duration },
    Flow { dst: u32, bytes: u64 },
    Marker,
}

/// A structured worker failure: which task (if attributable), what class
/// of problem, and a human-readable message. Converted to
/// [`SimError::TaskFailed`] (task known) or [`SimError::Backend`]
/// (run-level) when the run returns.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RunFailure {
    task: Option<u32>,
    kind: FailureKind,
    message: String,
}

impl RunFailure {
    /// A run-level failure not attributable to one task.
    fn run(message: impl Into<String>) -> Self {
        RunFailure {
            task: None,
            kind: FailureKind::Transport,
            message: message.into(),
        }
    }

    /// A failure attributable to `task`.
    fn task(task: u32, kind: FailureKind, message: impl Into<String>) -> Self {
        RunFailure {
            task: Some(task),
            kind,
            message: message.into(),
        }
    }

    fn into_sim_error(self, backend: &'static str) -> SimError {
        match self.task {
            Some(task) => SimError::TaskFailed {
                backend,
                task: TaskId(task),
                kind: self.kind,
                detail: self.message,
            },
            None => SimError::Backend {
                backend,
                message: self.message,
            },
        }
    }
}

/// Completion bookkeeping shared by every worker.
#[derive(Debug, Default)]
struct RunState {
    finished: bool,
    error: Option<RunFailure>,
}

/// The monitor's mutex is a non-poisoning `parking_lot::Mutex`: a worker
/// that panics while holding it (or while any other worker holds it) must
/// not turn into a poisoned-lock panic storm across every thread that
/// checks `is_finished` — the first failure is reported cleanly instead.
#[derive(Debug)]
struct Monitor {
    remaining: AtomicUsize,
    state: Mutex<RunState>,
    cv: Condvar,
}

impl Monitor {
    fn new(tasks: usize) -> Self {
        Monitor {
            remaining: AtomicUsize::new(tasks),
            state: Mutex::new(RunState::default()),
            cv: Condvar::new(),
        }
    }

    /// Called exactly once per task; the last one flips `finished`.
    fn task_done(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut st = self.state.lock();
            st.finished = true;
            self.cv.notify_all();
        }
    }

    /// Records the first failure and aborts the run.
    fn fail(&self, failure: RunFailure) {
        let mut st = self.state.lock();
        if st.error.is_none() {
            st.error = Some(failure);
        }
        st.finished = true;
        self.cv.notify_all();
    }

    fn is_finished(&self) -> bool {
        self.state.lock().finished
    }

    /// Blocks until the run finishes or `deadline` elapses (which marks
    /// the run failed so stuck workers bail out on their next check).
    fn wait(&self, deadline: Duration) {
        let t0 = Instant::now();
        let mut st = self.state.lock();
        while !st.finished {
            match deadline.checked_sub(t0.elapsed()) {
                None => {
                    st.error.get_or_insert_with(|| {
                        RunFailure::run(format!(
                            "run exceeded the {deadline:?} wall-clock deadline"
                        ))
                    });
                    st.finished = true;
                    self.cv.notify_all();
                    return;
                }
                Some(left) => {
                    self.cv
                        .wait_for(&mut st, left.min(Duration::from_millis(100)));
                }
            }
        }
    }

    fn take_error(&self) -> Option<RunFailure> {
        self.state.lock().error.take()
    }
}

/// Everything workers share for one run.
struct Shared {
    monitor: Monitor,
    t0: Instant,
    kinds: Vec<Kind>,
    /// Per task: the device whose worker executes it (flow source for
    /// flows; unused for markers).
    task_device: Vec<u32>,
    /// Tasks with no dependencies, dispatched once at run start.
    roots: Vec<u32>,
    /// Per task: unmet dependency count.
    pending: Vec<AtomicUsize>,
    /// Per task: tasks waiting on it (one entry per dependency edge).
    dependents: Vec<Vec<u32>>,
    start_ns: Vec<AtomicU64>,
    finish_ns: Vec<AtomicU64>,
    /// Per device: compute queue and send queue.
    compute_tx: Vec<Sender<Cmd>>,
    send_tx: Vec<Sender<Cmd>>,
    /// Per device: inbound frame queue (bounded; this is the backpressure).
    inbound_tx: Vec<SyncSender<Inbound>>,
    /// Per device: frames currently queued (enqueued by senders/readers,
    /// drained by the receive worker). Observed into the
    /// `runtime.queue_depth` histogram at every enqueue.
    queue_depth: Vec<AtomicI64>,
    /// `(src_host, dst_host) -> write half`, non-empty in TCP mode only.
    tcp_writers: HashMap<(u32, u32), Mutex<TcpStream>>,
    /// Device -> host, for routing.
    device_host: Vec<u32>,
    /// Shared all-zero payload buffer, sliced per frame (zero-copy on the
    /// channel path).
    zero: Bytes,
    chunk_bytes: usize,
    /// Faults the workers interpret (empty by default).
    faults: Arc<InjectedFaults>,
    /// Flow re-transmissions performed (drop-triggered attempts).
    retries: AtomicU64,
    /// First id of this run's happens-before block, laid out as
    /// `[compute chan × D][send chan × D][inbound chan × D]`
    /// `[pending edge × n][flow edge × n][task point × n]`.
    hb_base: u64,
}

impl Shared {
    fn now_ns(&self) -> u64 {
        self.t0.elapsed().as_nanos() as u64
    }

    fn hb_compute_chan(&self, dev: usize) -> u64 {
        self.hb_base + dev as u64
    }

    fn hb_send_chan(&self, dev: usize) -> u64 {
        self.hb_base + (self.compute_tx.len() + dev) as u64
    }

    fn hb_inbound_chan(&self, dev: usize) -> u64 {
        self.hb_base + (2 * self.compute_tx.len() + dev) as u64
    }

    /// The ack edge a completing dependency releases and the dispatching
    /// thread acquires when `t`'s pending count hits zero.
    fn hb_pending_edge(&self, t: u32) -> u64 {
        self.hb_base + (3 * self.compute_tx.len()) as u64 + t as u64
    }

    /// The frame-delivery edge from `t`'s send worker to its receiver.
    fn hb_flow_edge(&self, t: u32) -> u64 {
        self.hb_pending_edge(t) + self.kinds.len() as u64
    }

    /// Declared access point for `t`'s timestamp slots: exactly one
    /// worker may own a dispatched task, so unordered writes here mean a
    /// double dispatch.
    fn hb_task_point(&self, t: u32) -> u64 {
        self.hb_pending_edge(t) + 2 * self.kinds.len() as u64
    }

    /// Accounts one frame landing on `dst`'s inbound queue. Every frame
    /// passes through exactly one enqueue (the channel path directly, the
    /// TCP path via its reader thread), so `runtime.frames` counts
    /// deliveries and the histogram samples the post-enqueue depth.
    fn note_enqueued(&self, dst: u32) {
        let depth = self.queue_depth[dst as usize].fetch_add(1, Ordering::Relaxed) + 1;
        let m = runtime_metrics();
        m.frames.inc();
        m.queue_depth.observe(depth as f64);
    }

    /// Accounts the receive worker of `device` draining one frame.
    fn note_dequeued(&self, device: u32) {
        self.queue_depth[device as usize].fetch_sub(1, Ordering::Relaxed);
    }

    fn record_start(&self, t: u32) {
        hb::write(self.hb_task_point(t));
        self.start_ns[t as usize].store(self.now_ns(), Ordering::Release);
    }

    /// Marks `t` finished, releases its dependents, and completes any
    /// markers that become ready, iteratively.
    fn finish_task(&self, t: u32) {
        hb::write(self.hb_task_point(t));
        self.finish_ns[t as usize].store(self.now_ns(), Ordering::Release);
        let mut done = vec![t];
        self.drain_completions(&mut done);
    }

    fn drain_completions(&self, done: &mut Vec<u32>) {
        while let Some(t) = done.pop() {
            for &d in &self.dependents[t as usize] {
                // The release precedes the decrement, so by the time some
                // thread sees the count hit zero every completer's clock
                // is already in the edge (joined, not overwritten).
                hb::release(self.hb_pending_edge(d));
                if self.pending[d as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                    hb::acquire(self.hb_pending_edge(d));
                    self.dispatch(d, done);
                }
            }
            self.monitor.task_done();
        }
    }

    /// Hands a ready task to its executor. Markers finish immediately:
    /// their timestamps are taken here and they join the completion stack.
    fn dispatch(&self, t: u32, done: &mut Vec<u32>) {
        match self.kinds[t as usize] {
            Kind::Marker => {
                hb::write(self.hb_task_point(t));
                let now = self.now_ns();
                self.start_ns[t as usize].store(now, Ordering::Release);
                self.finish_ns[t as usize].store(now, Ordering::Release);
                done.push(t);
            }
            Kind::Compute { .. } => {
                let dev = self.executor_device(t);
                hb::release(self.hb_compute_chan(dev));
                let _ = self.compute_tx[dev].send(Cmd::Run(t));
            }
            Kind::Flow { .. } => {
                let dev = self.executor_device(t);
                hb::release(self.hb_send_chan(dev));
                let _ = self.send_tx[dev].send(Cmd::Run(t));
            }
        }
    }

    /// The device whose worker runs task `t` (compute device, or the
    /// flow's source device).
    fn executor_device(&self, t: u32) -> usize {
        self.task_device[t as usize] as usize
    }

    /// True if the injected fault set declares `device`'s host crashed.
    fn device_is_dead(&self, device: u32) -> bool {
        self.faults
            .dead_hosts
            .contains(&self.device_host[device as usize])
    }

    /// Injected compute slowdown factor for `device` (1.0 when absent).
    fn slowdown(&self, device: u32) -> f64 {
        self.faults
            .compute_slowdown
            .iter()
            .find(|&&(d, _)| d == device)
            .map_or(1.0, |&(_, f)| f)
    }

    /// Injected per-frame delay for frames sent by `device`, if its host
    /// is degraded.
    fn frame_delay(&self, device: u32) -> Option<Duration> {
        let host = self.device_host[device as usize];
        self.faults
            .frame_delay
            .iter()
            .find(|&&(h, _)| h == host)
            .map(|&(_, d)| d)
    }

    /// Emulates a per-flow timeout against a dead peer: sleeps out the
    /// full retry budget (bounded exponential backoff), bailing early if
    /// the run already ended.
    fn wait_out_retry_budget(&self) {
        let mut delay = self.faults.backoff;
        for _ in 0..=self.faults.max_retries {
            if self.monitor.is_finished() {
                return;
            }
            thread::sleep(delay);
            delay = delay.saturating_mul(2);
        }
    }

    /// Dispatches every task with no dependencies. Roots come from the
    /// static graph (`roots`), never from the live pending counters: a
    /// fast root may already have completed and released dependents to
    /// pending 0 mid-iteration, and reading the counters here would
    /// dispatch those dependents a second time.
    fn seed(&self) {
        let mut done = Vec::new();
        for &t in &self.roots {
            self.dispatch(t, &mut done);
        }
        self.drain_completions(&mut done);
    }

    /// Delivers one frame of `flow` to `dst`, via channel or socket.
    /// Blocks under backpressure but aborts once the run is finished, so
    /// a failed run never wedges a sender.
    fn send_frame(
        &self,
        src: u32,
        dst: u32,
        flow: u32,
        payload: Bytes,
        last: bool,
        attempt: u8,
    ) -> Result<(), String> {
        let (sh, dh) = (
            self.device_host[src as usize],
            self.device_host[dst as usize],
        );
        // The receive worker acquires this edge per frame, so everything
        // the sender did before handing off the payload — including the
        // flow's start-timestamp write — is ordered before the ack.
        hb::release(self.hb_flow_edge(flow));
        if sh != dh && !self.tcp_writers.is_empty() {
            let stream = self
                .tcp_writers
                .get(&(sh, dh))
                .expect("a connection exists for every host pair");
            let mut stream = stream.lock();
            let hdr = encode_header(dst, flow, payload.len() as u32, last, attempt);
            write_full(&mut stream, &hdr, &self.monitor)?;
            write_full(&mut stream, &payload, &self.monitor)?;
            return Ok(());
        }
        let mut msg = Inbound::Data {
            flow,
            payload,
            last,
            attempt,
        };
        hb::release(self.hb_inbound_chan(dst as usize));
        loop {
            match self.inbound_tx[dst as usize].try_send(msg) {
                Ok(()) => {
                    self.note_enqueued(dst);
                    return Ok(());
                }
                Err(TrySendError::Full(m)) => {
                    if self.monitor.is_finished() {
                        return Err("run aborted while queue was full".into());
                    }
                    msg = m;
                    thread::sleep(Duration::from_micros(20));
                }
                Err(TrySendError::Disconnected(_)) => {
                    return Err(format!("receiver d{dst} hung up"));
                }
            }
        }
    }
}

/// Wire frame header: destination device, flow task, payload length, a
/// last-frame marker, and the transmission attempt number (receivers
/// discard bytes from superseded attempts).
const FRAME_HEADER: usize = 14;

fn encode_header(dst: u32, flow: u32, len: u32, last: bool, attempt: u8) -> [u8; FRAME_HEADER] {
    let mut hdr = [0u8; FRAME_HEADER];
    hdr[0..4].copy_from_slice(&dst.to_le_bytes());
    hdr[4..8].copy_from_slice(&flow.to_le_bytes());
    hdr[8..12].copy_from_slice(&len.to_le_bytes());
    hdr[12] = last as u8;
    hdr[13] = attempt;
    hdr
}

/// Writes all of `buf`, tolerating send-timeout ticks (used to notice an
/// aborted run instead of blocking forever on a full socket).
fn write_full(stream: &mut TcpStream, mut buf: &[u8], monitor: &Monitor) -> Result<(), String> {
    while !buf.is_empty() {
        match stream.write(buf) {
            Ok(0) => return Err("tcp connection closed mid-frame".into()),
            Ok(n) => buf = &buf[n..],
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if monitor.is_finished() {
                    return Err("run aborted during tcp write".into());
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(format!("tcp write: {e}")),
        }
    }
    Ok(())
}

/// Reads exactly `buf.len()` bytes. `Ok(false)` means the peer closed the
/// connection cleanly before the first byte, or the run finished while the
/// socket was idle (both are normal shutdown at a frame boundary).
fn read_full(stream: &mut TcpStream, buf: &mut [u8], monitor: &Monitor) -> Result<bool, String> {
    let mut got = 0usize;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(false);
                }
                return Err("tcp connection closed mid-frame".into());
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if monitor.is_finished() {
                    if got == 0 {
                        return Ok(false);
                    }
                    return Err("run aborted during tcp read".into());
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(format!("tcp read: {e}")),
        }
    }
    Ok(true)
}

/// Builds the shared state and fabric, spawns the workers, runs the graph
/// to completion, and returns the per-task timestamp arrays (nanoseconds
/// since the run's epoch) plus the flow re-transmission count.
#[allow(clippy::type_complexity)]
fn run(
    backend: &ThreadedBackend,
    cluster: &ClusterSpec,
    graph: &TaskGraph,
) -> Result<(Vec<AtomicU64>, Vec<AtomicU64>, u64), RunFailure> {
    let n = graph.len();
    let num_devices = cluster.num_devices() as usize;
    let device_host: Vec<u32> = (0..num_devices as u32)
        .map(|d| cluster.host_of(DeviceId(d)).0)
        .collect();

    let mut kinds = Vec::with_capacity(n);
    let mut task_device = Vec::with_capacity(n);
    let mut roots = Vec::new();
    let mut pending = Vec::with_capacity(n);
    let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (id, task) in graph.iter() {
        let (kind, dev) = match task.work {
            Work::Compute { device, seconds } => (
                Kind::Compute {
                    wall: Duration::from_secs_f64(seconds * backend.time_scale),
                },
                device.0,
            ),
            Work::ComputeFlops { device, flops } => {
                let rate = cluster.host(cluster.host_of(device)).device_flops;
                (
                    Kind::Compute {
                        wall: Duration::from_secs_f64(flops / rate * backend.time_scale),
                    },
                    device.0,
                )
            }
            Work::Flow { src, dst, bytes } => (
                Kind::Flow {
                    dst: dst.0,
                    bytes: bytes.round() as u64,
                },
                src.0,
            ),
            Work::Marker => (Kind::Marker, 0),
        };
        kinds.push(kind);
        task_device.push(dev);
        if task.deps.is_empty() {
            roots.push(id.0);
        }
        pending.push(AtomicUsize::new(task.deps.len()));
        for dep in &task.deps {
            dependents[dep.0 as usize].push(id.0);
        }
    }

    let mut compute_tx = Vec::with_capacity(num_devices);
    let mut compute_rx = Vec::with_capacity(num_devices);
    let mut send_tx = Vec::with_capacity(num_devices);
    let mut send_rx = Vec::with_capacity(num_devices);
    let mut inbound_tx = Vec::with_capacity(num_devices);
    let mut inbound_rx = Vec::with_capacity(num_devices);
    for _ in 0..num_devices {
        let (tx, rx) = mpsc::channel();
        compute_tx.push(tx);
        compute_rx.push(rx);
        let (tx, rx) = mpsc::channel();
        send_tx.push(tx);
        send_rx.push(rx);
        let (tx, rx) = mpsc::sync_channel(backend.channel_depth);
        inbound_tx.push(tx);
        inbound_rx.push(rx);
    }

    // TCP fabric first (if any), so the write halves can live inside the
    // shared state from the start; reader threads spawn after it exists.
    let (tcp_writers, reader_streams) = if backend.transport == TransportKind::Tcp {
        tcp_fabric(cluster).map_err(|e| RunFailure::run(format!("tcp setup: {e}")))?
    } else {
        (HashMap::new(), Vec::new())
    };

    let shared = Arc::new(Shared {
        monitor: Monitor::new(n),
        t0: Instant::now(),
        kinds,
        task_device,
        roots,
        pending,
        dependents,
        start_ns: (0..n).map(|_| AtomicU64::new(0)).collect(),
        finish_ns: (0..n).map(|_| AtomicU64::new(0)).collect(),
        compute_tx,
        send_tx,
        inbound_tx,
        queue_depth: (0..num_devices).map(|_| AtomicI64::new(0)).collect(),
        tcp_writers,
        device_host,
        zero: Bytes::from(vec![0u8; backend.chunk_bytes]),
        chunk_bytes: backend.chunk_bytes,
        faults: Arc::clone(&backend.faults),
        retries: AtomicU64::new(0),
        hb_base: hb::fresh_ids((3 * num_devices + 3 * n) as u64),
    });

    let mut workers = Vec::with_capacity(num_devices * 3 + reader_streams.len());
    for (d, rx) in compute_rx.into_iter().enumerate() {
        workers.push(spawn_named(
            format!("cm-d{d}-compute"),
            Arc::clone(&shared),
            move |sh| compute_worker(rx, sh),
        ));
    }
    for (d, rx) in send_rx.into_iter().enumerate() {
        workers.push(spawn_named(
            format!("cm-d{d}-send"),
            Arc::clone(&shared),
            move |sh| send_worker(d as u32, rx, sh),
        ));
    }
    let mut recv_workers = Vec::with_capacity(num_devices);
    for (d, rx) in inbound_rx.into_iter().enumerate() {
        recv_workers.push(spawn_named(
            format!("cm-d{d}-recv"),
            Arc::clone(&shared),
            move |sh| recv_worker(d as u32, rx, sh),
        ));
    }
    let mut tcp_readers = Vec::with_capacity(reader_streams.len());
    for (i, stream) in reader_streams.into_iter().enumerate() {
        tcp_readers.push(spawn_named(
            format!("cm-tcp-reader-{i}"),
            Arc::clone(&shared),
            move |sh| tcp_reader(stream, sh),
        ));
    }

    shared.seed();
    shared.monitor.wait(backend.deadline);

    // Orderly shutdown: quit the compute/send queues (they feed the
    // fabric), then the inbound queues; readers notice the finished flag
    // on their next I/O timeout tick.
    for tx in &shared.compute_tx {
        let _ = tx.send(Cmd::Quit);
    }
    for tx in &shared.send_tx {
        let _ = tx.send(Cmd::Quit);
    }
    for w in workers {
        let _ = w.join();
    }
    for tx in &shared.inbound_tx {
        let mut msg = Inbound::Quit;
        loop {
            match tx.try_send(msg) {
                Ok(()) | Err(TrySendError::Disconnected(_)) => break,
                Err(TrySendError::Full(m)) => {
                    msg = m;
                    thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }
    for w in recv_workers {
        let _ = w.join();
    }
    for r in tcp_readers {
        let _ = r.join();
    }

    if let Some(e) = shared.monitor.take_error() {
        return Err(e);
    }
    let shared = Arc::try_unwrap(shared)
        .map_err(|_| RunFailure::run("internal: worker threads outlived the run"))?;
    let retries = shared.retries.load(Ordering::Relaxed);
    Ok((shared.start_ns, shared.finish_ns, retries))
}

/// Fails the monitor if its worker thread unwinds: without this a
/// panicking worker would leave the run to sit out its full wall-clock
/// deadline with no explanation.
struct PanicGuard {
    shared: Arc<Shared>,
    name: String,
}

impl Drop for PanicGuard {
    fn drop(&mut self) {
        if thread::panicking() {
            self.shared
                .monitor
                .fail(RunFailure::run(format!("worker {} panicked", self.name)));
        }
    }
}

fn spawn_named<F>(name: String, shared: Arc<Shared>, f: F) -> JoinHandle<()>
where
    F: FnOnce(&Shared) + Send + 'static,
{
    // Fork edge: the spawner's clock flows into the new worker, so
    // everything set up before the spawn is ordered before its first
    // action (priced only when a detector is installed).
    let fork = if hb::engaged() {
        let id = hb::fresh_id();
        hb::release(id);
        Some(id)
    } else {
        None
    };
    thread::Builder::new()
        .name(name.clone())
        .spawn(move || {
            if let Some(id) = fork {
                hb::acquire(id);
            }
            let guard = PanicGuard { shared, name };
            f(&guard.shared);
        })
        .expect("spawning an OS thread")
}

/// Opens one TCP loopback connection per host pair; returns the write
/// halves (routed by `(src_host, dst_host)`) and the read halves.
#[allow(clippy::type_complexity)]
fn tcp_fabric(
    cluster: &ClusterSpec,
) -> std::io::Result<(HashMap<(u32, u32), Mutex<TcpStream>>, Vec<TcpStream>)> {
    let hosts = cluster.num_hosts();
    let mut listeners = Vec::with_capacity(hosts as usize);
    for _ in 0..hosts {
        // Retrying ephemeral binds keeps CI runs with many concurrent
        // tcp-backend tests from flaking on momentary port exhaustion.
        listeners.push(crate::net::bind_ephemeral()?);
    }
    let addrs: Vec<_> = listeners
        .iter()
        .map(|l| l.local_addr())
        .collect::<Result<_, _>>()?;

    let mut writers = HashMap::new();
    let mut readers = Vec::new();
    let io_tick = Some(Duration::from_millis(200));
    for a in 0..hosts {
        for b in (a + 1)..hosts {
            // Sequential connect-then-accept keeps the pairing
            // deterministic: the backlog holds exactly this connection.
            let out = TcpStream::connect(addrs[b as usize])?;
            let (inc, _) = listeners[b as usize].accept()?;
            for s in [&out, &inc] {
                s.set_nodelay(true)?;
                s.set_read_timeout(io_tick)?;
                s.set_write_timeout(io_tick)?;
            }
            // `a` writes a->b on `out`; `b` writes b->a on `inc`. Each
            // side reads the opposite direction from its own clone.
            writers.insert((a, b), Mutex::new(out.try_clone()?));
            writers.insert((b, a), Mutex::new(inc.try_clone()?));
            readers.push(inc);
            readers.push(out);
        }
    }
    Ok((writers, readers))
}

/// Reads a little-endian `u32` out of a frame header at `at`. Infallible:
/// the header buffer is always `FRAME_HEADER` bytes.
fn header_u32(hdr: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([hdr[at], hdr[at + 1], hdr[at + 2], hdr[at + 3]])
}

/// Forwards frames from one TCP connection to the destination devices'
/// inbound queues until the peer closes or the run ends.
fn tcp_reader(mut stream: TcpStream, shared: &Shared) {
    let mut hdr = [0u8; FRAME_HEADER];
    loop {
        match read_full(&mut stream, &mut hdr, &shared.monitor) {
            Ok(true) => {}
            Ok(false) => return, // clean shutdown
            Err(e) => {
                shared.monitor.fail(RunFailure::run(e));
                return;
            }
        }
        let dst = header_u32(&hdr, 0);
        let flow = header_u32(&hdr, 4);
        let len = header_u32(&hdr, 8) as usize;
        let last = hdr[12] != 0;
        let attempt = hdr[13];
        let mut payload = vec![0u8; len];
        if len > 0 {
            match read_full(&mut stream, &mut payload, &shared.monitor) {
                Ok(true) => {}
                Ok(false) | Err(_) => {
                    shared.monitor.fail(RunFailure::task(
                        flow,
                        FailureKind::Transport,
                        "tcp connection closed mid-frame",
                    ));
                    return;
                }
            }
        }
        if dst as usize >= shared.inbound_tx.len() {
            shared.monitor.fail(RunFailure::task(
                flow,
                FailureKind::Graph,
                format!("tcp frame for unknown device d{dst}"),
            ));
            return;
        }
        let mut msg = Inbound::Data {
            flow,
            payload: Bytes::from(payload),
            last,
            attempt,
        };
        hb::release(shared.hb_inbound_chan(dst as usize));
        loop {
            match shared.inbound_tx[dst as usize].try_send(msg) {
                Ok(()) => {
                    shared.note_enqueued(dst);
                    break;
                }
                Err(TrySendError::Full(m)) => {
                    if shared.monitor.is_finished() {
                        return;
                    }
                    msg = m;
                    thread::sleep(Duration::from_micros(20));
                }
                Err(TrySendError::Disconnected(_)) => return,
            }
        }
    }
}

/// Runs compute tasks serially: wait out the calibrated wall duration
/// (stretched by any injected straggler factor), then release dependents.
/// A task landing on a crashed host times out and fails the run.
fn compute_worker(rx: Receiver<Cmd>, shared: &Shared) {
    while let Ok(Cmd::Run(t)) = rx.recv() {
        hb::acquire(shared.hb_compute_chan(shared.executor_device(t)));
        shared.record_start(t);
        let Kind::Compute { wall } = shared.kinds[t as usize] else {
            shared.monitor.fail(RunFailure::task(
                t,
                FailureKind::Graph,
                format!("task t{t} queued on the wrong worker"),
            ));
            return;
        };
        let device = shared.task_device[t as usize];
        if shared.device_is_dead(device) {
            shared.wait_out_retry_budget();
            shared.monitor.fail(RunFailure::task(
                t,
                FailureKind::HostCrash,
                format!(
                    "compute t{t} timed out: host h{} is down",
                    shared.device_host[device as usize]
                ),
            ));
            return;
        }
        precise_wait(wall.mul_f64(shared.slowdown(device)));
        shared.finish_task(t);
    }
}

/// Occupies the thread for `d`: sleep for the bulk, spin the tail, so
/// short "kernels" keep microsecond-ish fidelity.
fn precise_wait(d: Duration) {
    if d.is_zero() {
        return;
    }
    let end = Instant::now() + d;
    if d > Duration::from_micros(400) {
        thread::sleep(d - Duration::from_micros(200));
    }
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

/// Chunks each flow into frames and pushes them toward the destination.
/// Injected faults are realized here: frames from degraded hosts are
/// delayed, flows touching dead hosts time out after the retry budget,
/// and each dropped attempt puts one partial frame on the wire, backs
/// off exponentially, then re-sends under a higher attempt number.
fn send_worker(device: u32, rx: Receiver<Cmd>, shared: &Shared) {
    while let Ok(Cmd::Run(t)) = rx.recv() {
        hb::acquire(shared.hb_send_chan(device as usize));
        shared.record_start(t);
        let Kind::Flow { dst, bytes } = shared.kinds[t as usize] else {
            shared.monitor.fail(RunFailure::task(
                t,
                FailureKind::Graph,
                format!("task t{t} queued on the wrong worker"),
            ));
            return;
        };
        if shared.device_is_dead(device) || shared.device_is_dead(dst) {
            let host = if shared.device_is_dead(device) {
                shared.device_host[device as usize]
            } else {
                shared.device_host[dst as usize]
            };
            shared.wait_out_retry_budget();
            shared.monitor.fail(RunFailure::task(
                t,
                FailureKind::HostCrash,
                format!("flow t{t} timed out: host h{host} is down"),
            ));
            return;
        }
        let drops = shared.faults.flow_drops.get(&t).copied().unwrap_or(0);
        if drops > shared.faults.max_retries {
            shared.wait_out_retry_budget();
            shared.monitor.fail(RunFailure::task(
                t,
                FailureKind::RetriesExhausted,
                format!(
                    "flow t{t} dropped {drops} times, retry budget is {}",
                    shared.faults.max_retries
                ),
            ));
            return;
        }
        runtime_metrics().flows.inc();
        if obs::enabled() {
            obs::event(
                obs::Level::Trace,
                "runtime.flow",
                "send_start",
                &[
                    obs::Field::u64("flow", t as u64),
                    obs::Field::u64("src", device as u64),
                    obs::Field::u64("dst", dst as u64),
                    obs::Field::u64("bytes", bytes),
                    obs::Field::u64("t_ns", shared.now_ns()),
                ],
            );
        }
        let delay = shared.frame_delay(device);
        let mut backoff = shared.faults.backoff;
        for a in 0..drops {
            let n = bytes.min(shared.chunk_bytes as u64) as usize;
            if let Some(d) = delay {
                thread::sleep(d);
            }
            let partial = shared.zero.slice(0..n);
            if let Err(e) =
                shared.send_frame(device, dst, t, partial, false, a.min(u8::MAX as u32) as u8)
            {
                if !shared.monitor.is_finished() {
                    shared.monitor.fail(RunFailure::task(
                        t,
                        FailureKind::Transport,
                        format!("flow t{t}: {e}"),
                    ));
                }
                return;
            }
            thread::sleep(backoff);
            backoff = backoff.saturating_mul(2);
            shared.retries.fetch_add(1, Ordering::Relaxed);
        }
        let attempt = drops.min(u8::MAX as u32) as u8;
        let mut left = bytes;
        loop {
            let n = left.min(shared.chunk_bytes as u64) as usize;
            let last = left <= shared.chunk_bytes as u64;
            let payload = shared.zero.slice(0..n);
            if let Some(d) = delay {
                thread::sleep(d);
            }
            if let Err(e) = shared.send_frame(device, dst, t, payload, last, attempt) {
                if !shared.monitor.is_finished() {
                    shared.monitor.fail(RunFailure::task(
                        t,
                        FailureKind::Transport,
                        format!("flow t{t}: {e}"),
                    ));
                }
                return;
            }
            if last {
                break;
            }
            left -= n as u64;
        }
        if obs::enabled() {
            obs::event(
                obs::Level::Trace,
                "runtime.flow",
                "send_done",
                &[
                    obs::Field::u64("flow", t as u64),
                    obs::Field::u64("src", device as u64),
                    obs::Field::u64("dst", dst as u64),
                    obs::Field::u64("t_ns", shared.now_ns()),
                ],
            );
        }
    }
}

/// Counts delivered bytes per flow and transmission attempt: a frame
/// from a newer attempt discards the bytes of a superseded (dropped)
/// one, a stale frame is ignored, and the final frame completes the flow
/// task (so a flow's finish timestamp is taken on the receiving side).
fn recv_worker(device: u32, rx: Receiver<Inbound>, shared: &Shared) {
    let mut progress: HashMap<u32, (u8, u64)> = HashMap::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            Inbound::Data {
                flow,
                payload,
                last,
                attempt,
            } => {
                hb::acquire(shared.hb_inbound_chan(device as usize));
                hb::acquire(shared.hb_flow_edge(flow));
                shared.note_dequeued(device);
                let entry = progress.entry(flow).or_insert((attempt, 0));
                if attempt > entry.0 {
                    *entry = (attempt, 0);
                } else if attempt < entry.0 {
                    continue; // stale frame from a dropped attempt
                }
                entry.1 += payload.len() as u64;
                if last {
                    let (_, got) = progress.remove(&flow).unwrap_or((attempt, 0));
                    let want = match shared.kinds[flow as usize] {
                        Kind::Flow { bytes, .. } => bytes,
                        _ => {
                            shared.monitor.fail(RunFailure::task(
                                flow,
                                FailureKind::Graph,
                                format!("frame for non-flow task t{flow}"),
                            ));
                            return;
                        }
                    };
                    if got != want {
                        shared.monitor.fail(RunFailure::task(
                            flow,
                            FailureKind::Transport,
                            format!("flow t{flow} delivered {got} bytes, expected {want}"),
                        ));
                        return;
                    }
                    shared.finish_task(flow);
                    if obs::enabled() {
                        obs::event(
                            obs::Level::Trace,
                            "runtime.flow",
                            "ack",
                            &[
                                obs::Field::u64("flow", flow as u64),
                                obs::Field::u64("dst", device as u64),
                                obs::Field::u64("bytes", got),
                                obs::Field::u64("t_ns", shared.now_ns()),
                            ],
                        );
                    }
                }
            }
            Inbound::Quit => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossmesh_netsim::{LinkParams, TaskId};

    fn cluster() -> ClusterSpec {
        ClusterSpec::homogeneous(2, 2, LinkParams::new(100e9, 10e9))
    }

    fn backends() -> [ThreadedBackend; 2] {
        [ThreadedBackend::threads(), ThreadedBackend::tcp()]
    }

    #[test]
    fn names_reflect_transport() {
        assert_eq!(ThreadedBackend::threads().name(), "threads");
        assert_eq!(ThreadedBackend::tcp().name(), "tcp");
        assert_eq!(ThreadedBackend::tcp().transport(), TransportKind::Tcp);
    }

    #[test]
    fn empty_graph_is_an_empty_trace() {
        for b in backends() {
            let trace = b.execute(&cluster(), &TaskGraph::new()).unwrap();
            assert_eq!(trace.makespan(), 0.0);
        }
    }

    #[test]
    fn unknown_device_is_rejected_up_front() {
        let c = cluster();
        let mut g = TaskGraph::new();
        g.add(Work::compute(DeviceId(99), 1.0), []);
        let err = ThreadedBackend::threads().execute(&c, &g).unwrap_err();
        assert!(matches!(
            err,
            SimError::UnknownDevice {
                task: TaskId(0),
                device: DeviceId(99)
            }
        ));
    }

    #[test]
    fn dependencies_order_timestamps() {
        let c = cluster();
        let mut g = TaskGraph::new();
        let a = g.add(Work::compute(c.device(0, 0), 1.0), []);
        let f = g.add(
            Work::flow(c.device(0, 0), c.device(1, 1), (3 << 20) as f64),
            [a],
        );
        let b = g.add(Work::compute(c.device(1, 1), 0.5), [f]);
        let m = g.add(Work::Marker, [b]);
        for backend in backends() {
            let trace = backend.execute(&c, &g).unwrap();
            // Happens-before: each dependency finishes before its
            // dependent starts, on the shared wall clock.
            assert!(trace.interval(a).finish <= trace.interval(f).start);
            assert!(trace.interval(f).finish <= trace.interval(b).start);
            assert!(trace.interval(b).finish <= trace.interval(m).start);
            // The compute sleeps are real: 1 s at 1e-3 scale is >= 1 ms.
            let ia = trace.interval(a);
            assert!(ia.finish - ia.start >= 1e-3);
            assert!(trace.makespan() >= trace.interval(m).finish);
            // Cross-host accounting comes from the graph, not the wire.
            assert_eq!(trace.usage().total_cross_host_bytes(), (3u64 << 20) as f64);
        }
    }

    #[test]
    fn intra_host_flows_do_not_count_as_cross_host() {
        let c = cluster();
        let mut g = TaskGraph::new();
        g.add(
            Work::flow(c.device(0, 0), c.device(0, 1), (1 << 16) as f64),
            [],
        );
        for backend in backends() {
            let trace = backend.execute(&c, &g).unwrap();
            assert_eq!(trace.usage().total_cross_host_bytes(), 0.0);
        }
    }

    #[test]
    fn zero_byte_flows_complete() {
        let c = cluster();
        let mut g = TaskGraph::new();
        let f = g.add(Work::flow(c.device(0, 0), c.device(1, 0), 0.0), []);
        let m = g.add(Work::Marker, [f]);
        for backend in backends() {
            let trace = backend.execute(&c, &g).unwrap();
            assert!(trace.interval(m).finish >= trace.interval(f).finish);
        }
    }

    #[test]
    fn wide_fan_out_and_fan_in_complete() {
        // Every device sends to every other device, all gated by one
        // marker and joined by another: exercises queues and the fabric.
        let c = cluster();
        let mut g = TaskGraph::new();
        let gate = g.add(Work::Marker, []);
        let mut flows = Vec::new();
        for s in 0..c.num_devices() {
            for d in 0..c.num_devices() {
                if s != d {
                    flows.push(g.add(
                        Work::flow(DeviceId(s), DeviceId(d), (1 << 14) as f64),
                        [gate],
                    ));
                }
            }
        }
        let join = g.add(Work::Marker, flows.clone());
        for backend in backends() {
            let trace = backend.execute(&c, &g).unwrap();
            for f in &flows {
                assert!(trace.interval(*f).finish <= trace.interval(join).start);
            }
        }
    }

    #[test]
    fn small_chunks_still_deliver_exact_byte_counts() {
        let c = cluster();
        let mut g = TaskGraph::new();
        // 10_000 bytes over 64-byte chunks: 157 partial frames.
        let f = g.add(Work::flow(c.device(0, 0), c.device(1, 0), 1e4), []);
        for backend in backends() {
            let backend = backend.with_chunk_bytes(64).with_channel_depth(4);
            let trace = backend.execute(&c, &g).unwrap();
            assert!(trace.interval(f).finish > trace.interval(f).start);
        }
    }

    #[test]
    fn deadline_aborts_instead_of_hanging() {
        let c = cluster();
        let mut g = TaskGraph::new();
        g.add(Work::compute(c.device(0, 0), 10.0), []);
        // 10 simulated seconds at default 1e-3 scale is 10 ms of wall
        // time; a 1 ms deadline must trip first.
        let backend = ThreadedBackend::threads().with_deadline(Duration::from_millis(1));
        let err = backend.execute(&c, &g).unwrap_err();
        assert!(matches!(
            err,
            SimError::Backend {
                backend: "threads",
                ..
            }
        ));
    }

    #[test]
    fn builders_validate_their_inputs() {
        let b = ThreadedBackend::threads()
            .with_time_scale(2e-3)
            .with_chunk_bytes(128)
            .with_channel_depth(8);
        assert_eq!(b.name(), "threads");
        let r = std::panic::catch_unwind(|| ThreadedBackend::threads().with_time_scale(0.0));
        assert!(r.is_err());
        let r = std::panic::catch_unwind(|| ThreadedBackend::threads().with_chunk_bytes(0));
        assert!(r.is_err());
        let r = std::panic::catch_unwind(|| {
            ThreadedBackend::threads().with_faults(InjectedFaults {
                compute_slowdown: vec![(0, 0.0)],
                ..InjectedFaults::default()
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn injected_straggler_stretches_compute() {
        let c = cluster();
        let mut g = TaskGraph::new();
        let t = g.add(Work::compute(c.device(0, 0), 1.0), []);
        let faults = InjectedFaults {
            compute_slowdown: vec![(0, 5.0)],
            ..InjectedFaults::default()
        };
        let trace = ThreadedBackend::threads()
            .with_faults(faults)
            .execute(&c, &g)
            .unwrap();
        let i = trace.interval(t);
        // 1 simulated second at 1e-3 scale is 1 ms; slowed 5x it is >= 5 ms.
        assert!(i.finish - i.start >= 5e-3);
        assert!(trace.fault_stats().is_clean());
    }

    #[test]
    fn dropped_flows_retry_and_are_counted() {
        let c = cluster();
        let mut g = TaskGraph::new();
        let f = g.add(Work::flow(c.device(0, 0), c.device(1, 0), 4096.0), []);
        let faults = InjectedFaults {
            flow_drops: BTreeMap::from([(f.0, 2)]),
            max_retries: 3,
            backoff: Duration::from_micros(100),
            ..InjectedFaults::default()
        };
        for backend in backends() {
            let trace = backend.with_faults(faults.clone()).execute(&c, &g).unwrap();
            assert_eq!(trace.fault_stats().retries, 2);
            assert!(trace.interval(f).finish > trace.interval(f).start);
            assert!(trace.failed_tasks().is_empty());
        }
    }

    #[test]
    fn drops_beyond_the_retry_budget_fail_the_flow() {
        let c = cluster();
        let mut g = TaskGraph::new();
        let f = g.add(Work::flow(c.device(0, 0), c.device(1, 0), 4096.0), []);
        let faults = InjectedFaults {
            flow_drops: BTreeMap::from([(f.0, 5)]),
            max_retries: 2,
            backoff: Duration::from_micros(100),
            ..InjectedFaults::default()
        };
        let err = ThreadedBackend::threads()
            .with_faults(faults)
            .execute(&c, &g)
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::TaskFailed {
                backend: "threads",
                task,
                kind: FailureKind::RetriesExhausted,
                ..
            } if task == f
        ));
    }

    #[test]
    fn flows_to_a_dead_host_fail_with_host_crash() {
        let c = cluster();
        let mut g = TaskGraph::new();
        let f = g.add(Work::flow(c.device(0, 0), c.device(1, 0), 4096.0), []);
        let faults = InjectedFaults {
            dead_hosts: vec![1],
            max_retries: 1,
            backoff: Duration::from_micros(100),
            ..InjectedFaults::default()
        };
        for backend in backends() {
            let err = backend
                .with_faults(faults.clone())
                .execute(&c, &g)
                .unwrap_err();
            assert!(matches!(
                err,
                SimError::TaskFailed {
                    kind: FailureKind::HostCrash,
                    task,
                    ..
                } if task == f
            ));
        }
    }

    #[test]
    fn compute_on_a_dead_host_fails_with_host_crash() {
        let c = cluster();
        let mut g = TaskGraph::new();
        g.add(Work::compute(c.device(1, 0), 0.1), []);
        let faults = InjectedFaults {
            dead_hosts: vec![1],
            max_retries: 1,
            backoff: Duration::from_micros(100),
            ..InjectedFaults::default()
        };
        let err = ThreadedBackend::threads()
            .with_faults(faults)
            .execute(&c, &g)
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::TaskFailed {
                kind: FailureKind::HostCrash,
                ..
            }
        ));
    }

    /// A shared state with no devices and no tasks: enough structure for
    /// driving individual workers directly in failure-path tests.
    fn bare_shared() -> Arc<Shared> {
        Arc::new(Shared {
            monitor: Monitor::new(1),
            t0: Instant::now(),
            kinds: Vec::new(),
            task_device: Vec::new(),
            roots: Vec::new(),
            pending: Vec::new(),
            dependents: Vec::new(),
            start_ns: Vec::new(),
            finish_ns: Vec::new(),
            compute_tx: Vec::new(),
            send_tx: Vec::new(),
            inbound_tx: Vec::new(),
            queue_depth: Vec::new(),
            tcp_writers: HashMap::new(),
            device_host: Vec::new(),
            zero: Bytes::new(),
            chunk_bytes: 1,
            faults: Arc::new(InjectedFaults::default()),
            retries: AtomicU64::new(0),
            hb_base: hb::fresh_ids(1),
        })
    }

    fn loopback_pair() -> (TcpStream, TcpStream) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let out = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (inc, _) = listener.accept().unwrap();
        (out, inc)
    }

    #[test]
    fn tcp_frame_for_an_unknown_device_fails_the_run() {
        let shared = bare_shared();
        let (mut out, inc) = loopback_pair();
        out.write_all(&encode_header(3, 7, 0, true, 0)).unwrap();
        drop(out);
        tcp_reader(inc, &shared);
        let err = shared
            .monitor
            .take_error()
            .expect("reader reports a failure");
        assert_eq!(err.task, Some(7));
        assert_eq!(err.kind, FailureKind::Graph);
        assert!(err.message.contains("unknown device d3"), "{}", err.message);
    }

    #[test]
    fn tcp_connection_closed_mid_frame_is_reported() {
        let shared = bare_shared();
        let (mut out, inc) = loopback_pair();
        // 5 of the 14 header bytes, then the peer vanishes.
        out.write_all(&[1, 2, 3, 4, 5]).unwrap();
        drop(out);
        tcp_reader(inc, &shared);
        let err = shared
            .monitor
            .take_error()
            .expect("reader reports a failure");
        assert!(err.message.contains("closed mid-frame"), "{}", err.message);
    }

    #[test]
    fn a_panicking_worker_fails_the_run_instead_of_hanging() {
        let shared = bare_shared();
        let h = spawn_named("cm-test-panic".into(), Arc::clone(&shared), |_| {
            panic!("synthetic worker bug")
        });
        assert!(h.join().is_err());
        let err = shared
            .monitor
            .take_error()
            .expect("guard reports the panic");
        assert_eq!(err.task, None);
        assert!(
            err.message.contains("cm-test-panic") && err.message.contains("panicked"),
            "{}",
            err.message
        );
    }
}
